#!/usr/bin/env python
"""Compare fresh benchmark results against the committed baseline.

CI snapshots the committed ``benchmarks/results/*.json`` before running the
benchmark suite, then calls this script with both directories.  Any
``steps_per_sec`` entry that regressed by more than ``--threshold`` (default
30%), and any ``peak_plan_bytes`` entry that *grew* by more than the same
threshold, produces a GitHub Actions warning annotation (``::warning``).
The script always exits 0: shared CI runners are far too noisy for a
blocking throughput gate, but the annotation makes regressions visible on
the run.

Usage:
    python benchmarks/compare_baseline.py \
        --baseline-dir /tmp/bench-baseline --results-dir benchmarks/results
"""

import argparse
import json
import os
import sys

#: Benchmark files that carry a ``steps_per_sec`` table worth tracking.
THROUGHPUT_RESULTS = (
    "runtime_throughput.json",
    "train_step_throughput.json",
    "plan_optimizer.json",
    "env_step_throughput.json",
    "conv_kernels.json",
    "layout_ir.json",
    "quantized_inference.json",
    "telemetry_overhead.json",
)

#: Telemetry acceptance: the fresh *disabled-mode* rollout throughput
#: (``telemetry_overhead.json``) must stay within this fraction of the
#: committed layout-IR rollout baseline — the pre-telemetry hot path.
TELEMETRY_DISABLED_THRESHOLD = 0.02
TELEMETRY_RESULT = "telemetry_overhead.json"
TELEMETRY_BASELINE = "layout_ir.json"

#: Benchmark files that carry a ``peak_plan_bytes`` table (lower is better).
MEMORY_RESULTS = ("plan_optimizer.json",)

#: Benchmark files that carry a per-family ``score_parity`` table: the fresh
#: quantized mean must stay within the committed run's 2-sigma band.
SCORE_PARITY_RESULTS = ("quantized_inference.json",)

#: Serving SLO results: request throughput (higher is better) and p99
#: latency (lower is better) per batching policy.
SERVING_RESULTS = ("serving_slo.json",)


def load_table(path, table):
    """One named table of a result file (``None`` if absent)."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    return payload.get("data", {}).get(table)


def compare_file(name, baseline_dir, results_dir, threshold, table="steps_per_sec",
                 higher_is_better=True):
    """Yield ``(mode, baseline, fresh, ratio)`` rows regressing past the threshold."""
    baseline = load_table(os.path.join(baseline_dir, name), table)
    fresh = load_table(os.path.join(results_dir, name), table)
    if not baseline or not fresh:
        return
    for mode, base_value in sorted(baseline.items()):
        fresh_value = fresh.get(mode)
        if not fresh_value or not base_value:
            continue
        ratio = fresh_value / base_value
        regressed = ratio < 1.0 - threshold if higher_is_better else ratio > 1.0 + threshold
        if regressed:
            yield mode, base_value, fresh_value, ratio


def compare_score_parity(name, baseline_dir, results_dir):
    """Yield families whose fresh quantized score left the committed 2-sigma band."""
    baseline = load_table(os.path.join(baseline_dir, name), "score_parity")
    fresh = load_table(os.path.join(results_dir, name), "score_parity")
    if not baseline or not fresh:
        return
    for family, base_row in sorted(baseline.items()):
        fresh_row = fresh.get(family)
        if not fresh_row:
            continue
        drift = abs(fresh_row["q8_mean"] - base_row["q8_mean"])
        tolerance = base_row.get("tolerance_2sigma", 0.0)
        if drift > tolerance:
            yield family, base_row, fresh_row, drift, tolerance


def compare_telemetry_disabled_mode(baseline_dir, results_dir):
    """Fresh disabled-mode rollout vs the committed layout-IR baseline.

    The cross-file pairing behind PR 10's acceptance bound: both numbers
    come from the same ``collect_rollouts`` loop and config, so a >2% gap
    means the telemetry guard (not host drift alone) is suspect.  Yields at
    most one ``(baseline, fresh, ratio)`` row.
    """
    baseline = load_table(os.path.join(baseline_dir, TELEMETRY_BASELINE), "steps_per_sec")
    fresh = load_table(os.path.join(results_dir, TELEMETRY_RESULT), "steps_per_sec")
    if not baseline or not fresh:
        return
    base_value = baseline.get("rollout_f32_layout")
    fresh_value = fresh.get("rollout_f32_off")
    if not base_value or not fresh_value:
        return
    ratio = fresh_value / base_value
    if ratio < 1.0 - TELEMETRY_DISABLED_THRESHOLD:
        yield base_value, fresh_value, ratio


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", required=True,
                        help="directory holding the committed result snapshots")
    parser.add_argument("--results-dir", default=os.path.join("benchmarks", "results"),
                        help="directory holding the freshly generated results")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="relative slowdown that triggers a warning (0.30 = 30%%)")
    args = parser.parse_args(argv)

    regressions = 0
    for name in THROUGHPUT_RESULTS:
        for mode, base_value, fresh_value, ratio in compare_file(
            name, args.baseline_dir, args.results_dir, args.threshold
        ):
            regressions += 1
            print(
                "::warning file=benchmarks/results/{name}::"
                "{name} {mode}: {fresh:.1f} steps/s vs committed {base:.1f} "
                "({pct:.0f}% of baseline, threshold {thr:.0f}%)".format(
                    name=name, mode=mode, fresh=fresh_value, base=base_value,
                    pct=ratio * 100.0, thr=(1.0 - args.threshold) * 100.0,
                )
            )
    for name in MEMORY_RESULTS:
        for mode, base_value, fresh_value, ratio in compare_file(
            name, args.baseline_dir, args.results_dir, args.threshold,
            table="peak_plan_bytes", higher_is_better=False,
        ):
            regressions += 1
            print(
                "::warning file=benchmarks/results/{name}::"
                "{name} {mode}: {fresh:.0f} peak plan bytes vs committed {base:.0f} "
                "({pct:.0f}% of baseline, threshold {thr:.0f}%)".format(
                    name=name, mode=mode, fresh=fresh_value, base=base_value,
                    pct=ratio * 100.0, thr=(1.0 + args.threshold) * 100.0,
                )
            )
    for name in SERVING_RESULTS:
        for mode, base_value, fresh_value, ratio in compare_file(
            name, args.baseline_dir, args.results_dir, args.threshold,
            table="throughput_rps",
        ):
            regressions += 1
            print(
                "::warning file=benchmarks/results/{name}::"
                "{name} {mode}: {fresh:.1f} req/s vs committed {base:.1f} "
                "({pct:.0f}% of baseline, threshold {thr:.0f}%)".format(
                    name=name, mode=mode, fresh=fresh_value, base=base_value,
                    pct=ratio * 100.0, thr=(1.0 - args.threshold) * 100.0,
                )
            )
        for mode, base_value, fresh_value, ratio in compare_file(
            name, args.baseline_dir, args.results_dir, args.threshold,
            table="p99_ms", higher_is_better=False,
        ):
            regressions += 1
            print(
                "::warning file=benchmarks/results/{name}::"
                "{name} {mode}: p99 {fresh:.1f} ms vs committed {base:.1f} ms "
                "({pct:.0f}% of baseline, threshold {thr:.0f}%)".format(
                    name=name, mode=mode, fresh=fresh_value, base=base_value,
                    pct=ratio * 100.0, thr=(1.0 + args.threshold) * 100.0,
                )
            )
    for name in SCORE_PARITY_RESULTS:
        for family, base_row, fresh_row, drift, tolerance in compare_score_parity(
            name, args.baseline_dir, args.results_dir
        ):
            regressions += 1
            print(
                "::warning file=benchmarks/results/{name}::"
                "{name} {family} ({game}): quantized score {fresh:.2f} vs committed "
                "{base:.2f} (drift {drift:.2f} > 2-sigma {tol:.2f})".format(
                    name=name, family=family, game=base_row.get("game", "?"),
                    fresh=fresh_row["q8_mean"], base=base_row["q8_mean"],
                    drift=drift, tol=tolerance,
                )
            )
    for base_value, fresh_value, ratio in compare_telemetry_disabled_mode(
        args.baseline_dir, args.results_dir
    ):
        regressions += 1
        print(
            "::warning file=benchmarks/results/{name}::"
            "disabled-mode rollout {fresh:.1f} steps/s vs committed layout-IR "
            "baseline {base:.1f} ({pct:.0f}% of baseline, telemetry budget "
            "{thr:.0f}%)".format(
                name=TELEMETRY_RESULT, fresh=fresh_value, base=base_value,
                pct=ratio * 100.0,
                thr=(1.0 - TELEMETRY_DISABLED_THRESHOLD) * 100.0,
            )
        )
    if regressions == 0:
        print("benchmark throughput and plan memory within {:.0f}% of the committed "
              "baseline".format(args.threshold * 100.0))
    # Never fail the job: throughput on shared runners is advisory.
    return 0


if __name__ == "__main__":
    sys.exit(main())
