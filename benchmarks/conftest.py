"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at the scale of
the selected experiment profile (``REPRO_PROFILE``, default ``smoke``) and
writes its rows to ``benchmarks/results/`` so EXPERIMENTS.md can be refreshed
from the latest run.
"""

import contextlib
import json
import os

import pytest

from repro.experiments import get_profile

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@contextlib.contextmanager
def pin_env(var, value):
    """Temporarily pin one environment variable (restored on exit).

    Benchmarks isolate the dimension they measure by pinning the runtime's
    selection switches (``REPRO_KERNELS``, ``REPRO_RUNTIME_PASSES``) around
    the compiles they time.
    """
    previous = os.environ.get(var)
    os.environ[var] = value
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(var, None)
        else:
            os.environ[var] = previous


@pytest.fixture(scope="session")
def profile():
    """The experiment profile used by every benchmark in this session."""
    return get_profile()


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir, profile):
    """Callable persisting one experiment's rows/curves to a JSON file."""

    def _save(name, payload):
        path = os.path.join(results_dir, "{}.json".format(name))
        with open(path, "w") as handle:
            json.dump({"profile": profile.name, "data": payload}, handle, indent=2, default=str)
        return path

    return _save


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)
