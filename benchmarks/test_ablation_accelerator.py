"""Benchmark: accelerator-template ablations (pipeline depth, hardware penalty).

Covers the design choices DESIGN.md calls out beyond the paper's figures:
how pipeline depth trades FPS against resources for a fixed PE array, and how
the hardware-penalty weight (lambda in Eq. 4) pulls the derived agent towards
cheaper operators.
"""

from conftest import run_once
from repro.experiments import run_chunk_ablation, run_hw_penalty_ablation
from repro.networks import resnet20


def test_chunk_count_ablation(benchmark, profile, save_result):
    network = resnet20(
        in_channels=profile.frame_stack,
        input_size=profile.obs_size,
        feature_dim=profile.feature_dim,
        base_width=profile.base_width,
    )
    rows = run_once(benchmark, run_chunk_ablation, network, chunk_counts=(1, 2, 3, 4))
    assert len(rows) == 4
    # With a fixed per-chunk PE array, deeper pipelines never reduce throughput
    # (each extra chunk adds compute) while consuming more DSPs.
    fps = [row["fps"] for row in rows]
    dsp = [row["dsp"] for row in rows]
    assert fps == sorted(fps)
    assert dsp == sorted(dsp)
    save_result("ablation_chunks", rows)
    print()
    for row in rows:
        print("chunks={chunks}  fps={fps:.1f}  latency={latency_ms:.3f}ms  dsp={dsp}".format(**row))


def test_hw_penalty_weight_ablation(benchmark, profile, save_result):
    rows = run_once(benchmark, run_hw_penalty_ablation, profile, penalty_weights=(0.0, 0.1, 1.0))
    assert len(rows) == 3
    # Stronger hardware penalties must not derive more expensive agents.
    flops = [row["derived_flops"] for row in rows]
    assert flops[-1] <= flops[0]
    save_result("ablation_hw_penalty", rows)
    print()
    for row in rows:
        print("lambda={penalty_weight}  derived MFLOPs={flops:.3f}  ops={derived_ops}".format(
            penalty_weight=row["penalty_weight"], flops=row["derived_flops"] / 1e6,
            derived_ops=row["derived_ops"]))
