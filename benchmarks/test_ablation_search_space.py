"""Benchmark: search-space cardinality audit and DAS-vs-random ablation.

Checks the two headline cardinality claims (9^12 agents, > 10^27 accelerator
configurations) and that the differentiable accelerator search is at least as
good as uniform random search at a matched evaluation budget.
"""

from conftest import run_once
from repro.experiments import run_das_vs_random, run_search_space_audit
from repro.networks import resnet14


def test_search_space_audit(benchmark, save_result):
    audit = run_once(benchmark, run_search_space_audit)
    assert audit["agent_space_meets_paper"]
    assert audit["accelerator_space_exceeds_1e27"]
    save_result("ablation_search_space", audit)
    print()
    print("Agent space: {:.3e}   Accelerator space: {:.3e}   Joint: {:.3e}".format(
        float(audit["agent_space"]), float(audit["accelerator_space"]), float(audit["joint_space"])))


def test_das_vs_random_search(benchmark, profile, save_result):
    network = resnet14(
        in_channels=profile.frame_stack,
        input_size=profile.obs_size,
        feature_dim=profile.feature_dim,
        base_width=profile.base_width,
    )
    result = run_once(benchmark, run_das_vs_random, network, steps=profile.das_steps, seed=profile.seed)
    assert result["das_wins"], "DAS must match or beat random search at equal budget"
    save_result("ablation_das_vs_random", result)
    print()
    print("DAS FPS: {:.1f} ({} DSP)   Random-search FPS: {:.1f} ({} DSP)".format(
        result["das_fps"], result["das_dsp"], result["random_fps"], result["random_dsp"]))
