"""Benchmark: multi-path backward (top-K) ablation for the agent search.

Eq. 7 of the paper activates K paths in the backward pass to trade search cost
against gradient stability.  This ablation runs short searches with K = 1, 2,
and 4 activated paths and records the resulting architecture-distribution
entropy and training returns.
"""

import numpy as np

from conftest import run_once
from repro.experiments import run_topk_ablation


def test_topk_backward_paths_ablation(benchmark, profile, save_result):
    rows = run_once(benchmark, run_topk_ablation, profile, "Breakout", (1, 2, 4))
    assert len(rows) == 3
    for row in rows:
        assert np.isfinite(row["alpha_entropy"])
        assert row["updates"] > 0
        assert len(row["derived_ops"].split(",")) == 12
    save_result("ablation_topk_paths", rows)
    print()
    for row in rows:
        print("K={k}  alpha-entropy={alpha_entropy:.3f}  train-return={train_return:.1f}  updates={updates}".format(**row))
