"""Conv kernel subsystem: per-signature timings + end-to-end rollout deltas.

Measures what the pluggable kernel registry (``repro.runtime.kernels``) buys
on the depthwise-dominant plans the co-search loop lives on:

* **rollout collection** (batch 16, float32, derived inverted-residual
  agent): the full collection loop with every conv pinned to the PR-3/PR-4
  ``im2col`` path versus autotuned dispatch (direct depthwise + blocked
  im2col where they win);
* **train-step gradients** (same agent, float32 compiled training plan):
  forward + reverse program under both dispatch modes;
* the autotuner's **per-signature decisions and candidate timings**, so the
  committed JSON records which kernel serves every signature of this
  workload on the benchmark host.

Modes are interleaved round-robin and summarised by the median — essential
on shared single-core hosts where steal-time spikes dwarf the effect being
measured.  The committed JSON additionally records the ratio against the
committed PR-3 ``plan_optimizer.json`` rollout_f32 number; that comparison
only means something when both were produced on the same machine, which is
why the in-run pinned-baseline ratio is the asserted metric.
"""

import json
import os
import statistics
import time

import numpy as np

from repro.runtime import CompiledTrainStep
from repro.runtime.kernels import ENV_VAR, selection_table

from conftest import RESULTS_DIR, pin_env, run_once
from test_runtime_throughput import build_agent, collect_rollouts, configure, make_env

PARITY_TOLERANCE = 1e-6
#: In-run rollout gain of autotuned dispatch over the pinned im2col baseline.
#: The tracked goal for depthwise-dominant plans is 1.5x (see ROADMAP); the
#: asserted floor is set below it so shared-runner noise cannot flake CI.
REQUIRED_ROLLOUT_SPEEDUP = 1.10

NUM_ENVS = 16
MODES = {"im2col": "im2col", "kernels": "auto"}


def _with_kernels(pin, fn):
    with pin_env(ENV_VAR, pin):
        return fn()


def _measure_rollout(steps, warmup, rounds):
    """Median rollout steps/sec per dispatch mode, interleaved.

    Returns the per-mode medians plus the median of *per-round* ratios:
    the two modes run back to back within each round, so the paired ratio
    cancels load drift that a ratio of independent medians would not.
    """
    setups = {}
    for mode, pin in MODES.items():
        def build():
            agent = build_agent()
            configure(agent, "runtime_f32")
            env = make_env()
            collect_rollouts(agent, env, warmup)  # compiles under this pin
            return agent, env
        setups[mode] = _with_kernels(pin, build)
    rates = {mode: [] for mode in MODES}
    for _ in range(rounds):
        for mode, (agent, env) in setups.items():
            rates[mode].append(collect_rollouts(agent, env, steps))
    for _, env in setups.values():
        env.close()
    summary = {mode: statistics.median(values) for mode, values in rates.items()}
    summary["paired_speedup"] = statistics.median(
        kernels / im2col for kernels, im2col in zip(rates["kernels"], rates["im2col"])
    )
    return summary


def _measure_train(updates, warmup, rounds):
    """Median train-gradient updates/sec (forward + reverse) per mode."""
    rng = np.random.default_rng(0)
    obs = rng.random((NUM_ENVS, 2, 32, 32)).astype(np.float32)
    actions = rng.integers(0, 6, size=NUM_ENVS)
    returns = rng.standard_normal(NUM_ENVS).astype(np.float32)
    advantages = rng.standard_normal(NUM_ENVS).astype(np.float32)

    def one_update(step):
        step.compute_gradients(obs, actions, returns, advantages)

    steps = {}
    for mode, pin in MODES.items():
        def build():
            agent = build_agent()
            agent.train()
            step = CompiledTrainStep(agent, dtype=np.float32)
            for _ in range(warmup):
                one_update(step)
            return step
        steps[mode] = _with_kernels(pin, build)
    durations = {mode: [] for mode in MODES}
    for _ in range(rounds):
        for mode, step in steps.items():
            start = time.perf_counter()
            for _ in range(updates):
                one_update(step)
            durations[mode].append((time.perf_counter() - start) / updates)
    return {mode: 1.0 / statistics.median(values) for mode, values in durations.items()}


def _parity():
    obs = make_env().reset(seed=1)
    probs = {}
    for mode, pin in MODES.items():
        def run():
            agent = build_agent()
            configure(agent, "runtime_f32")
            return agent.policy_value(obs)[0]
        probs[mode] = _with_kernels(pin, run)
    return float(np.abs(probs["kernels"] - probs["im2col"]).max())


def _signature_rows():
    """Autotuned per-signature decisions for this workload (with timings)."""
    return {
        key: row
        for key, row in selection_table().items()
        if row.get("timings_ms") or row["kernel"] != "im2col"
    }


def _committed_baseline():
    """The committed PR-3 ``plan_optimizer.json`` rollout_f32 throughput."""
    path = os.path.join(RESULTS_DIR, "plan_optimizer.json")
    try:
        with open(path) as handle:
            data = json.load(handle)["data"]
        return float(data["steps_per_sec"]["rollout_f32_passes_on"])
    except (OSError, KeyError, ValueError):
        return None


def measure(steps, warmup):
    rollout = _measure_rollout(steps, warmup, rounds=5)
    train = _measure_train(updates=max(2, steps // 10), warmup=2, rounds=3)
    parity = _parity()
    baseline = _committed_baseline()
    return {
        "config": {
            "num_envs": NUM_ENVS,
            "obs_size": 32,
            "measured_steps": steps,
            "modes": dict(MODES),
        },
        "steps_per_sec": {
            "rollout_f32_im2col": rollout["im2col"],
            "rollout_f32_kernels": rollout["kernels"],
            "train_grad_f32_im2col": train["im2col"],
            "train_grad_f32_kernels": train["kernels"],
        },
        "speedup": {
            "rollout_kernels_vs_im2col": rollout["paired_speedup"],
            "train_kernels_vs_im2col": train["kernels"] / train["im2col"],
            "rollout_vs_committed_plan_optimizer": (
                rollout["kernels"] / baseline if baseline else None
            ),
            "committed_plan_optimizer_rollout_f32": baseline,
        },
        "action_distribution_parity": parity,
        "signatures": _signature_rows(),
    }


def test_conv_kernels(benchmark, profile, save_result):
    steps = max(20, profile.train_steps // 8)
    payload = run_once(benchmark, measure, steps=steps, warmup=5)
    save_result("conv_kernels", payload)

    assert payload["action_distribution_parity"] <= PARITY_TOLERANCE
    # The registry must actually be serving specialised kernels for the
    # depthwise signatures of this plan (forward and reverse directions).
    chosen = {
        key: row["kernel"]
        for key, row in payload["signatures"].items()
        if key.startswith("depthwise:")
    }
    assert chosen, "no depthwise signatures were dispatched"
    assert any(kernel != "im2col" for kernel in chosen.values()), chosen
    speedup = payload["speedup"]["rollout_kernels_vs_im2col"]
    assert speedup >= REQUIRED_ROLLOUT_SPEEDUP, (
        "autotuned kernels only {:.2f}x the im2col rollout baseline "
        "(required {:.2f}x): {}".format(
            speedup, REQUIRED_ROLLOUT_SPEEDUP, payload["steps_per_sec"]
        )
    )
    assert payload["speedup"]["train_kernels_vs_im2col"] >= 0.9
