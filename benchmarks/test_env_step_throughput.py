"""Environment-layer throughput: batched SoA engine vs serial per-env stepping.

Two measurements per engine family (paddle, shooter, maze, navigator, duel):

* **env-only stepping** — random-action ``venv.step`` throughput at batch 16,
  the isolated cost of the environment layer (physics + render + wrappers);
* **rollout collection** — the full A2C collection loop (batched ``act`` on
  the float32 runtime + env stepping + buffer writes) on the Breakout analog,
  serial vs batched backend, plus the *env share* of that loop (env-only
  time over total loop time), which is the number the batched runtime is
  meant to shrink.

Acceptance: the batched backend sustains >= 2x the serial env-only
steps/sec on every family and never slows rollout collection down.
"""

import time

import numpy as np

from repro.drl import ActorCriticAgent, RolloutCollector
from repro.envs import make_vector_env
from repro.networks import AgentSuperNet

from conftest import run_once

NUM_ENVS = 16
OBS_SIZE = 32
FRAME_STACK = 2
ROLLOUT_LENGTH = 5
REQUIRED_ENV_SPEEDUP = 2.0

#: One registry game per engine family.
FAMILY_GAMES = ("Breakout", "SpaceInvaders", "Alien", "ChopperCommand", "Boxing")

#: Derived architecture used by the runtime-throughput benchmark.
DERIVED_PATH = [4, 5, 6, 4, 5, 6, 4, 5, 6, 4, 5, 6]


def make_env(game, backend):
    return make_vector_env(
        game,
        num_envs=NUM_ENVS,
        obs_size=OBS_SIZE,
        frame_stack=FRAME_STACK,
        seed=0,
        backend=backend,
    )


def env_only_steps_per_sec(game, backend, steps, warmup=10):
    """Random-action stepping throughput (no model in the loop)."""
    env = make_env(game, backend)
    env.reset(seed=0)
    rng = np.random.default_rng(0)
    actions = rng.integers(env.action_space.n, size=(warmup + steps, NUM_ENVS))
    for i in range(warmup):
        env.step(actions[i])
    start = time.perf_counter()
    for i in range(warmup, warmup + steps):
        env.step(actions[i])
    elapsed = time.perf_counter() - start
    env.close()
    return steps * NUM_ENVS / elapsed


def build_agent():
    supernet = AgentSuperNet(
        in_channels=FRAME_STACK,
        input_size=OBS_SIZE,
        feature_dim=128,
        base_width=16,
        rng=np.random.default_rng(0),
    )
    agent = ActorCriticAgent(
        supernet.derive(DERIVED_PATH), num_actions=6, feature_dim=128,
        rng=np.random.default_rng(0),
    )
    agent.eval()
    agent.use_runtime = True
    agent.runtime_dtype = np.float32
    return agent


def collect_rollouts(agent, env, steps, seed=0):
    """The measured loop: the production ``RolloutCollector`` A2C runs."""
    rng = np.random.default_rng(seed)
    collector = RolloutCollector(env, ROLLOUT_LENGTH)
    collector.reset(seed=seed)
    rollouts = max(1, steps // ROLLOUT_LENGTH)
    policy = lambda observations: agent.act(observations, rng)
    start = time.perf_counter()
    for _ in range(rollouts):
        collector.collect(policy)
    elapsed = time.perf_counter() - start
    return rollouts * ROLLOUT_LENGTH * env.num_envs / elapsed


def measure(steps, rollout_steps):
    steps_per_sec = {}
    env_speedup = {}
    for game in FAMILY_GAMES:
        serial = env_only_steps_per_sec(game, "sync", steps)
        batched = env_only_steps_per_sec(game, "batched", steps)
        steps_per_sec["{}/serial".format(game)] = serial
        steps_per_sec["{}/batched".format(game)] = batched
        env_speedup[game] = batched / serial

    agent = build_agent()
    rollout = {}
    env_share = {}
    for backend in ("sync", "batched"):
        env = make_env("Breakout", backend)
        collect_rollouts(agent, env, max(3, rollout_steps // 8))  # warm the plan cache
        rollout[backend] = collect_rollouts(agent, env, rollout_steps)
        env.close()
        # Env share of the loop = env-only steps/sec vs full-loop steps/sec.
        env_only = steps_per_sec["Breakout/{}".format("serial" if backend == "sync" else "batched")]
        env_share[backend] = rollout[backend] / env_only
    steps_per_sec["rollout/serial"] = rollout["sync"]
    steps_per_sec["rollout/batched"] = rollout["batched"]

    return {
        "config": {
            "num_envs": NUM_ENVS,
            "obs_size": OBS_SIZE,
            "frame_stack": FRAME_STACK,
            "games": list(FAMILY_GAMES),
            "env_only_steps": steps,
            "rollout_steps": rollout_steps,
        },
        "steps_per_sec": steps_per_sec,
        "env_step_speedup": env_speedup,
        "rollout_speedup_batched_vs_serial": rollout["batched"] / rollout["sync"],
        # Fraction of the rollout loop spent inside the env layer.
        "env_fraction_of_rollout": env_share,
    }


def test_env_step_throughput(benchmark, profile, save_result):
    steps = max(60, profile.train_steps // 2)
    rollout_steps = max(10, profile.train_steps // 8)
    payload = run_once(benchmark, measure, steps=steps, rollout_steps=rollout_steps)
    save_result("env_step_throughput", payload)

    for game, speedup in payload["env_step_speedup"].items():
        assert speedup >= REQUIRED_ENV_SPEEDUP, (
            "batched env stepping only {:.2f}x serial on {} "
            "(required {:.1f}x): {}".format(
                speedup, game, REQUIRED_ENV_SPEEDUP, payload["steps_per_sec"])
        )
    assert payload["rollout_speedup_batched_vs_serial"] >= 1.0, (
        "batched backend slowed rollout collection down: {}".format(payload["steps_per_sec"])
    )
    shares = payload["env_fraction_of_rollout"]
    assert shares["batched"] < shares["sync"], (
        "batched backend did not reduce the env share of the rollout loop: {}".format(shares)
    )
