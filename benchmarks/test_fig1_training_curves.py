"""Benchmark: regenerate Fig. 1 (test-score evolution for different backbones).

Paper shape being checked: one evaluation curve per (game, backbone) pair,
monotone in recorded steps, with every point finite — the raw material of the
paper's Fig. 1 panels.
"""

import numpy as np

from conftest import run_once
from repro.experiments import format_fig1, run_fig1


def test_fig1_training_curves(benchmark, profile, save_result):
    curves = run_once(benchmark, run_fig1, profile)

    assert set(curves) == set(profile.games_fig1)
    for game, by_backbone in curves.items():
        assert set(by_backbone) == set(profile.backbones_fig1)
        for backbone, curve in by_backbone.items():
            assert curve, "every (game, backbone) pair must record at least one point"
            steps = [point[0] for point in curve]
            values = [point[1] for point in curve]
            assert steps == sorted(steps)
            assert all(np.isfinite(v) for v in values)

    save_result("fig1_training_curves", curves)
    print()
    print(format_fig1(curves))
