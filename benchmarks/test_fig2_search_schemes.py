"""Benchmark: regenerate Fig. 2 (Direct-NAS vs bi-level vs one-level search).

Paper shape being checked: all three schemes run to completion and report
evaluation-score curves during the search; the one-level + AC-distillation
scheme (the one A3C-S adopts) must end with a finite, competitive score.
The paper's stronger claim (bi-level stays flat while one-level improves)
needs the full training budget; the recorded curves let EXPERIMENTS.md report
how far the scaled-down run gets.
"""

import numpy as np

from conftest import run_once
from repro.experiments import SEARCH_SCHEMES, format_fig2, run_fig2


def test_fig2_search_schemes(benchmark, profile, save_result):
    curves = run_once(benchmark, run_fig2, profile)

    labels = {label for label, _, _ in SEARCH_SCHEMES}
    for game, by_scheme in curves.items():
        assert set(by_scheme) == labels
        for label, curve in by_scheme.items():
            assert curve
            assert all(np.isfinite(point[1]) for point in curve)
        one_level_final = by_scheme["A3C-S:One-level"][-1][1]
        assert np.isfinite(one_level_final)

    save_result("fig2_search_schemes", curves)
    print()
    print(format_fig2(curves))
