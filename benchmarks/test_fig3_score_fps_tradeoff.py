"""Benchmark: regenerate Fig. 3 (score / FPS trade-off under the ZC706 budget).

Paper shapes being checked, per game:

* the DAS-searched accelerator for the A3C-S agent delivers more FPS than the
  DNNBuilder baseline running the same agent, and
* the co-searched (smaller) A3C-S agent reaches higher FPS than ResNet-14 when
  both use DAS-searched accelerators.
"""

import numpy as np

from conftest import run_once
from repro.experiments import format_fig3, run_fig3


def test_fig3_score_fps_tradeoff(benchmark, profile, save_result):
    rows = run_once(benchmark, run_fig3, profile)

    assert rows
    by_game = {}
    for row in rows:
        by_game.setdefault(row["game"], {})[row["configuration"]] = row

    for game, configs in by_game.items():
        assert set(configs) == {"ResNet-14 + DAS", "A3C-S + DAS", "A3C-S + DNNBuilder"}
        assert all(np.isfinite(row["score"]) for row in configs.values())
        assert all(row["dsp"] <= 900 for row in configs.values())
        # Claim (b): DAS beats DNNBuilder for the same (A3C-S) agent.
        assert configs["A3C-S + DAS"]["fps"] > configs["A3C-S + DNNBuilder"]["fps"]
        # Claim (a): the searched agent reaches higher FPS than ResNet-14 on
        # DAS accelerators.  This needs the architecture parameters to have
        # actually converged towards hardware-cheap operators, which the
        # seconds-scale smoke profile cannot provide, so the strict assertion
        # is only enforced for the larger profiles; the measured ratio is
        # always recorded in benchmarks/results/ for EXPERIMENTS.md.
        ratio = configs["A3C-S + DAS"]["fps"] / configs["ResNet-14 + DAS"]["fps"]
        assert np.isfinite(ratio) and ratio > 0
        if profile.name != "smoke":
            assert ratio >= 1.0

    save_result("fig3_score_fps_tradeoff", rows)
    print()
    print(format_fig3(rows))
