"""Layout-aware plan IR: channels-last propagation vs the NCHW-pinned plans.

Measures what the ``layout`` pass (``repro.runtime.passes.assign_layouts``)
buys on the derived inverted-residual agent, against two controls compiled
from the same network:

* ``im2col``  — every conv pinned to the ``im2col`` kernel, all-NCHW (the
  pinned reproducibility baseline, as in ``test_conv_kernels``);
* ``nchw``    — autotuned kernels with the layout pass disabled (the PR-5
  dispatch behaviour): isolates the layout contribution from the kernel
  contribution;
* ``layout``  — autotuned kernels with channels-last propagation (default).

Three views are recorded:

* **rollout / train-grad throughput** (batch 16, float32): interleaved
  rounds, summarised by the median of *per-round paired ratios* so load
  drift on shared hosts cancels;
* **per-cell step timings**: every conv / transpose step of the compiled
  plan timed in place and bucketed by the cell's spatial size, for the
  ``nchw`` and ``layout`` plans — the committed JSON shows where the
  channels-last chains actually pay off and that the GEMM-bound H=16 cells
  did not get slower;
* **plan structure**: per-layout conv counts and transpose counts (the
  boundary cost the assignment pass weighs against kernel savings).

The asserted floors sit below the tracked goals (1.5x rollout vs pinned
im2col; H=16 cells no slower) so shared-runner noise cannot flake CI; the
committed numbers carry the real margins.
"""

import statistics
import time

import numpy as np

from repro.runtime import CompiledTrainStep, compile_plan
from repro.runtime.kernels import ENV_VAR as KERNELS_ENV
from repro.runtime.passes import ENV_VAR as PASSES_ENV, PASS_NAMES
from repro.runtime.plan import Conv2dStep, TransposeStep

from conftest import pin_env, run_once
from test_runtime_throughput import (
    NUM_ENVS,
    build_agent,
    collect_rollouts,
    configure,
    make_env,
)

#: In-run rollout floor for the layout plan over the pinned im2col baseline.
#: The tracked goal is 1.5x (ROADMAP item 1); the floor leaves noise margin.
REQUIRED_ROLLOUT_SPEEDUP = 1.25
#: H=16 cells must not get slower than the NCHW plan (10% noise allowance).
H16_SLOWDOWN_ALLOWANCE = 1.10

NO_LAYOUT = ",".join(sorted(frozenset(PASS_NAMES) - {"layout"}))

#: mode -> (REPRO_KERNELS pin, REPRO_RUNTIME_PASSES pin); ``None`` = default.
MODES = {
    "im2col": ("im2col", None),
    "nchw": (None, NO_LAYOUT),
    "layout": (None, None),
}


def _pins(mode):
    kernels, passes = MODES[mode]
    pins = []
    if kernels is not None:
        pins.append((KERNELS_ENV, kernels))
    if passes is not None:
        pins.append((PASSES_ENV, passes))
    return pins


def _under_mode(mode, fn):
    kernels, passes = MODES[mode]
    if kernels is not None and passes is not None:
        with pin_env(KERNELS_ENV, kernels), pin_env(PASSES_ENV, passes):
            return fn()
    if kernels is not None:
        with pin_env(KERNELS_ENV, kernels):
            return fn()
    if passes is not None:
        with pin_env(PASSES_ENV, passes):
            return fn()
    return fn()


def _measure_rollout(steps, warmup, rounds):
    """Median rollout steps/sec per mode + paired layout-vs-baseline ratios."""
    setups = {}
    for mode in MODES:
        def build():
            agent = build_agent()
            configure(agent, "runtime_f32")
            env = make_env()
            collect_rollouts(agent, env, warmup)  # compiles under these pins
            return agent, env
        setups[mode] = _under_mode(mode, build)
    rates = {mode: [] for mode in MODES}
    for _ in range(rounds):
        for mode, (agent, env) in setups.items():
            rates[mode].append(collect_rollouts(agent, env, steps))
    for _, env in setups.values():
        env.close()
    summary = {mode: statistics.median(values) for mode, values in rates.items()}
    summary["paired_layout_vs_im2col"] = statistics.median(
        layout / im2col for layout, im2col in zip(rates["layout"], rates["im2col"])
    )
    summary["paired_layout_vs_nchw"] = statistics.median(
        layout / nchw for layout, nchw in zip(rates["layout"], rates["nchw"])
    )
    return summary


def _measure_train(updates, warmup, rounds):
    """Median train-gradient updates/sec (forward + reverse) per mode."""
    rng = np.random.default_rng(0)
    obs = rng.random((NUM_ENVS, 2, 32, 32)).astype(np.float32)
    actions = rng.integers(0, 6, size=NUM_ENVS)
    returns = rng.standard_normal(NUM_ENVS).astype(np.float32)
    advantages = rng.standard_normal(NUM_ENVS).astype(np.float32)

    steps = {}
    for mode in MODES:
        def build():
            agent = build_agent()
            agent.train()
            step = CompiledTrainStep(agent, dtype=np.float32)
            for _ in range(warmup):
                step.compute_gradients(obs, actions, returns, advantages)
            return step
        steps[mode] = _under_mode(mode, build)
    durations = {mode: [] for mode in MODES}
    for _ in range(rounds):
        for mode, step in steps.items():
            start = time.perf_counter()
            for _ in range(updates):
                step.compute_gradients(obs, actions, returns, advantages)
            durations[mode].append((time.perf_counter() - start) / updates)
    rates = {mode: 1.0 / statistics.median(values) for mode, values in durations.items()}
    rates["paired_layout_vs_im2col"] = statistics.median(
        im2col / layout for layout, im2col in zip(durations["layout"], durations["im2col"])
    )
    return rates


def _compile_inference_plan(mode):
    agent = build_agent()
    shape = (NUM_ENVS, 2, 32, 32)
    return _under_mode(
        mode, lambda: compile_plan(agent.backbone, shape, dtype=np.float32)
    ), shape


def _step_rows(plan, rounds):
    """Median in-place seconds per step over interleaved rounds."""
    bufs = plan.bufs
    samples = [[] for _ in plan.steps]
    for _ in range(rounds):
        for index, step in enumerate(plan.steps):
            start = time.perf_counter()
            step.run(bufs)
            samples[index].append(time.perf_counter() - start)
    rows = []
    for step, times in zip(plan.steps, samples):
        seconds = statistics.median(times)
        if isinstance(step, Conv2dStep):
            spec = step._spec(plan)
            kind = (
                "depthwise" if spec.groups == spec.in_channels
                else "pointwise" if spec.kernel == 1
                else "dense"
            )
            rows.append({
                "step": kind,
                "layout": step.layout,
                "kernel": step._kernel.name if step._kernel is not None else None,
                "height": spec.height,
                "in_channels": spec.in_channels,
                "kernel_size": spec.kernel,
                "stride": spec.stride,
                "us": seconds * 1e6,
            })
        elif isinstance(step, TransposeStep):
            n, c, h, w = plan.shape(step.in_slot)
            rows.append({
                "step": "transpose",
                "layout": "{}->{}".format(step.from_layout, step.to_layout),
                "kernel": None,
                "height": h,
                "in_channels": c,
                "kernel_size": None,
                "stride": None,
                "us": seconds * 1e6,
            })
    return rows


def _per_cell_timings(rounds=9):
    """Conv/transpose step timings of the ``nchw`` vs ``layout`` plans.

    The two plans are compiled from the same derived network and their steps
    are timed in interleaved rounds; the rows are bucketed by the conv's
    input spatial size (the stem runs at 32, the three cell stages at
    16 / 8 / 4).
    """
    plans = {}
    for mode in ("nchw", "layout"):
        plan, shape = _compile_inference_plan(mode)
        plan.run(np.zeros(shape, dtype=np.float32))  # warm buffers + pages
        plans[mode] = plan
    rows = {mode: _step_rows(plan, rounds) for mode, plan in plans.items()}
    buckets = {}
    for mode, mode_rows in rows.items():
        per_height = {}
        for row in mode_rows:
            per_height.setdefault(row["height"], 0.0)
            per_height[row["height"]] += row["us"]
        buckets[mode] = {str(h): us for h, us in sorted(per_height.items())}
    layout_plan = plans["layout"]
    convs = [s for s in layout_plan.steps if isinstance(s, Conv2dStep)]
    structure = {
        "convs_nhwc": sum(1 for s in convs if s.layout == "NHWC"),
        "convs_nchw": sum(1 for s in convs if s.layout == "NCHW"),
        "transposes": sum(
            1 for s in layout_plan.steps if isinstance(s, TransposeStep)
        ),
    }
    return rows, buckets, structure


def measure(steps, warmup):
    rollout = _measure_rollout(steps, warmup, rounds=5)
    train = _measure_train(updates=max(2, steps // 10), warmup=2, rounds=3)
    step_rows, cell_us, structure = _per_cell_timings()
    return {
        "config": {
            "num_envs": NUM_ENVS,
            "obs_size": 32,
            "measured_steps": steps,
            "modes": {mode: dict(_pins(mode)) for mode in MODES},
        },
        "steps_per_sec": {
            "rollout_f32_im2col": rollout["im2col"],
            "rollout_f32_nchw": rollout["nchw"],
            "rollout_f32_layout": rollout["layout"],
            "train_grad_f32_im2col": train["im2col"],
            "train_grad_f32_nchw": train["nchw"],
            "train_grad_f32_layout": train["layout"],
        },
        "speedup": {
            "rollout_layout_vs_im2col": rollout["paired_layout_vs_im2col"],
            "rollout_layout_vs_nchw": rollout["paired_layout_vs_nchw"],
            "train_layout_vs_im2col": train["paired_layout_vs_im2col"],
        },
        "plan_structure": structure,
        "cell_us": cell_us,
        "step_timings": step_rows,
    }


def test_layout_ir(benchmark, profile, save_result):
    steps = max(20, profile.train_steps // 8)
    payload = run_once(benchmark, measure, steps=steps, warmup=5)
    save_result("layout_ir", payload)

    structure = payload["plan_structure"]
    assert structure["convs_nhwc"] > 0, "layout pass propagated nothing"
    # Boundary transposes must stay rare: propagation through whole chains,
    # not one pack/unpack pair per conv.
    assert structure["transposes"] <= structure["convs_nhwc"] // 4 + 2, structure

    speedup = payload["speedup"]["rollout_layout_vs_im2col"]
    assert speedup >= REQUIRED_ROLLOUT_SPEEDUP, (
        "layout-propagated rollout only {:.2f}x the pinned im2col baseline "
        "(required {:.2f}x): {}".format(
            speedup, REQUIRED_ROLLOUT_SPEEDUP, payload["steps_per_sec"]
        )
    )
    # The layout pass must not regress the GEMM-bound H=16 cells.
    h16_layout = payload["cell_us"]["layout"].get("16")
    h16_nchw = payload["cell_us"]["nchw"].get("16")
    assert h16_layout is not None and h16_nchw is not None
    assert h16_layout <= h16_nchw * H16_SLOWDOWN_ALLOWANCE, (
        "H=16 cells regressed: {:.0f}us (layout) vs {:.0f}us (nchw)".format(
            h16_layout, h16_nchw
        )
    )
    assert payload["speedup"]["train_layout_vs_im2col"] >= 0.9
