"""Plan-optimizer passes: rollout throughput and peak plan memory.

Measures what the graph-level optimisation pipeline (conv-BN folding,
epilogue fusion, slot/workspace aliasing — see ``repro.runtime.passes``)
buys on the two plan classes the co-search loop lives on:

* the **no-grad rollout plan** of a derived A3C-S agent (batch 16, float32),
  timed through the same rollout-collection loop as
  ``test_runtime_throughput`` with the passes disabled vs enabled;
* the **gated training plan** of the supernet one-level update (float64),
  where the aliasing pass interval-shares the reverse program's gradient
  buffers.

Acceptance: all passes preserve output parity (<= 1e-6 f32 / 1e-12 f64),
peak plan memory drops by >= 30%, and the optimised rollout loop beats the
pass-free one by >= 1.2x in-run (the committed JSON additionally records the
ratio against the PR-2 ``runtime_f32`` baseline, which must show >= 1.5x).
"""

import json
import os

import numpy as np

from repro.drl.agent import ActorCriticAgent
from repro.networks import AgentSuperNet
from repro.runtime import compile_plan
from repro.runtime.kernels import ENV_VAR as KERNELS_ENV_VAR
from repro.runtime.passes import ENV_VAR

from conftest import RESULTS_DIR, pin_env, run_once
from test_runtime_throughput import build_agent, collect_rollouts, configure, make_env

PARITY_F32 = 1e-6
PARITY_F64 = 1e-12
REQUIRED_IN_RUN_SPEEDUP = 1.2
REQUIRED_MEMORY_REDUCTION = 0.30

GATED_PATHS = tuple((1, 4) for _ in range(12))


def _rollout_throughput(passes, steps, warmup):
    previous = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = passes
    try:
        agent = build_agent()
        configure(agent, "runtime_f32")
        env = make_env()
        collect_rollouts(agent, env, warmup)
        rate = collect_rollouts(agent, env, steps)
        env.close()
    finally:
        if previous is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = previous
    return rate


def _plan_pair(factory, **kwargs):
    """Compile the same signature with the passes off and on."""
    return (
        compile_plan(factory(), passes="none", **kwargs),
        compile_plan(factory(), passes="all", **kwargs),
    )


def _search_agent():
    supernet = AgentSuperNet(in_channels=2, input_size=32, feature_dim=128, base_width=16,
                             rng=np.random.default_rng(0))
    agent = ActorCriticAgent(supernet, num_actions=6, feature_dim=128,
                             rng=np.random.default_rng(0))
    agent.train()
    return agent


def _pr2_rollout_baseline():
    """The committed PR-2 ``runtime_f32`` rollout throughput (steps/sec)."""
    path = os.path.join(RESULTS_DIR, "runtime_throughput.json")
    try:
        with open(path) as handle:
            return float(json.load(handle)["data"]["steps_per_sec"]["runtime_f32"])
    except (OSError, KeyError, ValueError):
        return None


def measure(steps, warmup):
    obs = np.random.default_rng(0).random((16, 2, 32, 32))

    # Inference (rollout) plan: float32, derived agent, batch 16.
    def eval_agent():
        agent = build_agent()
        return agent

    plain, optimized = _plan_pair(eval_agent, input_shape=obs.shape, dtype=np.float32)
    probs_plain, _ = plain.run(obs.astype(np.float32))
    probs_opt, _ = optimized.run(obs.astype(np.float32))
    parity_f32 = float(np.abs(probs_opt - probs_plain).max())
    rollout_bytes = {"passes_off": plain.alloc_bytes, "passes_on": optimized.alloc_bytes}

    plain64, optimized64 = _plan_pair(eval_agent, input_shape=obs.shape, dtype=np.float64)
    parity_f64 = float(np.abs(np.asarray(optimized64.run(obs)[0]) - np.asarray(plain64.run(obs)[0])).max())

    # Gated training plan: float64, supernet one-level update signature.
    train_plain, train_opt = _plan_pair(
        _search_agent, input_shape=(8, 2, 32, 32), train=True, gated_paths=GATED_PATHS
    )
    train_bytes = {"passes_off": train_plain.alloc_bytes, "passes_on": train_opt.alloc_bytes}

    # Rollout-collection throughput, passes off vs on.
    rate_off = _rollout_throughput("none", steps, warmup)
    rate_on = _rollout_throughput("all", steps, warmup)

    baseline = _pr2_rollout_baseline()
    payload = {
        "config": {
            "num_envs": 16,
            "obs_size": 32,
            "measured_steps": steps,
            "gated_paths_per_cell": len(GATED_PATHS[0]),
        },
        "steps_per_sec": {
            "rollout_f32_passes_off": rate_off,
            "rollout_f32_passes_on": rate_on,
        },
        "speedup": {
            "passes_on_vs_off": rate_on / rate_off,
            "vs_pr2_runtime_f32": (rate_on / baseline) if baseline else None,
            "pr2_runtime_f32_baseline": baseline,
        },
        "peak_plan_bytes": {
            "rollout_f32_passes_off": rollout_bytes["passes_off"],
            "rollout_f32_passes_on": rollout_bytes["passes_on"],
            "train_gated_f64_passes_off": train_bytes["passes_off"],
            "train_gated_f64_passes_on": train_bytes["passes_on"],
        },
        "memory_reduction": {
            "rollout_f32": 1.0 - rollout_bytes["passes_on"] / rollout_bytes["passes_off"],
            "train_gated_f64": 1.0 - train_bytes["passes_on"] / train_bytes["passes_off"],
        },
        "parity": {"rollout_f32": parity_f32, "rollout_f64": parity_f64},
        "plan_steps": {
            "rollout_passes_off": len(plain.steps),
            "rollout_passes_on": len(optimized.steps),
        },
    }
    return payload


def test_plan_optimizer(benchmark, profile, save_result):
    steps = max(10, profile.train_steps // 8)
    # This benchmark isolates the graph-level *pass* pipeline, so conv
    # dispatch is pinned to the whole-batch im2col kernel — the
    # configuration the committed pass-on/pass-off baselines were recorded
    # under.  Autotuned kernels shrink the pass-free plans' workspaces on
    # their own (block-sized columns instead of whole-batch), which would
    # fold the kernel win into the pass measurement; the kernel dimension
    # is benchmarked separately by ``test_conv_kernels.py``.
    with pin_env(KERNELS_ENV_VAR, "im2col"):
        payload = run_once(benchmark, measure, steps=steps, warmup=3)
    save_result("plan_optimizer", payload)

    assert payload["parity"]["rollout_f32"] <= PARITY_F32
    assert payload["parity"]["rollout_f64"] <= PARITY_F64
    assert payload["plan_steps"]["rollout_passes_on"] < payload["plan_steps"]["rollout_passes_off"]
    for key, reduction in payload["memory_reduction"].items():
        assert reduction >= REQUIRED_MEMORY_REDUCTION, (
            "{} peak plan memory only shrank {:.0%} (required {:.0%})".format(
                key, reduction, REQUIRED_MEMORY_REDUCTION
            )
        )
    speedup = payload["speedup"]["passes_on_vs_off"]
    assert speedup >= REQUIRED_IN_RUN_SPEEDUP, (
        "optimised rollout only {:.2f}x the pass-free plan (required {:.1f}x): {}".format(
            speedup, REQUIRED_IN_RUN_SPEEDUP, payload["steps_per_sec"]
        )
    )
