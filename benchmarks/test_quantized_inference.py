"""Quantized inference: rollout-calibrated int8 vs the autotuned float32 runtime.

Measures what the quantize pass buys end-to-end on the derived
inverted-residual agent.  Two agents with identical weights are compared:

* ``f32`` — the default autotuned float32 runtime (the PR-6 layout path);
* ``q8``  — the same runtime with a rollout-harvested
  :class:`~repro.runtime.QuantCalibration` attached, lowering the eligible
  conv chains to int8 kernels with f32 boundary quantize/dequantize steps.

Three views are recorded:

* **rollout throughput** (batch 16, the paddle env): interleaved rounds
  summarised by the median of per-round paired q8/f32 ratios, so load drift
  on shared hosts cancels;
* **score parity across the five game families** (paddle / shooter / maze /
  navigator / duel, one game each): per-episode scores at batch 1 with a
  per-family batch-1 calibration, asserting the quantized policy's mean
  score drifts by at most two standard deviations;
* **plan structure + numerics**: how many convs lowered to int8, how many
  boundary steps the pass paid, which kernels the autotuner picked per
  signature, and the worst-case policy/value deviation on a live batch.

The asserted floor (1.25x rollout) sits below the tracked goal so
shared-runner noise cannot flake CI; the committed JSON carries the real
margin.
"""

import statistics

import numpy as np

from repro.drl import evaluate_agent
from repro.envs import make_vector_env
from repro.runtime import Calibrator
from repro.runtime.kernels import selection_table
from repro.runtime.plan import Conv2dStep, DequantizeStep, QuantizeStep

from conftest import run_once
from test_runtime_throughput import (
    FRAME_STACK,
    GAME,
    NUM_ENVS,
    OBS_SIZE,
    build_agent,
    collect_rollouts,
    configure,
    make_env,
)

#: In-run floor for the quantized rollout over the autotuned f32 baseline.
#: The tracked goal is 1.35x; the floor leaves noise margin.
REQUIRED_ROLLOUT_SPEEDUP = 1.25
#: Worst acceptable |policy delta| on a live batch (q8 noise, probs in [0,1]).
PROB_TOLERANCE = 0.1

#: One representative game per arcade engine family.
FAMILY_GAMES = {
    "paddle": "Breakout",
    "shooter": "SpaceInvaders",
    "maze": "Alien",
    "navigator": "TimePilot",
    "duel": "Boxing",
}

SCORE_EPISODES = 20
MAX_EPISODE_STEPS = 120
CALIBRATION_STEPS = 25

OBS_SHAPE = (FRAME_STACK, OBS_SIZE, OBS_SIZE)


def _calibrate(agent, game, batch, steps=CALIBRATION_STEPS):
    """Harvest a q8 calibration for ``batch``-sized inputs from a live rollout."""
    calibrator = Calibrator(agent, (batch,) + OBS_SHAPE, dtype=np.float32)
    env = make_vector_env(
        game, num_envs=batch, obs_size=OBS_SIZE, frame_stack=FRAME_STACK, seed=7
    )
    rng = np.random.default_rng(7)
    observations = env.reset(seed=7)
    for _ in range(steps):
        calibrator.observe(observations)
        actions, _ = agent.act(observations, rng)
        observations, _, _, _ = env.step(actions)
    env.close()
    return calibrator.result("q8")


def _build_pair():
    """Two identically-weighted agents: float32 baseline and quantized."""
    agents = {"f32": build_agent(), "q8": build_agent()}
    for agent in agents.values():
        configure(agent, "runtime_f32")
    return agents


def _measure_rollout(agents, steps, warmup, rounds):
    """Median rollout steps/sec per mode + paired q8-vs-f32 ratios."""
    envs = {mode: make_env() for mode in agents}
    for mode, agent in agents.items():
        collect_rollouts(agent, envs[mode], warmup)  # compile + autotune
    rates = {mode: [] for mode in agents}
    for _ in range(rounds):
        for mode, agent in agents.items():
            rates[mode].append(collect_rollouts(agent, envs[mode], steps))
    for env in envs.values():
        env.close()
    summary = {mode: statistics.median(values) for mode, values in rates.items()}
    summary["paired_q8_vs_f32"] = statistics.median(
        q8 / f32 for q8, f32 in zip(rates["q8"], rates["f32"])
    )
    return summary


def _plan_structure(agent):
    """Quantized/float conv counts and boundary steps of the batched plan."""
    plan = agent.runtime.engine.plan_for((NUM_ENVS,) + OBS_SHAPE)
    convs = [s for s in plan.steps if isinstance(s, Conv2dStep)]
    return {
        "convs_quantized": sum(1 for s in convs if s.quant is not None),
        "convs_float": sum(1 for s in convs if s.quant is None),
        "quantize_steps": sum(1 for s in plan.steps if isinstance(s, QuantizeStep)),
        "dequantize_steps": sum(1 for s in plan.steps if isinstance(s, DequantizeStep)),
    }


def _episode_scores(agent, game, episodes):
    """Per-episode scores (each episode gets its own seed and NOOP start)."""
    return [
        evaluate_agent(
            agent,
            game,
            episodes=1,
            seed=seed,
            env_kwargs={"obs_size": OBS_SIZE, "frame_stack": FRAME_STACK},
            max_steps_per_episode=MAX_EPISODE_STEPS,
        )
        for seed in range(episodes)
    ]


def _score_parity(agents, episodes):
    """Five-family score comparison with a per-family batch-1 calibration."""
    rows = {}
    for family, game in FAMILY_GAMES.items():
        agents["q8"].runtime_quantize = None  # calibrate on the float path
        calibration = _calibrate(agents["q8"], game, batch=1)
        agents["q8"].runtime_quantize = [calibration]
        f32_scores = _episode_scores(agents["f32"], game, episodes)
        q8_scores = _episode_scores(agents["q8"], game, episodes)
        f32_std = statistics.pstdev(f32_scores)
        q8_std = statistics.pstdev(q8_scores)
        rows[family] = {
            "game": game,
            "episodes": episodes,
            "f32_mean": statistics.mean(f32_scores),
            "q8_mean": statistics.mean(q8_scores),
            "f32_std": f32_std,
            "q8_std": q8_std,
            "drift": statistics.mean(q8_scores) - statistics.mean(f32_scores),
            "tolerance_2sigma": 2.0 * max(f32_std, q8_std),
        }
    return rows


def measure(steps, warmup, episodes):
    agents = _build_pair()
    agents["q8"].runtime_quantize = [_calibrate(agents["q8"], GAME, batch=NUM_ENVS)]

    rollout = _measure_rollout(agents, steps, warmup, rounds=5)
    structure = _plan_structure(agents["q8"])

    # Worst-case live-batch numerics between the two paths.
    env = make_env()
    obs = env.reset(seed=3)
    env.close()
    f32_probs, f32_value = agents["f32"].policy_value(obs)
    q8_probs, q8_value = agents["q8"].policy_value(obs)
    numeric = {
        "prob_maxabs_diff": float(np.abs(q8_probs - f32_probs).max()),
        "value_maxabs_diff": float(np.abs(q8_value - f32_value).max()),
    }

    kernels = {
        signature: row["kernel"]
        for signature, row in sorted(selection_table().items())
        if "/q8" in signature
    }

    scores = _score_parity(agents, episodes)

    return {
        "config": {
            "game": GAME,
            "num_envs": NUM_ENVS,
            "obs_size": OBS_SIZE,
            "frame_stack": FRAME_STACK,
            "measured_steps": steps,
            "calibration_steps": CALIBRATION_STEPS,
            "score_episodes": episodes,
            "max_episode_steps": MAX_EPISODE_STEPS,
            "family_games": dict(FAMILY_GAMES),
        },
        "steps_per_sec": {
            "rollout_f32_autotuned": rollout["f32"],
            "rollout_q8": rollout["q8"],
        },
        "speedup": {"rollout_q8_vs_f32": rollout["paired_q8_vs_f32"]},
        "plan_structure": structure,
        "numeric_parity": numeric,
        "score_parity": scores,
        "quantized_kernels": kernels,
    }


def test_quantized_inference(benchmark, profile, save_result):
    steps = max(20, profile.train_steps // 8)
    episodes = max(SCORE_EPISODES, profile.eval_episodes)
    payload = run_once(benchmark, measure, steps=steps, warmup=5, episodes=episodes)
    save_result("quantized_inference", payload)

    structure = payload["plan_structure"]
    assert structure["convs_quantized"] > 0, "quantize pass lowered nothing"
    # Boundary steps must stay rare: int8 chains through consecutive convs,
    # not one quantize/dequantize pair per conv.
    assert (
        structure["quantize_steps"] + structure["dequantize_steps"]
        <= structure["convs_quantized"] // 4 + 4
    ), structure

    assert payload["numeric_parity"]["prob_maxabs_diff"] <= PROB_TOLERANCE

    speedup = payload["speedup"]["rollout_q8_vs_f32"]
    assert speedup >= REQUIRED_ROLLOUT_SPEEDUP, (
        "quantized rollout only {:.2f}x the autotuned f32 baseline "
        "(required {:.2f}x): {}".format(
            speedup, REQUIRED_ROLLOUT_SPEEDUP, payload["steps_per_sec"]
        )
    )

    for family, row in payload["score_parity"].items():
        drift = abs(row["drift"])
        assert drift <= row["tolerance_2sigma"] or drift == 0.0, (
            "{} ({}) quantized score drifted {:.2f} "
            "(2-sigma tolerance {:.2f}): {}".format(
                family, row["game"], drift, row["tolerance_2sigma"], row
            )
        )
