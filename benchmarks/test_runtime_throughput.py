"""Rollout-collection throughput: tape-free runtime vs the eager autograd path.

Measures steps/sec of the full rollout-collection loop (batched ``act`` +
vector-env stepping + buffer writes) at batch 16 on the paddle env
(Breakout), using a derived A3C-S agent — the supernet-derived single-path
network that is the paper's actual product.  Three policy-inference engines
are compared:

* ``eager``      — the autograd ``Tensor`` forward under ``no_grad`` (seed
                   behaviour),
* ``runtime_f64`` — the :mod:`repro.runtime` plan executor at float64
                   (bit-near-identical numerics, allocation-free hot path),
* ``runtime_f32`` — the production fast path at float32.

The async (worker-process) vector-env backend is timed as a fourth row when
the platform supports fork; on multi-core hosts it overlaps env stepping
with batched inference.

Acceptance: the runtime path sustains >= 3x the eager steps/sec and its
action distributions match eager within 1e-6.
"""

import multiprocessing as mp
import time

import numpy as np

from repro.drl import ActorCriticAgent, RolloutBuffer
from repro.envs import make_vector_env
from repro.networks import AgentSuperNet

from conftest import run_once

GAME = "Breakout"  # the paddle env
NUM_ENVS = 16
OBS_SIZE = 32
FRAME_STACK = 2
ROLLOUT_LENGTH = 5
PARITY_TOLERANCE = 1e-6
REQUIRED_SPEEDUP = 3.0

#: Derived architecture: inverted-residual-heavy, like the paper's searched agents.
DERIVED_PATH = [4, 5, 6, 4, 5, 6, 4, 5, 6, 4, 5, 6]


def build_agent():
    supernet = AgentSuperNet(
        in_channels=FRAME_STACK,
        input_size=OBS_SIZE,
        feature_dim=128,
        base_width=16,
        rng=np.random.default_rng(0),
    )
    derived = supernet.derive(DERIVED_PATH)
    agent = ActorCriticAgent(derived, num_actions=6, feature_dim=128, rng=np.random.default_rng(0))
    agent.eval()
    return agent


def make_env(backend=None):
    """Default backend = the production path (batched since PR 4)."""
    return make_vector_env(
        GAME,
        num_envs=NUM_ENVS,
        obs_size=OBS_SIZE,
        frame_stack=FRAME_STACK,
        seed=0,
        backend=backend,
    )


def collect_rollouts(agent, env, steps, seed=0):
    """The measured loop: exactly what A2C rollout collection does."""
    rng = np.random.default_rng(seed)
    buffer = RolloutBuffer(ROLLOUT_LENGTH, env.num_envs, env.observation_space.shape)
    observations = env.reset(seed=seed)
    start = time.perf_counter()
    for _ in range(steps):
        if buffer.full:
            buffer.reset()
        actions, values = agent.act(observations, rng)
        next_observations, rewards, dones, _ = env.step(actions)
        buffer.add(observations, actions, rewards, dones, values)
        observations = next_observations
    elapsed = time.perf_counter() - start
    return steps * env.num_envs / elapsed


def configure(agent, mode):
    if mode == "eager":
        agent.use_runtime = False
    else:
        agent.use_runtime = True
        agent.runtime_dtype = np.float64 if mode == "runtime_f64" else np.float32


def measure(steps, warmup):
    agent = build_agent()
    rows = {}
    modes = ["eager", "runtime_f64", "runtime_f32"]
    for mode in modes:
        configure(agent, mode)
        env = make_env()
        collect_rollouts(agent, env, warmup)
        rows[mode] = collect_rollouts(agent, env, steps)
        env.close()
    if "fork" in mp.get_all_start_methods():
        configure(agent, "runtime_f32")
        env = make_env(backend="async")
        try:
            collect_rollouts(agent, env, warmup)
            rows["runtime_f32_async"] = collect_rollouts(agent, env, steps)
        finally:
            env.close()

    # Action-distribution parity between the two paths on identical inputs.
    obs = make_env().reset(seed=1)
    configure(agent, "eager")
    eager_probs, _ = agent.policy_value(obs)
    parity = {}
    for mode in ("runtime_f64", "runtime_f32"):
        configure(agent, mode)
        probs, _ = agent.policy_value(obs)
        parity[mode] = float(np.abs(probs - eager_probs).max())

    return {
        "config": {
            "game": GAME,
            "num_envs": NUM_ENVS,
            "obs_size": OBS_SIZE,
            "frame_stack": FRAME_STACK,
            "derived_path": DERIVED_PATH,
            "measured_steps": steps,
        },
        "steps_per_sec": rows,
        "speedup_vs_eager": {
            mode: rows[mode] / rows["eager"] for mode in rows if mode != "eager"
        },
        "action_distribution_parity": parity,
    }


def test_runtime_rollout_throughput(benchmark, profile, save_result):
    steps = max(10, profile.train_steps // 8)
    payload = run_once(benchmark, measure, steps=steps, warmup=3)
    save_result("runtime_throughput", payload)

    parity = payload["action_distribution_parity"]
    assert parity["runtime_f64"] <= PARITY_TOLERANCE
    assert parity["runtime_f32"] <= PARITY_TOLERANCE

    speedup = payload["speedup_vs_eager"]["runtime_f32"]
    assert speedup >= REQUIRED_SPEEDUP, (
        "runtime rollout collection only {:.2f}x faster than eager "
        "(required {:.1f}x): {}".format(speedup, REQUIRED_SPEEDUP, payload["steps_per_sec"])
    )
