"""Serving-tier SLO: latency percentiles and throughput under live traffic.

Drives a :class:`repro.serving.PolicyServer` with 32 concurrent simulated
clients over the production derived agent and records, per batching policy:

* ``batch1``  — buckets ``(1,)``: every request executes alone.  This is
  what "just call ``policy_value`` per client" costs, the baseline the
  dynamic scheduler must beat.
* ``dynamic`` — the default 1/2/4/8/16/32 ladder with a 2 ms coalescing
  deadline (closed loop: every client waits for its answer before sending
  the next request).
* ``dynamic_openloop`` — same server under open-loop Poisson arrivals at
  ~70% of the measured closed-loop capacity: latency percentiles under a
  traffic model the clients do not adapt to.
* ``mixed_f32_q8`` — two models (float32 and a rollout-calibrated q8
  variant of the same weights) served from one process, clients split
  across both: per-model routing does not forfeit the batching win.

Tables written to ``benchmarks/results/serving_slo.json``:
``throughput_rps`` (higher is better) and ``p50_ms`` / ``p99_ms`` (lower is
better), tracked by ``compare_baseline.py``.

Acceptance: ``dynamic`` sustains >= 2x the ``batch1`` request rate at 32
clients wherever the host's physical batching ceiling allows it.  The
ceiling is measured, not assumed: per-sample cost of a direct
``policy_value`` at every bucket size.  On a 1-core host with this
production-size agent, batch-1 GEMMs are already compute-bound, so the
ceiling sits near 1.9x — there the serving tier must deliver >= 75% of
whatever the host physically offers (the scheduler's own overhead budget),
and the measured ceiling is recorded in the JSON next to the achieved
speedup.  ``tests/serving/test_parity_slo.py`` pins the hard 2x bar on an
overhead-dominated agent where batching is what pays.
"""

import threading
import time

import numpy as np

from repro.serving import DEFAULT_BUCKETS, BucketPolicy, PolicyServer, ServerOverloadedError

from conftest import run_once
from test_quantized_inference import _calibrate
from test_runtime_throughput import (
    FRAME_STACK,
    GAME,
    OBS_SIZE,
    build_agent,
    make_env,
)

CLIENTS = 32
REQUIRED_SPEEDUP = 2.0
OPEN_LOOP_UTILISATION = 0.7
OBS_SHAPE = (FRAME_STACK, OBS_SIZE, OBS_SIZE)


def _traffic_observations(steps=4):
    """Realistic observation frames harvested from a short env rollout."""
    env = make_env()
    rng = np.random.default_rng(3)
    frames = [env.reset(seed=3)]
    for _ in range(steps):
        actions = rng.integers(0, 6, size=env.num_envs)
        observations, _, _, _ = env.step(actions)
        frames.append(observations)
    env.close()
    return np.concatenate(frames).astype(np.float32)


def _batch_scaling(agent, observations):
    """Per-bucket samples/sec of direct ``policy_value`` — the physics.

    This is the host's batching ceiling: the serving tier cannot beat the
    model's own per-sample scaling, only approach it.
    """
    rows = {}
    for bucket in DEFAULT_BUCKETS:
        batch = np.ascontiguousarray(observations[:bucket])
        agent.policy_value(batch)
        agent.policy_value(batch)
        reps = max(3, 48 // bucket)
        start = time.perf_counter()
        for _ in range(reps):
            agent.policy_value(batch)
        per_batch = (time.perf_counter() - start) / reps
        rows[bucket] = bucket / per_batch
    return rows


def _calibrated_buckets(scaling):
    """The default ladder truncated at the measured throughput sweet spot.

    Buckets past the best-scaling size only add cache-spill and padding
    waste (seen as batch 32 running *slower* per sample than 16 on small
    hosts), so the dynamic server serves the ladder up to the measured
    optimum.
    """
    best = max(scaling, key=scaling.get)
    return tuple(b for b in DEFAULT_BUCKETS if b <= best)


def _percentiles(latencies):
    arr = np.asarray(latencies, dtype=np.float64) * 1000.0
    return float(np.percentile(arr, 50)), float(np.percentile(arr, 99))


def _closed_loop(server, models, requests_per_client, observations):
    """32 clients in lock-step request/response; returns (rps, latencies)."""
    latencies = []
    lock = threading.Lock()
    errors = []

    def client(idx):
        model = models[idx % len(models)]
        try:
            for step in range(requests_per_client):
                obs = observations[(idx * 7 + step) % len(observations)]
                begin = time.perf_counter()
                server.policy_value(model, obs, timeout=120)
                elapsed = time.perf_counter() - begin
                with lock:
                    latencies.append(elapsed)
        except Exception as error:  # noqa: BLE001 — surfaced by the caller
            errors.append(error)

    threads = [threading.Thread(target=client, args=(i,)) for i in range(CLIENTS)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    if errors:
        raise errors[0]
    return len(latencies) / wall, latencies


def _open_loop(server, model, rate_rps, duration, observations):
    """Poisson arrivals at ``rate_rps`` for ``duration`` seconds.

    Clients do not wait for responses (latency is captured by done
    callbacks), so queueing delay shows up in the percentiles instead of
    throttling the arrival process.
    """
    rng = np.random.default_rng(11)
    latencies = []
    futures = []
    shed = 0
    sent = 0
    start = time.perf_counter()
    next_arrival = start
    while True:
        now = time.perf_counter()
        if now >= start + duration:
            break
        if now < next_arrival:
            time.sleep(next_arrival - now)
        begin = time.perf_counter()
        try:
            future = server.submit(model, observations[sent % len(observations)])
        except ServerOverloadedError:
            shed += 1
        else:
            future.add_done_callback(
                lambda fut, begin=begin: latencies.append(time.perf_counter() - begin)
            )
            futures.append(future)
        sent += 1
        next_arrival += rng.exponential(1.0 / rate_rps)
    for future in futures:
        future.result(timeout=120)
    wall = time.perf_counter() - start
    return {
        "rps": len(futures) / wall,
        "latencies": latencies,
        "offered_rps": rate_rps,
        "shed": shed,
    }


def measure(requests_per_client, open_loop_duration):
    observations = _traffic_observations()
    rows = {}
    stats = {}

    scaling = _batch_scaling(build_agent(), observations)
    ceiling = max(scaling.values()) / scaling[1]
    buckets = _calibrated_buckets(scaling)

    # Closed-loop capacity per batching policy, one fresh server each.
    for name, policy in (
        ("batch1", BucketPolicy(buckets=(1,), max_wait=0.0)),
        ("dynamic", BucketPolicy(buckets=buckets, max_wait=0.002)),
    ):
        agent = build_agent()
        server = PolicyServer(policy, max_queue=8 * CLIENTS)
        server.register_model("pilot", agent, obs_shape=OBS_SHAPE, warm=True)
        rps, latencies = _closed_loop(server, ["pilot"], requests_per_client, observations)
        stats[name] = server.stats()
        server.close()
        p50, p99 = _percentiles(latencies)
        rows[name] = {"rps": rps, "p50_ms": p50, "p99_ms": p99}

    # Open loop at ~70% of the measured dynamic capacity.
    agent = build_agent()
    server = PolicyServer(BucketPolicy(buckets=buckets, max_wait=0.002), max_queue=8 * CLIENTS)
    server.register_model("pilot", agent, obs_shape=OBS_SHAPE, warm=True)
    open_result = _open_loop(
        server, "pilot", OPEN_LOOP_UTILISATION * rows["dynamic"]["rps"],
        open_loop_duration, observations,
    )
    stats["dynamic_openloop"] = server.stats()
    server.close()
    p50, p99 = _percentiles(open_result["latencies"])
    rows["dynamic_openloop"] = {
        "rps": open_result["rps"], "p50_ms": p50, "p99_ms": p99,
        "offered_rps": open_result["offered_rps"], "shed": open_result["shed"],
    }

    # Mixed-model routing: f32 and q8 variants of the same weights in one
    # process, 16 clients each.
    f32_agent = build_agent()
    q8_agent = build_agent()
    q8_agent.runtime_quantize = [
        _calibrate(q8_agent, GAME, batch=size, steps=10)
        for size in sorted({buckets[-1], buckets[len(buckets) // 2]})
    ]
    server = PolicyServer(BucketPolicy(buckets=buckets, max_wait=0.002), max_queue=8 * CLIENTS)
    server.register_model("pilot-f32", f32_agent, obs_shape=OBS_SHAPE, warm=True)
    server.register_model("pilot-q8", q8_agent, obs_shape=OBS_SHAPE, warm=True)
    rps, latencies = _closed_loop(
        server, ["pilot-f32", "pilot-q8"], requests_per_client, observations
    )
    stats["mixed_f32_q8"] = server.stats()
    server.close()
    p50, p99 = _percentiles(latencies)
    rows["mixed_f32_q8"] = {"rps": rps, "p50_ms": p50, "p99_ms": p99}

    def _table(field):
        return {name: row[field] for name, row in rows.items() if field in row}

    return {
        "config": {
            "game": GAME,
            "clients": CLIENTS,
            "requests_per_client": requests_per_client,
            "open_loop_duration_s": open_loop_duration,
            "open_loop_utilisation": OPEN_LOOP_UTILISATION,
            "buckets": list(buckets),
            "max_wait_s": 0.002,
        },
        "batch_scaling_samples_per_sec": {str(k): v for k, v in scaling.items()},
        "batching_ceiling": ceiling,
        "throughput_rps": _table("rps"),
        "p50_ms": _table("p50_ms"),
        "p99_ms": _table("p99_ms"),
        "open_loop": {
            "offered_rps": rows["dynamic_openloop"]["offered_rps"],
            "shed": rows["dynamic_openloop"]["shed"],
        },
        "speedup_vs_batch1": rows["dynamic"]["rps"] / rows["batch1"]["rps"],
        "server_stats": {
            name: {
                "avg_batch": s["avg_batch"],
                "batches": s["batches"],
                "padded_slots": s["padded_slots"],
                "shed": s["shed"],
                "batch_sizes": {str(k): v for k, v in sorted(s["batch_sizes"].items())},
            }
            for name, s in stats.items()
        },
    }


def test_serving_slo(benchmark, profile, save_result):
    requests_per_client = max(6, profile.train_steps // 10)
    open_loop_duration = min(4.0, max(1.5, profile.train_steps / 60.0))
    payload = run_once(
        benchmark, measure,
        requests_per_client=requests_per_client,
        open_loop_duration=open_loop_duration,
    )
    # 2x wherever the host physically offers it (ceiling comfortably above
    # 2x); on smaller hosts the serving tier must still deliver >= 75% of
    # the measured ceiling — its scheduling overhead budget.
    ceiling = payload["batching_ceiling"]
    required = REQUIRED_SPEEDUP if ceiling >= 2.5 else max(1.2, 0.75 * ceiling)
    payload["required_speedup"] = required
    save_result("serving_slo", payload)

    speedup = payload["speedup_vs_batch1"]
    assert speedup >= required, (
        "dynamic batching only {:.2f}x over batch-1 serving at {} clients "
        "(required {:.2f}x, host batching ceiling {:.2f}x): {}".format(
            speedup, CLIENTS, required, ceiling, payload["throughput_rps"]
        )
    )
    # The scheduler actually coalesced (not just a faster batch-1 loop).
    assert payload["server_stats"]["dynamic"]["avg_batch"] > 2.0
