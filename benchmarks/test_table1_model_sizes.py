"""Benchmark: regenerate Table I (test scores of different backbone sizes).

Paper shape being checked: backbones differ in cost by construction, every
(game, backbone) cell trains and evaluates to a finite score, and the printed
table mirrors Table I's rows with the paper's reported numbers alongside.
"""

import numpy as np

from conftest import run_once
from repro.experiments import format_table1, run_table1


def test_table1_model_sizes(benchmark, profile, save_result):
    rows = run_once(benchmark, run_table1, profile)

    assert len(rows) == len(profile.games_table1) * len(profile.backbones_table1)
    assert all(np.isfinite(row["score"]) for row in rows)

    # Backbone cost ordering (the x-axis of the paper's model-size story).
    by_backbone = {}
    for row in rows:
        by_backbone.setdefault(row["backbone"], row["flops"])
    resnet_flops = [by_backbone[name] for name in ("ResNet-14", "ResNet-20") if name in by_backbone]
    assert resnet_flops == sorted(resnet_flops)

    save_result("table1_model_sizes", rows)
    print()
    print(format_table1(rows))
