"""Benchmark: regenerate Table II (distillation strategy ablation).

Paper shape being checked: all three strategies train to finite scores and the
AC-distillation column is competitive — at the paper's scale it wins on most
games; at benchmark scale we assert it is never catastrophically worse than
training without distillation.
"""

import numpy as np

from conftest import run_once
from repro.experiments import format_table2, run_table2


def test_table2_distillation(benchmark, profile, save_result):
    rows = run_once(benchmark, run_table2, profile)

    assert rows
    for row in rows:
        for mode in ("none", "policy", "ac"):
            assert np.isfinite(row[mode])

    # Qualitative check at benchmark scale: AC-distillation is not dominated
    # everywhere (the paper's Table II has it winning almost every cell).
    not_dominated = sum(1 for row in rows if row["ac"] >= min(row["none"], row["policy"]))
    assert not_dominated >= max(1, len(rows) // 2)

    save_result("table2_distillation", rows)
    print()
    print(format_table2(rows))
