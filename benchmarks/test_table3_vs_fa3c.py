"""Benchmark: regenerate Table III (A3C-S vs FA3C score / FPS).

Paper shape being checked: the co-searched accelerator fits the ZC706 budget
and its FPS beats FA3C's constant 260 FPS by a large factor (the paper reports
2.1x-6.1x; the analytical model at benchmark scale typically exceeds that,
since the derived agents are much smaller than the paper's).
"""

import numpy as np

from conftest import run_once
from repro.experiments import format_table3, run_table3


def test_table3_vs_fa3c(benchmark, profile, save_result):
    rows = run_once(benchmark, run_table3, profile)

    assert rows
    for row in rows:
        assert np.isfinite(row["a3cs_score"])
        assert row["feasible"]
        assert row["dsp_used"] <= 900
        # The central Table III claim: a large FPS advantage over FA3C.
        assert row["fps_speedup"] > 2.0

    save_result("table3_vs_fa3c", rows)
    print()
    print(format_table3(rows))
