"""Telemetry overhead: the disabled tracer must be free on the hot path.

PR 10's acceptance gate: with ``REPRO_TRACE`` off, rollout and serving
throughput stay within 2% of the committed baselines.  Shared 1-core runners
see >2% load drift *between* runs, so the hard assert here is the in-run
paired comparison — the only honest one:

* **plan-run pairing** — ``Plan.run`` (which now carries one
  ``trace.enabled`` attribute load + branch per call) is timed interleaved
  against the inlined raw step loop, i.e. byte-for-byte the pre-telemetry
  body (``np.copyto`` + ``step.run`` over the step list).  Each round times
  both variants back to back and the median of the per-round paired ratios
  is compared (the ``test_layout_ir`` idiom), so load drift hits both sides
  of a ratio equally.  Asserted <= 2%.
* **serving instrumentation** — the per-request metrics work the server
  added (two histogram observes + a queue-depth gauge write) is timed
  directly and asserted to cost <= 2% of the committed per-request service
  time from ``serving_slo.json`` (falling back to a fixed 60us budget when
  no baseline is committed).

Cross-run numbers are recorded, not asserted: ``rollout_f32_off`` uses the
exact ``collect_rollouts`` loop and config of ``test_runtime_throughput`` /
``test_layout_ir``, so ``compare_baseline.py`` can warn (non-blocking) when
a fresh disabled-mode run drops >2% below the committed layout-IR rollout
baseline.  ``rollout_f32_traced`` documents the cost of turning tracing on
(every plan step becomes a span): useful for judging whether always-on
tracing would be affordable, not a regression gate.
"""

import json
import os
import statistics
import time

import numpy as np

from repro import telemetry
from repro.telemetry import metrics, trace

from conftest import run_once
from test_runtime_throughput import (
    FRAME_STACK,
    OBS_SIZE,
    build_agent,
    collect_rollouts,
    configure,
    make_env,
)

#: Disabled-mode overhead ceiling (the ISSUE's 2% acceptance bound).
MAX_DISABLED_OVERHEAD = 0.02
#: Fallback per-request instrumentation budget when no serving baseline
#: exists: 60us is ~2% of a 3ms per-request service time.
FALLBACK_SERVING_BUDGET_S = 60e-6

PLAN_BATCH = 16
#: Single-run times on this host carry ~10% steal-burst noise, so the
#: paired-ratio median needs a few hundred samples to push its own sigma
#: well under the 2% bound (240 pairs ~ 0.6% sigma, ~7s of timing).
PLAN_PAIRS = 240

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


# --------------------------------------------------------------------- #
# Plan-run pairing
# --------------------------------------------------------------------- #
def _time_guarded(plan, x, iters):
    """Time ``iters`` calls of the shipping ``Plan.run`` (guard included)."""
    run = plan.run
    start = time.perf_counter_ns()
    for _ in range(iters):
        run(x)
    return time.perf_counter_ns() - start


def _time_raw(plan, x, iters):
    """Time ``iters`` runs of the pre-telemetry body: copy-in + step loop."""
    bufs = plan.bufs
    slot = plan.input_slot
    steps = plan.steps
    start = time.perf_counter_ns()
    for _ in range(iters):
        np.copyto(bufs[slot], x)
        for step in steps:
            step.run(bufs)
    return time.perf_counter_ns() - start


def measure_plan_overhead(agent):
    """Paired raw-vs-guarded plan execution; returns the comparison row.

    Like ``test_layout_ir``, the summary statistic is the **median of
    paired ratios**: each pair times one raw and one guarded run back to
    back (alternating which goes first to cancel ordering bias), so load
    drift hits both sides of a ratio equally; the median over many pairs
    then shrugs off the steal-time bursts that poison any mean or
    min-of-chunks estimator on shared 1-core hosts.
    """
    configure(agent, "runtime_f32")
    x = np.random.default_rng(0).standard_normal(
        (PLAN_BATCH, FRAME_STACK, OBS_SIZE, OBS_SIZE)
    ).astype(np.float32)
    plan = agent.runtime.engine.plan_for(x.shape)
    _time_guarded(plan, x, 3)  # warm kernels and parameter caches

    ratios = []
    raw_ns = guarded_ns = None
    for pair_index in range(PLAN_PAIRS):
        if pair_index % 2 == 0:
            raw = _time_raw(plan, x, 1)
            guarded = _time_guarded(plan, x, 1)
        else:
            guarded = _time_guarded(plan, x, 1)
            raw = _time_raw(plan, x, 1)
        ratios.append(guarded / raw)
        raw_ns = raw if raw_ns is None else min(raw_ns, raw)
        guarded_ns = guarded if guarded_ns is None else min(guarded_ns, guarded)
    ratios.sort()
    overhead = statistics.median(ratios) - 1.0
    return {
        "pairs": PLAN_PAIRS,
        "raw_us_per_run": raw_ns / 1e3,
        "guarded_us_per_run": guarded_ns / 1e3,
        "ratio_p10": ratios[len(ratios) // 10],
        "ratio_p90": ratios[-1 - len(ratios) // 10],
        "overhead_fraction": overhead,
    }


# --------------------------------------------------------------------- #
# Serving instrumentation cost
# --------------------------------------------------------------------- #
def _committed_per_request_s():
    """Per-request service time implied by the committed serving baseline."""
    try:
        with open(os.path.join(RESULTS_DIR, "serving_slo.json")) as handle:
            table = json.load(handle)["data"]["throughput_rps"]
        rps = max(table.values())
    except (OSError, ValueError, KeyError):
        return None
    return 1.0 / rps if rps else None


def measure_serving_instrumentation(calls=20000):
    """Direct cost of the per-request metrics the server now records."""
    latency = metrics.Histogram("request_latency_seconds")
    occupancy = metrics.Histogram("batch_occupancy", buckets=metrics.FRACTION_BUCKETS)
    depth = metrics.Gauge("queue_depth")
    registry_latency = metrics.registry().histogram(
        "serving/request_latency_seconds", buckets=metrics.DEFAULT_LATENCY_BUCKETS
    )
    start = time.perf_counter_ns()
    for index in range(calls):
        value = (index % 97) * 1e-4
        latency.observe(value)
        registry_latency.observe(value)
        occupancy.observe(0.5)
        depth.set(index % 8)
    per_call_s = (time.perf_counter_ns() - start) / calls / 1e9
    baseline_request_s = _committed_per_request_s()
    budget_s = (
        MAX_DISABLED_OVERHEAD * baseline_request_s
        if baseline_request_s
        else FALLBACK_SERVING_BUDGET_S
    )
    return {
        "calls": calls,
        "us_per_request": per_call_s * 1e6,
        "budget_us": budget_s * 1e6,
        "committed_request_us": (
            baseline_request_s * 1e6 if baseline_request_s else None
        ),
        "fraction_of_request": (
            per_call_s / baseline_request_s if baseline_request_s else None
        ),
    }


# --------------------------------------------------------------------- #
# Rollout throughput, trace off / on
# --------------------------------------------------------------------- #
def measure(steps, warmup):
    agent = build_agent()
    plan_row = measure_plan_overhead(agent)
    serving_row = measure_serving_instrumentation()

    configure(agent, "runtime_f32")
    rows = {}
    env = make_env()
    try:
        trace.disable()
        collect_rollouts(agent, env, warmup)
        rows["rollout_f32_off"] = collect_rollouts(agent, env, steps)
        trace.enable()
        trace.clear()
        collect_rollouts(agent, env, warmup)
        rows["rollout_f32_traced"] = collect_rollouts(agent, env, steps)
        profile_rows = telemetry.profile().as_dict()
    finally:
        trace.disable()
        trace.clear()
        env.close()
    # Keep the committed JSON readable: top self-time consumers only.
    profile_rows["rows"] = profile_rows["rows"][:15]

    return {
        "config": {
            "num_envs": env.num_envs,
            "plan_batch": PLAN_BATCH,
            "measured_steps": steps,
            "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
        },
        "steps_per_sec": rows,
        "traced_over_off": rows["rollout_f32_traced"] / rows["rollout_f32_off"],
        "plan_run": plan_row,
        "serving_instrumentation": serving_row,
        "traced_profile": profile_rows,
    }


def test_telemetry_disabled_overhead(benchmark, profile, save_result):
    steps = max(10, profile.train_steps // 8)
    payload = run_once(benchmark, measure, steps=steps, warmup=3)
    save_result("telemetry_overhead", payload)

    plan_row = payload["plan_run"]
    assert plan_row["overhead_fraction"] <= MAX_DISABLED_OVERHEAD, (
        "disabled-tracer Plan.run is {:.2%} slower than the raw step loop "
        "(budget {:.0%}): guarded {:.1f}us vs raw {:.1f}us per run".format(
            plan_row["overhead_fraction"],
            MAX_DISABLED_OVERHEAD,
            plan_row["guarded_us_per_run"],
            plan_row["raw_us_per_run"],
        )
    )

    serving_row = payload["serving_instrumentation"]
    assert serving_row["us_per_request"] <= serving_row["budget_us"], (
        "per-request serving metrics cost {:.1f}us, over the {:.1f}us budget "
        "(2% of the committed per-request service time)".format(
            serving_row["us_per_request"], serving_row["budget_us"]
        )
    )

    # Tracing on must still make forward progress (documented, not gated).
    assert payload["traced_over_off"] > 0.0
