"""Training-step throughput: compiled reverse-mode plans vs the eager tape.

Measures env-steps/sec of the full co-search training loop — rollout
collection (batch 16) **plus** the one-level weight/alpha update on the gated
supernet — with the update running on:

* ``eager``        — the autograd tape (reference semantics),
* ``compiled_f64`` — the reverse-mode plan runtime at float64 (gradients
                     match the tape to ~1e-12),
* ``compiled_f32`` — the production fast path at float32.

Rollout inference runs on the PR-1 runtime in every mode, so the deltas
isolate the gradient step: forward plan + closed-form loss head + per-op VJP
program + fused RMSProp, versus building and walking the eager tape.

Acceptance: the compiled float32 train step sustains >= 2x the eager
steps/sec, and float64 compiled gradients match the eager tape within 1e-6
(weights and alpha) on the exact gated one-level loss.
"""

import time

import numpy as np

from repro.drl.agent import ActorCriticAgent
from repro.drl.losses import (
    TaskLossWeights,
    combine_task_loss,
    entropy_loss,
    policy_gradient_loss,
    value_loss,
)
from repro.nas import DRLArchitectureSearch, SearchConfig
from repro.nas.arch_params import ArchitectureParameters
from repro.networks import AgentSuperNet
from repro.nn import Tensor
from repro.runtime import CompiledTrainStep

from conftest import run_once

GAME = "Breakout"  # the paddle env
NUM_ENVS = 16
OBS_SIZE = 32
FRAME_STACK = 2
ROLLOUT_LENGTH = 5
PARITY_TOLERANCE = 1e-6
REQUIRED_SPEEDUP = 2.0

STEPS_PER_UPDATE = NUM_ENVS * ROLLOUT_LENGTH


def build_search(mode):
    config = SearchConfig(
        num_envs=NUM_ENVS,
        rollout_length=ROLLOUT_LENGTH,
        total_steps=10 ** 9,
        distillation_mode="none",
        use_compiled_train=mode != "eager",
        compiled_train_dtype=np.float32 if mode == "compiled_f32" else None,
        seed=0,
    )
    return DRLArchitectureSearch(
        GAME,
        config=config,
        env_kwargs={"obs_size": OBS_SIZE, "frame_stack": FRAME_STACK},
        supernet_kwargs={"feature_dim": 64, "base_width": 8},
    )


def measure_modes(modes, updates, warmup):
    """Median per-update steps/sec per mode, measured round-robin.

    The modes are interleaved (one update each per round) so they sample the
    same background load, and the median per-update duration is used — both
    essential on shared single-core hosts where steal-time spikes dwarf the
    effect being measured.
    """
    searches = {mode: build_search(mode) for mode in modes}
    durations = {mode: [] for mode in modes}
    for round_index in range(warmup + updates):
        for mode, search in searches.items():
            target = search.total_env_steps + STEPS_PER_UPDATE
            start = time.perf_counter()
            search.search(total_steps=target)
            elapsed = time.perf_counter() - start
            if round_index >= warmup:
                durations[mode].append(elapsed)
    for search in searches.values():
        search.env.close()
    return {
        mode: STEPS_PER_UPDATE / float(np.median(times))
        for mode, times in durations.items()
    }


def gated_gradient_parity():
    """Max |compiled - eager| over weight and alpha gradients (float64)."""
    rng = np.random.default_rng(0)
    batch_size = STEPS_PER_UPDATE
    obs = rng.random((batch_size, FRAME_STACK, OBS_SIZE, OBS_SIZE)).astype(np.float32)
    actions = rng.integers(0, 6, size=batch_size)
    returns = rng.standard_normal(batch_size).astype(np.float32)
    advantages = rng.standard_normal(batch_size).astype(np.float32)
    weights = TaskLossWeights()

    def build_agent():
        supernet = AgentSuperNet(in_channels=FRAME_STACK, input_size=OBS_SIZE, feature_dim=64,
                                 base_width=8, rng=np.random.default_rng(0))
        agent = ActorCriticAgent(supernet, num_actions=6, feature_dim=64,
                                 rng=np.random.default_rng(0))
        agent.train()
        return agent

    def sample():
        arch = ArchitectureParameters(12, 9, rng=np.random.default_rng(1))
        return (arch,) + arch.sample(5.0, np.random.default_rng(2), num_backward_paths=2)

    # Eager reference.
    arch1, gates1, active1, _ = sample()
    eager_agent = build_agent()
    chosen, _, values, output = eager_agent.evaluate_actions(
        obs, actions, gates=gates1, active_indices=active1
    )
    total = combine_task_loss(
        policy_gradient_loss(chosen, advantages),
        value_loss(values, returns),
        entropy_loss(output.probs, output.log_probs),
        weights=weights,
    )
    total.backward()
    eager_grads = {name: p.grad for name, p in eager_agent.named_parameters()}
    eager_alpha = [alpha.grad.copy() for alpha in arch1.alphas]

    # Compiled, on an identically-seeded fresh Gumbel sample.
    arch2, gates2, active2, _ = sample()
    compiled_agent = build_agent()
    step = CompiledTrainStep(compiled_agent)
    plan, result = step.compute_gradients(
        obs, actions, returns, advantages, weights=weights,
        gated_paths=tuple(tuple(cell) for cell in active2),
        gate_values=[np.array([gates2[c].data[i] for i in cell])
                     for c, cell in enumerate(active2)],
    )
    worst = 0.0
    for name, param in compiled_agent.named_parameters():
        eager = eager_grads[name]
        compiled = plan.param_grad(param)
        if eager is None:
            continue
        worst = max(worst, float(np.abs(compiled - eager).max()))
    seed = None
    for gate, gate_grad, cell in zip(gates2, result.gate_grads, active2):
        full = np.zeros(gate.data.shape)
        full[list(cell)] = gate_grad
        term = (gate * Tensor(full)).sum()
        seed = term if seed is None else seed + term
    seed.backward()
    alpha_worst = max(
        float(np.abs(alpha.grad - expected).max())
        for alpha, expected in zip(arch2.alphas, eager_alpha)
    )
    return {"weight_grads": worst, "alpha_grads": alpha_worst}


def measure(updates, warmup):
    rows = measure_modes(("eager", "compiled_f64", "compiled_f32"), updates, warmup)
    return {
        "config": {
            "game": GAME,
            "num_envs": NUM_ENVS,
            "obs_size": OBS_SIZE,
            "frame_stack": FRAME_STACK,
            "rollout_length": ROLLOUT_LENGTH,
            "update_batch": STEPS_PER_UPDATE,
            "measured_updates": updates,
        },
        "steps_per_sec": rows,
        "speedup_vs_eager": {
            mode: rows[mode] / rows["eager"] for mode in rows if mode != "eager"
        },
        "gradient_parity_f64": gated_gradient_parity(),
    }


def test_train_step_throughput(benchmark, profile, save_result):
    updates = max(5, profile.train_steps // 40)
    payload = run_once(benchmark, measure, updates=updates, warmup=3)
    save_result("train_step_throughput", payload)

    parity = payload["gradient_parity_f64"]
    assert parity["weight_grads"] <= PARITY_TOLERANCE
    assert parity["alpha_grads"] <= PARITY_TOLERANCE

    speedup = payload["speedup_vs_eager"]["compiled_f32"]
    assert speedup >= REQUIRED_SPEEDUP, (
        "compiled train step only {:.2f}x faster than the eager tape "
        "(required {:.1f}x): {}".format(speedup, REQUIRED_SPEEDUP, payload["steps_per_sec"])
    )
