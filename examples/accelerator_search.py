#!/usr/bin/env python
"""Accelerator design-space exploration with the DAS engine.

For a fixed DRL backbone this script:

* audits the size of the accelerator search space,
* evaluates hand-designed expert recipes and the DNNBuilder baseline,
* runs the differentiable accelerator search (DAS) under the ZC706 budget,
* prints the per-layer utilisation report of the winning design.

Run:  python examples/accelerator_search.py [backbone]
      backbone defaults to ResNet-14; any of Vanilla / ResNet-14/20/38/74 works.
"""

import sys

from repro.accelerator import (
    AcceleratorCostModel,
    ChunkPipelineAccelerator,
    DASConfig,
    DNNBuilderAccelerator,
    DifferentiableAcceleratorSearch,
    ZC706,
    extract_workload,
)
from repro.baselines import MANUAL_ACCELERATOR_RECIPES, build_manual_accelerator
from repro.networks import build_backbone


def main():
    backbone_name = sys.argv[1] if len(sys.argv) > 1 else "ResNet-14"
    kwargs = {"in_channels": 2, "input_size": 42, "feature_dim": 128}
    if backbone_name.lower().startswith("resnet"):
        kwargs["base_width"] = 16
    network = build_backbone(backbone_name, **kwargs)
    workloads = extract_workload(network)
    print("Backbone {}: {} layers, {:.1f} MMACs".format(
        backbone_name, len(workloads), sum(w.macs for w in workloads) / 1e6))

    accelerator = ChunkPipelineAccelerator(network)
    space = accelerator.design_space()
    print("Accelerator design space: {:.2e} configurations over {} knobs (device {})".format(
        float(space.space_size()), space.num_dimensions(), ZC706))
    print()

    cost_model = AcceleratorCostModel()
    print("Hand-designed expert recipes:")
    for recipe in MANUAL_ACCELERATOR_RECIPES:
        config = build_manual_accelerator(workloads, recipe)
        metrics = cost_model.evaluate(workloads, config)
        print("  {:18s} {}".format(recipe, metrics.summary()))

    dnnbuilder = DNNBuilderAccelerator(network)
    print("  {:18s} {}".format("DNNBuilder", dnnbuilder.metrics.summary()))
    print()

    das = DifferentiableAcceleratorSearch(network, config=DASConfig(objective="fps", seed=0))
    result = das.search(steps=150)
    print("DAS-searched accelerator:")
    print("  " + result.best_metrics.summary())
    print("  speedup over DNNBuilder: {:.2f}x".format(result.fps / dnnbuilder.fps))
    print(result.best_config.describe())
    print()

    print("Per-layer report of the searched design:")
    searched = ChunkPipelineAccelerator(network, config=result.best_config)
    for entry in searched.utilization_report():
        print("  {:22s} chunk {}  util {:5.2f}  {}-bound  {:10.0f} cycles".format(
            entry["layer"], entry["chunk"], entry["utilization"], entry["bound"], entry["latency_cycles"]))


if __name__ == "__main__":
    main()
