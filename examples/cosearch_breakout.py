#!/usr/bin/env python
"""End-to-end A3C-S co-search on one game (paper Algorithm 1, scaled down).

Runs the full pipeline: train a ResNet-20 teacher, co-search the agent
architecture and the accelerator with AC-distillation and one-level
optimisation, derive the final agent + accelerator, and compare against the
FA3C baseline numbers and the DNNBuilder accelerator.

Run:  python examples/cosearch_breakout.py [game]
"""

import sys

from repro.accelerator import DNNBuilderAccelerator
from repro.baselines import FA3C_REPORTED
from repro.cosearch import A3CSCoSearch, A3CSConfig
from repro.drl import evaluate_agent


def main():
    game = sys.argv[1] if len(sys.argv) > 1 else "Breakout"
    config = A3CSConfig(
        obs_size=28,
        frame_stack=2,
        max_episode_steps=200,
        num_envs=2,
        search_steps=600,
        teacher_steps=400,
        final_das_steps=120,
        seed=0,
    )
    print("Running A3C-S co-search on {} ({} search steps)".format(game, config.search_steps))
    result = A3CSCoSearch(game, config=config).run()

    print()
    print("Derived agent operators per cell:")
    for cell, name in enumerate(result.operator_names):
        print("  cell {:2d}: {}".format(cell, name))
    print("Derived agent FLOPs: {:.2f} M".format(result.agent.backbone.flops() / 1e6))
    print()
    print("Derived accelerator:")
    print(result.accelerator_config.describe())
    print("  " + result.accelerator_metrics.summary())

    score = evaluate_agent(
        result.agent,
        game,
        episodes=3,
        seed=0,
        env_kwargs={"obs_size": config.obs_size, "frame_stack": config.frame_stack,
                    "max_episode_steps": config.max_episode_steps},
    )
    dnnbuilder = DNNBuilderAccelerator(result.agent.backbone)
    print()
    print("Test score of the derived agent: {:.1f}".format(score))
    print("FPS on the co-searched accelerator: {:.1f}".format(result.fps))
    print("FPS on the DNNBuilder baseline     : {:.1f}  ({:.2f}x slower)".format(
        dnnbuilder.fps, result.fps / dnnbuilder.fps))
    if game in FA3C_REPORTED:
        print("FA3C reported (real Atari, for reference): score {} at {} FPS".format(
            FA3C_REPORTED[game].score, FA3C_REPORTED[game].fps))


if __name__ == "__main__":
    main()
