#!/usr/bin/env python
"""AC-distillation study (paper Table II, scaled down).

Trains the Vanilla backbone on one game under the three distillation
strategies — none, policy-only, and the paper's AC-distillation — using a
shared ResNet-20 teacher, and prints the resulting test scores.

Run:  python examples/distillation_study.py
"""

from repro.experiments import format_table2, get_profile, run_table2


def main():
    profile = get_profile()
    print("Running the distillation study with the {!r} profile".format(profile.name))
    rows = run_table2(profile, backbones=("Vanilla",))
    print(format_table2(rows))
    print()
    for row in rows:
        improved = row["ac"] >= row["none"]
        print(
            "{} / {}: AC-distillation {} the no-distillation baseline "
            "({:.1f} vs {:.1f})".format(
                row["game"],
                row["backbone"],
                "matches or beats" if improved else "does not beat (at this scale)",
                row["ac"],
                row["none"],
            )
        )


if __name__ == "__main__":
    main()
