#!/usr/bin/env python
"""Model-size study (paper Table I / Fig. 1, scaled down).

Trains the Vanilla and ResNet backbones on a couple of games, prints the
test-score table with the paper's reported numbers alongside, and shows the
training curves — the experiment that motivates searching task-specific agents.

Run:  python examples/model_size_study.py              (smoke scale, ~minutes)
      REPRO_PROFILE=fast python examples/model_size_study.py
"""

from repro.experiments import format_fig1, format_table1, get_profile, run_fig1, run_table1


def main():
    profile = get_profile()
    print("Running the model-size study with the {!r} profile".format(profile.name))
    print("Games: {}   backbones: {}".format(profile.games_table1, profile.backbones_table1))
    print()

    rows = run_table1(profile)
    print(format_table1(rows))
    print()

    curves = run_fig1(profile)
    print(format_fig1(curves))
    print()

    # Qualitative take-away matching the paper's Sec. V-B insights.
    by_game = {}
    for row in rows:
        by_game.setdefault(row["game"], []).append(row)
    for game, game_rows in by_game.items():
        best = max(game_rows, key=lambda r: r["score"])
        print(
            "{}: best backbone at this scale is {} (score {:.1f}, {:.2f} MFLOPs)".format(
                game, best["backbone"], best["score"], best["flops"] / 1e6
            )
        )


if __name__ == "__main__":
    main()
