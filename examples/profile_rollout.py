#!/usr/bin/env python
"""Where did the milliseconds go?  Trace one rollout + one train step.

The compiled runtime makes rollouts fast, but "fast" is a single number —
this example turns it into an attribution.  It enables the span tracer
(:mod:`repro.telemetry.trace`), collects one traced rollout with a derived
A3C-S agent, runs one compiled A2C train step, and then:

1. prints the per-span **self-time table** (per-kernel, per-phase — the
   autotuned depthwise convs, the env stepping, the loss head, ...),
2. writes ``trace.json`` in Chrome trace-event format — open it at
   https://ui.perfetto.dev (or ``chrome://tracing``) to see the same data
   as a zoomable timeline,
3. prints the unified ``telemetry.snapshot()`` sources, showing the trace
   ring, plan caches, autotuner selections and health counters in one view.

The first (untraced) rollout pays compilation and kernel autotuning so the
traced one measures steady-state execution, the same discipline the
benchmarks use.

Run:  python examples/profile_rollout.py
"""

import json

import numpy as np

from repro import telemetry
from repro.drl import ActorCriticAgent
from repro.drl.rollout import RolloutCollector
from repro.envs import make_vector_env
from repro.networks import AgentSuperNet
from repro.nn import RMSProp
from repro.runtime.train import CompiledTrainStep
from repro.telemetry import trace

GAME = "Breakout"
OBS_SIZE = 32
FRAME_STACK = 2
NUM_ENVS = 4
ROLLOUT_LENGTH = 16
GAMMA = 0.99
TRACE_PATH = "trace.json"

#: Inverted-residual-heavy derived architecture, like the paper's searched agents.
DERIVED_PATH = [4, 5, 6, 4, 5, 6, 4, 5, 6, 4, 5, 6]


def build_agent():
    supernet = AgentSuperNet(
        in_channels=FRAME_STACK,
        input_size=OBS_SIZE,
        feature_dim=128,
        base_width=16,
        rng=np.random.default_rng(0),
    )
    agent = ActorCriticAgent(
        supernet.derive(DERIVED_PATH), num_actions=6, feature_dim=128,
        rng=np.random.default_rng(0),
    )
    agent.eval()
    agent.runtime_dtype = np.float32
    return agent


def main():
    agent = build_agent()
    env = make_vector_env(
        GAME, num_envs=NUM_ENVS, obs_size=OBS_SIZE, frame_stack=FRAME_STACK, seed=0
    )
    collector = RolloutCollector(env, ROLLOUT_LENGTH)
    rng = np.random.default_rng(0)
    policy = lambda observations: agent.act(observations, rng)  # noqa: E731
    train_step = CompiledTrainStep(
        agent, RMSProp(agent.parameters(), lr=1e-3), dtype=np.float32
    )

    # Warm-up pass: compile every plan and run the kernel autotuner now, so
    # the traced rollout measures steady-state execution, not compilation.
    buffer = collector.collect(policy, seed=0)
    _, bootstrap = agent.policy_value(collector.observations)
    batch = buffer.compute_targets(bootstrap, GAMMA)
    train_step.step(
        batch["observations"], batch["actions"], batch["returns"],
        batch["advantages"], max_grad_norm=0.5,
    )

    # The measured pass: one rollout + one train step under the tracer.
    trace.enable()
    trace.clear()
    buffer = collector.collect(policy)
    _, bootstrap = agent.policy_value(collector.observations)
    batch = buffer.compute_targets(bootstrap, GAMMA)
    train_step.step(
        batch["observations"], batch["actions"], batch["returns"],
        batch["advantages"], max_grad_norm=0.5,
    )
    trace.disable()

    report = telemetry.profile()
    print("Self-time profile of one traced rollout + one train step")
    print("({} env steps x {} envs, derived A3C-S agent, float32 runtime)".format(
        ROLLOUT_LENGTH, NUM_ENVS
    ))
    print()
    print(report.table(limit=25))

    trace.export_chrome(TRACE_PATH)
    with open(TRACE_PATH) as handle:
        num_events = len(json.load(handle)["traceEvents"])
    print()
    print("wrote {} ({} events) -- open at https://ui.perfetto.dev".format(
        TRACE_PATH, num_events
    ))

    snapshot = telemetry.snapshot()
    print()
    print("telemetry.snapshot() sources: {}".format(", ".join(sorted(snapshot))))
    print("  trace ring: {recorded} spans recorded, {dropped} dropped".format(
        **snapshot["trace"]
    ))
    print("  autotuned signatures: {}".format(len(snapshot["autotuner"])))
    print("  plan caches: {} inference hits, {} train hits".format(
        snapshot["plan_cache"]["inference_plans"]["cache_hits"],
        snapshot["plan_cache"]["train_plans"]["cache_hits"],
    ))
    env.close()


if __name__ == "__main__":
    main()
