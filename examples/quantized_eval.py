#!/usr/bin/env python
"""Quantized inference: calibrate from a rollout, then score int8 vs float32.

The runtime's quantized path needs activation ranges before it can lower
convolutions to int8/int16 kernels, and the ranges that matter are the ones
the policy actually visits.  This example walks the full production recipe:

1. build a derived A3C-S agent (the supernet-derived single-path network),
2. harvest per-slot activation ranges with a :class:`repro.runtime.Calibrator`
   over a short on-policy rollout (one calibrator per batch shape the agent
   will compile),
3. attach the calibrations via ``agent.runtime_quantize`` and compare the
   quantized agent against the float32 baseline: episode scores, batched
   inference throughput, and which integer kernels the autotuner picked.

Run:  python examples/quantized_eval.py
"""

import time

import numpy as np

from repro.drl import ActorCriticAgent, evaluate_agent
from repro.envs import make_vector_env
from repro.networks import AgentSuperNet
from repro.runtime import Calibrator
from repro.runtime.kernels import selection_table

GAME = "Breakout"
OBS_SIZE = 32
FRAME_STACK = 2
NUM_ENVS = 8
CALIBRATION_STEPS = 40
EVAL_EPISODES = 5
MAX_EPISODE_STEPS = 200
QUANT_MODE = "q8"
TIMED_BATCHES = 50

#: Inverted-residual-heavy derived architecture, like the paper's searched agents.
DERIVED_PATH = [4, 5, 6, 4, 5, 6, 4, 5, 6, 4, 5, 6]


def build_agent():
    supernet = AgentSuperNet(
        in_channels=FRAME_STACK,
        input_size=OBS_SIZE,
        feature_dim=128,
        base_width=16,
        rng=np.random.default_rng(0),
    )
    agent = ActorCriticAgent(
        supernet.derive(DERIVED_PATH), num_actions=6, feature_dim=128, rng=np.random.default_rng(0)
    )
    agent.eval()
    return agent


def calibrate(agent, steps=CALIBRATION_STEPS):
    """Run a short float rollout, feeding every observation batch to calibrators.

    Evaluation queries the agent at batch 1 while rollout collection queries
    it at batch ``NUM_ENVS``; each compiled signature needs a calibration for
    its own input shape, so two calibrators observe the same trajectory.
    """
    obs_shape = (FRAME_STACK, OBS_SIZE, OBS_SIZE)
    batched = Calibrator(agent, (NUM_ENVS,) + obs_shape, dtype=np.float32)
    single = Calibrator(agent, (1,) + obs_shape, dtype=np.float32)
    env = make_vector_env(
        GAME, num_envs=NUM_ENVS, obs_size=OBS_SIZE, frame_stack=FRAME_STACK, seed=0
    )
    rng = np.random.default_rng(0)
    observations = env.reset(seed=0)
    for _ in range(steps):
        batched.observe(observations)
        single.observe(observations[:1])
        actions, _ = agent.act(observations, rng)
        observations, _, _, _ = env.step(actions)
    env.close()
    return [batched.result(QUANT_MODE), single.result(QUANT_MODE)]


def batched_throughput(agent, observations, batches=TIMED_BATCHES):
    agent.policy_value(observations)  # compile + autotune outside the timer
    start = time.perf_counter()
    for _ in range(batches):
        agent.policy_value(observations)
    return batches * observations.shape[0] / (time.perf_counter() - start)


def main():
    print("=== Quantized inference on a derived A3C-S agent ===")
    agent = build_agent()
    agent.runtime_dtype = np.float32

    print("Calibrating {} from a {}-step rollout...".format(QUANT_MODE, CALIBRATION_STEPS))
    calibrations = calibrate(agent)
    for calibration in calibrations:
        print("  {!r}".format(calibration))

    env = make_vector_env(
        GAME, num_envs=NUM_ENVS, obs_size=OBS_SIZE, frame_stack=FRAME_STACK, seed=1
    )
    observations = env.reset(seed=1)
    env.close()
    eval_kwargs = dict(
        episodes=EVAL_EPISODES,
        seed=0,
        env_kwargs={"obs_size": OBS_SIZE, "frame_stack": FRAME_STACK},
        max_steps_per_episode=MAX_EPISODE_STEPS,
    )

    # Float32 baseline (quantization off: agent.runtime_quantize is None).
    f32_score = evaluate_agent(agent, GAME, **eval_kwargs)
    f32_sps = batched_throughput(agent, observations)

    # Quantized path: same agent, calibrations attached.
    agent.runtime_quantize = calibrations
    quant_score = evaluate_agent(agent, GAME, **eval_kwargs)
    quant_sps = batched_throughput(agent, observations)

    print("\nEpisode score  ({} episodes, {} steps max):".format(EVAL_EPISODES, MAX_EPISODE_STEPS))
    print("  float32 : {:8.2f}".format(f32_score))
    print("  {:7s} : {:8.2f}   (score delta {:+.2f})".format(QUANT_MODE, quant_score, quant_score - f32_score))
    print("Batched inference throughput (batch {}):".format(NUM_ENVS))
    print("  float32 : {:8.0f} obs/sec".format(f32_sps))
    print("  {:7s} : {:8.0f} obs/sec   ({:.2f}x)".format(QUANT_MODE, quant_sps, quant_sps / f32_sps))

    quant_rows = {
        signature: row
        for signature, row in selection_table().items()
        if "/{}".format(QUANT_MODE) in signature
    }
    print("Quantized kernel selections ({} signatures):".format(len(quant_rows)))
    for signature in sorted(quant_rows)[:6]:
        print("  {:60s} -> {}".format(signature, quant_rows[signature]["kernel"]))
    if len(quant_rows) > 6:
        print("  ... and {} more".format(len(quant_rows) - 6))

    # Detaching the calibrations restores the float path bit-for-bit.
    agent.runtime_quantize = None
    probs, _ = agent.policy_value(observations)
    print("Opt-out restores float32 inference: max prob {:.3f}".format(float(probs.max())))


if __name__ == "__main__":
    main()
