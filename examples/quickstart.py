#!/usr/bin/env python
"""Quickstart: train a small DRL agent, search an accelerator, report both.

This walks through the three layers of the library in a couple of minutes:

1. build a synthetic Atari-like environment and a Vanilla (Nature-DQN) agent,
2. train it with the A2C loop the paper builds on,
3. search an FPGA accelerator for the trained backbone with the DAS engine and
   compare it against the DNNBuilder baseline.

Run:  python examples/quickstart.py
"""

from repro.accelerator import DASConfig, DNNBuilderAccelerator, DifferentiableAcceleratorSearch
from repro.drl import A2CConfig, A2CTrainer, evaluate_agent, make_agent
from repro.envs import make_vector_env

GAME = "Breakout"
OBS_SIZE = 28
FRAME_STACK = 2
TRAIN_STEPS = 600


def main():
    print("=== A3C-S reproduction quickstart ===")

    # 1. Agent + environment -------------------------------------------------
    agent = make_agent("Vanilla", obs_size=OBS_SIZE, frame_stack=FRAME_STACK, feature_dim=64, seed=0)
    env = make_vector_env(
        GAME, num_envs=2, obs_size=OBS_SIZE, frame_stack=FRAME_STACK, max_episode_steps=200, seed=0
    )
    print("Game: {}   backbone: Vanilla   params: {}".format(GAME, agent.num_parameters()))

    # 2. A2C training ---------------------------------------------------------
    trainer = A2CTrainer(agent, env, config=A2CConfig(total_steps=TRAIN_STEPS, num_envs=2, seed=0))
    trainer.train()
    score = evaluate_agent(
        agent,
        GAME,
        episodes=3,
        seed=0,
        env_kwargs={"obs_size": OBS_SIZE, "frame_stack": FRAME_STACK, "max_episode_steps": 200},
    )
    print("Trained for {} env steps; evaluation score: {:.1f}".format(trainer.total_env_steps, score))

    # 3. Accelerator search ---------------------------------------------------
    das = DifferentiableAcceleratorSearch(agent.backbone, config=DASConfig(objective="fps", seed=0))
    das_result = das.search(steps=100)
    dnnbuilder = DNNBuilderAccelerator(agent.backbone)
    print("DAS-searched accelerator : {}".format(das_result.best_metrics.summary()))
    print("DNNBuilder baseline      : {}".format(dnnbuilder.metrics.summary()))
    print("FPS speedup over DNNBuilder: {:.2f}x".format(das_result.fps / dnnbuilder.fps))
    print(das_result.best_config.describe())


if __name__ == "__main__":
    main()
