#!/usr/bin/env python
"""A2C under per-env scenario randomization (domain-randomized training).

The batched environment runtime can re-draw engine parameters per lane on
every reset (``make_vector_env(..., randomize={...})``), so each of the N
parallel environments plays a slightly different variant of the game —
paddle widths, ball speeds, enemy skills sampled from ranges instead of the
nominal registry values.  This script is the first-class consumer of that
hook: it trains one agent on the randomized distribution through the
experiment harness (``train_backbone_agent(randomize=...)``) and one on the
nominal game, then evaluates both on the nominal parameters.

Run:  python examples/randomized_a2c.py
      python examples/randomized_a2c.py --game Breakout \\
          --randomize paddle_width=0.12:0.30 --randomize ball_speed=0.03:0.06

``--randomize name=low:high`` may be repeated; parameter names are the
engine's ``RANDOMIZABLE`` keys (e.g. paddle: paddle_width, paddle_speed,
ball_speed, opponent_skill).
"""

import argparse

from repro.experiments import get_profile
from repro.experiments.runners import train_backbone_agent

#: Default randomization ranges for the paddle family (nominal paddle_width
#: 0.2, ball_speed 0.04): wide enough to visibly change the dynamics.
DEFAULT_RANDOMIZE = {"paddle_width": (0.12, 0.30), "ball_speed": (0.03, 0.06)}


def parse_randomize(specs):
    """``["name=lo:hi", ...]`` -> ``{name: (lo, hi)}`` (None -> defaults)."""
    if not specs:
        return dict(DEFAULT_RANDOMIZE)
    ranges = {}
    for spec in specs:
        name, _, bounds = spec.partition("=")
        low, _, high = bounds.partition(":")
        try:
            ranges[name.strip()] = (float(low), float(high))
        except ValueError:
            raise SystemExit(
                "bad --randomize spec {!r}; expected name=low:high".format(spec)
            )
    return ranges


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--game", default="Breakout", help="registered game name")
    parser.add_argument("--backbone", default="Vanilla", help="registered backbone name")
    parser.add_argument("--steps", type=int, default=600, help="training env steps per run")
    parser.add_argument(
        "--randomize", action="append", metavar="NAME=LOW:HIGH",
        help="parameter range, repeatable (default: {})".format(
            ", ".join("{}={}:{}".format(k, lo, hi) for k, (lo, hi) in DEFAULT_RANDOMIZE.items())
        ),
    )
    args = parser.parse_args(argv)
    ranges = parse_randomize(args.randomize)
    profile = get_profile("smoke").with_overrides(
        obs_size=28, num_envs=2, max_episode_steps=200, eval_episodes=3, feature_dim=64
    )

    print("=== A2C under scenario randomization ===")
    print("Game: {}   backbone: {}   randomize: {}".format(args.game, args.backbone, ranges))

    randomized = train_backbone_agent(
        args.game, args.backbone, profile, total_steps=args.steps, randomize=ranges
    )
    nominal = train_backbone_agent(
        args.game, args.backbone, profile, total_steps=args.steps
    )

    # Both agents are evaluated on the *nominal* game, so the comparison
    # measures how well training on the randomized distribution transfers.
    print("Nominal-env evaluation after {} training steps:".format(args.steps))
    print("  trained on randomized scenarios: {:.1f}".format(randomized["score"]))
    print("  trained on nominal scenarios   : {:.1f}".format(nominal["score"]))
    return {"randomized": randomized["score"], "nominal": nominal["score"]}


if __name__ == "__main__":
    main()
