#!/usr/bin/env python
"""Policy serving: one process, many clients, dynamically batched inference.

Rollout collection drives the compiled runtime with one fixed batch size;
deployment looks nothing like that — many independent sessions each hold a
single observation and want an answer *now*.  This example walks the
serving recipe end to end:

1. build a derived A3C-S agent and register it (plus a rollout-calibrated
   int8 variant of the same weights) with a :class:`repro.serving.PolicyServer`,
2. warm every batch bucket so no live request pays compile latency,
3. drive the server with concurrent closed-loop clients and compare
   request throughput against batch-1 serving (a single-bucket policy),
4. poke the failure modes on purpose: overload shedding with a typed
   error, and graceful shutdown draining in-flight requests.

Run:  python examples/serve_policy.py
"""

import threading
import time

import numpy as np

from repro.drl import ActorCriticAgent
from repro.envs import make_vector_env
from repro.networks import AgentSuperNet
from repro.runtime import Calibrator
from repro.serving import (
    BucketPolicy,
    PolicyServer,
    ServerClosedError,
    ServerOverloadedError,
)

GAME = "Breakout"
OBS_SIZE = 32
FRAME_STACK = 2
NUM_CLIENTS = 16
REQUESTS_PER_CLIENT = 8
CALIBRATION_STEPS = 10
MAX_WAIT = 0.002
OBS_SHAPE = (FRAME_STACK, OBS_SIZE, OBS_SIZE)

#: Inverted-residual-heavy derived architecture, like the paper's searched agents.
DERIVED_PATH = [4, 5, 6, 4, 5, 6, 4, 5, 6, 4, 5, 6]


def build_agent():
    supernet = AgentSuperNet(
        in_channels=FRAME_STACK,
        input_size=OBS_SIZE,
        feature_dim=128,
        base_width=16,
        rng=np.random.default_rng(0),
    )
    agent = ActorCriticAgent(
        supernet.derive(DERIVED_PATH), num_actions=6, feature_dim=128,
        rng=np.random.default_rng(0),
    )
    agent.eval()
    agent.runtime_dtype = np.float32
    return agent


def calibrate_q8(agent, batch, steps=CALIBRATION_STEPS):
    """Harvest activation ranges for ``batch``-sized inputs from a rollout."""
    calibrator = Calibrator(agent, (batch,) + OBS_SHAPE, dtype=np.float32)
    env = make_vector_env(
        GAME, num_envs=batch, obs_size=OBS_SIZE, frame_stack=FRAME_STACK, seed=0
    )
    rng = np.random.default_rng(0)
    observations = env.reset(seed=0)
    for _ in range(steps):
        calibrator.observe(observations)
        actions, _ = agent.act(observations, rng)
        observations, _, _, _ = env.step(actions)
    env.close()
    return calibrator.result("q8")


def traffic(steps=4):
    """Realistic observation frames from a short env rollout."""
    env = make_vector_env(
        GAME, num_envs=16, obs_size=OBS_SIZE, frame_stack=FRAME_STACK, seed=3
    )
    rng = np.random.default_rng(3)
    frames = [env.reset(seed=3)]
    for _ in range(steps):
        frames.append(env.step(rng.integers(0, 6, size=16))[0])
    env.close()
    return np.concatenate(frames).astype(np.float32)


def drive_clients(server, models, observations):
    """Closed-loop concurrent clients; returns (req/sec, latencies)."""
    latencies = []
    lock = threading.Lock()

    def client(idx):
        model = models[idx % len(models)]
        for step in range(REQUESTS_PER_CLIENT):
            obs = observations[(idx * 5 + step) % len(observations)]
            begin = time.perf_counter()
            server.policy_value(model, obs, timeout=60)
            elapsed = time.perf_counter() - begin
            with lock:
                latencies.append(elapsed * 1000.0)

    threads = [threading.Thread(target=client, args=(i,)) for i in range(NUM_CLIENTS)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    return len(latencies) / wall, latencies


def main():
    print("=== Policy serving with dynamic cross-session batching ===")
    observations = traffic()

    print("\nBatch-1 serving (single-bucket policy, every request alone):")
    agent = build_agent()
    server = PolicyServer(BucketPolicy(buckets=(1,), max_wait=0.0))
    server.register_model("pilot", agent, obs_shape=OBS_SHAPE, warm=True)
    batch1_rps, _ = drive_clients(server, ["pilot"], observations)
    server.close()
    print("  {:.0f} req/s".format(batch1_rps))

    print("\nDynamic batching (bucket ladder, {} ms coalescing deadline),".format(MAX_WAIT * 1000))
    print("with an int8 variant of the same weights served beside float32:")
    f32_agent = build_agent()
    q8_agent = build_agent()
    q8_agent.runtime_quantize = [calibrate_q8(q8_agent, batch=8)]
    server = PolicyServer(BucketPolicy(buckets=(1, 2, 4, 8, 16), max_wait=MAX_WAIT))
    server.register_model("pilot-f32", f32_agent, obs_shape=OBS_SHAPE, warm=True)
    server.register_model("pilot-q8", q8_agent, obs_shape=OBS_SHAPE, warm=True)
    dynamic_rps, latencies = drive_clients(
        server, ["pilot-f32", "pilot-q8"], observations
    )
    stats = server.stats()
    print("  {:.0f} req/s ({:.2f}x batch-1), p50 {:.1f} ms, p99 {:.1f} ms".format(
        dynamic_rps, dynamic_rps / batch1_rps,
        float(np.percentile(latencies, 50)), float(np.percentile(latencies, 99)),
    ))
    print("  batches executed: {} (avg batch {:.1f}), per model: {}".format(
        stats["batches"], stats["avg_batch"], stats["models"],
    ))

    print("\nOverload: a tiny queue sheds excess load with a typed error:")
    tiny = PolicyServer(BucketPolicy(max_wait=0.05), max_queue=4, start=False)
    tiny.register_model("pilot", f32_agent, obs_shape=OBS_SHAPE)
    admitted, shed = [], 0
    for row in range(8):
        try:
            admitted.append(tiny.submit("pilot", observations[row]))
        except ServerOverloadedError:
            shed += 1
    window = tiny.health_window()
    print("  8 submitted, {} shed (serving_shed counter: {})".format(
        shed, window.counters["serving_shed"],
    ))

    print("\nGraceful shutdown: queued requests resolve, never hang:")
    tiny.close()
    outcomes = []
    for future in admitted:
        try:
            future.result(timeout=0)
            outcomes.append("answered")
        except ServerClosedError:
            outcomes.append("ServerClosedError")
    print("  queued futures resolved as: {}".format(outcomes))

    server.close()
    print("\nDone.")


if __name__ == "__main__":
    main()
