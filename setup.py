"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work in offline
environments that lack the ``wheel`` package required by PEP 660 builds
(``python setup.py develop`` remains functional there).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "A3C-S: Automated Agent Accelerator Co-Search towards Efficient Deep "
        "Reinforcement Learning (DAC 2021) - full reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21"],
)
