"""A3C-S: Automated Agent Accelerator Co-Search — full Python reproduction.

Subpackages
-----------
``repro.nn``
    NumPy reverse-mode autodiff and neural-network layers (PyTorch substitute).
``repro.runtime``
    Tape-free batched inference engine (compiled plans, pre-allocated
    buffers) serving every no-grad forward: rollouts, evaluation, teacher
    targets, co-search agent-reward queries.
``repro.envs``
    Synthetic Atari-like arcade environments (ALE substitute) with
    synchronous and worker-parallel vectorisation.
``repro.networks``
    Vanilla DQN CNN, ResNet-14/20/38/74 baselines, NAS operators, supernet.
``repro.drl``
    Actor-critic (A2C) training, AC-distillation, evaluation protocol.
``repro.nas``
    Gumbel-Softmax machinery, architecture parameters, DNAS search loops.
``repro.accelerator``
    Chunk-based pipelined accelerator template, analytical cost model,
    differentiable accelerator search (DAS), DNNBuilder baseline, FPGA budgets.
``repro.cosearch``
    The A3C-S co-search pipeline (Algorithm 1) and final derivation.
``repro.experiments``
    Harness modules regenerating every table and figure of the paper.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
