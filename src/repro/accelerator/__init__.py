"""Accelerator substrate: design space, cost model, DAS engine, baselines."""

from .analysis import (
    RooflinePoint,
    bottleneck_report,
    compare_accelerators,
    dataflow_sweep,
    roofline_analysis,
)
from .cost_model import AcceleratorCostModel, AcceleratorMetrics, LayerCost
from .das import DASConfig, DASResult, DifferentiableAcceleratorSearch
from .dataflow import TrafficEstimate, estimate_layer_traffic, noc_efficiency, pe_utilization, tile_counts
from .design_space import (
    AcceleratorConfig,
    AcceleratorDesignSpace,
    BUFFER_KB_CHOICES,
    BUFFER_SPLIT_CHOICES,
    ChunkConfig,
    DATAFLOW_CHOICES,
    LOOP_ORDER_CHOICES,
    NOC_CHOICES,
    NUM_CHUNK_CHOICES,
    PE_ARRAY_CHOICES,
    TILE_CHANNEL_CHOICES,
    TILE_SPATIAL_CHOICES,
)
from .dnnbuilder import DNNBuilderAccelerator, build_dnnbuilder_config
from .fpga import DEVICES, FPGADevice, ULTRA96, ZC706, ZCU102, get_device
from .predictor import PerformancePredictor, config_fingerprint, workload_fingerprint
from .template import ChunkPipelineAccelerator, balanced_layer_assignment
from .workload import LayerWorkload, extract_workload, total_macs, total_weight_bytes

__all__ = [
    "RooflinePoint",
    "roofline_analysis",
    "bottleneck_report",
    "compare_accelerators",
    "dataflow_sweep",
    "AcceleratorCostModel",
    "AcceleratorMetrics",
    "LayerCost",
    "DASConfig",
    "DASResult",
    "DifferentiableAcceleratorSearch",
    "TrafficEstimate",
    "estimate_layer_traffic",
    "noc_efficiency",
    "pe_utilization",
    "tile_counts",
    "AcceleratorConfig",
    "AcceleratorDesignSpace",
    "ChunkConfig",
    "PE_ARRAY_CHOICES",
    "NOC_CHOICES",
    "DATAFLOW_CHOICES",
    "BUFFER_KB_CHOICES",
    "BUFFER_SPLIT_CHOICES",
    "TILE_CHANNEL_CHOICES",
    "TILE_SPATIAL_CHOICES",
    "LOOP_ORDER_CHOICES",
    "NUM_CHUNK_CHOICES",
    "DNNBuilderAccelerator",
    "build_dnnbuilder_config",
    "FPGADevice",
    "ZC706",
    "ZCU102",
    "ULTRA96",
    "DEVICES",
    "get_device",
    "PerformancePredictor",
    "workload_fingerprint",
    "config_fingerprint",
    "ChunkPipelineAccelerator",
    "balanced_layer_assignment",
    "LayerWorkload",
    "extract_workload",
    "total_macs",
    "total_weight_bytes",
]
