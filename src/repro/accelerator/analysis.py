"""Accelerator analysis utilities: rooflines, bottleneck reports, comparisons.

These helpers sit on top of the cost model and are what an accelerator
designer would use to understand *why* one searched design beats another:
where each layer sits relative to the device roofline, which pipeline stage
limits throughput, and how two candidate designs differ layer by layer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cost_model import AcceleratorCostModel
from .fpga import ZC706
from .predictor import PerformancePredictor
from .workload import extract_workload

__all__ = ["RooflinePoint", "roofline_analysis", "bottleneck_report", "compare_accelerators", "dataflow_sweep"]


@dataclass(frozen=True)
class RooflinePoint:
    """One layer's position on the device roofline.

    Attributes
    ----------
    name:
        Layer name.
    arithmetic_intensity:
        MACs per DRAM byte actually moved by the chosen dataflow.
    achieved_macs_per_cycle:
        MACs per cycle the layer reaches on its assigned chunk.
    peak_macs_per_cycle:
        Compute roof of the assigned chunk (PEs x NoC efficiency).
    bandwidth_roof:
        Memory-bound roof at this intensity (bytes/cycle x intensity).
    bound:
        ``"compute"`` or ``"memory"``.
    """

    name: str
    arithmetic_intensity: float
    achieved_macs_per_cycle: float
    peak_macs_per_cycle: float
    bandwidth_roof: float
    bound: str

    @property
    def efficiency(self):
        """Achieved fraction of the applicable roof."""
        roof = min(self.peak_macs_per_cycle, self.bandwidth_roof)
        return self.achieved_macs_per_cycle / max(roof, 1e-12)


def roofline_analysis(network_or_workloads, config, device=ZC706):
    """Roofline placement of every layer of a network on an accelerator config."""
    model = AcceleratorCostModel(device=device)
    workloads = PerformancePredictor._coerce(network_or_workloads)
    metrics = model.evaluate(workloads, config)
    bandwidth_share = 1.0 / config.num_chunks
    bytes_per_cycle = device.bytes_per_cycle * bandwidth_share

    points = []
    for workload, cost in zip(workloads, metrics.layer_costs):
        chunk = config.chunks[cost.chunk_index]
        from .dataflow import noc_efficiency

        peak = chunk.num_pes * noc_efficiency(chunk.noc, chunk.num_pes)
        intensity = workload.macs / max(cost.dram_bytes, 1e-12)
        achieved = workload.macs / max(cost.latency_cycles, 1e-12)
        points.append(
            RooflinePoint(
                name=workload.name,
                arithmetic_intensity=intensity,
                achieved_macs_per_cycle=achieved,
                peak_macs_per_cycle=peak,
                bandwidth_roof=bytes_per_cycle * intensity,
                bound=cost.bound,
            )
        )
    return points


def bottleneck_report(network_or_workloads, config, device=ZC706, top_k=5):
    """The ``top_k`` layers contributing most to the bottleneck chunk's latency.

    Returns a dict with the bottleneck chunk index, its share of the pipeline
    interval, and the dominating layers (name, cycles, fraction of the chunk).
    """
    model = AcceleratorCostModel(device=device)
    workloads = PerformancePredictor._coerce(network_or_workloads)
    metrics = model.evaluate(workloads, config)
    chunk_index = metrics.bottleneck_chunk
    chunk_cycles = metrics.chunk_cycles[chunk_index]
    layers = [cost for cost in metrics.layer_costs if cost.chunk_index == chunk_index]
    layers.sort(key=lambda cost: cost.latency_cycles, reverse=True)
    return {
        "bottleneck_chunk": chunk_index,
        "chunk_cycles": chunk_cycles,
        "fps": metrics.fps,
        "dominant_layers": [
            {
                "name": cost.name,
                "cycles": cost.latency_cycles,
                "fraction_of_chunk": cost.latency_cycles / max(chunk_cycles, 1e-12),
                "bound": cost.bound,
            }
            for cost in layers[:top_k]
        ],
    }


def compare_accelerators(network_or_workloads, configs, device=ZC706, labels=None):
    """Evaluate several accelerator configs on one network, side by side.

    Parameters
    ----------
    configs:
        List of :class:`AcceleratorConfig`.
    labels:
        Optional names (defaults to ``config0``, ``config1``, ...).

    Returns
    -------
    rows:
        One dict per config with FPS, latency, resources and feasibility,
        plus the FPS ratio relative to the first config.
    """
    model = AcceleratorCostModel(device=device)
    workloads = PerformancePredictor._coerce(network_or_workloads)
    labels = list(labels) if labels is not None else ["config{}".format(i) for i in range(len(configs))]
    if len(labels) != len(configs):
        raise ValueError("labels and configs must have the same length")
    rows = []
    reference_fps = None
    for label, config in zip(labels, configs):
        metrics = model.evaluate(workloads, config)
        if reference_fps is None:
            reference_fps = metrics.fps
        rows.append(
            {
                "label": label,
                "fps": metrics.fps,
                "latency_ms": metrics.latency_ms,
                "dsp": metrics.dsp_used,
                "bram_kb": metrics.bram_kb_used,
                "energy_mj": metrics.energy_mj,
                "feasible": metrics.feasible,
                "fps_vs_first": metrics.fps / max(reference_fps, 1e-12),
            }
        )
    return rows


def dataflow_sweep(network_or_workloads, base_config, device=ZC706):
    """Evaluate the same accelerator with each of the three dataflows.

    Keeps everything else in ``base_config`` fixed and swaps the dataflow of
    every chunk, returning ``{dataflow: fps}`` — the classic dataflow study
    the chunk template is designed to expose.
    """
    import dataclasses

    from .design_space import DATAFLOW_CHOICES

    model = AcceleratorCostModel(device=device)
    workloads = PerformancePredictor._coerce(network_or_workloads)
    results = {}
    for dataflow in DATAFLOW_CHOICES:
        chunks = [dataclasses.replace(chunk, dataflow=dataflow) for chunk in base_config.chunks]
        config = dataclasses.replace(base_config, chunks=chunks)
        results[dataflow] = model.evaluate(workloads, config).fps
    return results
