"""Analytical accelerator performance / resource model.

This is the reproduction's stand-in for the DNN-Chip Predictor [25] /
AutoDNNchip [13] analytical models the paper uses during search and for the
Vivado-HLS FPS measurements it reports:

* per-layer latency = max(compute cycles, memory cycles) assuming
  double-buffered overlap of computation and DRAM transfers,
* chunk latency = sum of its layers' latencies (layers run sequentially
  within a chunk),
* pipelined throughput = clock / slowest-chunk latency (chunks form a
  pipeline over consecutive frames),
* resources: DSPs = PEs per chunk (1 MAC/DSP) + NoC overhead, BRAM = buffers,
* a quadratic penalty term for configurations exceeding the device budget so
  the differentiable search is steered back into the feasible region.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .dataflow import estimate_layer_traffic, noc_efficiency, pe_utilization
from .design_space import AcceleratorConfig
from .fpga import ZC706
from .workload import extract_workload

__all__ = ["LayerCost", "AcceleratorMetrics", "AcceleratorCostModel"]

#: Energy per operation, relative units (DRAM access is ~100x a MAC).
_ENERGY_PER_MAC = 1.0
_ENERGY_PER_DRAM_BYTE = 100.0
_ENERGY_PER_BUFFER_BYTE = 3.0


@dataclass(frozen=True)
class LayerCost:
    """Cost of one layer executed on its assigned chunk."""

    name: str
    chunk_index: int
    compute_cycles: float
    memory_cycles: float
    dram_bytes: float
    utilization: float

    @property
    def latency_cycles(self):
        """Double-buffered latency: the slower of compute and memory."""
        return max(self.compute_cycles, self.memory_cycles)

    @property
    def bound(self):
        """Whether the layer is compute- or memory-bound."""
        return "compute" if self.compute_cycles >= self.memory_cycles else "memory"


@dataclass
class AcceleratorMetrics:
    """Full evaluation of one accelerator configuration on one network."""

    fps: float
    latency_ms: float
    throughput_macs_per_s: float
    dsp_used: int
    bram_kb_used: float
    energy_mj: float
    feasible: bool
    resource_penalty: float
    layer_costs: list = field(default_factory=list)
    chunk_cycles: list = field(default_factory=list)

    @property
    def bottleneck_chunk(self):
        """Index of the pipeline chunk limiting throughput."""
        if not self.chunk_cycles:
            return 0
        return int(np.argmax(self.chunk_cycles))

    def cost(self, latency_weight=1.0, energy_weight=0.0, objective="latency"):
        """Scalar hardware cost used as ``L_cost`` during search (lower is better).

        ``objective`` selects the primary term: ``"latency"`` (end-to-end
        latency in ms), ``"fps"`` (the inverse pipeline throughput, i.e. the
        slowest chunk — what the paper's FPS metric optimises), or ``"edp"``
        (energy-delay product).  The resource-overshoot penalty multiplies the
        whole cost so infeasible designs are always dominated.
        """
        if objective == "fps":
            primary = 1000.0 / max(self.fps, 1e-9)  # ms per frame at steady state
        elif objective == "edp":
            primary = self.latency_ms * self.energy_mj
        else:
            primary = self.latency_ms
        cost = latency_weight * primary + energy_weight * self.energy_mj
        return cost * (1.0 + self.resource_penalty)

    def summary(self):
        """One-line human readable summary."""
        return (
            "FPS={:.1f} latency={:.3f}ms DSP={} BRAM={:.0f}KB energy={:.2f}mJ feasible={}".format(
                self.fps, self.latency_ms, self.dsp_used, self.bram_kb_used, self.energy_mj, self.feasible
            )
        )


class AcceleratorCostModel:
    """Analytical performance predictor for the chunk-based pipeline template.

    Parameters
    ----------
    device:
        The :class:`~repro.accelerator.fpga.FPGADevice` resource budget
        (defaults to the paper's ZC706).
    dsp_per_pe:
        DSP slices consumed per processing element (1 MAC/cycle each).
    """

    def __init__(self, device=ZC706, dsp_per_pe=1.0):
        self.device = device
        self.dsp_per_pe = float(dsp_per_pe)

    # ------------------------------------------------------------------ #
    # Per-layer cost
    # ------------------------------------------------------------------ #
    def layer_cost(self, layer, chunk, chunk_index=0, bandwidth_share=1.0):
        """Cost of one :class:`~repro.accelerator.workload.LayerWorkload` on ``chunk``."""
        utilization = pe_utilization(layer, chunk)
        efficiency = noc_efficiency(chunk.noc, chunk.num_pes)
        effective_macs_per_cycle = max(1e-6, chunk.num_pes * utilization * efficiency)
        compute_cycles = layer.macs / effective_macs_per_cycle

        traffic = estimate_layer_traffic(layer, chunk)
        bytes_per_cycle = max(1e-6, self.device.bytes_per_cycle * bandwidth_share)
        memory_cycles = traffic.total_bytes / bytes_per_cycle

        return LayerCost(
            name=layer.name,
            chunk_index=chunk_index,
            compute_cycles=compute_cycles,
            memory_cycles=memory_cycles,
            dram_bytes=traffic.total_bytes,
            utilization=utilization,
        )

    # ------------------------------------------------------------------ #
    # Resources
    # ------------------------------------------------------------------ #
    def chunk_resources(self, chunk):
        """``(dsp, bram_kb)`` consumed by one chunk."""
        noc_overhead = {"systolic": 1.0, "broadcast": 1.05, "multicast": 1.1}[chunk.noc]
        dsp = int(np.ceil(chunk.num_pes * self.dsp_per_pe * noc_overhead))
        return dsp, chunk.buffer_kb

    def resource_usage(self, config):
        """Total ``(dsp, bram_kb)`` of an accelerator configuration."""
        dsp_total = 0
        bram_total = 0.0
        for chunk in config.chunks:
            dsp, bram = self.chunk_resources(chunk)
            dsp_total += dsp
            bram_total += bram
        return dsp_total, bram_total

    def resource_penalty(self, dsp_used, bram_used):
        """Quadratic overshoot penalty steering the search into the budget."""
        dsp_over = max(0.0, dsp_used / self.device.dsp_count - 1.0)
        bram_over = max(0.0, bram_used / self.device.bram_kb - 1.0)
        return 10.0 * (dsp_over ** 2 + bram_over ** 2) + 5.0 * (dsp_over + bram_over)

    # ------------------------------------------------------------------ #
    # Whole-network evaluation
    # ------------------------------------------------------------------ #
    def evaluate(self, network_or_workloads, config):
        """Evaluate ``config`` on a network, returning :class:`AcceleratorMetrics`.

        ``network_or_workloads`` may be a backbone object (anything exposing
        ``layer_specs()``), a list of layer-spec dicts, or an already extracted
        list of :class:`~repro.accelerator.workload.LayerWorkload`.
        """
        workloads = self._coerce_workloads(network_or_workloads)
        if not isinstance(config, AcceleratorConfig):
            raise TypeError("config must be an AcceleratorConfig")
        num_chunks = config.num_chunks
        # Pipeline chunks stream from DRAM concurrently -> share the bandwidth.
        bandwidth_share = 1.0 / num_chunks

        layer_costs = []
        chunk_cycles = np.zeros(num_chunks)
        dram_bytes_total = 0.0
        macs_total = 0
        for index, layer in enumerate(workloads):
            chunk_index = config.chunk_of_layer(index) if config.layer_assignment else index % num_chunks
            chunk = config.chunks[chunk_index]
            cost = self.layer_cost(layer, chunk, chunk_index, bandwidth_share)
            layer_costs.append(cost)
            chunk_cycles[chunk_index] += cost.latency_cycles
            dram_bytes_total += cost.dram_bytes
            macs_total += layer.macs

        clock_hz = self.device.frequency_mhz * 1e6
        total_cycles = float(chunk_cycles.sum())
        slowest = float(chunk_cycles.max()) if num_chunks > 0 else total_cycles
        latency_ms = total_cycles / clock_hz * 1e3
        fps = clock_hz / max(slowest, 1e-6)

        dsp_used, bram_used = self.resource_usage(config)
        penalty = self.resource_penalty(dsp_used, bram_used)
        feasible = penalty == 0.0

        # Relative energy: MACs + DRAM traffic + buffer traffic (proportional to MACs).
        energy = (
            macs_total * _ENERGY_PER_MAC
            + dram_bytes_total * _ENERGY_PER_DRAM_BYTE
            + macs_total * _ENERGY_PER_BUFFER_BYTE
        ) * 1e-9  # arbitrary mJ-like scaling

        throughput = macs_total * fps

        return AcceleratorMetrics(
            fps=fps,
            latency_ms=latency_ms,
            throughput_macs_per_s=throughput,
            dsp_used=dsp_used,
            bram_kb_used=bram_used,
            energy_mj=energy,
            feasible=feasible,
            resource_penalty=penalty,
            layer_costs=layer_costs,
            chunk_cycles=list(chunk_cycles),
        )

    def layer_latency_table(self, network_or_workloads, config):
        """Per-layer latency in cycles on ``config`` (used by the Eq. 8 penalty)."""
        metrics = self.evaluate(network_or_workloads, config)
        return {cost.name: cost.latency_cycles for cost in metrics.layer_costs}

    @staticmethod
    def _coerce_workloads(network_or_workloads):
        if hasattr(network_or_workloads, "layer_specs"):
            return extract_workload(network_or_workloads)
        items = list(network_or_workloads)
        if items and isinstance(items[0], dict):
            return extract_workload(items)
        return items
