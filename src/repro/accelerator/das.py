"""Differentiable Accelerator Search (DAS) engine — paper Eq. 9.

Every accelerator design knob (PE array, NoC, dataflow, buffers, tiling, loop
order, layer allocation, chunk count) is a categorical choice.  DAS keeps one
logit vector ``phi_m`` per knob, samples a complete accelerator with hard
Gumbel-Softmax on every knob, evaluates the sampled accelerator with the
analytical cost model, and penalises each sampled choice with the *overall*
hardware cost through the Gumbel relaxation:

    L = Lcost(hw({GS_hard(phi_m)}), net) * sum_m GS(phi_m)[sampled_m]

so the gradient w.r.t. ``phi_m`` pushes probability away from choices that
participated in expensive accelerators and towards choices seen in cheap ones.
A moving-average cost baseline is subtracted to reduce the variance of this
estimator (the standard trick for score-function-style updates), which keeps
the search stable without changing its fixed points.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nas.gumbel import TemperatureSchedule, hard_gumbel_softmax
from ..nn import Adam, Parameter, Tensor
from ..nn import functional as F
from .design_space import AcceleratorDesignSpace
from .fpga import ZC706
from .predictor import PerformancePredictor

__all__ = ["DASConfig", "DASResult", "DifferentiableAcceleratorSearch"]


@dataclass
class DASConfig:
    """Hyper-parameters of the differentiable accelerator search."""

    learning_rate: float = 0.05
    temperature_initial: float = 5.0
    temperature_decay: float = 0.98
    temperature_interval: int = 50
    max_chunks: int = 4
    objective: str = "fps"
    latency_weight: float = 1.0
    energy_weight: float = 0.0
    baseline_momentum: float = 0.9
    seed: int = 0


@dataclass
class DASResult:
    """Outcome of a DAS run."""

    best_config: object
    best_metrics: object
    best_cost: float
    cost_history: list
    steps: int

    @property
    def fps(self):
        """FPS of the best accelerator found."""
        return self.best_metrics.fps


class DifferentiableAcceleratorSearch:
    """Search the accelerator design space for a fixed network.

    Parameters
    ----------
    network:
        Backbone / layer-spec list / workload list to accelerate.
    device:
        FPGA resource budget (paper: ZC706, 900 DSPs).
    config:
        :class:`DASConfig` hyper-parameters.
    """

    def __init__(self, network, device=ZC706, config=None):
        self.workloads = PerformancePredictor._coerce(network)
        self.device = device
        self.config = config if config is not None else DASConfig()
        self.space = AcceleratorDesignSpace(
            num_layers=len(self.workloads), max_chunks=self.config.max_chunks
        )
        self.predictor = PerformancePredictor(device=device)
        self.rng = np.random.default_rng(self.config.seed)

        # One logit Parameter per categorical dimension.
        self.phi = {
            name: Parameter(np.zeros(len(choices)))
            for name, choices in self.space.dimensions()
        }
        self.optimizer = Adam(list(self.phi.values()), lr=self.config.learning_rate)
        self.temperature = TemperatureSchedule(
            initial=self.config.temperature_initial,
            decay=self.config.temperature_decay,
            decay_interval=self.config.temperature_interval,
        )
        self._baseline = None
        self.steps_taken = 0

    # ------------------------------------------------------------------ #
    # Checkpointing (the co-search bundles this with the searcher state)
    # ------------------------------------------------------------------ #
    def state_dict(self):
        """Everything needed to resume the accelerator search bit-identically.

        Returns a flat ``{name: ndarray}`` dict: per-dimension logits
        (``phi.<name>``), the Adam state, the RNG stream (json-encoded, as a
        0-d unicode array), the step counter driving the temperature
        schedule, and the moving-average cost baseline when one exists.
        """
        import json

        state = {
            "steps_taken": np.int64(self.steps_taken),
            "rng": np.asarray(json.dumps(self.rng.bit_generator.state)),
        }
        if self._baseline is not None:
            state["baseline"] = np.float64(self._baseline)
        for name, logits in self.phi.items():
            state["phi." + name] = logits.data.copy()
        for key, value in self.optimizer.state_dict().items():
            state["optim." + key] = value
        return state

    def load_state_dict(self, state):
        """Restore :meth:`state_dict` output (in place)."""
        import json

        self.steps_taken = int(state["steps_taken"])
        self.rng = np.random.default_rng()
        self.rng.bit_generator.state = json.loads(str(np.asarray(state["rng"]).item()))
        self._baseline = float(state["baseline"]) if "baseline" in state else None
        for name, logits in self.phi.items():
            logits.data[...] = state["phi." + name]
            logits.bump_version()
        self.optimizer.load_state_dict(
            {k[len("optim."):]: v for k, v in state.items() if k.startswith("optim.")}
        )
        return self

    # ------------------------------------------------------------------ #
    # Sampling and evaluation
    # ------------------------------------------------------------------ #
    def sample(self, temperature):
        """Hard-Gumbel sample every dimension.

        Returns
        -------
        indices:
            ``{dimension: sampled index}``.
        gate_terms:
            ``{dimension: Tensor}`` of the soft probability of the sampled
            choice (the differentiable relaxation used in the loss).
        """
        indices = {}
        gate_terms = {}
        for name, logits in self.phi.items():
            gates, soft, index = hard_gumbel_softmax(logits, temperature, self.rng)
            indices[name] = index
            gate_terms[name] = soft[index]
        return indices, gate_terms

    def evaluate_indices(self, indices):
        """Decode ``indices`` into a configuration and run the predictor."""
        config = self.space.decode(indices)
        metrics = self.predictor.predict(self.workloads, config)
        cost = metrics.cost(
            latency_weight=self.config.latency_weight,
            energy_weight=self.config.energy_weight,
            objective=self.config.objective,
        )
        return config, metrics, cost

    # ------------------------------------------------------------------ #
    # One search step (usable standalone or inside the A3C-S co-search)
    # ------------------------------------------------------------------ #
    def step(self):
        """One DAS update: sample, evaluate, penalise the sampled choices.

        Returns ``(config, metrics, cost)`` of the accelerator sampled at this
        step, so the caller (the co-search loop) can use it as ``hw(phi*)``.
        """
        temperature = self.temperature.value(self.steps_taken)
        indices, gate_terms = self.sample(temperature)
        return self._apply_update(indices, gate_terms)

    def _apply_update(self, indices, gate_terms):
        """Evaluate the sampled design and apply the relaxed-penalty update."""
        config, metrics, cost = self.evaluate_indices(indices)

        # Variance-reduced score: (cost - baseline) * sum of sampled-path probabilities.
        if self._baseline is None:
            self._baseline = cost
        advantage = cost - self._baseline
        self._baseline = (
            self.config.baseline_momentum * self._baseline
            + (1.0 - self.config.baseline_momentum) * cost
        )

        relaxation = None
        for term in gate_terms.values():
            relaxation = term if relaxation is None else relaxation + term
        loss = relaxation * float(advantage)

        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.step()
        self.steps_taken += 1
        return config, metrics, cost

    # ------------------------------------------------------------------ #
    # Full search
    # ------------------------------------------------------------------ #
    def search(self, steps=200, track_best=True, refine=True, refine_passes=2, warm_start=True):
        """Run ``steps`` DAS updates and return a :class:`DASResult`.

        The best configuration is tracked by evaluated cost over all sampled
        accelerators plus the final arg-max derivation.  When ``refine`` is
        true, the derived design point is additionally polished with a greedy
        per-knob sweep (coordinate descent) using the analytical predictor —
        the sampled-gradient phase navigates the joint space, the sweep
        removes residual sampling noise from the final design.  ``warm_start``
        additionally evaluates a small set of uniform seed designs up front.
        """
        best_cost = np.inf
        best_config = None
        best_metrics = None
        best_indices = None
        history = []
        if warm_start:
            for indices in self.warm_start_candidates():
                config, metrics, cost = self.evaluate_indices(indices)
                if metrics.feasible and cost < best_cost:
                    best_cost, best_config, best_metrics = cost, config, metrics
                    best_indices = dict(indices)
        for _ in range(steps):
            temperature = self.temperature.value(self.steps_taken)
            indices, gate_terms = self.sample(temperature)
            config, metrics, cost = self._apply_update(indices, gate_terms)
            history.append(cost)
            if track_best and metrics.feasible and cost < best_cost:
                best_cost, best_config, best_metrics = cost, config, metrics
                best_indices = dict(indices)
        # Always consider the arg-max derivation too.
        derived_indices = self.derive_indices()
        config, metrics, cost = self.evaluate_indices(derived_indices)
        if best_config is None or (metrics.feasible and cost < best_cost):
            best_cost, best_config, best_metrics = cost, config, metrics
            best_indices = dict(derived_indices)
        if refine and best_indices is not None:
            best_indices, best_config, best_metrics, best_cost = self.refine(
                best_indices, max_passes=refine_passes
            )
        return DASResult(
            best_config=best_config,
            best_metrics=best_metrics,
            best_cost=float(best_cost),
            cost_history=history,
            steps=self.steps_taken,
        )

    def refine(self, indices, max_passes=2):
        """Greedy coordinate-descent sweep over the design knobs.

        Starting from ``indices``, every dimension is swept through all of its
        choices (holding the others fixed) and the best feasible choice is
        kept; passes repeat until no knob changes or ``max_passes`` is hit.

        The ``num_chunks`` knob additionally gets a *replication* macro move:
        when proposing more pipeline chunks than are currently active, the
        newly enabled chunks inherit chunk 0's parameters.  Without this, the
        parameters of currently unused chunks are "don't care" values that
        make deeper pipelines look spuriously bad and trap the sweep in
        shallow-pipeline local optima.
        """
        best_indices = dict(indices)
        best_config, best_metrics, best_cost = self.evaluate_indices(best_indices)
        for _ in range(max_passes):
            improved = False
            for name, choices in self.space.dimensions():
                current_choice = best_indices[name]
                for choice_index in range(len(choices)):
                    if choice_index == current_choice:
                        continue
                    candidates = [dict(best_indices)]
                    candidates[0][name] = choice_index
                    if name == "num_chunks":
                        candidates.append(
                            self._replicate_chunk0(dict(best_indices), choice_index)
                        )
                    for candidate in candidates:
                        config, metrics, cost = self.evaluate_indices(candidate)
                        if cost < best_cost:
                            best_indices, best_config, best_metrics, best_cost = (
                                candidate,
                                config,
                                metrics,
                                cost,
                            )
                            improved = True
            if not improved:
                break
        return best_indices, best_config, best_metrics, best_cost

    def _replicate_chunk0(self, indices, num_chunks_choice):
        """Candidate with ``num_chunks`` changed and chunk 0 copied to all chunks."""
        indices = dict(indices)
        indices["num_chunks"] = num_chunks_choice
        chunk0 = {
            name.split(".", 1)[1]: indices[name]
            for name in indices
            if name.startswith("chunk0.")
        }
        for chunk_index in range(1, self.space.max_chunks):
            for param, value in chunk0.items():
                indices["chunk{}.{}".format(chunk_index, param)] = value
        return indices

    def warm_start_candidates(self):
        """Heuristic seed designs evaluated before the gradient phase.

        For every pipeline depth and every PE-array shape, a uniform design
        (all chunks identical, MAC-balanced contiguous layer assignment) is
        proposed.  These seeds are ordinary members of the design space; they
        simply ensure the tracked best never starts worse than a sensible
        hand design, which mirrors how accelerator searches are warm-started
        in practice.
        """
        from .template import balanced_layer_assignment

        lookup = dict(self.space.dimensions())
        pe_choices = lookup["chunk0.pe_array"]
        chunk_choices = lookup["num_chunks"]
        candidates = []
        for chunk_choice_index, num_chunks in enumerate(chunk_choices):
            assignment = balanced_layer_assignment(self.workloads, num_chunks)
            for pe_index in range(len(pe_choices)):
                indices = self.space.default_indices()
                indices["num_chunks"] = chunk_choice_index
                for chunk_index in range(self.space.max_chunks):
                    indices["chunk{}.pe_array".format(chunk_index)] = pe_index
                for layer_index, chunk in enumerate(assignment):
                    indices["layer{}.chunk".format(layer_index)] = chunk
                candidates.append(indices)
        return candidates

    def derive_indices(self):
        """Arg-max choice per dimension (the final derived accelerator)."""
        return {name: int(np.argmax(logits.data)) for name, logits in self.phi.items()}

    def derive_config(self):
        """Decode the arg-max accelerator configuration."""
        return self.space.decode(self.derive_indices())

    def probabilities(self):
        """Softmax probabilities per dimension (for inspection / tests)."""
        return {name: F.softmax(logits, axis=-1).data for name, logits in self.phi.items()}
