"""Dataflow analysis: tiling, on-chip reuse, and DRAM traffic estimation.

This implements the analytical part of the DNN-Chip-Predictor-style cost model
the paper relies on: given one layer's workload and one chunk's configuration
(PE array, buffers, tile sizes, loop order, dataflow), estimate

* how many DRAM bytes must be moved for inputs, weights and outputs, and
* how efficiently the PE array is utilised,

which together determine whether the layer is compute- or memory-bound.

The reuse model follows the standard taxonomy:

* **weight stationary** — weights are fetched once; inputs are re-fetched for
  every output-channel tile; partial sums are spilled when the input-channel
  loop is tiled.
* **output stationary** — outputs are written exactly once; weights are
  re-fetched for every spatial tile; inputs re-fetched per output-channel tile.
* **row stationary** — a balanced scheme that splits the re-fetch overhead
  between the three operands (Eyeriss-style).

On top of the dataflow-level reuse, a tile that does not fit into its assigned
buffer partition incurs a proportional re-fetch factor, and the loop order
determines which operand benefits from the outermost-loop reuse.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .workload import BYTES_PER_VALUE

__all__ = ["TrafficEstimate", "estimate_layer_traffic", "pe_utilization", "tile_counts", "noc_efficiency"]


@dataclass(frozen=True)
class TrafficEstimate:
    """DRAM traffic breakdown (bytes) for one layer on one chunk."""

    input_bytes: float
    weight_bytes: float
    output_bytes: float

    @property
    def total_bytes(self):
        return self.input_bytes + self.weight_bytes + self.output_bytes


def tile_counts(layer, chunk):
    """Number of tiles along the output-channel / input-channel / spatial loops."""
    tiles_oc = max(1, math.ceil(layer.out_channels / chunk.tile_oc))
    effective_ic = max(1, layer.in_channels // layer.groups)
    tiles_ic = max(1, math.ceil(effective_ic / chunk.tile_ic))
    tiles_sp = max(1, math.ceil(layer.output_size / chunk.tile_spatial)) ** 2
    return tiles_oc, tiles_ic, tiles_sp


def _buffer_refetch_factor(tile_bytes, buffer_kb):
    """Extra re-fetches needed when a tile exceeds its buffer partition."""
    capacity = buffer_kb * 1024.0
    if capacity <= 0:
        return 4.0
    return max(1.0, tile_bytes / capacity)


def _loop_order_bonus(loop_order, operand):
    """Reuse bonus for the operand kept in the outermost loop position.

    Keeping an operand's loop outermost means that operand's working set stays
    resident longest; the corresponding traffic is scaled by this factor.
    """
    outer = loop_order[0]
    mapping = {"oc": "weight", "ic": "input", "sp": "output"}
    return 0.75 if mapping.get(outer) == operand else 1.0


def estimate_layer_traffic(layer, chunk):
    """Estimate DRAM traffic for ``layer`` executed on ``chunk``.

    Returns a :class:`TrafficEstimate`.  FC layers are treated as 1x1 convs
    with a single spatial position, which the formulas below handle naturally.
    """
    tiles_oc, tiles_ic, tiles_sp = tile_counts(layer, chunk)

    # Tile footprints in bytes.
    weight_tile_bytes = chunk.tile_oc * chunk.tile_ic * layer.kernel_size ** 2 * BYTES_PER_VALUE
    input_tile_bytes = chunk.tile_ic * (chunk.tile_spatial + layer.kernel_size - 1) ** 2 * BYTES_PER_VALUE
    output_tile_bytes = chunk.tile_oc * chunk.tile_spatial ** 2 * BYTES_PER_VALUE

    weight_refetch = _buffer_refetch_factor(weight_tile_bytes, chunk.weight_buffer_kb)
    input_refetch = _buffer_refetch_factor(input_tile_bytes, chunk.input_buffer_kb)
    output_refetch = _buffer_refetch_factor(output_tile_bytes, chunk.output_buffer_kb)

    if chunk.dataflow == "weight_stationary":
        weight_traffic = layer.weight_bytes * weight_refetch
        input_traffic = layer.input_bytes * tiles_oc * input_refetch
        # Partial sums are read+written once per extra input-channel tile.
        output_traffic = layer.output_bytes * max(1, 2 * tiles_ic - 1) * output_refetch
    elif chunk.dataflow == "output_stationary":
        output_traffic = layer.output_bytes * output_refetch
        input_traffic = layer.input_bytes * tiles_oc * input_refetch
        weight_traffic = layer.weight_bytes * tiles_sp * weight_refetch
    elif chunk.dataflow == "row_stationary":
        # Balanced reuse: each operand pays a square-root share of the re-fetches.
        weight_traffic = layer.weight_bytes * math.sqrt(tiles_sp) * weight_refetch
        input_traffic = layer.input_bytes * math.sqrt(tiles_oc) * input_refetch
        output_traffic = layer.output_bytes * max(1.0, tiles_ic / 2.0) * output_refetch
    else:
        raise ValueError("unknown dataflow {!r}".format(chunk.dataflow))

    weight_traffic *= _loop_order_bonus(chunk.loop_order, "weight")
    input_traffic *= _loop_order_bonus(chunk.loop_order, "input")
    output_traffic *= _loop_order_bonus(chunk.loop_order, "output")

    # Traffic can never be lower than touching every operand exactly once.
    return TrafficEstimate(
        input_bytes=max(input_traffic, layer.input_bytes),
        weight_bytes=max(weight_traffic, layer.weight_bytes),
        output_bytes=max(output_traffic, layer.output_bytes),
    )


def noc_efficiency(noc, num_pes):
    """Effective MAC efficiency of the PE inter-connection.

    Broadcast networks deliver operands to every PE each cycle but scale
    poorly with array size; systolic arrays have near-perfect scaling with a
    small pipeline fill overhead; multicast sits in between with a modest
    constant overhead.
    """
    if noc == "broadcast":
        return max(0.55, 0.98 - 1.5e-4 * num_pes)
    if noc == "systolic":
        return 0.92
    if noc == "multicast":
        return 0.88
    raise ValueError("unknown NoC type {!r}".format(noc))


def pe_utilization(layer, chunk):
    """Fraction of PEs doing useful work for this layer.

    The PE rows map to output channels and the PE columns map to the spatial /
    input-channel dimension.  A layer whose dimensions are smaller than the
    array (or a depthwise layer, whose effective input channels are 1) cannot
    fill the array, which is the main reason very large PE arrays do not
    always win and the searched accelerator is layer-dependent.
    """
    # Rows: output-channel mapping.
    rows_busy = min(chunk.pe_rows, layer.out_channels, chunk.tile_oc)
    row_util = rows_busy / chunk.pe_rows

    # Columns: spatial x input-channel mapping.
    effective_ic = max(1, layer.in_channels // layer.groups)
    spatial_positions = layer.output_size ** 2
    cols_busy = min(chunk.pe_cols, spatial_positions * min(effective_ic, chunk.tile_ic))
    col_util = cols_busy / chunk.pe_cols

    return max(1e-3, row_util * col_util)
