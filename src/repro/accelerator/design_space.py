"""The searchable accelerator design space of A3C-S.

The paper's accelerator template (Sec. IV-A) is a chunk-based pipelined
micro-architecture: the network's layers are partitioned onto a small number
of sub-accelerators ("chunks") that operate as pipeline stages.  The
searchable knobs, mirroring Sec. V-A, are

1. **PE settings** — the PE-array shape and the PE inter-connection (NoC),
2. **buffer management** — the per-chunk on-chip buffer size and how it is
   split between input, weight, and output buffers,
3. **tiling & scheduling** — channel / spatial tile sizes and the loop order
   of the MAC computation (the dataflow),
4. **layer allocation** — which pipeline chunk each layer is assigned to.

Every knob is categorical, so the whole space is a product of finite choice
lists; :meth:`AcceleratorDesignSpace.space_size` exceeds the 10^27 figure
quoted in the paper once layer allocation is included.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "ChunkConfig",
    "AcceleratorConfig",
    "AcceleratorDesignSpace",
    "PE_ARRAY_CHOICES",
    "NOC_CHOICES",
    "DATAFLOW_CHOICES",
    "BUFFER_KB_CHOICES",
    "BUFFER_SPLIT_CHOICES",
    "TILE_CHANNEL_CHOICES",
    "TILE_SPATIAL_CHOICES",
    "LOOP_ORDER_CHOICES",
    "NUM_CHUNK_CHOICES",
]

#: PE-array shapes (rows x columns).  Rows map to output channels, columns to
#: spatial positions / input channels depending on the dataflow.  Narrow-and-
#: wide shapes matter because DRL backbones have few channels but large
#: feature maps, so tall arrays under-utilise their rows.
PE_ARRAY_CHOICES = (
    (4, 4),
    (4, 16),
    (8, 4),
    (8, 8),
    (8, 16),
    (8, 32),
    (16, 8),
    (16, 16),
    (16, 32),
    (32, 8),
    (32, 32),
)

#: PE inter-connection styles (network-on-chip).
NOC_CHOICES = ("systolic", "broadcast", "multicast")

#: MAC scheduling (dataflow) styles, in the Eyeriss taxonomy.
DATAFLOW_CHOICES = ("weight_stationary", "output_stationary", "row_stationary")

#: Total per-chunk on-chip buffer capacity in KB.
BUFFER_KB_CHOICES = (64, 128, 256, 512)

#: Fractions of the chunk buffer devoted to (input, weight, output).
BUFFER_SPLIT_CHOICES = (
    (0.25, 0.50, 0.25),
    (0.50, 0.25, 0.25),
    (0.25, 0.25, 0.50),
    (1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0),
)

#: Channel tiling factors (applied to both input- and output-channel loops).
TILE_CHANNEL_CHOICES = (4, 8, 16, 32, 64)

#: Spatial (output feature map) tiling factors.
TILE_SPATIAL_CHOICES = (4, 8, 16, 32)

#: Loop orders of the (output-channel, input-channel, spatial) tile loops.
LOOP_ORDER_CHOICES = (
    ("oc", "ic", "sp"),
    ("oc", "sp", "ic"),
    ("ic", "oc", "sp"),
    ("ic", "sp", "oc"),
    ("sp", "oc", "ic"),
    ("sp", "ic", "oc"),
)

#: Number of pipeline chunks (sub-accelerators).
NUM_CHUNK_CHOICES = (1, 2, 3, 4)

#: Per-chunk parameter names and their choice lists, in a stable order.
CHUNK_PARAMETERS = (
    ("pe_array", PE_ARRAY_CHOICES),
    ("noc", NOC_CHOICES),
    ("dataflow", DATAFLOW_CHOICES),
    ("buffer_kb", BUFFER_KB_CHOICES),
    ("buffer_split", BUFFER_SPLIT_CHOICES),
    ("tile_oc", TILE_CHANNEL_CHOICES),
    ("tile_ic", TILE_CHANNEL_CHOICES),
    ("tile_spatial", TILE_SPATIAL_CHOICES),
    ("loop_order", LOOP_ORDER_CHOICES),
)


@dataclass(frozen=True)
class ChunkConfig:
    """Configuration of one pipeline chunk (sub-accelerator)."""

    pe_rows: int = 16
    pe_cols: int = 16
    noc: str = "systolic"
    dataflow: str = "weight_stationary"
    buffer_kb: float = 256.0
    input_buffer_fraction: float = 0.25
    weight_buffer_fraction: float = 0.5
    output_buffer_fraction: float = 0.25
    tile_oc: int = 16
    tile_ic: int = 16
    tile_spatial: int = 8
    loop_order: tuple = ("oc", "ic", "sp")

    @property
    def num_pes(self):
        """Total number of processing elements in the chunk."""
        return self.pe_rows * self.pe_cols

    @property
    def input_buffer_kb(self):
        return self.buffer_kb * self.input_buffer_fraction

    @property
    def weight_buffer_kb(self):
        return self.buffer_kb * self.weight_buffer_fraction

    @property
    def output_buffer_kb(self):
        return self.buffer_kb * self.output_buffer_fraction

    @classmethod
    def from_choices(cls, pe_array, noc, dataflow, buffer_kb, buffer_split, tile_oc, tile_ic,
                     tile_spatial, loop_order):
        """Build a chunk config from raw choice values (registry order)."""
        return cls(
            pe_rows=pe_array[0],
            pe_cols=pe_array[1],
            noc=noc,
            dataflow=dataflow,
            buffer_kb=float(buffer_kb),
            input_buffer_fraction=buffer_split[0],
            weight_buffer_fraction=buffer_split[1],
            output_buffer_fraction=buffer_split[2],
            tile_oc=tile_oc,
            tile_ic=tile_ic,
            tile_spatial=tile_spatial,
            loop_order=tuple(loop_order),
        )


@dataclass
class AcceleratorConfig:
    """A fully specified accelerator: chunks plus the layer-to-chunk mapping."""

    chunks: list = field(default_factory=lambda: [ChunkConfig()])
    layer_assignment: list = field(default_factory=list)

    @property
    def num_chunks(self):
        return len(self.chunks)

    def chunk_of_layer(self, layer_index):
        """Pipeline chunk index that executes ``layer_index``."""
        if not self.layer_assignment:
            return 0
        return int(self.layer_assignment[layer_index]) % self.num_chunks

    def layers_of_chunk(self, chunk_index, num_layers=None):
        """Indices of the layers assigned to ``chunk_index``."""
        count = num_layers if num_layers is not None else len(self.layer_assignment)
        return [i for i in range(count) if self.chunk_of_layer(i) == chunk_index]

    def describe(self):
        """Human-readable multi-line description used by examples and reports."""
        lines = ["Accelerator with {} chunk(s)".format(self.num_chunks)]
        for index, chunk in enumerate(self.chunks):
            lines.append(
                "  chunk {}: {}x{} PEs ({}), {} dataflow, {:.0f} KB buffers "
                "(I/W/O = {:.0%}/{:.0%}/{:.0%}), tiles oc={} ic={} sp={}, order={}".format(
                    index,
                    chunk.pe_rows,
                    chunk.pe_cols,
                    chunk.noc,
                    chunk.dataflow,
                    chunk.buffer_kb,
                    chunk.input_buffer_fraction,
                    chunk.weight_buffer_fraction,
                    chunk.output_buffer_fraction,
                    chunk.tile_oc,
                    chunk.tile_ic,
                    chunk.tile_spatial,
                    "/".join(chunk.loop_order),
                )
            )
        if self.layer_assignment:
            lines.append("  layer assignment: {}".format(list(self.layer_assignment)))
        return "\n".join(lines)


class AcceleratorDesignSpace:
    """Categorical view of the accelerator search space for a given network.

    Parameters
    ----------
    num_layers:
        Number of layers of the network to be accelerated (defines the layer-
        allocation dimensions).
    max_chunks:
        Maximum number of pipeline chunks considered by the search.

    The space is exposed as an ordered list of named categorical dimensions
    (:meth:`dimensions`), which is exactly what the differentiable accelerator
    search (DAS) engine parameterises with Gumbel-Softmax distributions.
    """

    def __init__(self, num_layers, max_chunks=4):
        if num_layers < 1:
            raise ValueError("num_layers must be positive")
        self.num_layers = int(num_layers)
        self.max_chunks = int(max_chunks)
        self._dimensions = self._build_dimensions()

    # ------------------------------------------------------------------ #
    # Dimension registry
    # ------------------------------------------------------------------ #
    def _build_dimensions(self):
        dims = [("num_chunks", tuple(c for c in NUM_CHUNK_CHOICES if c <= self.max_chunks))]
        for chunk_index in range(self.max_chunks):
            for name, choices in CHUNK_PARAMETERS:
                dims.append(("chunk{}.{}".format(chunk_index, name), tuple(choices)))
        for layer_index in range(self.num_layers):
            dims.append(("layer{}.chunk".format(layer_index), tuple(range(self.max_chunks))))
        return dims

    def dimensions(self):
        """Ordered list of ``(name, choices)`` categorical dimensions."""
        return list(self._dimensions)

    def dimension_sizes(self):
        """List of the number of choices per dimension (same order)."""
        return [len(choices) for _, choices in self._dimensions]

    def num_dimensions(self):
        """Number of categorical dimensions."""
        return len(self._dimensions)

    def space_size(self):
        """Total number of accelerator configurations (the paper quotes > 10^27)."""
        size = 1
        for _, choices in self._dimensions:
            size *= len(choices)
        return size

    # ------------------------------------------------------------------ #
    # Encoding / decoding
    # ------------------------------------------------------------------ #
    def sample_indices(self, rng):
        """Uniformly sample one choice index per dimension."""
        return {
            name: int(rng.integers(len(choices))) for name, choices in self._dimensions
        }

    def random_config(self, rng):
        """Sample a random full accelerator configuration."""
        return self.decode(self.sample_indices(rng))

    def default_indices(self):
        """A reasonable hand-designed starting point (all middle choices)."""
        return {name: len(choices) // 2 for name, choices in self._dimensions}

    def decode(self, indices):
        """Turn a ``{dimension: choice index}`` dict into an :class:`AcceleratorConfig`."""
        lookup = dict(self._dimensions)

        def value(name):
            choices = lookup[name]
            return choices[int(indices[name]) % len(choices)]

        num_chunks = value("num_chunks")
        chunks = []
        for chunk_index in range(num_chunks):
            prefix = "chunk{}.".format(chunk_index)
            chunks.append(
                ChunkConfig.from_choices(
                    pe_array=value(prefix + "pe_array"),
                    noc=value(prefix + "noc"),
                    dataflow=value(prefix + "dataflow"),
                    buffer_kb=value(prefix + "buffer_kb"),
                    buffer_split=value(prefix + "buffer_split"),
                    tile_oc=value(prefix + "tile_oc"),
                    tile_ic=value(prefix + "tile_ic"),
                    tile_spatial=value(prefix + "tile_spatial"),
                    loop_order=value(prefix + "loop_order"),
                )
            )
        assignment = [
            value("layer{}.chunk".format(layer_index)) % num_chunks
            for layer_index in range(self.num_layers)
        ]
        return AcceleratorConfig(chunks=chunks, layer_assignment=assignment)

    def encode_uniform_logits(self):
        """Zero-initialised logits for every dimension (used by DAS)."""
        return {name: np.zeros(len(choices)) for name, choices in self._dimensions}
