"""DNNBuilder-style baseline accelerator (Fig. 3 comparison).

DNNBuilder [26] builds a layer-wise pipelined FPGA accelerator in which every
layer (or group of layers, when the pipeline depth is capped) receives its own
dedicated compute stage, with resources allocated proportionally to each
stage's compute load and a fixed weight-stationary, fine-grained column-based
dataflow.  It does not search dataflows, buffer splits or layer allocations —
which is exactly what A3C-S's DAS engine adds — so this baseline isolates the
benefit of the searched accelerator while using the *same* analytical cost
model for a fair comparison, as in the paper.
"""

from __future__ import annotations

import numpy as np

from .cost_model import AcceleratorCostModel
from .design_space import AcceleratorConfig, ChunkConfig
from .fpga import ZC706
from .workload import extract_workload

__all__ = ["DNNBuilderAccelerator", "build_dnnbuilder_config"]

#: DNNBuilder pipelines at most this many dedicated stages on mid-size FPGAs.
_MAX_STAGES = 4

#: PE-array row options DNNBuilder's resource allocator chooses from.
_ROW_OPTIONS = (4, 8, 16, 32)


def build_dnnbuilder_config(workloads, device=ZC706, max_stages=_MAX_STAGES):
    """Construct the DNNBuilder-style configuration for a workload list.

    Resource allocation follows the tool's published heuristic: the DSP budget
    is split across pipeline stages proportionally to each stage's MAC count,
    and each stage uses a weight-stationary dataflow with buffers sized to a
    fixed fraction of the BRAM budget.
    """
    num_stages = min(max_stages, len(workloads))
    # Contiguous, MAC-balanced grouping of layers into stages.
    total_macs = sum(w.macs for w in workloads)
    assignment = []
    stage = 0
    accumulated = 0.0
    for workload in workloads:
        assignment.append(min(stage, num_stages - 1))
        accumulated += workload.macs
        if accumulated >= total_macs * (stage + 1) / num_stages and stage < num_stages - 1:
            stage += 1

    stage_macs = np.zeros(num_stages)
    for index, workload in enumerate(workloads):
        stage_macs[assignment[index]] += workload.macs

    # Allocate DSPs proportionally to stage compute, BRAM evenly.
    usable_dsp = device.dsp_count * 0.95
    bram_per_stage = min(256.0, device.bram_kb * 0.9 / num_stages)
    chunks = []
    for stage_index in range(num_stages):
        share = stage_macs[stage_index] / max(total_macs, 1)
        dsp_budget = max(16.0, usable_dsp * share)
        # Choose the largest power-of-two-ish array fitting the DSP share.
        rows = max(r for r in _ROW_OPTIONS if r * r <= dsp_budget or r == _ROW_OPTIONS[0])
        cols = max(4, int(dsp_budget // rows))
        cols = min(cols, 32)
        chunks.append(
            ChunkConfig(
                pe_rows=rows,
                pe_cols=cols,
                noc="broadcast",
                dataflow="weight_stationary",
                buffer_kb=bram_per_stage,
                input_buffer_fraction=0.25,
                weight_buffer_fraction=0.5,
                output_buffer_fraction=0.25,
                tile_oc=min(32, rows),
                tile_ic=16,
                tile_spatial=8,
                loop_order=("oc", "ic", "sp"),
            )
        )
    return AcceleratorConfig(chunks=chunks, layer_assignment=assignment)


class DNNBuilderAccelerator:
    """Evaluate a network on the DNNBuilder-style baseline accelerator."""

    name = "DNNBuilder"

    def __init__(self, network, device=ZC706, max_stages=_MAX_STAGES):
        self.workloads = extract_workload(network)
        self.device = device
        self.cost_model = AcceleratorCostModel(device=device)
        self.config = build_dnnbuilder_config(self.workloads, device=device, max_stages=max_stages)
        self._metrics = None

    @property
    def metrics(self):
        """Cost-model metrics of the baseline configuration."""
        if self._metrics is None:
            self._metrics = self.cost_model.evaluate(self.workloads, self.config)
        return self._metrics

    @property
    def fps(self):
        """Frames per second achieved by the baseline."""
        return self.metrics.fps

    def __repr__(self):
        return "DNNBuilderAccelerator(stages={}, device={})".format(
            self.config.num_chunks, self.device.name
        )
