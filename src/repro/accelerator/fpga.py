"""FPGA device resource budgets.

The paper measures its accelerators on a Xilinx ZC706 board using the Vivado
HLS flow, with the DSP count (900) as the binding resource limit for the
Fig. 3 comparison.  Since no FPGA tooling is available offline, devices are
modelled by their headline resource budgets, which is exactly what the
analytical performance predictor used during the paper's search consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FPGADevice", "ZC706", "ZCU102", "ULTRA96", "DEVICES", "get_device"]


@dataclass(frozen=True)
class FPGADevice:
    """Resource and performance envelope of one FPGA board.

    Attributes
    ----------
    name:
        Board name.
    dsp_count:
        Number of DSP slices (each modelled as one MAC per cycle).
    bram_kb:
        Total on-chip block RAM capacity in kilobytes.
    dram_bandwidth_gbps:
        Off-chip memory bandwidth in gigabytes per second.
    frequency_mhz:
        Target clock frequency of the generated accelerator.
    """

    name: str
    dsp_count: int
    bram_kb: float
    dram_bandwidth_gbps: float
    frequency_mhz: float

    @property
    def bytes_per_cycle(self):
        """Off-chip bytes transferable per accelerator clock cycle."""
        return self.dram_bandwidth_gbps * 1e9 / (self.frequency_mhz * 1e6)

    @property
    def peak_macs_per_second(self):
        """Peak MAC throughput if every DSP computes one MAC per cycle."""
        return self.dsp_count * self.frequency_mhz * 1e6

    def __str__(self):
        return "{} ({} DSPs, {:.0f} KB BRAM)".format(self.name, self.dsp_count, self.bram_kb)


#: The paper's evaluation board: Xilinx Zynq-7000 ZC706 (900 DSPs, 19.1 Mb BRAM).
ZC706 = FPGADevice(name="ZC706", dsp_count=900, bram_kb=2442.0, dram_bandwidth_gbps=12.8, frequency_mhz=200.0)

#: A larger Zynq UltraScale+ board, used for scaling studies.
ZCU102 = FPGADevice(name="ZCU102", dsp_count=2520, bram_kb=4608.0, dram_bandwidth_gbps=21.3, frequency_mhz=300.0)

#: A small edge board, used to stress the resource-constraint handling.
ULTRA96 = FPGADevice(name="Ultra96", dsp_count=360, bram_kb=948.0, dram_bandwidth_gbps=8.5, frequency_mhz=150.0)

DEVICES = {device.name: device for device in (ZC706, ZCU102, ULTRA96)}


def get_device(name):
    """Look up a device by name (case-insensitive)."""
    for key, device in DEVICES.items():
        if key.lower() == name.lower():
            return device
    raise KeyError("unknown device {!r}; known devices: {}".format(name, ", ".join(DEVICES)))
