"""Fast accelerator performance predictor with memoisation.

During search the cost model is called for every sampled accelerator and every
sampled single-path network, many of which repeat.  Mirroring the role of the
DNN-Chip Predictor [25] in the paper ("fast and reliable estimation during
search"), :class:`PerformancePredictor` wraps the analytical model with a
cache keyed on the (network fingerprint, configuration fingerprint) pair.
"""

from __future__ import annotations

from .cost_model import AcceleratorCostModel
from .fpga import ZC706
from .workload import extract_workload

__all__ = ["PerformancePredictor", "workload_fingerprint", "config_fingerprint"]


def workload_fingerprint(workloads):
    """Hashable fingerprint of a workload list."""
    return tuple(
        (w.name, w.kind, w.macs, w.in_channels, w.out_channels, w.kernel_size, w.output_size, w.groups)
        for w in workloads
    )


def config_fingerprint(config):
    """Hashable fingerprint of an :class:`AcceleratorConfig`."""
    chunk_keys = tuple(
        (
            c.pe_rows,
            c.pe_cols,
            c.noc,
            c.dataflow,
            c.buffer_kb,
            round(c.input_buffer_fraction, 4),
            round(c.weight_buffer_fraction, 4),
            round(c.output_buffer_fraction, 4),
            c.tile_oc,
            c.tile_ic,
            c.tile_spatial,
            tuple(c.loop_order),
        )
        for c in config.chunks
    )
    return chunk_keys, tuple(config.layer_assignment)


class PerformancePredictor:
    """Memoising wrapper around :class:`AcceleratorCostModel`.

    Parameters
    ----------
    device:
        Target FPGA budget.
    max_cache_entries:
        Cache size cap; the cache is cleared when it grows past this bound
        (search loops generate many unique design points).
    """

    def __init__(self, device=ZC706, max_cache_entries=50000):
        self.cost_model = AcceleratorCostModel(device=device)
        self.device = device
        self.max_cache_entries = int(max_cache_entries)
        self._cache = {}
        self.hits = 0
        self.misses = 0

    def predict(self, network_or_workloads, config):
        """Evaluate (with caching) and return :class:`AcceleratorMetrics`."""
        workloads = self._coerce(network_or_workloads)
        key = (workload_fingerprint(workloads), config_fingerprint(config))
        if key in self._cache:
            self.hits += 1
            return self._cache[key]
        self.misses += 1
        metrics = self.cost_model.evaluate(workloads, config)
        if len(self._cache) >= self.max_cache_entries:
            self._cache.clear()
        self._cache[key] = metrics
        return metrics

    def fps(self, network_or_workloads, config):
        """Shorthand returning only the predicted frames per second."""
        return self.predict(network_or_workloads, config).fps

    def cache_info(self):
        """Return ``(hits, misses, size)`` statistics."""
        return self.hits, self.misses, len(self._cache)

    @staticmethod
    def _coerce(network_or_workloads):
        if hasattr(network_or_workloads, "layer_specs"):
            return extract_workload(network_or_workloads)
        items = list(network_or_workloads)
        if items and isinstance(items[0], dict):
            return extract_workload(items)
        return items
