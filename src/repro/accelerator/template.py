"""The chunk-based pipelined accelerator template.

This object binds together a design-space point (:class:`AcceleratorConfig`),
the analytical cost model, and a target network, mirroring how the paper's
parameterised micro-architecture template [21] is used: multiple
sub-accelerators (chunks) execute disjoint groups of layers as pipeline
stages, each chunk with its own PE array, buffer hierarchy and dataflow.
"""

from __future__ import annotations

import numpy as np

from .cost_model import AcceleratorCostModel
from .design_space import AcceleratorConfig, AcceleratorDesignSpace, ChunkConfig
from .fpga import ZC706
from .workload import extract_workload

__all__ = ["ChunkPipelineAccelerator", "balanced_layer_assignment"]


def balanced_layer_assignment(workloads, num_chunks):
    """Greedy MAC-balanced assignment of layers to pipeline chunks.

    Contiguous groups of layers are assigned to chunks so each chunk receives
    roughly the same share of the network's total MACs.  This is the natural
    hand-designed baseline against which the searched (possibly non-contiguous)
    layer allocation is compared.
    """
    total = sum(w.macs for w in workloads)
    target = total / max(num_chunks, 1)
    assignment = []
    chunk = 0
    accumulated = 0.0
    for workload in workloads:
        assignment.append(min(chunk, num_chunks - 1))
        accumulated += workload.macs
        if accumulated >= target * (chunk + 1) and chunk < num_chunks - 1:
            chunk += 1
    return assignment


class ChunkPipelineAccelerator:
    """A concrete accelerator instance: template + configuration + network.

    Parameters
    ----------
    network:
        Backbone (or layer-spec list) whose inference is being accelerated.
    config:
        The :class:`AcceleratorConfig` design point.  If omitted, a balanced
        2-chunk default configuration is built.
    device:
        Target FPGA budget (defaults to the paper's ZC706).
    """

    def __init__(self, network, config=None, device=ZC706):
        self.workloads = extract_workload(network)
        self.device = device
        self.cost_model = AcceleratorCostModel(device=device)
        if config is None:
            config = self.default_config()
        self.config = config
        self._metrics = None

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def default_config(self, num_chunks=2):
        """A sensible hand-designed configuration (used as a non-searched baseline)."""
        chunks = [
            ChunkConfig(
                pe_rows=16,
                pe_cols=16,
                noc="systolic",
                dataflow="weight_stationary",
                buffer_kb=256.0,
                tile_oc=16,
                tile_ic=16,
                tile_spatial=8,
            )
            for _ in range(num_chunks)
        ]
        assignment = balanced_layer_assignment(self.workloads, num_chunks)
        return AcceleratorConfig(chunks=chunks, layer_assignment=assignment)

    def design_space(self, max_chunks=4):
        """The categorical design space for this network's layer count."""
        return AcceleratorDesignSpace(num_layers=len(self.workloads), max_chunks=max_chunks)

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def evaluate(self, config=None):
        """Evaluate ``config`` (or the bound one) and cache the metrics."""
        config = config if config is not None else self.config
        metrics = self.cost_model.evaluate(self.workloads, config)
        if config is self.config:
            self._metrics = metrics
        return metrics

    @property
    def metrics(self):
        """Metrics of the bound configuration (computed lazily)."""
        if self._metrics is None:
            self._metrics = self.evaluate()
        return self._metrics

    @property
    def fps(self):
        """Frames per second of the bound configuration."""
        return self.metrics.fps

    def set_config(self, config):
        """Re-bind the accelerator to a new configuration."""
        self.config = config
        self._metrics = None
        return self

    def utilization_report(self):
        """Per-layer utilisation / boundedness table (list of dicts)."""
        report = []
        for cost in self.metrics.layer_costs:
            report.append(
                {
                    "layer": cost.name,
                    "chunk": cost.chunk_index,
                    "utilization": cost.utilization,
                    "bound": cost.bound,
                    "latency_cycles": cost.latency_cycles,
                }
            )
        return report

    def pipeline_balance(self):
        """Ratio slowest-chunk / mean-chunk latency (1.0 = perfectly balanced)."""
        cycles = np.asarray(self.metrics.chunk_cycles, dtype=float)
        if cycles.size == 0 or cycles.mean() == 0:
            return 1.0
        return float(cycles.max() / cycles.mean())

    def __repr__(self):
        return "ChunkPipelineAccelerator(layers={}, chunks={}, device={})".format(
            len(self.workloads), self.config.num_chunks, self.device.name
        )
