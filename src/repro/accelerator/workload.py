"""Workload extraction: turning a network into per-layer accelerator workloads.

Every backbone in :mod:`repro.networks` exposes ``layer_specs()`` describing
its conv / FC layers.  This module converts those specs into
:class:`LayerWorkload` records carrying the quantities the analytical cost
model needs: MAC counts and the activation / weight footprints in bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LayerWorkload", "extract_workload", "total_macs", "total_weight_bytes"]

#: Bytes per value; the accelerators use 16-bit fixed point as in most FPGA flows.
BYTES_PER_VALUE = 2


@dataclass(frozen=True)
class LayerWorkload:
    """Hardware-relevant description of one network layer.

    Attributes
    ----------
    name:
        Layer name (from the network's ``layer_specs``).
    kind:
        ``"conv"`` or ``"fc"``.
    macs:
        Multiply-accumulate operations for a batch-1 inference.
    input_bytes / weight_bytes / output_bytes:
        Data footprints of the layer's operands in bytes.
    out_channels / output_size / kernel_size / in_channels / groups:
        Geometry fields used by the tiling / dataflow analysis (FC layers set
        ``output_size = 1`` and ``kernel_size = 1``).
    """

    name: str
    kind: str
    macs: int
    input_bytes: int
    weight_bytes: int
    output_bytes: int
    in_channels: int
    out_channels: int
    kernel_size: int
    output_size: int
    groups: int = 1

    @property
    def total_bytes(self):
        """Total operand footprint of the layer."""
        return self.input_bytes + self.weight_bytes + self.output_bytes

    @property
    def arithmetic_intensity(self):
        """MACs per byte moved if nothing is reused on chip (roofline x-axis)."""
        return self.macs / max(self.total_bytes, 1)


def _conv_workload(spec):
    out_size = spec["output_size"]
    in_size = spec["input_size"]
    c_in = spec["in_channels"]
    c_out = spec["out_channels"]
    k = spec["kernel_size"]
    groups = spec.get("groups", 1)
    macs = out_size * out_size * c_out * (c_in // groups) * k * k
    input_bytes = in_size * in_size * c_in * BYTES_PER_VALUE
    weight_bytes = c_out * (c_in // groups) * k * k * BYTES_PER_VALUE
    output_bytes = out_size * out_size * c_out * BYTES_PER_VALUE
    return LayerWorkload(
        name=spec["name"],
        kind="conv",
        macs=int(macs),
        input_bytes=int(input_bytes),
        weight_bytes=int(weight_bytes),
        output_bytes=int(output_bytes),
        in_channels=int(c_in),
        out_channels=int(c_out),
        kernel_size=int(k),
        output_size=int(out_size),
        groups=int(groups),
    )


def _fc_workload(spec):
    in_features = spec["in_features"]
    out_features = spec["out_features"]
    macs = in_features * out_features
    return LayerWorkload(
        name=spec["name"],
        kind="fc",
        macs=int(macs),
        input_bytes=int(in_features * BYTES_PER_VALUE),
        weight_bytes=int(in_features * out_features * BYTES_PER_VALUE),
        output_bytes=int(out_features * BYTES_PER_VALUE),
        in_channels=int(in_features),
        out_channels=int(out_features),
        kernel_size=1,
        output_size=1,
        groups=1,
    )


def extract_workload(network_or_specs):
    """Build the list of :class:`LayerWorkload` for a network.

    Accepts either a network object exposing ``layer_specs()`` or an already
    extracted list of spec dictionaries.
    """
    if hasattr(network_or_specs, "layer_specs"):
        specs = network_or_specs.layer_specs()
    else:
        specs = list(network_or_specs)
    workloads = []
    for spec in specs:
        if spec["type"] == "conv":
            workloads.append(_conv_workload(spec))
        elif spec["type"] == "fc":
            workloads.append(_fc_workload(spec))
        else:
            raise ValueError("unknown layer type {!r}".format(spec["type"]))
    return workloads


def total_macs(workloads):
    """Total MAC count over a workload list."""
    return int(sum(w.macs for w in workloads))


def total_weight_bytes(workloads):
    """Total weight footprint over a workload list."""
    return int(sum(w.weight_bytes for w in workloads))
