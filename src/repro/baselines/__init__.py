"""Baseline systems the paper compares against: FA3C, random search, manual designs."""

from .fa3c import A3CS_PAPER_REPORTED, FA3C_REPORTED, FA3CBaseline, fa3c_reported_games
from .manual_designs import MANUAL_ACCELERATOR_RECIPES, build_manual_accelerator, manual_recipe_names
from .random_search import (
    make_rollout_score_fn,
    random_accelerator_search,
    random_architecture,
    random_architecture_search,
)

__all__ = [
    "make_rollout_score_fn",
    "FA3CBaseline",
    "FA3C_REPORTED",
    "A3CS_PAPER_REPORTED",
    "fa3c_reported_games",
    "MANUAL_ACCELERATOR_RECIPES",
    "build_manual_accelerator",
    "manual_recipe_names",
    "random_architecture",
    "random_architecture_search",
    "random_accelerator_search",
]
