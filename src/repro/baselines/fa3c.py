"""FA3C baseline (Cho et al., ASPLOS 2019) — Table III comparison.

FA3C is an FPGA-accelerated A3C training/inference system.  The paper compares
A3C-S's resulting accelerators against FA3C using the numbers *reported in the
FA3C paper* (score / FPS on six Atari games at a constant 260 FPS), exactly as
Table III does, so this module records those reference constants and provides
a modelled FA3C-style accelerator (a single monolithic weight-stationary
engine running the Vanilla backbone) for experiments that want a simulated
rather than quoted baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..accelerator.cost_model import AcceleratorCostModel
from ..accelerator.design_space import AcceleratorConfig, ChunkConfig
from ..accelerator.fpga import ZC706
from ..accelerator.workload import extract_workload

__all__ = ["FA3C_REPORTED", "A3CS_PAPER_REPORTED", "FA3CBaseline", "fa3c_reported_games"]


@dataclass(frozen=True)
class _ReportedEntry:
    """One game's reported (test score, FPS) pair."""

    score: float
    fps: float


#: Table III, FA3C column: test score / FPS reported by the FA3C paper.
FA3C_REPORTED = {
    "BeamRider": _ReportedEntry(score=3100.0, fps=260.0),
    "Breakout": _ReportedEntry(score=340.0, fps=260.0),
    "Pong": _ReportedEntry(score=0.0, fps=260.0),
    "Qbert": _ReportedEntry(score=6100.0, fps=260.0),
    "Seaquest": _ReportedEntry(score=170.0, fps=260.0),
    "SpaceInvaders": _ReportedEntry(score=830.0, fps=260.0),
}

#: Table III, A3C-S column: the paper's own reported score / FPS (for EXPERIMENTS.md
#: comparisons; our reproduction re-derives its own values).
A3CS_PAPER_REPORTED = {
    "BeamRider": _ReportedEntry(score=36745.0, fps=617.7),
    "Breakout": _ReportedEntry(score=670.0, fps=1596.3),
    "Pong": _ReportedEntry(score=20.9, fps=787.4),
    "Qbert": _ReportedEntry(score=15194.0, fps=1222.9),
    "Seaquest": _ReportedEntry(score=478940.0, fps=778.1),
    "SpaceInvaders": _ReportedEntry(score=109417.0, fps=535.6),
}


def fa3c_reported_games():
    """The six games Table III reports."""
    return list(FA3C_REPORTED)


class FA3CBaseline:
    """A modelled FA3C-style accelerator for a given backbone.

    FA3C uses one monolithic compute engine (no layer pipelining) with a
    weight-stationary systolic array sized to the FPGA's DSP budget and large
    unified buffers; running a network through it gives the FPS our cost model
    would assign to an FA3C-like design, useful for ablations beyond the
    quoted Table III numbers.
    """

    name = "FA3C"

    def __init__(self, network, device=ZC706):
        self.workloads = extract_workload(network)
        self.device = device
        self.cost_model = AcceleratorCostModel(device=device)
        rows = 16
        cols = max(4, min(32, int(device.dsp_count * 0.9 // rows)))
        self.config = AcceleratorConfig(
            chunks=[
                ChunkConfig(
                    pe_rows=rows,
                    pe_cols=cols,
                    noc="systolic",
                    dataflow="weight_stationary",
                    buffer_kb=512.0,
                    tile_oc=rows,
                    tile_ic=16,
                    tile_spatial=8,
                )
            ],
            layer_assignment=[0] * len(self.workloads),
        )
        self._metrics = None

    @property
    def metrics(self):
        """Cost-model metrics of the FA3C-style design."""
        if self._metrics is None:
            self._metrics = self.cost_model.evaluate(self.workloads, self.config)
        return self._metrics

    @property
    def fps(self):
        """Frames per second of the FA3C-style design."""
        return self.metrics.fps

    @staticmethod
    def reported(game):
        """Reported (score, fps) entry for ``game`` from the FA3C paper."""
        if game not in FA3C_REPORTED:
            raise KeyError("FA3C reports no numbers for {!r}".format(game))
        return FA3C_REPORTED[game]
