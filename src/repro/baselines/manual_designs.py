"""Hand-designed reference points: expert accelerator configurations and agents.

These mirror the "early works require experts' manual design" baselines the
paper contrasts against: a few sensible, fixed accelerator configurations and
the standard backbone choices, used by ablation benchmarks to show what the
automated co-search buys over manual design.
"""

from __future__ import annotations

from ..accelerator.design_space import AcceleratorConfig, ChunkConfig
from ..accelerator.template import balanced_layer_assignment
from ..accelerator.workload import extract_workload

__all__ = ["MANUAL_ACCELERATOR_RECIPES", "build_manual_accelerator", "manual_recipe_names"]

#: Named expert recipes: (num_chunks, pe_array, noc, dataflow, buffer_kb).
MANUAL_ACCELERATOR_RECIPES = {
    "single_big_ws": {
        "num_chunks": 1,
        "pe_array": (16, 32),
        "noc": "systolic",
        "dataflow": "weight_stationary",
        "buffer_kb": 512.0,
    },
    "dual_balanced_os": {
        "num_chunks": 2,
        "pe_array": (16, 16),
        "noc": "systolic",
        "dataflow": "output_stationary",
        "buffer_kb": 256.0,
    },
    "quad_pipeline_rs": {
        "num_chunks": 4,
        "pe_array": (8, 16),
        "noc": "multicast",
        "dataflow": "row_stationary",
        "buffer_kb": 128.0,
    },
    "edge_small": {
        "num_chunks": 1,
        "pe_array": (8, 8),
        "noc": "broadcast",
        "dataflow": "weight_stationary",
        "buffer_kb": 64.0,
    },
}


def manual_recipe_names():
    """Names of the available expert recipes."""
    return list(MANUAL_ACCELERATOR_RECIPES)


def build_manual_accelerator(network_or_workloads, recipe="single_big_ws"):
    """Instantiate an expert-designed :class:`AcceleratorConfig` for a network.

    The layer assignment is the MAC-balanced contiguous split an engineer
    would start from.
    """
    if recipe not in MANUAL_ACCELERATOR_RECIPES:
        raise KeyError(
            "unknown recipe {!r}; available: {}".format(recipe, ", ".join(MANUAL_ACCELERATOR_RECIPES))
        )
    spec = MANUAL_ACCELERATOR_RECIPES[recipe]
    if hasattr(network_or_workloads, "layer_specs"):
        workloads = extract_workload(network_or_workloads)
    else:
        workloads = list(network_or_workloads)
        if workloads and isinstance(workloads[0], dict):
            workloads = extract_workload(workloads)
    num_chunks = spec["num_chunks"]
    chunks = [
        ChunkConfig(
            pe_rows=spec["pe_array"][0],
            pe_cols=spec["pe_array"][1],
            noc=spec["noc"],
            dataflow=spec["dataflow"],
            buffer_kb=spec["buffer_kb"],
            tile_oc=min(32, spec["pe_array"][0] * 2),
            tile_ic=16,
            tile_spatial=8,
        )
        for _ in range(num_chunks)
    ]
    assignment = balanced_layer_assignment(workloads, num_chunks)
    return AcceleratorConfig(chunks=chunks, layer_assignment=assignment)
