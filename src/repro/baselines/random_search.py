"""Random-search baselines for both the agent and the accelerator space.

Differentiable search methods are conventionally compared against random
search over the same space and evaluation budget; these helpers implement
that comparison for the ablation benchmarks.  Agent-reward queries (scoring
a sampled architecture by playing episodes) are pure inference and run on
the tape-free :mod:`repro.runtime` engine via
:func:`make_rollout_score_fn`.
"""

from __future__ import annotations

import numpy as np

from ..accelerator.design_space import AcceleratorDesignSpace
from ..accelerator.predictor import PerformancePredictor
from ..networks.operators import CANDIDATE_OPERATORS

__all__ = [
    "random_architecture",
    "random_architecture_search",
    "random_accelerator_search",
    "make_rollout_score_fn",
]


def make_rollout_score_fn(agent, game, episodes=2, max_steps=120, seed=0, env_kwargs=None):
    """Build ``score_fn(op_indices) -> mean episode return`` for architecture search.

    ``agent`` must be an :class:`~repro.drl.agent.ActorCriticAgent` whose
    backbone is an :class:`~repro.networks.supernet.AgentSuperNet`; each
    candidate architecture is scored with the standard evaluation protocol
    along the fixed path (null-op starts disabled, short episodes).  Every
    per-step action query is served by the runtime engine's per-path plan
    cache, so random search over many architectures never touches the
    autograd tape.
    """
    from ..drl.evaluation import evaluate_agent

    def score_fn(op_indices):
        return evaluate_agent(
            agent,
            game,
            episodes=episodes,
            null_op_max=0,
            seed=seed,
            env_kwargs=env_kwargs,
            max_steps_per_episode=max_steps,
            backbone_kwargs={"op_indices": [int(i) for i in op_indices]},
        )

    return score_fn


def random_architecture(num_cells, rng):
    """Sample one architecture (operator index per cell) uniformly."""
    return [int(rng.integers(len(CANDIDATE_OPERATORS))) for _ in range(num_cells)]


def random_architecture_search(score_fn, num_cells, trials, rng=None, seed=0):
    """Uniform random search over architectures.

    Parameters
    ----------
    score_fn:
        Callable ``score_fn(op_indices) -> float`` (higher is better).
    num_cells:
        Number of searchable cells.
    trials:
        Evaluation budget.

    Returns
    -------
    best_ops, best_score, history:
        The best architecture, its score, and the list of all scores.
    """
    rng = rng if rng is not None else np.random.default_rng(seed)
    best_ops = None
    best_score = -np.inf
    history = []
    for _ in range(trials):
        ops = random_architecture(num_cells, rng)
        score = float(score_fn(ops))
        history.append(score)
        if score > best_score:
            best_score = score
            best_ops = ops
    return best_ops, best_score, history


def random_accelerator_search(network_or_workloads, trials, device=None, objective="fps", seed=0,
                              max_chunks=4):
    """Uniform random search over the accelerator design space.

    Returns
    -------
    best_config, best_metrics, history:
        The best feasible configuration found, its metrics, and the cost
        history (one entry per trial).
    """
    from ..accelerator.fpga import ZC706

    device = device if device is not None else ZC706
    predictor = PerformancePredictor(device=device)
    workloads = PerformancePredictor._coerce(network_or_workloads)
    space = AcceleratorDesignSpace(num_layers=len(workloads), max_chunks=max_chunks)
    rng = np.random.default_rng(seed)
    best_cost = np.inf
    best_config = None
    best_metrics = None
    history = []
    for _ in range(trials):
        config = space.random_config(rng)
        metrics = predictor.predict(workloads, config)
        cost = metrics.cost(objective=objective)
        history.append(cost)
        if metrics.feasible and cost < best_cost:
            best_cost = cost
            best_config = config
            best_metrics = metrics
    if best_config is None:
        # Nothing feasible was sampled; return the cheapest infeasible design.
        order = int(np.argmin(history))
        rng = np.random.default_rng(seed)
        for index in range(order + 1):
            config = space.random_config(rng)
        best_config = config
        best_metrics = predictor.predict(workloads, config)
    return best_config, best_metrics, history
