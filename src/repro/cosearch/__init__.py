"""A3C-S co-search: Algorithm 1, hardware coupling, Pareto utilities."""

from .a3cs import A3CSCoSearch, A3CSConfig, A3CSResult
from .hardware import HardwarePenalty, UnitGranularityDAS, unit_of_layer_map
from .pareto import dominates, hypervolume_2d, pareto_front

__all__ = [
    "A3CSCoSearch",
    "A3CSConfig",
    "A3CSResult",
    "HardwarePenalty",
    "UnitGranularityDAS",
    "unit_of_layer_map",
    "dominates",
    "pareto_front",
    "hypervolume_2d",
]
