"""The A3C-S co-search pipeline (paper Algorithm 1).

One iteration of the co-search:

1. sample the architecture gates (hard Gumbel, single-path forward) and
   collect a rollout with the sampled agent;
2. update the accelerator parameters ``phi`` with the DAS engine for the
   currently sampled network (Eq. 9), yielding ``hw(phi*)``;
3. update the supernet weights ``theta_pi, theta_v`` and the architecture
   parameters ``alpha`` with ``L_task + lambda * L_cost`` (Eq. 4, Eq. 12),
   where ``L_cost`` is the activated-path hardware penalty (Eq. 8) evaluated
   on ``hw(phi*)``, using one-level optimisation.

Steps 1 and 3 are the :class:`~repro.nas.search.DRLArchitectureSearch`
one-level update; step 2 is injected through its hardware-penalty hook, which
is invoked between rollout collection and the parameter update — exactly the
ordering of Algorithm 1.  After the search budget is exhausted the final agent
and accelerator are derived from the arg-max of ``alpha`` and ``phi``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..accelerator.das import DASConfig, DifferentiableAcceleratorSearch
from ..accelerator.fpga import ZC706
from ..drl.distillation import DistillationMode
from ..drl.teacher import train_teacher
from ..nas.search import DRLArchitectureSearch, OptimizationScheme, SearchConfig
from .hardware import HardwarePenalty, UnitGranularityDAS

__all__ = ["A3CSConfig", "A3CSResult", "A3CSCoSearch"]


@dataclass
class A3CSConfig:
    """End-to-end configuration of an A3C-S co-search run.

    The defaults are scaled-down (NumPy-substrate-sized) versions of the
    paper's settings; the per-field meanings match Sec. V-A.
    """

    # Environment / observation geometry.
    obs_size: int = 28
    frame_stack: int = 2
    max_episode_steps: int = 200
    num_envs: int = 2

    # Supernet geometry.
    num_cells: int = 12
    base_width: int = 8
    feature_dim: int = 64

    # Search budgets.
    search_steps: int = 1000
    teacher_steps: int = 800
    final_das_steps: int = 150
    das_steps_per_iteration: int = 1

    # Loss weighting.
    hw_penalty_weight: float = 0.1
    distillation_mode: str = DistillationMode.AC
    scheme: str = OptimizationScheme.ONE_LEVEL
    #: Gumbel samples per one-level update (stacked-path compilation when
    #: > 1): see :attr:`repro.nas.search.SearchConfig.grad_samples`.
    grad_samples: int = 1

    # Hardware target.
    device: object = ZC706
    objective: str = "fps"

    # Misc.
    seed: int = 0
    eval_interval: int = 0
    eval_episodes: int = 3

    # Crash safety: periodic atomic autosaves of the combined searcher + DAS
    # state every ``autosave_interval`` search updates (0 disables); see
    # :meth:`A3CSCoSearch.save_checkpoint`.
    autosave_interval: int = 0
    autosave_path: object = None

    def search_config(self):
        """Derive the :class:`~repro.nas.search.SearchConfig` for the agent search."""
        return SearchConfig(
            total_steps=self.search_steps,
            num_envs=self.num_envs,
            distillation_mode=self.distillation_mode,
            scheme=self.scheme,
            hw_penalty_weight=self.hw_penalty_weight,
            eval_interval=self.eval_interval,
            eval_episodes=self.eval_episodes,
            seed=self.seed,
            grad_samples=self.grad_samples,
            autosave_interval=self.autosave_interval,
            autosave_path=self.autosave_path,
        )

    def das_config(self):
        """Derive the :class:`~repro.accelerator.das.DASConfig` for the DAS engine."""
        return DASConfig(objective=self.objective, seed=self.seed)


@dataclass
class A3CSResult:
    """Everything the co-search derives."""

    game: str
    op_indices: list
    operator_names: list
    agent: object
    accelerator_config: object
    accelerator_metrics: object
    search_logger: object
    das_cost_history: list = field(default_factory=list)
    teacher_score: float = 0.0

    @property
    def fps(self):
        """FPS of the derived accelerator running the derived agent."""
        return self.accelerator_metrics.fps

    def summary(self):
        """One-line human-readable summary of the co-search outcome."""
        return "A3C-S[{}]: ops={} fps={:.1f} dsp={} feasible={}".format(
            self.game,
            ",".join(self.operator_names),
            self.accelerator_metrics.fps,
            self.accelerator_metrics.dsp_used,
            self.accelerator_metrics.feasible,
        )


class A3CSCoSearch:
    """Automated Agent-Accelerator Co-Search for one task (game).

    Parameters
    ----------
    game:
        Registered game name.
    config:
        An :class:`A3CSConfig`.
    teacher:
        Optional pre-trained teacher agent; trained on the fly (ResNet-20, per
        the paper) when omitted and distillation is enabled.
    """

    def __init__(self, game, config=None, teacher=None):
        self.game = game
        self.config = config if config is not None else A3CSConfig()
        self.teacher = teacher
        self.teacher_trainer = None
        self.searcher = None
        self.das = None
        self.penalty = None

    # ------------------------------------------------------------------ #
    # Construction of the moving parts
    # ------------------------------------------------------------------ #
    def _ensure_teacher(self):
        cfg = self.config
        if self.teacher is not None or cfg.distillation_mode == DistillationMode.NONE:
            return self.teacher
        self.teacher, self.teacher_trainer = train_teacher(
            self.game,
            backbone_name="ResNet-20",
            total_steps=cfg.teacher_steps,
            num_envs=cfg.num_envs,
            obs_size=cfg.obs_size,
            frame_stack=cfg.frame_stack,
            feature_dim=cfg.feature_dim,
            base_width=cfg.base_width,
            seed=cfg.seed,
            config_overrides={"eval_interval": 0},
        )
        return self.teacher

    def _build(self):
        cfg = self.config
        teacher = self._ensure_teacher()
        env_kwargs = {
            "obs_size": cfg.obs_size,
            "frame_stack": cfg.frame_stack,
            "max_episode_steps": cfg.max_episode_steps,
        }
        supernet_kwargs = {
            "input_size": cfg.obs_size,
            "in_channels": cfg.frame_stack,
            "feature_dim": cfg.feature_dim,
            "base_width": cfg.base_width,
            "num_cells": cfg.num_cells,
        }
        self.searcher = DRLArchitectureSearch(
            self.game,
            teacher=teacher,
            config=cfg.search_config(),
            env_kwargs=env_kwargs,
            supernet_kwargs=supernet_kwargs,
        )
        self.das = UnitGranularityDAS(
            num_units=self.searcher.supernet.num_cells + 2,
            device=cfg.device,
            config=cfg.das_config(),
        )
        self.penalty = HardwarePenalty(
            self.searcher.supernet, self.das, das_steps_per_call=cfg.das_steps_per_iteration
        )
        self.searcher.hardware_penalty = self.penalty
        if cfg.autosave_path:
            # One autosave file covers both halves of the co-search: the
            # searcher's periodic trigger calls back into save_checkpoint so
            # the DAS phi / optimiser / RNG ride along atomically.
            self.searcher.autosave_fn = lambda: self.save_checkpoint(cfg.autosave_path)

    # ------------------------------------------------------------------ #
    # Checkpoint / resume
    # ------------------------------------------------------------------ #
    def save_checkpoint(self, path):
        """Atomically persist the searcher *and* the DAS engine state.

        The searcher contributes its full resume state (supernet weights,
        both optimisers, alphas, RNG, counters); the unit-granularity DAS
        state rides along under the ``das.`` prefix.  Requires the moving
        parts to be built (a checkpoint saved mid-:meth:`run`, e.g. by the
        autosave hook, always is).
        """
        if self.searcher is None or self.das is None:
            raise RuntimeError("co-search not built yet; nothing to checkpoint")
        from ..nn.serialization import save_state_dict

        state = self.searcher._checkpoint_state()
        for key, value in self.das.state_dict().items():
            state["das." + key] = value
        return save_state_dict(state, path)

    def load_checkpoint(self, path):
        """Restore a checkpoint written by :meth:`save_checkpoint` (in place).

        Builds the moving parts first when needed, validates the checkpoint
        against the combined state layout (raising
        :class:`~repro.nn.serialization.CheckpointError` before any state is
        touched), then restores the searcher and the DAS engine.
        """
        if self.searcher is None or self.das is None:
            self._build()
        from ..nn.serialization import load_state_dict, validate_state

        state = load_state_dict(path)
        reference = self.searcher._checkpoint_state()
        for key, value in self.das.state_dict().items():
            reference["das." + key] = value
        validate_state(state, reference, path)
        searcher_state = {k: v for k, v in state.items() if not k.startswith("das.")}
        self._restore_searcher(searcher_state)
        self.das.load_state_dict(
            {k[len("das."):]: v for k, v in state.items() if k.startswith("das.")}
        )
        return self

    def _restore_searcher(self, state):
        """Apply a pre-validated searcher state slice (no file round-trip)."""
        import json

        searcher = self.searcher
        searcher.agent.load_state_dict(
            {k[len("agent."):]: v for k, v in state.items() if k.startswith("agent.")}
        )
        searcher.weight_optimizer.load_state_dict(
            {k[len("woptim."):]: v for k, v in state.items() if k.startswith("woptim.")}
        )
        searcher.alpha_optimizer.load_state_dict(
            {k[len("aoptim."):]: v for k, v in state.items() if k.startswith("aoptim.")}
        )
        searcher.arch.load_state_dict(
            {k[len("arch."):]: v for k, v in state.items() if k.startswith("arch.")}
        )
        searcher.total_env_steps = int(state["search.total_env_steps"])
        searcher.updates = int(state["search.updates"])
        searcher.rng = np.random.default_rng()
        searcher.rng.bit_generator.state = json.loads(
            str(np.asarray(state["search.rng"]).item())
        )
        searcher._guard_streak = 0
        if searcher._collector is not None:
            searcher._collector.restart()

    # ------------------------------------------------------------------ #
    # Main entry point
    # ------------------------------------------------------------------ #
    def run(self):
        """Run the full co-search and return an :class:`A3CSResult`."""
        cfg = self.config
        if self.searcher is None:
            self._build()

        search_result = self.searcher.search()
        op_indices = search_result.op_indices
        agent = self.searcher.derive_agent()
        agent.eval()
        # Pre-compile the derived agent's inference plan for the evaluation
        # geometry so downstream scoring (Fig. 3 / Table III consumers) hits
        # the tape-free runtime immediately instead of paying a first-call
        # compile inside a timed region.
        agent.runtime.engine.plan_for((1, cfg.frame_stack, cfg.obs_size, cfg.obs_size))

        # Final accelerator search on the derived network at layer granularity,
        # warm-started from scratch (the unit-level phi guided the co-search;
        # the derivation step mirrors the paper's final DAS run on the agent).
        derived_backbone = agent.backbone
        final_das = DifferentiableAcceleratorSearch(
            derived_backbone, device=cfg.device, config=cfg.das_config()
        )
        das_result = final_das.search(steps=cfg.final_das_steps)

        teacher_score = 0.0
        if self.teacher_trainer is not None:
            teacher_score = self.teacher_trainer.mean_recent_return()

        return A3CSResult(
            game=self.game,
            op_indices=op_indices,
            operator_names=search_result.operator_names(),
            agent=agent,
            accelerator_config=das_result.best_config,
            accelerator_metrics=das_result.best_metrics,
            search_logger=search_result.logger,
            das_cost_history=list(self.penalty.history) if self.penalty is not None else [],
            teacher_score=teacher_score,
        )
