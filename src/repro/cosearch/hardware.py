"""Hardware-cost coupling between the agent search and the accelerator search.

Two pieces live here:

* :class:`UnitGranularityDAS` — a DAS engine whose layer-allocation knobs are
  defined at the granularity of the supernet's *units* (stem, the 12
  searchable cells, final FC) instead of individual conv layers.  Different
  sampled architectures expand a cell into different numbers of conv layers
  (an inverted-residual cell has up to three), so unit granularity keeps the
  accelerator parameters ``phi`` well-defined across the whole agent search,
  exactly like the paper's chunk template assigns "multiple but not
  necessarily consecutive layers" to each chunk.

* :class:`HardwarePenalty` — the Eq. 8 layer-wise hardware-cost penalty: the
  activated operator of every cell is charged the latency its layers incur on
  the current optimal accelerator ``hw(phi*)``, differentiably weighted by the
  cell's Gumbel gate so the gradient reaches the architecture parameters.
"""

from __future__ import annotations

import numpy as np

from ..accelerator.das import DifferentiableAcceleratorSearch
from ..accelerator.design_space import AcceleratorDesignSpace
from ..accelerator.fpga import ZC706
from ..accelerator.workload import extract_workload
from ..nn import Adam, Parameter

__all__ = ["UnitGranularityDAS", "HardwarePenalty", "unit_of_layer_map"]


def unit_of_layer_map(layer_specs, num_cells):
    """Map each layer-spec index to its supernet unit index.

    Units: ``0`` = stem, ``1..num_cells`` = searchable cells, ``num_cells+1`` = FC head.
    """
    mapping = []
    for spec in layer_specs:
        name = spec["name"]
        if name == "stem":
            mapping.append(0)
        elif name == "fc":
            mapping.append(num_cells + 1)
        elif name.startswith("cell"):
            cell_index = int(name.split(".")[0][len("cell"):])
            mapping.append(cell_index + 1)
        else:
            raise ValueError("cannot map layer {!r} to a supernet unit".format(name))
    return mapping


class UnitGranularityDAS(DifferentiableAcceleratorSearch):
    """DAS over a fixed set of *units* that expands to the current network.

    Parameters
    ----------
    num_units:
        Number of allocation units (stem + cells + FC for the supernet).
    device, config:
        As for :class:`DifferentiableAcceleratorSearch`.

    The bound network is changed with :meth:`set_network` whenever the agent
    search samples a new single-path architecture; ``phi`` (and therefore the
    accumulated accelerator-search state) persists across those changes.
    """

    def __init__(self, num_units, device=ZC706, config=None):
        self.num_units = int(num_units)
        # Initialise the parent against a placeholder single-unit workload;
        # the real workloads are installed by set_network().
        placeholder = [
            {
                "name": "unit{}".format(i),
                "type": "fc",
                "in_features": 16,
                "out_features": 16,
            }
            for i in range(self.num_units)
        ]
        super().__init__(placeholder, device=device, config=config)
        # Rebuild the design space so layer-allocation knobs index units.
        self.space = AcceleratorDesignSpace(num_layers=self.num_units, max_chunks=self.config.max_chunks)
        self.phi = {name: Parameter(np.zeros(len(choices))) for name, choices in self.space.dimensions()}
        self.optimizer = Adam(list(self.phi.values()), lr=self.config.learning_rate)
        self._unit_of_layer = list(range(self.num_units))

    def set_network(self, layer_specs, unit_of_layer):
        """Bind the DAS evaluation to a concrete single-path network."""
        self.workloads = extract_workload(layer_specs)
        if len(unit_of_layer) != len(self.workloads):
            raise ValueError("unit_of_layer must have one entry per layer")
        self._unit_of_layer = list(unit_of_layer)
        return self

    def evaluate_indices(self, indices):
        """Decode unit-level indices, expand to layer level, and evaluate."""
        config = self.space.decode(indices)
        # Expand the unit-level assignment onto the bound network's layers.
        expanded = [config.layer_assignment[unit] for unit in self._unit_of_layer]
        config.layer_assignment = expanded
        metrics = self.predictor.predict(self.workloads, config)
        cost = metrics.cost(
            latency_weight=self.config.latency_weight,
            energy_weight=self.config.energy_weight,
            objective=self.config.objective,
        )
        return config, metrics, cost

    def warm_start_candidates(self):
        """Unit-granularity warm starts (balanced contiguous unit assignment)."""
        lookup = dict(self.space.dimensions())
        pe_choices = lookup["chunk0.pe_array"]
        chunk_choices = lookup["num_chunks"]
        candidates = []
        for chunk_choice_index, num_chunks in enumerate(chunk_choices):
            for pe_index in range(len(pe_choices)):
                indices = self.space.default_indices()
                indices["num_chunks"] = chunk_choice_index
                for chunk_index in range(self.space.max_chunks):
                    indices["chunk{}.pe_array".format(chunk_index)] = pe_index
                for unit in range(self.num_units):
                    indices["layer{}.chunk".format(unit)] = int(unit * num_chunks / self.num_units)
                candidates.append(indices)
        return candidates


class HardwarePenalty:
    """Eq. 8: activated-path hardware-cost penalty for the architecture parameters.

    Parameters
    ----------
    supernet:
        The agent supernet (provides ``layer_specs(op_indices)``).
    das:
        A :class:`UnitGranularityDAS` instance holding the accelerator
        parameters ``phi``.
    das_steps_per_call:
        How many DAS updates to run per co-search iteration (Algorithm 1
        updates ``phi`` once per iteration before the agent update).
    normalize:
        Divide per-cell latencies by the total network latency so the penalty
        magnitude is architecture-scale independent.
    latency_mode:
        ``"analytical"`` (default) charges cells the accelerator cost
        model's cycle counts for the current ``hw(phi*)``.  ``"measured"``
        charges them the host runtime's autotuner timings instead: each
        conv layer is mapped to its :class:`~repro.runtime.kernels.registry.ConvSpec`
        (best over layout and quant variants, benchmarked once and cached
        per process by :mod:`repro.runtime.kernels.autotune`), so the
        penalty ranks operators by what they *actually* cost where rollouts
        run.  Any conv layer without a measurable variant makes the whole
        call fall back to the analytical table (``latency_source`` records
        which one served the last call); FC head layers contribute zero
        measured seconds either way.
    measured_batch / measured_dtype / measured_quant:
        The runtime signature probed in ``"measured"`` mode — batch size,
        compute dtype, and quantization mode (``""`` float, ``"q8"``,
        ``"q16"``; layers whose quant variant has no kernels, e.g. dense
        convs, automatically fall back to their float timing).
    """

    def __init__(self, supernet, das, das_steps_per_call=1, normalize=True,
                 latency_mode="analytical", measured_batch=16,
                 measured_dtype="float32", measured_quant=""):
        if latency_mode not in ("analytical", "measured"):
            raise ValueError(
                "latency_mode must be 'analytical' or 'measured', got {!r}".format(latency_mode)
            )
        self.supernet = supernet
        self.das = das
        self.das_steps_per_call = int(das_steps_per_call)
        self.normalize = bool(normalize)
        self.latency_mode = latency_mode
        self.measured_batch = int(measured_batch)
        self.measured_dtype = str(measured_dtype)
        self.measured_quant = str(measured_quant)
        #: Which table served the most recent :meth:`cell_latencies` call.
        self.latency_source = None
        self.last_metrics = None
        self.last_config = None
        self.history = []

    def update_accelerator(self, op_indices):
        """Run the DAS updates for the current single-path network (phi step of Alg. 1)."""
        specs = self.supernet.layer_specs(op_indices)
        units = unit_of_layer_map(specs, self.supernet.num_cells)
        self.das.set_network(specs, units)
        config, metrics, cost = None, None, None
        for _ in range(max(1, self.das_steps_per_call)):
            config, metrics, cost = self.das.step()
        self.last_config = config
        self.last_metrics = metrics
        self.history.append(cost)
        return config, metrics

    def _measured_seconds(self, spec):
        """Best autotuner seconds for one conv layer spec (``None`` = no variant)."""
        from ..runtime.kernels import autotune
        from ..runtime.kernels.registry import ConvSpec, candidates

        best = None
        for quant in dict.fromkeys((self.measured_quant, "")):
            for layout in ("NHWC", "NCHW"):
                conv_spec = ConvSpec(
                    batch=self.measured_batch,
                    in_channels=int(spec["in_channels"]),
                    out_channels=int(spec["out_channels"]),
                    height=int(spec["input_size"]),
                    width=int(spec["input_size"]),
                    kernel=int(spec["kernel_size"]),
                    stride=int(spec["stride"]),
                    padding=int(spec["kernel_size"]) // 2,
                    groups=int(spec.get("groups", 1)),
                    dtype=self.measured_dtype,
                    direction="infer",
                    layout=layout,
                    quant=quant,
                )
                cands = candidates(conv_spec)
                if not cands:
                    continue
                seconds = autotune.cost_for(conv_spec, cands)
                if best is None or seconds < best:
                    best = seconds
        return best

    def measured_layer_table(self, specs):
        """Autotuner-measured seconds per layer, or ``None`` if any conv has none.

        FC head layers are not conv signatures the runtime tunes; they
        contribute zero measured seconds (their cost does not differ across
        the searched cell operators anyway).
        """
        table = {}
        for spec in specs:
            if spec["type"] != "conv":
                table[spec["name"]] = 0.0
                continue
            seconds = self._measured_seconds(spec)
            if seconds is None:
                return None
            table[spec["name"]] = seconds
        return table

    def cell_latencies(self, op_indices, config):
        """Per-cell latency on ``config`` (cycles, or autotuner seconds).

        In ``"measured"`` mode the analytical table is replaced by host
        kernel timings when every conv layer has one; with ``normalize``
        (the default) the two sources produce directly comparable
        fraction-of-network penalties.
        """
        specs = self.supernet.layer_specs(op_indices)
        units = unit_of_layer_map(specs, self.supernet.num_cells)
        table = None
        self.latency_source = "analytical"
        if self.latency_mode == "measured":
            table = self.measured_layer_table(specs)
            if table is not None:
                self.latency_source = "measured"
        if table is None:
            table = self.das.predictor.cost_model.layer_latency_table(specs, config)
        per_unit = np.zeros(self.supernet.num_cells + 2)
        for spec, unit in zip(specs, units):
            per_unit[unit] += table[spec["name"]]
        cell_latency = per_unit[1 : self.supernet.num_cells + 1]
        if self.normalize and per_unit.sum() > 0:
            cell_latency = cell_latency / per_unit.sum()
        return cell_latency

    def __call__(self, sampled_indices, gates):
        """Return the differentiable penalty tensor for the sampled architecture."""
        config, _ = self.update_accelerator(sampled_indices)
        cell_latency = self.cell_latencies(sampled_indices, config)
        penalty = None
        for cell_index, (gate, op_index) in enumerate(zip(gates, sampled_indices)):
            term = gate[int(op_index)] * float(cell_latency[cell_index])
            penalty = term if penalty is None else penalty + term
        return penalty
