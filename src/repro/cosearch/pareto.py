"""Pareto-front utilities for score-vs-efficiency trade-offs (Fig. 3 style)."""

from __future__ import annotations

__all__ = ["dominates", "pareto_front", "hypervolume_2d"]


def dominates(a, b):
    """Whether point ``a`` dominates ``b`` (both maximised, tuples of metrics)."""
    at_least_as_good = all(x >= y for x, y in zip(a, b))
    strictly_better = any(x > y for x, y in zip(a, b))
    return at_least_as_good and strictly_better


def pareto_front(points):
    """Indices of the non-dominated points (all objectives maximised).

    Parameters
    ----------
    points:
        Sequence of equal-length metric tuples, e.g. ``(test_score, fps)``.
    """
    indices = []
    for i, candidate in enumerate(points):
        dominated = False
        for j, other in enumerate(points):
            if i != j and dominates(other, candidate):
                dominated = True
                break
        if not dominated:
            indices.append(i)
    return indices


def hypervolume_2d(points, reference=(0.0, 0.0)):
    """Hypervolume (area) dominated by a 2-D maximisation front.

    A scalar summary of a score/FPS trade-off curve: larger is better.  Points
    below the reference in either coordinate contribute nothing.
    """
    front = sorted(
        {(max(x, reference[0]), max(y, reference[1])) for x, y in (points[i] for i in pareto_front(points))},
        key=lambda p: p[0],
    )
    area = 0.0
    previous_x = reference[0]
    # Sweep in increasing x; each segment contributes (x - prev_x) * best y to its right.
    for index, (x, _) in enumerate(front):
        best_y_right = max(p[1] for p in front[index:])
        area += (x - previous_x) * (best_y_right - reference[1])
        previous_x = x
    return area
