"""Actor-critic deep reinforcement learning: agents, A2C training, distillation."""

from .a2c import A2CConfig, A2CTrainer
from .agent import ActorCriticAgent, PolicyOutput
from .distillation import ACDistiller, DistillationMode, actor_distillation_loss, critic_distillation_loss
from .evaluation import Evaluator, evaluate_agent, greedy_policy_score
from .losses import (
    TaskLossWeights,
    combine_task_loss,
    entropy_loss,
    policy_gradient_loss,
    value_loss,
)
from .rollout import RolloutBuffer, RolloutCollector, compute_gae, compute_returns, compute_td_errors
from .teacher import make_agent, train_teacher

__all__ = [
    "ActorCriticAgent",
    "PolicyOutput",
    "A2CConfig",
    "A2CTrainer",
    "ACDistiller",
    "DistillationMode",
    "actor_distillation_loss",
    "critic_distillation_loss",
    "Evaluator",
    "evaluate_agent",
    "greedy_policy_score",
    "TaskLossWeights",
    "combine_task_loss",
    "entropy_loss",
    "policy_gradient_loss",
    "value_loss",
    "RolloutBuffer",
    "RolloutCollector",
    "compute_returns",
    "compute_td_errors",
    "compute_gae",
    "make_agent",
    "train_teacher",
]
