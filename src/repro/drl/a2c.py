"""Synchronous advantage actor-critic (A2C) trainer.

This is the DRL training loop the paper builds on (Sec. III and Algorithm 1's
inner loop): collect a rollout of length ``L`` from parallel environments,
compute td-errors, and update the actor and critic with the combined task
loss of Eq. 12 (policy gradient + value + entropy + optional AC-distillation),
using RMSProp with the paper's linear learning-rate decay schedule.

The gradient update runs on the compiled training runtime
(:class:`~repro.runtime.train.CompiledTrainStep`) by default: one reverse-mode
plan per batch signature, fused RMSProp + grad clipping, no autograd tape.
The eager tape remains the reference path, selected per call whenever the
runtime cannot compile the step (``use_compiled_train=False`` forces it).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

import numpy as np

from ..nn import RMSProp, clip_grad_norm
from ..nn.serialization import load_state_dict, save_state_dict, validate_state
from ..reliability import health
from ..reliability.faults import get_injector
from ..telemetry.metrics import Reporter
from ..utils.logging import MetricLogger
from .distillation import ACDistiller, DistillationMode
from .losses import TaskLossWeights, combine_task_loss, entropy_loss, policy_gradient_loss, value_loss
from .rollout import RolloutCollector

__all__ = ["A2CConfig", "A2CTrainer"]


@dataclass
class A2CConfig:
    """Hyper-parameters of the A2C trainer.

    Defaults follow Sec. V-A of the paper (discount 0.99, rollout length 5,
    RMSProp at 1e-3, entropy weight 1e-2, distillation weights 1e-1 / 1e-3),
    scaled-down step budgets are supplied by the experiment harness.
    """

    gamma: float = 0.99
    rollout_length: int = 5
    num_envs: int = 4
    learning_rate: float = 1e-3
    final_learning_rate: float = 1e-4
    lr_hold_fraction: float = 1.0 / 3.0
    total_steps: int = 10000
    max_grad_norm: float = 0.5
    entropy_beta: float = 1e-2
    actor_distill_beta: float = 1e-1
    critic_distill_beta: float = 1e-3
    distillation_mode: str = DistillationMode.NONE
    eval_interval: int = 0
    eval_episodes: int = 5
    seed: int = 0
    #: Route updates through the compiled training runtime (eager fallback
    #: stays available per call); ``compiled_train_dtype=None`` means float64.
    use_compiled_train: bool = True
    compiled_train_dtype: object = None
    #: Crash safety: write a full checkpoint to ``autosave_path`` every
    #: ``autosave_interval`` updates (0 disables).  The write is atomic, so a
    #: SIGKILL mid-save leaves the previous autosave intact and resuming from
    #: it reproduces the uninterrupted run bit-identically.
    autosave_interval: int = 0
    autosave_path: object = None
    #: After this many *consecutive* non-finite updates (guard trips), roll
    #: the trainer back to the last autosave (when one exists; 0 disables).
    guard_rollback_after: int = 3
    #: Sample ``repro.telemetry.snapshot()`` every this many updates into the
    #: trainer's :class:`~repro.telemetry.metrics.Reporter` (0 disables);
    #: ``telemetry_path`` appends the snapshots to a JSONL file.
    telemetry_interval: int = 0
    telemetry_path: object = None

    def loss_weights(self):
        """Bundle the beta coefficients into a :class:`TaskLossWeights`."""
        return TaskLossWeights(
            entropy=self.entropy_beta,
            actor_distill=self.actor_distill_beta,
            critic_distill=self.critic_distill_beta,
        )


class A2CTrainer:
    """Trains an :class:`~repro.drl.agent.ActorCriticAgent` on a vector env.

    Parameters
    ----------
    agent:
        The student actor-critic agent to optimise.
    vector_env:
        A :class:`~repro.envs.vector_env.VectorEnv` providing rollouts.
    config:
        An :class:`A2CConfig`.
    teacher:
        Optional frozen teacher agent for AC-distillation (Sec. IV-B).
    evaluator:
        Optional callable ``evaluator(agent) -> float`` used every
        ``config.eval_interval`` environment steps to record test scores.
    """

    def __init__(self, agent, vector_env, config=None, teacher=None, evaluator=None):
        self.agent = agent
        self.env = vector_env
        self.config = config if config is not None else A2CConfig()
        self.distiller = ACDistiller(teacher, mode=self.config.distillation_mode) if teacher is not None \
            else ACDistiller(None, mode=DistillationMode.NONE)
        self.evaluator = evaluator
        self.optimizer = RMSProp(self.agent.parameters(), lr=self.config.learning_rate)
        self.logger = MetricLogger()
        self.reporter = Reporter(
            interval=self.config.telemetry_interval, path=self.config.telemetry_path
        )
        self.rng = np.random.default_rng(self.config.seed)
        self.total_env_steps = 0
        self.updates = 0
        self._recent_returns = []
        self._collector = None
        self._train_step = None
        self._guard_streak = 0

    # ------------------------------------------------------------------ #
    # Learning-rate schedule (paper: hold then linear decay)
    # ------------------------------------------------------------------ #
    def _current_lr(self):
        cfg = self.config
        hold = cfg.lr_hold_fraction * cfg.total_steps
        if self.total_env_steps <= hold or cfg.total_steps <= hold:
            return cfg.learning_rate
        fraction = min(1.0, (self.total_env_steps - hold) / (cfg.total_steps - hold))
        return cfg.learning_rate + fraction * (cfg.final_learning_rate - cfg.learning_rate)

    # ------------------------------------------------------------------ #
    # Rollout collection
    # ------------------------------------------------------------------ #
    def collector(self):
        """The trainer's :class:`RolloutCollector`, rebound if the env was swapped."""
        self._collector = RolloutCollector.for_env(
            self._collector, self.env, self.config.rollout_length
        )
        return self._collector

    def _collect_rollout(self):
        """Collect one rollout; returns the filled buffer and bootstrap values."""
        collector = self.collector()

        def on_step(infos):
            self.total_env_steps += self.env.num_envs
            for info in infos:
                if "episode_return" in info:
                    self._recent_returns.append(info["episode_return"])
                    self.logger.log("episode_return", info["episode_return"], step=self.total_env_steps)

        buffer = collector.collect(
            lambda observations: self.agent.act(observations, self.rng),
            seed=self.config.seed,
            on_step=on_step,
        )
        # Bootstrap values are pure inference: use the tape-free runtime path.
        _, bootstrap = self.agent.policy_value(collector.observations)
        return buffer, bootstrap

    # ------------------------------------------------------------------ #
    # One update
    # ------------------------------------------------------------------ #
    def _compiled_train_step(self):
        """The lazily-built :class:`~repro.runtime.train.CompiledTrainStep`."""
        if self._train_step is None:
            from ..runtime.train import CompiledTrainStep

            dtype = self.config.compiled_train_dtype
            self._train_step = CompiledTrainStep(
                self.agent,
                self.optimizer,
                dtype=np.float64 if dtype is None else dtype,
            )
        return self._train_step

    def _update_compiled(self, batch):
        """One train step on the compiled runtime (raises CompileError to fall back)."""
        cfg = self.config
        step = self._compiled_train_step()
        # Compile (or fetch) the plan before the teacher forward, so an
        # uncompilable agent falls back without a wasted teacher inference.
        step.plan_for(np.asarray(batch["observations"]).shape)
        teacher_probs = teacher_values = None
        if self.distiller.enabled:
            teacher_probs, values = self.distiller.teacher_targets(batch["observations"])
            if self.distiller.mode == DistillationMode.AC:
                teacher_values = values
        self.optimizer.set_lr(self._current_lr())
        result = step.step(
            batch["observations"],
            batch["actions"],
            batch["returns"],
            batch["advantages"],
            max_grad_norm=cfg.max_grad_norm,
            weights=cfg.loss_weights(),
            teacher_probs=teacher_probs,
            teacher_values=teacher_values,
        )
        self.updates += 1
        self._note_guard(result.skipped)
        self.logger.log("loss/total", result.total, step=self.total_env_steps)
        for name in ("policy", "value", "entropy", "actor_distill", "critic_distill"):
            if name in result.components:
                self.logger.log("loss/" + name, result.components[name], step=self.total_env_steps)
        self.logger.log("grad_norm", result.grad_norm, step=self.total_env_steps)
        self.logger.log("lr", self.optimizer.lr, step=self.total_env_steps)
        return result.total

    def update(self, buffer, bootstrap_values):
        """Compute Eq. 12 on the stored rollout and apply one RMSProp step.

        Runs on the compiled training runtime when enabled, falling back to
        the eager autograd tape for anything the compiler cannot serve.
        """
        cfg = self.config
        batch = buffer.compute_targets(bootstrap_values, cfg.gamma)
        if cfg.use_compiled_train:
            from ..runtime.compiler import CompileError

            try:
                total = self._update_compiled(batch)
                self.reporter.tick(step=self.total_env_steps)
                return total
            except CompileError:
                health.record("eager_fallbacks")
        observations = batch["observations"]
        actions = batch["actions"]

        chosen_log_probs, entropy_per_sample, values, output = self.agent.evaluate_actions(
            observations, actions
        )
        loss_policy = policy_gradient_loss(chosen_log_probs, batch["advantages"])
        loss_value = value_loss(values, batch["returns"])
        loss_entropy = entropy_loss(output.probs, output.log_probs)

        actor_distill, critic_distill = (None, None)
        if self.distiller.enabled:
            actor_distill, critic_distill = self.distiller.losses(observations, output)

        total = combine_task_loss(
            loss_policy,
            loss_value,
            loss_entropy,
            actor_distill=actor_distill,
            critic_distill=critic_distill,
            weights=cfg.loss_weights(),
        )

        self.optimizer.zero_grad()
        total.backward()
        injector = get_injector()
        if injector is not None and injector.should_fire("nan_grad"):
            for param in self.agent.parameters():
                if param.grad is not None:
                    param.grad.flat[0] = np.nan
                    break
        grad_norm = clip_grad_norm(self.agent.parameters(), cfg.max_grad_norm)
        self.optimizer.set_lr(self._current_lr())
        skipped = not (np.isfinite(total.item()) and np.isfinite(grad_norm))
        if skipped:
            # Same guard as the compiled path: a poisoned loss or gradient
            # must not reach the optimiser state or the parameters.
            health.record("guard_trips")
        else:
            self.optimizer.step()
        self.updates += 1
        self._note_guard(skipped)

        self.logger.log("loss/total", total.item(), step=self.total_env_steps)
        self.logger.log("loss/policy", loss_policy.item(), step=self.total_env_steps)
        self.logger.log("loss/value", loss_value.item(), step=self.total_env_steps)
        self.logger.log("loss/entropy", loss_entropy.item(), step=self.total_env_steps)
        if actor_distill is not None:
            self.logger.log("loss/actor_distill", actor_distill.item(), step=self.total_env_steps)
        if critic_distill is not None:
            self.logger.log("loss/critic_distill", critic_distill.item(), step=self.total_env_steps)
        self.logger.log("grad_norm", grad_norm, step=self.total_env_steps)
        self.logger.log("lr", self.optimizer.lr, step=self.total_env_steps)
        self.reporter.tick(step=self.total_env_steps)
        return total.item()

    # ------------------------------------------------------------------ #
    # Non-finite guard bookkeeping
    # ------------------------------------------------------------------ #
    def _note_guard(self, skipped):
        """Track consecutive guard trips; roll back after K in a row.

        Skipped updates leave parameters untouched, but K consecutive trips
        mean the optimiser state (or the parameters themselves, poisoned
        before the streak started) are beyond saving forward — reload the
        last autosave instead of looping on garbage.  No-op when rollback is
        disabled or no autosave exists yet.
        """
        if not skipped:
            self._guard_streak = 0
            return
        self._guard_streak += 1
        cfg = self.config
        if not cfg.guard_rollback_after or self._guard_streak < cfg.guard_rollback_after:
            return
        self._guard_streak = 0
        if cfg.autosave_path and os.path.exists(str(cfg.autosave_path)):
            self.load_checkpoint(cfg.autosave_path)
            health.record("checkpoint_rollbacks")

    def _maybe_autosave(self):
        """Write the periodic autosave checkpoint when one is due."""
        cfg = self.config
        if (
            cfg.autosave_interval
            and cfg.autosave_path
            and self.updates % cfg.autosave_interval == 0
        ):
            self.save_checkpoint(cfg.autosave_path)
            health.record("autosaves")

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def train(self, total_steps=None):
        """Run training for ``total_steps`` environment steps.

        Returns the :class:`~repro.utils.logging.MetricLogger` holding episode
        returns, loss curves, and any periodic evaluation scores.
        """
        cfg = self.config
        target_steps = total_steps if total_steps is not None else cfg.total_steps
        next_eval = cfg.eval_interval if cfg.eval_interval else None

        self.agent.train()
        while self.total_env_steps < target_steps:
            buffer, bootstrap = self._collect_rollout()
            self.update(buffer, bootstrap)
            self._maybe_autosave()
            if next_eval is not None and self.total_env_steps >= next_eval and self.evaluator is not None:
                self.agent.eval()
                score = float(self.evaluator(self.agent))
                self.agent.train()
                self.logger.log("eval_score", score, step=self.total_env_steps)
                next_eval += cfg.eval_interval
        return self.logger

    # ------------------------------------------------------------------ #
    # Checkpoint / resume
    # ------------------------------------------------------------------ #
    def save_checkpoint(self, path):
        """Persist everything needed to continue training bit-identically.

        The checkpoint covers the agent's parameters and buffers, the full
        optimiser state (RMSProp square averages, step count, learning rate),
        the trainer's RNG stream, and the step/update counters that drive the
        learning-rate schedule.  The environment is *not* serialised: resume
        with a freshly constructed (seeded) environment, exactly as at the
        start of training.
        """
        return save_state_dict(self._checkpoint_state(), path)

    def _checkpoint_state(self):
        """The full resume state (also the key/shape reference for loads)."""
        state = {}
        for key, value in self.agent.state_dict().items():
            state["agent." + key] = value
        for key, value in self.optimizer.state_dict().items():
            state["optim." + key] = value
        state["trainer.total_env_steps"] = np.int64(self.total_env_steps)
        state["trainer.updates"] = np.int64(self.updates)
        state["trainer.rng"] = np.asarray(json.dumps(self.rng.bit_generator.state))
        return state

    def load_checkpoint(self, path):
        """Restore a checkpoint written by :meth:`save_checkpoint` (in place).

        Compiled plans (inference and training) read parameters live, so they
        survive the load; the next rollout re-seeds from a fresh environment
        reset, and continuation is bit-identical to a trainer that never
        stopped (given the same environment construction).

        The checkpoint is validated against the trainer's current state
        layout *before* anything is restored, so a truncated, corrupt, or
        mismatched file raises :class:`~repro.nn.serialization.CheckpointError`
        (naming the path and the offending keys) and never half-restores.
        """
        state = load_state_dict(path)
        validate_state(state, self._checkpoint_state(), path)
        self.agent.load_state_dict(
            {k[len("agent."):]: v for k, v in state.items() if k.startswith("agent.")}
        )
        self.optimizer.load_state_dict(
            {k[len("optim."):]: v for k, v in state.items() if k.startswith("optim.")}
        )
        self.total_env_steps = int(state["trainer.total_env_steps"])
        self.updates = int(state["trainer.updates"])
        self.rng = np.random.default_rng()
        self.rng.bit_generator.state = json.loads(str(state["trainer.rng"].item()))
        if self._collector is not None:
            self._collector.restart()
        return self

    # ------------------------------------------------------------------ #
    # Convenience metrics
    # ------------------------------------------------------------------ #
    def mean_recent_return(self, window=20):
        """Mean of the last ``window`` completed training episode returns."""
        if not self._recent_returns:
            return 0.0
        return float(np.mean(self._recent_returns[-window:]))
