"""Actor-critic agent: a shared feature backbone with policy and value heads.

This is the DRL model structure of the paper (Sec. III): the policy
``pi(a|s; theta_pi)`` and the value function ``V(s; theta_v)`` are DNNs that
share a convolutional feature extractor (the *backbone*, which is what A3C-S
searches over), followed by small fully-connected heads.
"""

from __future__ import annotations

import numpy as np

from ..nn import Linear, Module, Tensor, no_grad
from ..nn import functional as F

__all__ = ["ActorCriticAgent", "PolicyOutput"]


class PolicyOutput:
    """Bundle of everything a forward pass of the agent produces.

    Attributes
    ----------
    logits:
        Unnormalised action scores, shape ``(batch, num_actions)``.
    log_probs:
        Log of the policy distribution.
    probs:
        Policy distribution.
    value:
        State-value estimates, shape ``(batch,)``.
    """

    def __init__(self, logits, log_probs, probs, value):
        self.logits = logits
        self.log_probs = log_probs
        self.probs = probs
        self.value = value


class ActorCriticAgent(Module):
    """Actor-critic agent with a pluggable backbone.

    Parameters
    ----------
    backbone:
        Any module mapping ``(batch, C, H, W)`` observations to
        ``(batch, feature_dim)`` features (Vanilla, ResNet, supernet-derived).
    num_actions:
        Size of the discrete action space.
    feature_dim:
        Backbone output dimensionality (defaults to ``backbone.feature_dim``).
    """

    def __init__(self, backbone, num_actions, feature_dim=None, rng=None, use_runtime=True,
                 runtime_dtype=None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        feature_dim = feature_dim if feature_dim is not None else backbone.feature_dim
        self.backbone = backbone
        self.num_actions = int(num_actions)
        self.feature_dim = int(feature_dim)
        # Orthogonal init with small policy gain is the standard RL head setup.
        self.policy_head = Linear(self.feature_dim, self.num_actions, rng=rng, init_scheme="orthogonal")
        self.policy_head.weight.data *= 0.01
        self.value_head = Linear(self.feature_dim, 1, rng=rng, init_scheme="orthogonal")
        self.use_runtime = bool(use_runtime)
        self.runtime_dtype = runtime_dtype if runtime_dtype is not None else np.float64
        #: Optional :class:`~repro.runtime.quantize.QuantCalibration` (or an
        #: iterable of them) enabling the quantized inference path on the
        #: lazily-built runtime; assign and the next ``runtime`` access
        #: rebuilds the policy with it.
        self.runtime_quantize = None
        self._runtime = None

    @property
    def runtime(self):
        """The lazily-built tape-free :class:`~repro.runtime.RuntimePolicy`."""
        if (
            self._runtime is None
            or self._runtime.dtype != np.dtype(self.runtime_dtype)
            or self._runtime.quantize is not self.runtime_quantize
        ):
            from ..runtime import RuntimePolicy

            self._runtime = RuntimePolicy(
                self, dtype=self.runtime_dtype, quantize=self.runtime_quantize
            )
        return self._runtime

    def warm(self, obs_shape, batch_sizes=(1,)):
        """Precompile the inference plan for each batch size, ahead of traffic.

        The runtime's plan cache keys by input shape, so the first request at
        a new batch size pays compile + autotune latency inline.  A serving
        tier that promises a p99 cannot pay that on a live request:
        ``warm(obs_shape, policy.buckets)`` runs one throwaway batch of zeros
        per size, leaving every bucket's plan (and its kernel selections and
        buffers) hot.  ``obs_shape`` is a single observation's shape, without
        the batch axis.  Returns ``self``.
        """
        obs_shape = tuple(int(dim) for dim in obs_shape)
        compute_dtype = np.dtype(self.runtime_dtype) if self.use_runtime else np.float32
        for size in batch_sizes:
            zeros = np.zeros((int(size),) + obs_shape, dtype=compute_dtype)
            self.policy_value(zeros)
        return self

    # ------------------------------------------------------------------ #
    # Forward passes
    # ------------------------------------------------------------------ #
    def forward(self, observations, **backbone_kwargs):
        """Full forward pass returning a :class:`PolicyOutput`."""
        obs = observations if isinstance(observations, Tensor) else Tensor(observations)
        features = self.backbone(obs, **backbone_kwargs)
        logits = self.policy_head(features)
        log_probs = F.log_softmax(logits, axis=-1)
        probs = F.softmax(logits, axis=-1)
        value = self.value_head(features).reshape(-1)
        return PolicyOutput(logits, log_probs, probs, value)

    def policy_value(self, observations, **backbone_kwargs):
        """Convenience wrapper returning ``(probs, value)`` NumPy arrays without grads.

        This is the inference chokepoint (``act``, evaluation, teacher
        targets, co-search rollouts all land here); when ``use_runtime`` is
        set it executes on the tape-free :mod:`repro.runtime` engine instead
        of the autograd graph, falling back to the eager path for forward
        arguments the runtime cannot compile (e.g. gated supernet forwards).
        """
        if self.use_runtime:
            from ..reliability import health
            from ..runtime.compiler import CompileError

            try:
                return self.runtime.policy_value(observations, **backbone_kwargs)
            except CompileError:
                health.record("eager_fallbacks")
        with no_grad():
            output = self.forward(observations, **backbone_kwargs)
        return output.probs.data, output.value.data

    # ------------------------------------------------------------------ #
    # Acting
    # ------------------------------------------------------------------ #
    def act(self, observations, rng, greedy=False, **backbone_kwargs):
        """Sample actions from the current policy.

        Parameters
        ----------
        observations:
            Batch of observations ``(batch, C, H, W)``.
        rng:
            Generator used for sampling.
        greedy:
            If true, take the arg-max action instead of sampling (evaluation
            still samples in the paper's protocol, so the default is False).

        Returns
        -------
        actions, values:
            Integer actions ``(batch,)`` and value estimates ``(batch,)``.
        """
        probs, values = self.policy_value(observations, **backbone_kwargs)
        if greedy:
            actions = probs.argmax(axis=-1)
        else:
            cumulative = probs.cumsum(axis=-1)
            draws = rng.random((probs.shape[0], 1))
            actions = (draws < cumulative).argmax(axis=-1)
        return actions.astype(np.int64), values

    def evaluate_actions(self, observations, actions, **backbone_kwargs):
        """Recompute log-probabilities / entropy / values for stored rollout data.

        Returns
        -------
        chosen_log_probs:
            Log pi(a_t | s_t) for the stored actions, shape ``(batch,)``.
        entropy:
            Per-sample policy entropy, shape ``(batch,)``.
        value:
            Value estimates, shape ``(batch,)``.
        output:
            The full :class:`PolicyOutput` (used by distillation losses).
        """
        output = self.forward(observations, **backbone_kwargs)
        actions = np.asarray(actions, dtype=np.int64)
        batch = actions.shape[0]
        mask = np.zeros(output.log_probs.shape)
        mask[np.arange(batch), actions] = 1.0
        chosen_log_probs = (output.log_probs * Tensor(mask)).sum(axis=-1)
        entropy = F.entropy(output.probs, output.log_probs, reduction="none")
        return chosen_log_probs, entropy, output.value, output
