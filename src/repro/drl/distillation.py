"""The AC-distillation mechanism of A3C-S (paper Sec. IV-B, Eq. 10-11).

Vanilla policy distillation [22] only matches the student policy to a teacher
policy.  The paper's contribution is to additionally distil the *critic*: the
student value function is regressed (MSE) onto the teacher's value estimates,
which further reduces gradient variance and stabilises the DNAS search.

Three distillation modes are exposed, matching the Table II ablation:

* ``"none"``             — no distillation terms,
* ``"policy"``           — actor (KL) distillation only,
* ``"ac"`` (the paper's) — actor KL + critic MSE distillation.
"""

from __future__ import annotations

import numpy as np

from ..nn import Tensor
from ..nn import functional as F

__all__ = ["DistillationMode", "ACDistiller", "actor_distillation_loss", "critic_distillation_loss"]


class DistillationMode:
    """String constants for the three Table II distillation strategies."""

    NONE = "none"
    POLICY_ONLY = "policy"
    AC = "ac"

    ALL = (NONE, POLICY_ONLY, AC)

    @staticmethod
    def validate(mode):
        """Return ``mode`` if it is a known strategy, raise otherwise."""
        if mode not in DistillationMode.ALL:
            raise ValueError(
                "unknown distillation mode {!r}; expected one of {}".format(mode, DistillationMode.ALL)
            )
        return mode


def actor_distillation_loss(teacher_probs, student_log_probs):
    """Eq. 10: KL(teacher policy || student policy), teacher treated as constant."""
    return F.kl_divergence(teacher_probs, student_log_probs, reduction="mean")


def critic_distillation_loss(student_values, teacher_values):
    """Eq. 11: ``E[ 0.5 (V_student(s) - V_teacher(s))^2 ]``, teacher detached."""
    teacher = np.asarray(
        teacher_values.data if isinstance(teacher_values, Tensor) else teacher_values,
        dtype=np.float64,
    )
    diff = student_values - Tensor(teacher)
    return (diff * diff).mean() * 0.5


class ACDistiller:
    """Computes the distillation terms of Eq. 12 from a frozen teacher agent.

    Parameters
    ----------
    teacher:
        A trained :class:`~repro.drl.agent.ActorCriticAgent` (the paper uses a
        ResNet-20 teacher).  Its parameters are never updated here.
    mode:
        One of :class:`DistillationMode` (``"none"``, ``"policy"``, ``"ac"``).
    """

    def __init__(self, teacher, mode=DistillationMode.AC):
        self.teacher = teacher
        self.mode = DistillationMode.validate(mode)
        if teacher is not None:
            self.teacher.eval()

    @property
    def enabled(self):
        """Whether any distillation term is active."""
        return self.mode != DistillationMode.NONE and self.teacher is not None

    def teacher_targets(self, observations):
        """Run the frozen teacher on a batch of observations.

        The teacher is pure inference (its parameters are never updated), so
        this goes through the tape-free runtime engine via ``policy_value``
        rather than building an autograd forward.

        Returns
        -------
        probs, values:
            NumPy arrays of the teacher's action distribution and value
            estimates (no gradients are recorded).
        """
        if not self.enabled:
            return None, None
        return self.teacher.policy_value(observations)

    def losses(self, observations, student_output, teacher_probs=None, teacher_values=None):
        """Compute ``(actor_distill_loss, critic_distill_loss)`` tensors.

        Either of the returned values is ``None`` when the corresponding term
        is disabled by the distillation mode.  Pre-computed teacher targets may
        be passed to avoid a second teacher forward pass.
        """
        if not self.enabled:
            return None, None
        if teacher_probs is None or teacher_values is None:
            teacher_probs, teacher_values = self.teacher_targets(observations)
        actor_loss = actor_distillation_loss(Tensor(teacher_probs), student_output.log_probs)
        if self.mode == DistillationMode.POLICY_ONLY:
            return actor_loss, None
        critic_loss = critic_distillation_loss(student_output.value, teacher_values)
        return actor_loss, critic_loss
