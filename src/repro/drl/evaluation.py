"""Evaluation protocol: average test score over episodes with null-op starts.

The paper reports test scores "averaged on 30 episodes with null-op starts
following [1]".  :func:`evaluate_agent` reproduces that protocol against the
synthetic game suite; the experiment harness shrinks the episode count when
running under the pytest-benchmark time budget.
"""

from __future__ import annotations

import numpy as np

from ..envs import make_env
from ..nn import no_grad

__all__ = ["evaluate_agent", "Evaluator", "greedy_policy_score"]


def evaluate_agent(agent, game, episodes=30, null_op_max=30, seed=0, env_kwargs=None, greedy=False,
                   max_steps_per_episode=None, use_runtime=None, backbone_kwargs=None):
    """Average episode score of ``agent`` on ``game``.

    Evaluation is pure inference, so the per-step action queries run on the
    tape-free :mod:`repro.runtime` engine by default (via ``agent.act``).

    Parameters
    ----------
    agent:
        An :class:`~repro.drl.agent.ActorCriticAgent`.
    game:
        Registered game name.
    episodes:
        Number of evaluation episodes (paper: 30).
    null_op_max:
        Maximum number of random NOOP actions at episode start (paper: 30).
    env_kwargs:
        Extra arguments forwarded to :func:`repro.envs.make_env`.
    greedy:
        Whether to act greedily instead of sampling from the policy.
    max_steps_per_episode:
        Optional hard cap overriding the game's own episode limit.
    use_runtime:
        Force the runtime fast path on/off for this evaluation; ``None``
        keeps the agent's own ``use_runtime`` setting (benchmarks use this to
        time the eager baseline).
    backbone_kwargs:
        Extra keyword arguments forwarded to ``agent.act`` (e.g.
        ``op_indices`` to score a fixed supernet path).

    Returns
    -------
    mean_score:
        Mean un-clipped episode score.
    """
    env_kwargs = dict(env_kwargs or {})
    if max_steps_per_episode is not None:
        env_kwargs["max_episode_steps"] = max_steps_per_episode
    backbone_kwargs = dict(backbone_kwargs or {})
    env = make_env(game, null_op_max=null_op_max, seed=seed, **env_kwargs)
    rng = np.random.default_rng(seed)
    scores = []
    was_training = agent.training
    previous_runtime = agent.use_runtime
    if use_runtime is not None:
        agent.use_runtime = bool(use_runtime)
    agent.eval()
    try:
        for episode in range(episodes):
            obs = env.reset(seed=seed + 1000 + episode)
            done = False
            total = 0.0
            while not done:
                with no_grad():
                    actions, _ = agent.act(obs[None, ...], rng, greedy=greedy, **backbone_kwargs)
                obs, reward, done, _ = env.step(int(actions[0]))
                total += reward
            scores.append(total)
    finally:
        agent.use_runtime = previous_runtime
        if was_training:
            agent.train()
    return float(np.mean(scores))


def greedy_policy_score(agent, game, episodes=5, seed=0, env_kwargs=None):
    """Shorthand for a quick greedy evaluation (used by tests)."""
    return evaluate_agent(agent, game, episodes=episodes, seed=seed, env_kwargs=env_kwargs, greedy=True)


class Evaluator:
    """A reusable evaluation callable bound to one game and protocol settings.

    Instances are passed to :class:`~repro.drl.a2c.A2CTrainer` as the
    ``evaluator`` hook and to the search loops for the Fig. 1 / Fig. 2 score
    curves.
    """

    def __init__(self, game, episodes=5, null_op_max=30, seed=0, env_kwargs=None, greedy=False):
        self.game = game
        self.episodes = int(episodes)
        self.null_op_max = int(null_op_max)
        self.seed = int(seed)
        self.env_kwargs = dict(env_kwargs or {})
        self.greedy = bool(greedy)

    def __call__(self, agent):
        return evaluate_agent(
            agent,
            self.game,
            episodes=self.episodes,
            null_op_max=self.null_op_max,
            seed=self.seed,
            env_kwargs=self.env_kwargs,
            greedy=self.greedy,
        )

    def __repr__(self):
        return "Evaluator(game={!r}, episodes={})".format(self.game, self.episodes)
