"""The actor-critic task loss of the paper (Eq. 12-15).

``L_task = L_policy + L_value + beta1 * L_entropy
          + beta2 * L_distill_actor + beta3 * L_distill_critic``

* ``L_policy``  (Eq. 13): policy-gradient loss weighted by the td-error.
* ``L_value``   (Eq. 14): squared td-error of the value function.
* ``L_entropy`` (Eq. 15): *positive* sum of ``pi log pi`` (i.e. negative
  entropy), so adding it with a positive ``beta1`` encourages exploration.
* The two distillation terms are implemented in
  :mod:`repro.drl.distillation` and passed in pre-computed.
"""

from __future__ import annotations

import numpy as np

from ..nn import Tensor
from ..nn import functional as F

__all__ = ["policy_gradient_loss", "value_loss", "entropy_loss", "TaskLossWeights", "combine_task_loss"]


def policy_gradient_loss(chosen_log_probs, advantages):
    """Eq. 13: ``-E[ delta_t * log pi(a_t|s_t) ]`` with detached advantages."""
    advantages = np.asarray(advantages, dtype=np.float64)
    return -(chosen_log_probs * Tensor(advantages)).mean()


def value_loss(values, returns):
    """Eq. 14: ``E[ 0.5 * (R_t - V(s_t))^2 ]`` against bootstrapped returns."""
    returns = np.asarray(returns, dtype=np.float64)
    diff = values - Tensor(returns)
    return (diff * diff).mean() * 0.5


def entropy_loss(probs, log_probs):
    """Eq. 15: ``E[ sum_a pi log pi ]`` (the negative entropy)."""
    return (probs * log_probs).sum(axis=-1).mean()


class TaskLossWeights:
    """Weights ``beta1, beta2, beta3`` of Eq. 12 (paper defaults from Sec. V-A)."""

    def __init__(self, entropy=1e-2, actor_distill=1e-1, critic_distill=1e-3):
        self.entropy = float(entropy)
        self.actor_distill = float(actor_distill)
        self.critic_distill = float(critic_distill)

    def __repr__(self):
        return "TaskLossWeights(entropy={}, actor_distill={}, critic_distill={})".format(
            self.entropy, self.actor_distill, self.critic_distill
        )


def combine_task_loss(policy, value, entropy, actor_distill=None, critic_distill=None, weights=None):
    """Assemble Eq. 12 from its already-computed components.

    ``actor_distill`` / ``critic_distill`` may be ``None`` (no-distillation and
    policy-only-distillation ablations of Table II).
    """
    weights = weights if weights is not None else TaskLossWeights()
    total = policy + value + entropy * weights.entropy
    if actor_distill is not None:
        total = total + actor_distill * weights.actor_distill
    if critic_distill is not None:
        total = total + critic_distill * weights.critic_distill
    return total
