"""Rollout storage and n-step return / temporal-difference target computation.

The paper's Algorithm 1 collects rollouts of length ``L`` (rollout length 5 in
Sec. V-A) from the current policy, then computes the td-error
``delta_t = r_t + gamma * V(s_{t+1}) - V(s_t)`` used by both the policy
gradient (Eq. 13) and the value loss (Eq. 14).

Dtype policy: rollout data is bulk storage and target arithmetic — single
precision end-to-end.  :class:`RolloutBuffer` stores float32 and the target
helpers take an explicit ``dtype`` parameter: ``None`` (the default) keeps
the dtype the inputs came in with (so float64 callers and their tight
numerical parity tests are untouched), while the buffer pipeline passes its
own float32 storage through without ever upcasting to float64.
"""

from __future__ import annotations

import numpy as np

from ..telemetry import trace

__all__ = [
    "RolloutBuffer",
    "RolloutCollector",
    "compute_returns",
    "compute_td_errors",
    "compute_gae",
]


def _resolve_dtype(dtype, *arrays):
    """The computation dtype: explicit ``dtype``, else promoted from inputs.

    Non-float inputs (e.g. integer rewards) promote to float64 — discounting
    must never run in integer arithmetic.
    """
    if dtype is not None:
        return np.dtype(dtype)
    resolved = np.result_type(*[np.asarray(a) for a in arrays])
    if resolved.kind != "f":
        return np.dtype(np.float64)
    return resolved


def compute_returns(rewards, dones, bootstrap_values, gamma, dtype=None):
    """N-step discounted returns with bootstrapping from the final value.

    Parameters
    ----------
    rewards, dones:
        Arrays of shape ``(steps, num_envs)``.
    bootstrap_values:
        Value estimates of the state following the last step, ``(num_envs,)``.
    gamma:
        Discount factor.
    dtype:
        Computation dtype; ``None`` promotes from the inputs (no upcast of
        float32 rollout data, no downcast of float64 callers).

    Returns
    -------
    returns:
        Array of shape ``(steps, num_envs)`` where
        ``returns[t] = r_t + gamma * (1 - done_t) * returns[t+1]``.
    """
    dtype = _resolve_dtype(dtype, rewards, dones, bootstrap_values)
    rewards = np.asarray(rewards, dtype=dtype)
    dones = np.asarray(dones, dtype=dtype)
    gamma = dtype.type(gamma)
    one = dtype.type(1.0)
    steps = rewards.shape[0]
    returns = np.zeros_like(rewards)
    running = np.asarray(bootstrap_values, dtype=dtype).copy()
    for t in reversed(range(steps)):
        running = rewards[t] + gamma * (one - dones[t]) * running
        returns[t] = running
    return returns


def compute_td_errors(rewards, dones, values, bootstrap_values, gamma, dtype=None):
    """One-step td-errors ``delta_t = r_t + gamma V(s_{t+1}) - V(s_t)``.

    ``values`` has shape ``(steps, num_envs)`` and holds ``V(s_t)`` estimates
    recorded during the rollout; ``bootstrap_values`` is ``V(s_{steps})``.
    """
    dtype = _resolve_dtype(dtype, rewards, dones, values, bootstrap_values)
    rewards = np.asarray(rewards, dtype=dtype)
    dones = np.asarray(dones, dtype=dtype)
    values = np.asarray(values, dtype=dtype)
    gamma = dtype.type(gamma)
    one = dtype.type(1.0)
    bootstrap = np.asarray(bootstrap_values, dtype=dtype)
    next_values = np.concatenate([values[1:], bootstrap[None, :]], axis=0)
    return rewards + gamma * (one - dones) * next_values - values


def compute_gae(rewards, dones, values, bootstrap_values, gamma, lam=0.95, dtype=None):
    """Generalised advantage estimation (optional variance-reduction extension)."""
    dtype = _resolve_dtype(dtype, rewards, dones, values, bootstrap_values)
    deltas = compute_td_errors(rewards, dones, values, bootstrap_values, gamma, dtype=dtype)
    dones = np.asarray(dones, dtype=dtype)
    advantages = np.zeros_like(deltas)
    decay = dtype.type(gamma * lam)
    one = dtype.type(1.0)
    running = np.zeros(deltas.shape[1], dtype=dtype)
    for t in reversed(range(deltas.shape[0])):
        running = deltas[t] + decay * (one - dones[t]) * running
        advantages[t] = running
    return advantages


class RolloutCollector:
    """Array-native rollout collection over a vector environment.

    The one synchronous loop every trainer in this package runs — act on the
    batched observations, step the vector env, append to the buffer — lives
    here so A2C, teacher training, and the architecture search all share the
    same hot path.  Observations stay ``(num_envs, ...)`` arrays end-to-end:
    with the batched env backend nothing in the loop iterates over envs in
    Python on the array path (the per-env info dicts remain, for episode
    bookkeeping).

    Parameters
    ----------
    vector_env:
        Any vector env backend (batched / sync / async).
    rollout_length:
        Steps per collected rollout (the paper's ``L``).
    dtype:
        Storage dtype of the underlying :class:`RolloutBuffer`.
    """

    def __init__(self, vector_env, rollout_length, dtype=np.float32):
        self.env = vector_env
        self.buffer = RolloutBuffer(
            rollout_length, vector_env.num_envs, vector_env.observation_space.shape, dtype=dtype
        )
        self.observations = None

    @classmethod
    def for_env(cls, existing, vector_env, rollout_length, dtype=np.float32):
        """Return ``existing`` if it is bound to ``vector_env``, else a fresh collector.

        The rebind-on-env-swap helper the trainers share: swapping a
        trainer's env mid-run (checkpoint tests do) must also swap the
        collector's stream and buffer.
        """
        if existing is not None and existing.env is vector_env:
            return existing
        return cls(vector_env, rollout_length, dtype=dtype)

    def reset(self, seed=None):
        """(Re-)start the environment stream; returns the first observations."""
        self.observations = self.env.reset(seed=seed)
        return self.observations

    def restart(self):
        """Forget the stream so the next :meth:`collect` resets the env."""
        self.observations = None

    def collect(self, policy, seed=None, on_step=None):
        """Fill the buffer with one rollout from ``policy``.

        ``policy(observations) -> (actions, values)`` is called once per
        vector step (batched inference); ``on_step(infos)`` — when given —
        once per vector step after the env transition, which is where
        trainers count env steps and log completed episodes.  Returns the
        full buffer; ``self.observations`` then holds the bootstrap
        observations for the value target.
        """
        if self.observations is None:
            self.reset(seed=seed)
        buffer = self.buffer
        buffer.reset()
        observations = self.observations
        env = self.env
        # Hoisted enabled check: the untraced loop below stays byte-identical
        # to the pre-telemetry hot path (disabled cost: one branch per rollout).
        if trace.enabled:
            observations = self._collect_traced(policy, observations, on_step)
        else:
            while not buffer.full:
                actions, values = policy(observations)
                next_observations, rewards, dones, infos = env.step(actions)
                buffer.add(observations, actions, rewards, dones, values)
                observations = next_observations
                if on_step is not None:
                    on_step(infos)
        self.observations = observations
        return buffer

    def _collect_traced(self, policy, observations, on_step):
        """The :meth:`collect` loop with per-phase spans (act / env / buffer)."""
        buffer = self.buffer
        env = self.env
        trace.begin("rollout/collect", "rollout")
        try:
            while not buffer.full:
                trace.begin("rollout/act", "rollout")
                actions, values = policy(observations)
                trace.end()
                trace.begin("rollout/env_step", "rollout")
                next_observations, rewards, dones, infos = env.step(actions)
                trace.end()
                trace.begin("rollout/buffer_add", "rollout")
                buffer.add(observations, actions, rewards, dones, values)
                trace.end()
                observations = next_observations
                if on_step is not None:
                    on_step(infos)
        finally:
            trace.end()
        return observations


class RolloutBuffer:
    """Fixed-length rollout storage for synchronous actor-critic training.

    Stores ``rollout_length`` transitions from ``num_envs`` parallel
    environments, then yields the flattened tensors needed to evaluate the
    task loss of Eq. 12.  Storage and target computation are float32 by
    default (rollout data does not need double precision and the runtime
    inference path benefits from the halved copies); pass
    ``dtype=np.float64`` to reproduce the historical behaviour.
    """

    def __init__(self, rollout_length, num_envs, obs_shape, dtype=np.float32):
        self.rollout_length = int(rollout_length)
        self.num_envs = int(num_envs)
        self.obs_shape = tuple(obs_shape)
        self.dtype = np.dtype(dtype)
        self.reset()

    def reset(self):
        """Clear the buffer for the next rollout."""
        shape = (self.rollout_length, self.num_envs)
        self.observations = np.zeros(shape + self.obs_shape, dtype=self.dtype)
        self.actions = np.zeros(shape, dtype=np.int64)
        self.rewards = np.zeros(shape, dtype=self.dtype)
        self.dones = np.zeros(shape, dtype=self.dtype)
        self.values = np.zeros(shape, dtype=self.dtype)
        self.pos = 0

    @property
    def full(self):
        """Whether the rollout has reached its configured length."""
        return self.pos >= self.rollout_length

    def add(self, observations, actions, rewards, dones, values):
        """Append one synchronous step from all environments."""
        if self.full:
            raise RuntimeError("rollout buffer is full; call reset() first")
        index = self.pos
        self.observations[index] = observations
        self.actions[index] = actions
        self.rewards[index] = rewards
        self.dones[index] = np.asarray(dones, dtype=self.dtype)
        self.values[index] = values
        self.pos += 1

    def compute_targets(self, bootstrap_values, gamma):
        """Compute n-step returns, td-errors, and advantages for the rollout.

        Returns a dict with flattened (``steps * num_envs``) arrays:
        ``observations``, ``actions``, ``returns``, ``td_errors``, ``advantages``.
        The advantage used by the paper's policy loss (Eq. 13) is the td-error.
        """
        if not self.full:
            raise RuntimeError("rollout buffer is not full yet")
        returns = compute_returns(self.rewards, self.dones, bootstrap_values, gamma, dtype=self.dtype)
        td_errors = compute_td_errors(
            self.rewards, self.dones, self.values, bootstrap_values, gamma, dtype=self.dtype
        )
        flat = self.rollout_length * self.num_envs
        return {
            "observations": self.observations.reshape((flat,) + self.obs_shape),
            "actions": self.actions.reshape(flat),
            "returns": returns.reshape(flat),
            "td_errors": td_errors.reshape(flat),
            "advantages": td_errors.reshape(flat),
            "values": self.values.reshape(flat),
        }
