"""Rollout storage and n-step return / temporal-difference target computation.

The paper's Algorithm 1 collects rollouts of length ``L`` (rollout length 5 in
Sec. V-A) from the current policy, then computes the td-error
``delta_t = r_t + gamma * V(s_{t+1}) - V(s_t)`` used by both the policy
gradient (Eq. 13) and the value loss (Eq. 14).
"""

from __future__ import annotations

import numpy as np

__all__ = ["RolloutBuffer", "compute_returns", "compute_td_errors", "compute_gae"]


def compute_returns(rewards, dones, bootstrap_values, gamma):
    """N-step discounted returns with bootstrapping from the final value.

    Parameters
    ----------
    rewards, dones:
        Arrays of shape ``(steps, num_envs)``.
    bootstrap_values:
        Value estimates of the state following the last step, ``(num_envs,)``.
    gamma:
        Discount factor.

    Returns
    -------
    returns:
        Array of shape ``(steps, num_envs)`` where
        ``returns[t] = r_t + gamma * (1 - done_t) * returns[t+1]``.
    """
    rewards = np.asarray(rewards, dtype=np.float64)
    dones = np.asarray(dones, dtype=np.float64)
    steps = rewards.shape[0]
    returns = np.zeros_like(rewards)
    running = np.asarray(bootstrap_values, dtype=np.float64).copy()
    for t in reversed(range(steps)):
        running = rewards[t] + gamma * (1.0 - dones[t]) * running
        returns[t] = running
    return returns


def compute_td_errors(rewards, dones, values, bootstrap_values, gamma):
    """One-step td-errors ``delta_t = r_t + gamma V(s_{t+1}) - V(s_t)``.

    ``values`` has shape ``(steps, num_envs)`` and holds ``V(s_t)`` estimates
    recorded during the rollout; ``bootstrap_values`` is ``V(s_{steps})``.
    """
    rewards = np.asarray(rewards, dtype=np.float64)
    dones = np.asarray(dones, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    next_values = np.concatenate([values[1:], np.asarray(bootstrap_values)[None, :]], axis=0)
    return rewards + gamma * (1.0 - dones) * next_values - values


def compute_gae(rewards, dones, values, bootstrap_values, gamma, lam=0.95):
    """Generalised advantage estimation (optional variance-reduction extension)."""
    deltas = compute_td_errors(rewards, dones, values, bootstrap_values, gamma)
    dones = np.asarray(dones, dtype=np.float64)
    advantages = np.zeros_like(deltas)
    running = np.zeros(deltas.shape[1])
    for t in reversed(range(deltas.shape[0])):
        running = deltas[t] + gamma * lam * (1.0 - dones[t]) * running
        advantages[t] = running
    return advantages


class RolloutBuffer:
    """Fixed-length rollout storage for synchronous actor-critic training.

    Stores ``rollout_length`` transitions from ``num_envs`` parallel
    environments, then yields the flattened tensors needed to evaluate the
    task loss of Eq. 12.
    """

    def __init__(self, rollout_length, num_envs, obs_shape):
        self.rollout_length = int(rollout_length)
        self.num_envs = int(num_envs)
        self.obs_shape = tuple(obs_shape)
        self.reset()

    def reset(self):
        """Clear the buffer for the next rollout."""
        shape = (self.rollout_length, self.num_envs)
        self.observations = np.zeros(shape + self.obs_shape, dtype=np.float64)
        self.actions = np.zeros(shape, dtype=np.int64)
        self.rewards = np.zeros(shape, dtype=np.float64)
        self.dones = np.zeros(shape, dtype=np.float64)
        self.values = np.zeros(shape, dtype=np.float64)
        self.pos = 0

    @property
    def full(self):
        """Whether the rollout has reached its configured length."""
        return self.pos >= self.rollout_length

    def add(self, observations, actions, rewards, dones, values):
        """Append one synchronous step from all environments."""
        if self.full:
            raise RuntimeError("rollout buffer is full; call reset() first")
        index = self.pos
        self.observations[index] = observations
        self.actions[index] = actions
        self.rewards[index] = rewards
        self.dones[index] = np.asarray(dones, dtype=np.float64)
        self.values[index] = values
        self.pos += 1

    def compute_targets(self, bootstrap_values, gamma):
        """Compute n-step returns, td-errors, and advantages for the rollout.

        Returns a dict with flattened (``steps * num_envs``) arrays:
        ``observations``, ``actions``, ``returns``, ``td_errors``, ``advantages``.
        The advantage used by the paper's policy loss (Eq. 13) is the td-error.
        """
        if not self.full:
            raise RuntimeError("rollout buffer is not full yet")
        returns = compute_returns(self.rewards, self.dones, bootstrap_values, gamma)
        td_errors = compute_td_errors(self.rewards, self.dones, self.values, bootstrap_values, gamma)
        flat = self.rollout_length * self.num_envs
        return {
            "observations": self.observations.reshape((flat,) + self.obs_shape),
            "actions": self.actions.reshape(flat),
            "returns": returns.reshape(flat),
            "td_errors": td_errors.reshape(flat),
            "advantages": td_errors.reshape(flat),
            "values": self.values.reshape(flat),
        }
