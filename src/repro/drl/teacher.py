"""Teacher-agent construction and training for AC-distillation.

The paper pretrains a ResNet-20 agent per task and uses it as the teacher for
both the distillation ablation (Table II) and the agent search (Fig. 2,
Sec. IV-B).  :func:`train_teacher` reproduces that step at a configurable
(scaled-down) budget; :func:`make_agent` is the shared agent factory used by
every experiment module.
"""

from __future__ import annotations

import numpy as np

from ..envs import make_vector_env
from ..networks import build_backbone
from .a2c import A2CConfig, A2CTrainer
from .agent import ActorCriticAgent

__all__ = ["make_agent", "train_teacher"]


def make_agent(backbone_name, num_actions=6, obs_size=42, frame_stack=2, feature_dim=128,
               base_width=8, seed=0, use_runtime=True, runtime_dtype=None):
    """Build an :class:`ActorCriticAgent` with a named backbone.

    Parameters
    ----------
    backbone_name:
        ``"Vanilla"``, ``"ResNet-14/20/38/74"`` (Table I baselines).
    obs_size / frame_stack:
        Observation geometry; must match the environment wrappers.
    feature_dim:
        Backbone output feature size (256 in the paper; smaller defaults keep
        the NumPy substrate fast).
    base_width:
        First-stage channel width for the ResNet family.
    use_runtime / runtime_dtype:
        No-grad inference configuration (see
        :class:`~repro.runtime.RuntimePolicy`); training forwards always use
        the autograd engine regardless.
    """
    rng = np.random.default_rng(seed)
    kwargs = {"in_channels": frame_stack, "input_size": obs_size, "feature_dim": feature_dim, "rng": rng}
    if backbone_name.lower().startswith("resnet"):
        kwargs["base_width"] = base_width
    backbone = build_backbone(backbone_name, **kwargs)
    return ActorCriticAgent(
        backbone,
        num_actions=num_actions,
        feature_dim=feature_dim,
        rng=rng,
        use_runtime=use_runtime,
        runtime_dtype=runtime_dtype,
    )


def train_teacher(
    game,
    backbone_name="ResNet-20",
    total_steps=2000,
    num_envs=4,
    obs_size=42,
    frame_stack=2,
    feature_dim=128,
    base_width=8,
    seed=0,
    use_compiled_train=True,
    config_overrides=None,
):
    """Train the teacher agent the AC-distillation mechanism distils from.

    The gradient steps run on the compiled training runtime by default
    (``use_compiled_train``); the eager tape remains the per-call fallback.

    Returns
    -------
    teacher:
        The trained (and eval-mode) teacher agent.
    trainer:
        The finished :class:`~repro.drl.a2c.A2CTrainer` (for inspecting logs).
    """
    agent = make_agent(
        backbone_name,
        obs_size=obs_size,
        frame_stack=frame_stack,
        feature_dim=feature_dim,
        base_width=base_width,
        seed=seed,
    )
    env = make_vector_env(game, num_envs=num_envs, obs_size=obs_size, frame_stack=frame_stack, seed=seed)
    config = A2CConfig(
        total_steps=total_steps,
        num_envs=num_envs,
        seed=seed,
        use_compiled_train=use_compiled_train,
    )
    if config_overrides:
        for key, value in config_overrides.items():
            setattr(config, key, value)
    trainer = A2CTrainer(agent, env, config=config)
    trainer.train()
    agent.eval()
    return agent, trainer
