"""Synthetic Atari-like environment suite (Arcade Learning Environment substitute)."""

from .arcade import DuelGame, MazeGame, NavigatorGame, PaddleGame, ShooterGame
from .base import ACTION_MEANINGS, Action, ArcadeGame, Box, Discrete, Env
from .registry import ATARI_GAMES, GAME_REGISTRY, game_info, game_names, make_env, make_game
from .vector_env import VectorEnv, make_vector_env
from .wrappers import (
    ClipReward,
    EpisodicLife,
    FrameSkip,
    FrameStack,
    NullOpStart,
    ResizeObservation,
    Wrapper,
)

__all__ = [
    "Action",
    "ACTION_MEANINGS",
    "ArcadeGame",
    "Box",
    "Discrete",
    "Env",
    "PaddleGame",
    "ShooterGame",
    "MazeGame",
    "NavigatorGame",
    "DuelGame",
    "GAME_REGISTRY",
    "ATARI_GAMES",
    "game_names",
    "game_info",
    "make_game",
    "make_env",
    "Wrapper",
    "FrameSkip",
    "ResizeObservation",
    "FrameStack",
    "ClipReward",
    "NullOpStart",
    "EpisodicLife",
    "VectorEnv",
    "make_vector_env",
]
