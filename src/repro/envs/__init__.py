"""Synthetic Atari-like environment suite (Arcade Learning Environment substitute)."""

from .arcade import DuelGame, MazeGame, NavigatorGame, PaddleGame, ShooterGame
from .base import ACTION_MEANINGS, Action, ArcadeGame, Box, Discrete, Env
from .registry import (
    ATARI_GAMES,
    GAME_REGISTRY,
    default_vector_backend,
    game_info,
    game_names,
    get_vector_backend,
    make_env,
    make_game,
    register_vector_backend,
)
from .vector_env import AsyncVectorEnv, VectorEnv, make_vector_env, spawn_env_generators
from .wrappers import (
    ClipReward,
    EpisodicLife,
    FrameSkip,
    FrameStack,
    NullOpStart,
    ResizeObservation,
    Wrapper,
)

__all__ = [
    "Action",
    "ACTION_MEANINGS",
    "ArcadeGame",
    "Box",
    "Discrete",
    "Env",
    "PaddleGame",
    "ShooterGame",
    "MazeGame",
    "NavigatorGame",
    "DuelGame",
    "GAME_REGISTRY",
    "ATARI_GAMES",
    "game_names",
    "game_info",
    "make_game",
    "make_env",
    "Wrapper",
    "FrameSkip",
    "ResizeObservation",
    "FrameStack",
    "ClipReward",
    "NullOpStart",
    "EpisodicLife",
    "VectorEnv",
    "AsyncVectorEnv",
    "make_vector_env",
    "spawn_env_generators",
    "register_vector_backend",
    "get_vector_backend",
    "default_vector_backend",
]
