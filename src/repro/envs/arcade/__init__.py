"""Parameterised arcade game engines standing in for the Atari 2600 suite."""

from .duel import DuelGame
from .maze import MazeGame
from .navigator import NavigatorGame
from .paddle import PaddleGame
from .shooter import ShooterGame

__all__ = ["PaddleGame", "ShooterGame", "MazeGame", "NavigatorGame", "DuelGame"]
