"""One-on-one duel engine (Boxing, Bowling).

Boxing: the player and an opponent move in a small ring; landing a punch when
adjacent scores a point, taking one costs a point, and the score is clipped to
the 0-100 range of the Atari game.

Bowling mode (``static_opponent=True``): the "opponent" is replaced by a rack
of static pins; the player aims and fires a ball down the lane, scoring per
pin knocked over, with a limited number of throws per episode.
"""

from __future__ import annotations

import numpy as np

from ..base import Action, ArcadeGame

__all__ = ["DuelGame"]


class DuelGame(ArcadeGame):
    """Configurable duel / aiming game.

    Parameters
    ----------
    punch_reward:
        Reward for landing a hit on the opponent.
    punch_penalty:
        Penalty when the opponent lands a hit.
    opponent_skill:
        Probability per tick that the opponent behaves optimally
        (chases / dodges / counter-punches).
    score_cap:
        Maximum cumulative raw score (Boxing caps at 100); ``None`` disables.
    static_opponent:
        Bowling mode — replaces the opponent with pin targets.
    max_throws:
        Number of throws per episode in bowling mode.
    """

    def __init__(
        self,
        game_id="Boxing",
        punch_reward=1.0,
        punch_penalty=1.0,
        opponent_skill=0.5,
        score_cap=100.0,
        static_opponent=False,
        pins=10,
        max_throws=21,
        player_speed=0.05,
        **kwargs,
    ):
        super().__init__(game_id=game_id, **kwargs)
        self.punch_reward = float(punch_reward)
        self.punch_penalty = float(punch_penalty)
        self.opponent_skill = float(opponent_skill)
        self.score_cap = score_cap
        self.static_opponent = bool(static_opponent)
        self.num_pins = int(pins)
        self.max_throws = int(max_throws)
        self.player_speed = float(player_speed)

    # ------------------------------------------------------------------ #
    def _reset_game(self):
        self.raw_score = 0.0
        if self.static_opponent:
            self.player_x = 0.5
            self.player_y = 0.9
            self.pins_standing = np.ones(self.num_pins, dtype=bool)
            self.throws = 0
            self.ball = None  # [x, y] when rolling
        else:
            self.player_x, self.player_y = 0.3, 0.5
            self.opponent_x, self.opponent_y = 0.7, 0.5
            self.player_cooldown = 0
            self.opponent_cooldown = 0

    def _pin_position(self, index):
        """Triangular rack layout near the top of the lane."""
        row = 0
        count = 0
        while count + row + 1 <= index:
            count += row + 1
            row += 1
        col = index - count
        x = 0.5 + (col - row / 2.0) * 0.08
        y = 0.1 + row * 0.05
        return x, y

    def _step_bowling(self, action):
        reward = 0.0
        if self.ball is None:
            if action == Action.LEFT:
                self.player_x -= self.player_speed
            elif action == Action.RIGHT:
                self.player_x += self.player_speed
            elif action == Action.FIRE and self.throws < self.max_throws:
                self.ball = [self.player_x, self.player_y]
                self.throws += 1
            self.player_x = float(np.clip(self.player_x, 0.2, 0.8))
        else:
            self.ball[1] -= 0.06
            # Small lane drift makes perfect strikes stochastic.
            self.ball[0] += self._rng.normal(0.0, 0.004)
            for i in range(self.num_pins):
                if not self.pins_standing[i]:
                    continue
                px, py = self._pin_position(i)
                if abs(self.ball[0] - px) < 0.05 and abs(self.ball[1] - py) < 0.05:
                    self.pins_standing[i] = False
                    reward += self.punch_reward
            if self.ball[1] <= 0.05:
                self.ball = None
                if not self.pins_standing.any():
                    self.pins_standing[:] = True  # new rack
        return reward, False

    def _is_game_over(self):
        if self.static_opponent:
            return self.throws >= self.max_throws and self.ball is None
        if self.score_cap is not None:
            return abs(self.raw_score) >= self.score_cap
        return False

    def _step_boxing(self, action):
        reward = 0.0
        life_lost = False

        if self.player_cooldown > 0:
            self.player_cooldown -= 1
        if self.opponent_cooldown > 0:
            self.opponent_cooldown -= 1

        if action == Action.LEFT:
            self.player_x -= self.player_speed
        elif action == Action.RIGHT:
            self.player_x += self.player_speed
        elif action == Action.UP:
            self.player_y -= self.player_speed
        elif action == Action.DOWN:
            self.player_y += self.player_speed
        self.player_x = float(np.clip(self.player_x, 0.1, 0.9))
        self.player_y = float(np.clip(self.player_y, 0.1, 0.9))

        distance = np.hypot(self.player_x - self.opponent_x, self.player_y - self.opponent_y)

        # Player punch.
        if action == Action.FIRE and self.player_cooldown == 0:
            self.player_cooldown = 3
            if distance < 0.15:
                reward += self.punch_reward
                self.raw_score += self.punch_reward

        # Opponent behaviour: close in and counter-punch when skilled,
        # wander otherwise.
        if self._rng.random() < self.opponent_skill:
            dx = np.sign(self.player_x - self.opponent_x)
            dy = np.sign(self.player_y - self.opponent_y)
            self.opponent_x += dx * self.player_speed * 0.6
            self.opponent_y += dy * self.player_speed * 0.6
            if distance < 0.15 and self.opponent_cooldown == 0:
                self.opponent_cooldown = 4
                reward -= self.punch_penalty
                self.raw_score -= self.punch_penalty
        else:
            self.opponent_x += self._rng.normal(0.0, 0.01)
            self.opponent_y += self._rng.normal(0.0, 0.01)
        self.opponent_x = float(np.clip(self.opponent_x, 0.1, 0.9))
        self.opponent_y = float(np.clip(self.opponent_y, 0.1, 0.9))

        return reward, life_lost

    def _step_game(self, action):
        if self.static_opponent:
            return self._step_bowling(action)
        return self._step_boxing(action)

    def _render_objects(self, canvas):
        if self.static_opponent:
            self.draw_rect(canvas, self.player_x, self.player_y, 0.06, 0.04, 1.0)
            for i in range(self.num_pins):
                if self.pins_standing[i]:
                    px, py = self._pin_position(i)
                    self.draw_point(canvas, px, py, 0.7, radius=1)
            if self.ball is not None:
                self.draw_point(canvas, self.ball[0], self.ball[1], 0.9, radius=1)
        else:
            # Ring ropes.
            self.draw_rect(canvas, 0.5, 0.05, 0.9, 0.02, 0.2)
            self.draw_rect(canvas, 0.5, 0.95, 0.9, 0.02, 0.2)
            self.draw_rect(canvas, self.player_x, self.player_y, 0.07, 0.07, 1.0)
            self.draw_rect(canvas, self.opponent_x, self.opponent_y, 0.07, 0.07, 0.5)
