"""One-on-one duel engine (Boxing, Bowling).

Boxing: the player and an opponent move in a small ring; landing a punch when
adjacent scores a point, taking one costs a point, and the score is clipped to
the 0-100 range of the Atari game.

Bowling mode (``static_opponent=True``): the "opponent" is replaced by a rack
of static pins; the player aims and fires a ball down the lane, scoring per
pin knocked over, with a limited number of throws per episode.

Since the batched-runtime refactor the physics live in
:class:`repro.envs.batched.duel.BatchedDuelEngine`; this class is the
single-env (``num_envs=1``) view of one engine lane.
"""

from __future__ import annotations

from ..batched.duel import BatchedDuelEngine, _pin_position
from ..batched.view import BatchedGameView

__all__ = ["DuelGame"]


class DuelGame(BatchedGameView):
    """Configurable duel / aiming game.

    Parameters
    ----------
    punch_reward:
        Reward for landing a hit on the opponent.
    punch_penalty:
        Penalty when the opponent lands a hit.
    opponent_skill:
        Probability per tick that the opponent behaves optimally
        (chases / dodges / counter-punches).
    score_cap:
        Maximum cumulative raw score (Boxing caps at 100); ``None`` disables.
    static_opponent:
        Bowling mode — replaces the opponent with pin targets.
    max_throws:
        Number of throws per episode in bowling mode.
    """

    engine_cls = BatchedDuelEngine

    def __init__(
        self,
        game_id="Boxing",
        punch_reward=1.0,
        punch_penalty=1.0,
        opponent_skill=0.5,
        score_cap=100.0,
        static_opponent=False,
        pins=10,
        max_throws=21,
        player_speed=0.05,
        **kwargs,
    ):
        self.punch_reward = float(punch_reward)
        self.punch_penalty = float(punch_penalty)
        self.opponent_skill = float(opponent_skill)
        self.score_cap = score_cap
        self.static_opponent = bool(static_opponent)
        self.num_pins = int(pins)
        self.max_throws = int(max_throws)
        self.player_speed = float(player_speed)
        super().__init__(
            game_id=game_id,
            engine_params=dict(
                punch_reward=punch_reward,
                punch_penalty=punch_penalty,
                opponent_skill=opponent_skill,
                score_cap=score_cap,
                static_opponent=static_opponent,
                pins=pins,
                max_throws=max_throws,
                player_speed=player_speed,
            ),
            **kwargs,
        )

    def _pin_position(self, index):
        """Triangular rack layout near the top of the lane."""
        return _pin_position(index)

    # ------------------------------------------------------------------ #
    # Lane views of the game state (read-only introspection)
    # ------------------------------------------------------------------ #
    @property
    def raw_score(self):
        return self._lane_float(self._engine.raw_score)

    @property
    def player_x(self):
        return self._lane_float(self._engine.player_x)

    @property
    def player_y(self):
        return self._lane_float(self._engine.player_y)

    @property
    def opponent_x(self):
        return self._lane_float(self._engine.opponent_x)

    @property
    def opponent_y(self):
        return self._lane_float(self._engine.opponent_y)

    @property
    def player_cooldown(self):
        return self._lane_int(self._engine.player_cooldown)

    @property
    def opponent_cooldown(self):
        return self._lane_int(self._engine.opponent_cooldown)

    @property
    def pins_standing(self):
        return self._engine.pins_standing[0]

    @property
    def throws(self):
        return self._lane_int(self._engine.throws)

    @property
    def ball(self):
        """The rolling ball as ``[x, y]``, or ``None`` between throws."""
        engine = self._engine
        if not engine.ball_active[0]:
            return None
        return [float(engine.ball_x[0]), float(engine.ball_y[0])]
