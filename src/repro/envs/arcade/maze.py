"""Maze / chase arcade engine (Alien, WizardOfWor, Qbert-like games).

The player walks on a grid collecting pellets while enemies roam the maze.
Enemies mix random walking with chasing; touching an enemy loses a life.
Collecting every pellet clears the level, pays a bonus and respawns a harder
level, which produces the steadily growing scores of maze games in the paper.

Since the batched-runtime refactor the physics live in
:class:`repro.envs.batched.maze.BatchedMazeEngine`; this class is the
single-env (``num_envs=1``) view of one engine lane.
"""

from __future__ import annotations

import numpy as np

from ..batched.maze import BatchedMazeEngine
from ..batched.view import BatchedGameView

__all__ = ["MazeGame"]


class MazeGame(BatchedGameView):
    """Configurable maze-chase game.

    Parameters
    ----------
    grid_size:
        Side length of the square maze grid.
    num_enemies:
        Number of roaming enemies.
    chase_prob:
        Probability per tick that an enemy moves towards the player instead of
        randomly.
    pellet_reward:
        Reward per pellet collected.
    clear_bonus:
        Extra reward for clearing all pellets.
    enemy_penalty:
        Negative reward applied when caught (on top of the lost life).
    wall_density:
        Fraction of interior cells turned into walls.
    """

    engine_cls = BatchedMazeEngine

    def __init__(
        self,
        game_id="Alien",
        grid_size=11,
        num_enemies=3,
        chase_prob=0.4,
        pellet_reward=10.0,
        clear_bonus=100.0,
        enemy_penalty=0.0,
        wall_density=0.15,
        enemy_move_every=1,
        **kwargs,
    ):
        self.grid_size = int(grid_size)
        self.num_enemies = int(num_enemies)
        self.chase_prob = float(chase_prob)
        self.pellet_reward = float(pellet_reward)
        self.clear_bonus = float(clear_bonus)
        self.enemy_penalty = float(enemy_penalty)
        self.wall_density = float(wall_density)
        self.enemy_move_every = int(enemy_move_every)
        super().__init__(
            game_id=game_id,
            engine_params=dict(
                grid_size=grid_size,
                num_enemies=num_enemies,
                chase_prob=chase_prob,
                pellet_reward=pellet_reward,
                clear_bonus=clear_bonus,
                enemy_penalty=enemy_penalty,
                wall_density=wall_density,
                enemy_move_every=enemy_move_every,
            ),
            **kwargs,
        )

    # ------------------------------------------------------------------ #
    # Lane views of the game state (read-only introspection)
    # ------------------------------------------------------------------ #
    @property
    def level(self):
        return self._lane_int(self._engine.level)

    @property
    def walls(self):
        return self._engine.walls[0]

    @property
    def pellets(self):
        return self._engine.pellets[0]

    @property
    def player(self):
        """Player ``[row, col]`` grid position."""
        engine = self._engine
        return np.array([engine.player_r[0], engine.player_c[0]])

    @property
    def enemies(self):
        """Enemy ``[row, col]`` grid positions."""
        engine = self._engine
        return [
            np.array([engine.enemy_r[0, e], engine.enemy_c[0, e]])
            for e in range(self.num_enemies)
        ]
