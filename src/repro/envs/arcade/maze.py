"""Maze / chase arcade engine (Alien, WizardOfWor, Qbert-like games).

The player walks on a grid collecting pellets while enemies roam the maze.
Enemies mix random walking with chasing; touching an enemy loses a life.
Collecting every pellet clears the level, pays a bonus and respawns a harder
level, which produces the steadily growing scores of maze games in the paper.
"""

from __future__ import annotations

import numpy as np

from ..base import Action, ArcadeGame

__all__ = ["MazeGame"]


class MazeGame(ArcadeGame):
    """Configurable maze-chase game.

    Parameters
    ----------
    grid_size:
        Side length of the square maze grid.
    num_enemies:
        Number of roaming enemies.
    chase_prob:
        Probability per tick that an enemy moves towards the player instead of
        randomly.
    pellet_reward:
        Reward per pellet collected.
    clear_bonus:
        Extra reward for clearing all pellets.
    enemy_penalty:
        Negative reward applied when caught (on top of the lost life).
    wall_density:
        Fraction of interior cells turned into walls.
    """

    def __init__(
        self,
        game_id="Alien",
        grid_size=11,
        num_enemies=3,
        chase_prob=0.4,
        pellet_reward=10.0,
        clear_bonus=100.0,
        enemy_penalty=0.0,
        wall_density=0.15,
        enemy_move_every=1,
        **kwargs,
    ):
        super().__init__(game_id=game_id, **kwargs)
        self.grid_size = int(grid_size)
        self.num_enemies = int(num_enemies)
        self.chase_prob = float(chase_prob)
        self.pellet_reward = float(pellet_reward)
        self.clear_bonus = float(clear_bonus)
        self.enemy_penalty = float(enemy_penalty)
        self.wall_density = float(wall_density)
        self.enemy_move_every = int(enemy_move_every)

    # ------------------------------------------------------------------ #
    def _reset_game(self):
        self.level = 0
        self._spawn_level()

    def _spawn_level(self):
        """Generate walls, pellets, and starting positions for a new level."""
        size = self.grid_size
        self.level += 1
        self.walls = np.zeros((size, size), dtype=bool)
        interior = self._rng.random((size - 2, size - 2)) < self.wall_density
        self.walls[1:-1, 1:-1] = interior
        # Border walls.
        self.walls[0, :] = True
        self.walls[-1, :] = True
        self.walls[:, 0] = True
        self.walls[:, -1] = True
        # Player starts at the centre (carve it free).
        self.player = np.array([size // 2, size // 2])
        self.walls[tuple(self.player)] = False
        # Pellets on every free cell except the player's.
        self.pellets = ~self.walls
        self.pellets[tuple(self.player)] = False
        # Enemies start in the corners.
        corners = [(1, 1), (1, size - 2), (size - 2, 1), (size - 2, size - 2)]
        self.enemies = []
        for i in range(self.num_enemies):
            pos = np.array(corners[i % len(corners)])
            self.walls[tuple(pos)] = False
            self.pellets[tuple(pos)] = False
            self.enemies.append(pos.copy())
        self._tick = 0

    def _try_move(self, position, delta):
        """Return the new position after attempting a move (walls block)."""
        target = position + delta
        if self.walls[tuple(target)]:
            return position
        return target

    def _step_game(self, action):
        reward = 0.0
        life_lost = False
        self._tick += 1

        deltas = {
            Action.UP: np.array([-1, 0]),
            Action.DOWN: np.array([1, 0]),
            Action.LEFT: np.array([0, -1]),
            Action.RIGHT: np.array([0, 1]),
        }
        if action in deltas:
            self.player = self._try_move(self.player, deltas[action])

        # Collect pellet.
        if self.pellets[tuple(self.player)]:
            self.pellets[tuple(self.player)] = False
            reward += self.pellet_reward

        # Enemies move (chase with probability chase_prob, random otherwise),
        # harder levels move every tick even if enemy_move_every > 1.
        move_period = max(1, self.enemy_move_every - (self.level - 1))
        if self._tick % move_period == 0:
            for enemy in self.enemies:
                if self._rng.random() < min(0.95, self.chase_prob + 0.05 * (self.level - 1)):
                    diff = self.player - enemy
                    if abs(diff[0]) >= abs(diff[1]):
                        delta = np.array([np.sign(diff[0]), 0], dtype=int)
                    else:
                        delta = np.array([0, np.sign(diff[1])], dtype=int)
                else:
                    delta = list(deltas.values())[self._rng.integers(4)]
                enemy[:] = self._try_move(enemy, delta)

        # Collision with an enemy.
        for enemy in self.enemies:
            if np.array_equal(enemy, self.player):
                life_lost = True
                reward -= self.enemy_penalty
                # Respawn the player at the centre after being caught.
                self.player = np.array([self.grid_size // 2, self.grid_size // 2])
                break

        # Level cleared.
        if not self.pellets.any():
            reward += self.clear_bonus * self.level
            self._spawn_level()

        return reward, life_lost

    def _render_objects(self, canvas):
        size = self.grid_size
        cell = 1.0 / size
        for row in range(size):
            for col in range(size):
                x = (col + 0.5) * cell
                y = (row + 0.5) * cell
                if self.walls[row, col]:
                    self.draw_rect(canvas, x, y, cell, cell, 0.3)
                elif self.pellets[row, col]:
                    self.draw_point(canvas, x, y, 0.5, radius=0)
        for enemy in self.enemies:
            x = (enemy[1] + 0.5) * cell
            y = (enemy[0] + 0.5) * cell
            self.draw_rect(canvas, x, y, cell * 0.8, cell * 0.8, 0.7)
        px = (self.player[1] + 0.5) * cell
        py = (self.player[0] + 0.5) * cell
        self.draw_rect(canvas, px, py, cell * 0.8, cell * 0.8, 1.0)
