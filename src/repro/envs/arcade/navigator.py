"""Free-navigation shooter engine (ChopperCommand, Seaquest, BeamRider, ...).

The player moves freely in two dimensions.  Targets spawn at the edges and
drift across the field; shooting one yields a reward.  Hazards also spawn and
must be avoided.  Some games (Seaquest, ChopperCommand) add "rescue" objects
that pay a bonus when touched.  This single engine, with different spawn rates
and reward scales, covers the flight / scrolling games of the paper's suite.

Since the batched-runtime refactor the physics live in
:class:`repro.envs.batched.navigator.BatchedNavigatorEngine`; this class is
the single-env (``num_envs=1``) view of one engine lane.
"""

from __future__ import annotations

import numpy as np

from ..batched.navigator import BatchedNavigatorEngine
from ..batched.view import BatchedGameView

__all__ = ["NavigatorGame"]


class NavigatorGame(BatchedGameView):
    """Configurable free-movement shooter.

    Parameters
    ----------
    target_points:
        Reward for destroying one target.
    rescue_points:
        Reward for touching a rescue object (0 disables rescues).
    target_spawn_prob, hazard_spawn_prob, rescue_spawn_prob:
        Per-tick spawn probabilities.
    target_speed, hazard_speed:
        Drift speeds of spawned objects.
    player_speed, bullet_speed:
        Player / bullet speeds.
    vertical_motion:
        Whether the player may move vertically (False pins it to the bottom
        row, making the game behave like a horizontally scrolling shooter).
    """

    engine_cls = BatchedNavigatorEngine

    def __init__(
        self,
        game_id="ChopperCommand",
        target_points=100.0,
        rescue_points=0.0,
        target_spawn_prob=0.12,
        hazard_spawn_prob=0.06,
        rescue_spawn_prob=0.0,
        target_speed=0.015,
        hazard_speed=0.02,
        player_speed=0.05,
        bullet_speed=0.08,
        max_objects=8,
        vertical_motion=True,
        **kwargs,
    ):
        self.target_points = float(target_points)
        self.rescue_points = float(rescue_points)
        self.target_spawn_prob = float(target_spawn_prob)
        self.hazard_spawn_prob = float(hazard_spawn_prob)
        self.rescue_spawn_prob = float(rescue_spawn_prob)
        self.target_speed = float(target_speed)
        self.hazard_speed = float(hazard_speed)
        self.player_speed = float(player_speed)
        self.bullet_speed = float(bullet_speed)
        self.max_objects = int(max_objects)
        self.vertical_motion = bool(vertical_motion)
        super().__init__(
            game_id=game_id,
            engine_params=dict(
                target_points=target_points,
                rescue_points=rescue_points,
                target_spawn_prob=target_spawn_prob,
                hazard_spawn_prob=hazard_spawn_prob,
                rescue_spawn_prob=rescue_spawn_prob,
                target_speed=target_speed,
                hazard_speed=hazard_speed,
                player_speed=player_speed,
                bullet_speed=bullet_speed,
                max_objects=max_objects,
                vertical_motion=vertical_motion,
            ),
            **kwargs,
        )

    # ------------------------------------------------------------------ #
    # Lane views of the game state (read-only introspection)
    # ------------------------------------------------------------------ #
    @property
    def player_x(self):
        return self._lane_float(self._engine.player_x)

    @property
    def player_y(self):
        return self._lane_float(self._engine.player_y)

    @property
    def facing(self):
        return self._lane_float(self._engine.facing)

    def _group_view(self, group):
        """Alive objects of a slot group as ``[x, y, vx]`` in spawn order."""
        slots = np.flatnonzero(group.alive[0])
        slots = slots[np.argsort(group.seq[0, slots], kind="stable")]
        return [
            [float(group.x[0, s]), float(group.y[0, s]), float(group.vx[0, s])]
            for s in slots
        ]

    @property
    def targets(self):
        return self._group_view(self._engine.targets)

    @property
    def hazards(self):
        return self._group_view(self._engine.hazards)

    @property
    def rescues(self):
        return self._group_view(self._engine.rescues)

    @property
    def bullets(self):
        """In-flight bullets as ``[x, y, vx, vy]`` in firing order."""
        engine = self._engine
        slots = np.flatnonzero(engine.bullet_alive[0])
        slots = slots[np.argsort(engine.bullet_seq[0, slots], kind="stable")]
        return [
            [
                float(engine.bullet_x[0, s]),
                float(engine.bullet_y[0, s]),
                float(engine.bullet_vx[0, s]),
                float(engine.bullet_vy[0, s]),
            ]
            for s in slots
        ]
