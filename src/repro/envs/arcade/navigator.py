"""Free-navigation shooter engine (ChopperCommand, Seaquest, BeamRider, ...).

The player moves freely in two dimensions.  Targets spawn at the edges and
drift across the field; shooting one yields a reward.  Hazards also spawn and
must be avoided.  Some games (Seaquest, ChopperCommand) add "rescue" objects
that pay a bonus when touched.  This single engine, with different spawn rates
and reward scales, covers the flight / scrolling games of the paper's suite.
"""

from __future__ import annotations

import numpy as np

from ..base import Action, ArcadeGame

__all__ = ["NavigatorGame"]


class NavigatorGame(ArcadeGame):
    """Configurable free-movement shooter.

    Parameters
    ----------
    target_points:
        Reward for destroying one target.
    rescue_points:
        Reward for touching a rescue object (0 disables rescues).
    target_spawn_prob, hazard_spawn_prob, rescue_spawn_prob:
        Per-tick spawn probabilities.
    target_speed, hazard_speed:
        Drift speeds of spawned objects.
    player_speed, bullet_speed:
        Player / bullet speeds.
    vertical_motion:
        Whether the player may move vertically (False pins it to the bottom
        row, making the game behave like a horizontally scrolling shooter).
    """

    def __init__(
        self,
        game_id="ChopperCommand",
        target_points=100.0,
        rescue_points=0.0,
        target_spawn_prob=0.12,
        hazard_spawn_prob=0.06,
        rescue_spawn_prob=0.0,
        target_speed=0.015,
        hazard_speed=0.02,
        player_speed=0.05,
        bullet_speed=0.08,
        max_objects=8,
        vertical_motion=True,
        **kwargs,
    ):
        super().__init__(game_id=game_id, **kwargs)
        self.target_points = float(target_points)
        self.rescue_points = float(rescue_points)
        self.target_spawn_prob = float(target_spawn_prob)
        self.hazard_spawn_prob = float(hazard_spawn_prob)
        self.rescue_spawn_prob = float(rescue_spawn_prob)
        self.target_speed = float(target_speed)
        self.hazard_speed = float(hazard_speed)
        self.player_speed = float(player_speed)
        self.bullet_speed = float(bullet_speed)
        self.max_objects = int(max_objects)
        self.vertical_motion = bool(vertical_motion)

    # ------------------------------------------------------------------ #
    def _reset_game(self):
        self.player_x = 0.5
        self.player_y = 0.8 if self.vertical_motion else 0.9
        self.facing = 1.0  # +1 right, -1 left; used when the player can fly freely
        self.targets = []  # each: [x, y, vx]
        self.hazards = []
        self.rescues = []
        self.bullets = []  # each: [x, y, vx, vy]

    def _spawn(self, speed):
        """Spawn an object at a random vertical position on either edge."""
        side = self._rng.integers(2)
        x = 0.02 if side == 0 else 0.98
        vx = speed if side == 0 else -speed
        y = self._rng.uniform(0.1, 0.85)
        return [x, y, vx]

    def _step_game(self, action):
        reward = 0.0
        life_lost = False

        # Player control.
        if action == Action.LEFT:
            self.player_x -= self.player_speed
            self.facing = -1.0
        elif action == Action.RIGHT:
            self.player_x += self.player_speed
            self.facing = 1.0
        elif action == Action.UP and self.vertical_motion:
            self.player_y -= self.player_speed
        elif action == Action.DOWN and self.vertical_motion:
            self.player_y += self.player_speed
        elif action == Action.FIRE and len(self.bullets) < 3:
            if self.vertical_motion:
                # Free-flight games shoot in the direction the player faces.
                self.bullets.append(
                    [self.player_x, self.player_y, self.facing * self.bullet_speed, 0.0]
                )
            else:
                # Bottom-pinned games (BeamRider, BattleZone) shoot upward.
                self.bullets.append([self.player_x, self.player_y, 0.0, -self.bullet_speed])
        self.player_x = float(np.clip(self.player_x, 0.05, 0.95))
        self.player_y = float(np.clip(self.player_y, 0.1, 0.9))

        # Spawning.
        if len(self.targets) < self.max_objects and self._rng.random() < self.target_spawn_prob:
            self.targets.append(self._spawn(self.target_speed))
        if len(self.hazards) < self.max_objects and self._rng.random() < self.hazard_spawn_prob:
            self.hazards.append(self._spawn(self.hazard_speed))
        if (
            self.rescue_points > 0.0
            and len(self.rescues) < self.max_objects
            and self._rng.random() < self.rescue_spawn_prob
        ):
            self.rescues.append(self._spawn(self.target_speed * 0.5))

        # Object drift.
        for group in (self.targets, self.hazards, self.rescues):
            for obj in group:
                obj[0] += obj[2]
        self.targets = [o for o in self.targets if 0.0 < o[0] < 1.0]
        self.hazards = [o for o in self.hazards if 0.0 < o[0] < 1.0]
        self.rescues = [o for o in self.rescues if 0.0 < o[0] < 1.0]

        # Bullets fly and destroy targets.
        surviving_bullets = []
        for bullet in self.bullets:
            bullet[0] += bullet[2]
            bullet[1] += bullet[3]
            if not (0.0 < bullet[0] < 1.0 and 0.0 < bullet[1] < 1.0):
                continue
            hit_index = None
            for i, target in enumerate(self.targets):
                if abs(bullet[0] - target[0]) < 0.05 and abs(bullet[1] - target[1]) < 0.05:
                    hit_index = i
                    break
            if hit_index is not None:
                del self.targets[hit_index]
                reward += self.target_points
            else:
                surviving_bullets.append(bullet)
        self.bullets = surviving_bullets

        # Hazard collisions.
        surviving_hazards = []
        for hazard in self.hazards:
            if abs(hazard[0] - self.player_x) < 0.05 and abs(hazard[1] - self.player_y) < 0.05:
                life_lost = True
                continue
            surviving_hazards.append(hazard)
        self.hazards = surviving_hazards

        # Rescue pickups.
        surviving_rescues = []
        for rescue in self.rescues:
            if abs(rescue[0] - self.player_x) < 0.06 and abs(rescue[1] - self.player_y) < 0.06:
                reward += self.rescue_points
                continue
            surviving_rescues.append(rescue)
        self.rescues = surviving_rescues

        return reward, life_lost

    def _render_objects(self, canvas):
        self.draw_rect(canvas, self.player_x, self.player_y, 0.07, 0.05, 1.0)
        for target in self.targets:
            self.draw_rect(canvas, target[0], target[1], 0.05, 0.04, 0.6)
        for hazard in self.hazards:
            self.draw_rect(canvas, hazard[0], hazard[1], 0.05, 0.04, 0.35)
        for rescue in self.rescues:
            self.draw_point(canvas, rescue[0], rescue[1], 0.8, radius=1)
        for bullet in self.bullets:
            self.draw_point(canvas, bullet[0], bullet[1], 0.9, radius=0)
