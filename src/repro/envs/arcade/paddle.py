"""Paddle-and-ball arcade engine (Breakout, Pong, Tennis).

A ball bounces inside the playfield.  The player controls a paddle at the
bottom; depending on configuration the top of the field is either a wall of
bricks (Breakout-style: destroying a brick scores points) or an opponent
paddle with a simple tracking policy (Pong/Tennis-style: scoring happens when
the ball passes the opponent, a life/point is lost when it passes the player).
"""

from __future__ import annotations

import numpy as np

from ..base import Action, ArcadeGame

__all__ = ["PaddleGame"]


class PaddleGame(ArcadeGame):
    """Configurable paddle game.

    Parameters
    ----------
    brick_rows:
        Number of brick rows at the top.  Zero means an opponent paddle is
        used instead (Pong/Tennis mode).
    brick_points:
        Reward for destroying one brick.
    point_reward / point_penalty:
        Reward for scoring past the opponent / penalty when the player misses
        (only used in opponent mode).
    ball_speed:
        Ball displacement per tick (fraction of the playfield).
    paddle_width:
        Player paddle width (fraction of the playfield).
    opponent_skill:
        Probability per tick that the opponent tracks the ball correctly.
    """

    def __init__(
        self,
        game_id="Breakout",
        brick_rows=4,
        brick_cols=8,
        brick_points=1.0,
        point_reward=1.0,
        point_penalty=1.0,
        ball_speed=0.04,
        paddle_width=0.2,
        paddle_speed=0.06,
        opponent_skill=0.7,
        **kwargs,
    ):
        super().__init__(game_id=game_id, **kwargs)
        self.brick_rows = int(brick_rows)
        self.brick_cols = int(brick_cols)
        self.brick_points = float(brick_points)
        self.point_reward = float(point_reward)
        self.point_penalty = float(point_penalty)
        self.ball_speed = float(ball_speed)
        self.paddle_width = float(paddle_width)
        self.paddle_speed = float(paddle_speed)
        self.opponent_skill = float(opponent_skill)
        self.uses_bricks = self.brick_rows > 0

    # ------------------------------------------------------------------ #
    # Game state
    # ------------------------------------------------------------------ #
    def _reset_game(self):
        self.paddle_x = 0.5
        self.opponent_x = 0.5
        self.ball_live = False
        self._spawn_ball()
        if self.uses_bricks:
            self.bricks = np.ones((self.brick_rows, self.brick_cols), dtype=bool)
        else:
            self.bricks = np.zeros((0, 0), dtype=bool)

    def _spawn_ball(self):
        """Place the ball on the player's paddle waiting for FIRE."""
        self.ball_x = self.paddle_x
        self.ball_y = 0.82
        angle = self._rng.uniform(np.pi * 0.25, np.pi * 0.75)
        self.ball_vx = self.ball_speed * np.cos(angle)
        self.ball_vy = -self.ball_speed * np.sin(angle)
        self.ball_live = False

    def _step_game(self, action):
        reward = 0.0
        life_lost = False

        # Player paddle control.
        if action == Action.LEFT:
            self.paddle_x -= self.paddle_speed
        elif action == Action.RIGHT:
            self.paddle_x += self.paddle_speed
        elif action == Action.FIRE and not self.ball_live:
            self.ball_live = True
        self.paddle_x = float(np.clip(self.paddle_x, 0.05, 0.95))

        if not self.ball_live:
            # Ball follows the paddle until launched.
            self.ball_x = self.paddle_x
            return reward, life_lost

        # Opponent paddle (Pong/Tennis mode) tracks the ball imperfectly.
        if not self.uses_bricks:
            if self._rng.random() < self.opponent_skill:
                direction = np.sign(self.ball_x - self.opponent_x)
                self.opponent_x += direction * self.paddle_speed * 0.8
            self.opponent_x = float(np.clip(self.opponent_x, 0.05, 0.95))

        # Ball motion.
        self.ball_x += self.ball_vx
        self.ball_y += self.ball_vy

        # Side walls.
        if self.ball_x <= 0.02 or self.ball_x >= 0.98:
            self.ball_vx = -self.ball_vx
            self.ball_x = float(np.clip(self.ball_x, 0.02, 0.98))

        if self.uses_bricks:
            # Ceiling bounce.
            if self.ball_y <= 0.02:
                self.ball_vy = abs(self.ball_vy)
            # Brick collisions: bricks occupy y in [0.08, 0.08 + rows*0.05].
            row = int((self.ball_y - 0.08) / 0.05)
            col = int(self.ball_x * self.brick_cols)
            if 0 <= row < self.brick_rows and 0 <= col < self.brick_cols and self.bricks[row, col]:
                self.bricks[row, col] = False
                reward += self.brick_points * (self.brick_rows - row)
                self.ball_vy = abs(self.ball_vy)
                if not self.bricks.any():
                    # New wave: refill the wall and speed the ball up slightly.
                    self.bricks[:] = True
                    self.ball_vx *= 1.1
                    self.ball_vy *= 1.1
        else:
            # Opponent end: score when the ball passes the opponent paddle.
            if self.ball_y <= 0.05:
                if abs(self.ball_x - self.opponent_x) <= self.paddle_width / 2:
                    self.ball_vy = abs(self.ball_vy)
                else:
                    reward += self.point_reward
                    self._spawn_ball()
                    return reward, life_lost

        # Player end: bounce off the paddle or lose a life.
        if self.ball_y >= 0.88:
            if abs(self.ball_x - self.paddle_x) <= self.paddle_width / 2:
                self.ball_vy = -abs(self.ball_vy)
                # English: hitting with the paddle edge skews the ball.
                offset = (self.ball_x - self.paddle_x) / (self.paddle_width / 2)
                self.ball_vx += 0.01 * offset
            else:
                life_lost = True
                if not self.uses_bricks:
                    reward -= self.point_penalty
                self._spawn_ball()

        return reward, life_lost

    def _brick_layer_canvas(self):
        """Cached max-composited brick layer.

        Brick geometry is static and bricks only ever disappear, so the
        per-tick render composites one pre-drawn canvas instead of issuing a
        ``draw_rect`` per surviving brick (the dominant render cost at the
        rollout batch sizes the runtime sustains).  The layer is re-drawn
        whenever the alive mask changed (a brick was destroyed or reset).
        """
        layer = getattr(self, "_brick_layer", None)
        if layer is not None and np.array_equal(self._brick_layer_mask, self.bricks):
            return layer
        layer = np.zeros((self.render_size, self.render_size), dtype=np.float64)
        for row in range(self.brick_rows):
            for col in range(self.brick_cols):
                if self.bricks[row, col]:
                    x = (col + 0.5) / self.brick_cols
                    y = 0.08 + row * 0.05
                    self.draw_rect(layer, x, y, 0.9 / self.brick_cols, 0.03,
                                   0.4 + 0.1 * (self.brick_rows - row))
        self._brick_layer = layer
        self._brick_layer_mask = self.bricks.copy()
        return layer

    def _render_objects(self, canvas):
        # Player paddle.
        self.draw_rect(canvas, self.paddle_x, 0.92, self.paddle_width, 0.03, 0.8)
        # Ball.
        self.draw_point(canvas, self.ball_x, self.ball_y, 1.0, radius=1)
        if self.uses_bricks:
            # Same result as per-brick draw_rect calls: draws max-composite.
            np.maximum(canvas, self._brick_layer_canvas(), out=canvas)
        else:
            self.draw_rect(canvas, self.opponent_x, 0.05, self.paddle_width, 0.03, 0.6)
