"""Paddle-and-ball arcade engine (Breakout, Pong, Tennis).

A ball bounces inside the playfield.  The player controls a paddle at the
bottom; depending on configuration the top of the field is either a wall of
bricks (Breakout-style: destroying a brick scores points) or an opponent
paddle with a simple tracking policy (Pong/Tennis-style: scoring happens when
the ball passes the opponent, a life/point is lost when it passes the player).

Since the batched-runtime refactor the physics live in
:class:`repro.envs.batched.paddle.BatchedPaddleEngine`; this class is the
single-env (``num_envs=1``) view of one engine lane.
"""

from __future__ import annotations

from ..batched.paddle import BatchedPaddleEngine
from ..batched.view import BatchedGameView

__all__ = ["PaddleGame"]


class PaddleGame(BatchedGameView):
    """Configurable paddle game.

    Parameters
    ----------
    brick_rows:
        Number of brick rows at the top.  Zero means an opponent paddle is
        used instead (Pong/Tennis mode).
    brick_points:
        Reward for destroying one brick.
    point_reward / point_penalty:
        Reward for scoring past the opponent / penalty when the player misses
        (only used in opponent mode).
    ball_speed:
        Ball displacement per tick (fraction of the playfield).
    paddle_width:
        Player paddle width (fraction of the playfield).
    opponent_skill:
        Probability per tick that the opponent tracks the ball correctly.
    """

    engine_cls = BatchedPaddleEngine

    def __init__(
        self,
        game_id="Breakout",
        brick_rows=4,
        brick_cols=8,
        brick_points=1.0,
        point_reward=1.0,
        point_penalty=1.0,
        ball_speed=0.04,
        paddle_width=0.2,
        paddle_speed=0.06,
        opponent_skill=0.7,
        **kwargs,
    ):
        self.brick_rows = int(brick_rows)
        self.brick_cols = int(brick_cols)
        self.brick_points = float(brick_points)
        self.point_reward = float(point_reward)
        self.point_penalty = float(point_penalty)
        self.ball_speed = float(ball_speed)
        self.paddle_width = float(paddle_width)
        self.paddle_speed = float(paddle_speed)
        self.opponent_skill = float(opponent_skill)
        self.uses_bricks = self.brick_rows > 0
        super().__init__(
            game_id=game_id,
            engine_params=dict(
                brick_rows=brick_rows,
                brick_cols=brick_cols,
                brick_points=brick_points,
                point_reward=point_reward,
                point_penalty=point_penalty,
                ball_speed=ball_speed,
                paddle_width=paddle_width,
                paddle_speed=paddle_speed,
                opponent_skill=opponent_skill,
            ),
            **kwargs,
        )

    # ------------------------------------------------------------------ #
    # Lane views of the game state (read-only introspection)
    # ------------------------------------------------------------------ #
    @property
    def paddle_x(self):
        return self._lane_float(self._engine.paddle_x)

    @property
    def opponent_x(self):
        return self._lane_float(self._engine.opponent_x)

    @property
    def ball_x(self):
        return self._lane_float(self._engine.ball_x)

    @property
    def ball_y(self):
        return self._lane_float(self._engine.ball_y)

    @property
    def ball_vx(self):
        return self._lane_float(self._engine.ball_vx)

    @property
    def ball_vy(self):
        return self._lane_float(self._engine.ball_vy)

    @property
    def ball_live(self):
        return bool(self._engine.ball_live[0])

    @property
    def bricks(self):
        return self._engine.bricks[0]
