"""Fixed-shooter arcade engine (SpaceInvaders, Assault, DemonAttack, ...).

A formation of enemies marches horizontally and descends towards the player,
who moves along the bottom of the screen and fires bullets upward.  Enemies
drop bombs; being hit or letting the formation reach the bottom loses a life.
Clearing a wave respawns a faster formation with a wave bonus, which is what
lets good agents reach the very large scores seen on SpaceInvaders / Asterix /
DemonAttack in the paper.
"""

from __future__ import annotations

import numpy as np

from ..base import Action, ArcadeGame

__all__ = ["ShooterGame"]


class ShooterGame(ArcadeGame):
    """Configurable fixed shooter.

    Parameters
    ----------
    enemy_rows, enemy_cols:
        Size of the enemy formation.
    enemy_points:
        Base reward for destroying one enemy (scaled by row: higher rows pay more).
    enemy_speed:
        Horizontal formation speed per tick.
    descend_step:
        How far the formation descends when it bounces off a side wall.
    bomb_prob:
        Per-tick probability that some enemy drops a bomb.
    wave_bonus:
        Extra reward for clearing the whole formation.
    player_speed, bullet_speed:
        Movement speeds (fractions of the playfield per tick).
    max_player_bullets:
        How many player bullets may be in flight simultaneously.
    """

    def __init__(
        self,
        game_id="SpaceInvaders",
        enemy_rows=4,
        enemy_cols=6,
        enemy_points=10.0,
        enemy_speed=0.01,
        descend_step=0.04,
        bomb_prob=0.08,
        bomb_speed=0.03,
        wave_bonus=50.0,
        player_speed=0.05,
        bullet_speed=0.08,
        max_player_bullets=2,
        **kwargs,
    ):
        super().__init__(game_id=game_id, **kwargs)
        self.enemy_rows = int(enemy_rows)
        self.enemy_cols = int(enemy_cols)
        self.enemy_points = float(enemy_points)
        self.enemy_speed = float(enemy_speed)
        self.descend_step = float(descend_step)
        self.bomb_prob = float(bomb_prob)
        self.bomb_speed = float(bomb_speed)
        self.wave_bonus = float(wave_bonus)
        self.player_speed = float(player_speed)
        self.bullet_speed = float(bullet_speed)
        self.max_player_bullets = int(max_player_bullets)

    # ------------------------------------------------------------------ #
    def _reset_game(self):
        self.player_x = 0.5
        self.wave = 0
        self._spawn_wave()
        self.bullets = []  # list of [x, y]
        self.bombs = []  # list of [x, y]

    def _spawn_wave(self):
        """Lay out a fresh enemy formation; later waves move faster."""
        self.alive = np.ones((self.enemy_rows, self.enemy_cols), dtype=bool)
        self.formation_x = 0.2
        self.formation_y = 0.08
        self.formation_dir = 1.0
        self.wave += 1
        self.current_speed = self.enemy_speed * (1.0 + 0.25 * (self.wave - 1))

    def _enemy_position(self, row, col):
        """Playfield coordinates of the enemy at ``(row, col)``."""
        x = self.formation_x + col * 0.6 / max(self.enemy_cols - 1, 1)
        y = self.formation_y + row * 0.28 / max(self.enemy_rows - 1, 1)
        return x, y

    def _step_game(self, action):
        reward = 0.0
        life_lost = False

        # Player control.
        if action == Action.LEFT:
            self.player_x -= self.player_speed
        elif action == Action.RIGHT:
            self.player_x += self.player_speed
        elif action == Action.FIRE and len(self.bullets) < self.max_player_bullets:
            self.bullets.append([self.player_x, 0.88])
        self.player_x = float(np.clip(self.player_x, 0.05, 0.95))

        # Formation movement.
        self.formation_x += self.formation_dir * self.current_speed
        rightmost = self.formation_x + 0.6
        if self.formation_x <= 0.05 or rightmost >= 0.95:
            self.formation_dir = -self.formation_dir
            self.formation_y += self.descend_step
        if self.formation_y + 0.28 >= 0.85 and self.alive.any():
            # Formation reached the player row.
            life_lost = True
            self._spawn_wave()
            return reward, life_lost

        # Enemy bombs.
        if self.alive.any() and self._rng.random() < self.bomb_prob:
            candidates = np.argwhere(self.alive)
            row, col = candidates[self._rng.integers(len(candidates))]
            x, y = self._enemy_position(row, col)
            self.bombs.append([x, y])

        # Player bullets move up and hit enemies.
        surviving_bullets = []
        for bullet in self.bullets:
            bullet[1] -= self.bullet_speed
            if bullet[1] <= 0.0:
                continue
            hit = False
            for row in range(self.enemy_rows):
                for col in range(self.enemy_cols):
                    if not self.alive[row, col]:
                        continue
                    x, y = self._enemy_position(row, col)
                    if abs(bullet[0] - x) < 0.05 and abs(bullet[1] - y) < 0.04:
                        self.alive[row, col] = False
                        # Higher (further) rows are worth more, as in Space Invaders.
                        reward += self.enemy_points * (self.enemy_rows - row)
                        hit = True
                        break
                if hit:
                    break
            if not hit:
                surviving_bullets.append(bullet)
        self.bullets = surviving_bullets

        # Bombs move down and may hit the player.
        surviving_bombs = []
        for bomb in self.bombs:
            bomb[1] += self.bomb_speed
            if bomb[1] >= 0.95:
                continue
            if bomb[1] >= 0.88 and abs(bomb[0] - self.player_x) < 0.05:
                life_lost = True
                continue
            surviving_bombs.append(bomb)
        self.bombs = surviving_bombs

        # Wave cleared.
        if not self.alive.any():
            reward += self.wave_bonus
            self._spawn_wave()

        return reward, life_lost

    def _render_objects(self, canvas):
        # Player ship.
        self.draw_rect(canvas, self.player_x, 0.92, 0.08, 0.04, 0.9)
        # Enemies (intensity varies by row so the formation has texture).
        for row in range(self.enemy_rows):
            for col in range(self.enemy_cols):
                if self.alive[row, col]:
                    x, y = self._enemy_position(row, col)
                    self.draw_rect(canvas, x, y, 0.06, 0.04, 0.4 + 0.1 * row)
        for bullet in self.bullets:
            self.draw_point(canvas, bullet[0], bullet[1], 1.0, radius=0)
        for bomb in self.bombs:
            self.draw_point(canvas, bomb[0], bomb[1], 0.7, radius=0)
