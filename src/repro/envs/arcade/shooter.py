"""Fixed-shooter arcade engine (SpaceInvaders, Assault, DemonAttack, ...).

A formation of enemies marches horizontally and descends towards the player,
who moves along the bottom of the screen and fires bullets upward.  Enemies
drop bombs; being hit or letting the formation reach the bottom loses a life.
Clearing a wave respawns a faster formation with a wave bonus, which is what
lets good agents reach the very large scores seen on SpaceInvaders / Asterix /
DemonAttack in the paper.

Since the batched-runtime refactor the physics live in
:class:`repro.envs.batched.shooter.BatchedShooterEngine`; this class is the
single-env (``num_envs=1``) view of one engine lane.
"""

from __future__ import annotations

import numpy as np

from ..batched.shooter import BatchedShooterEngine
from ..batched.view import BatchedGameView

__all__ = ["ShooterGame"]


class ShooterGame(BatchedGameView):
    """Configurable fixed shooter.

    Parameters
    ----------
    enemy_rows, enemy_cols:
        Size of the enemy formation.
    enemy_points:
        Base reward for destroying one enemy (scaled by row: higher rows pay more).
    enemy_speed:
        Horizontal formation speed per tick.
    descend_step:
        How far the formation descends when it bounces off a side wall.
    bomb_prob:
        Per-tick probability that some enemy drops a bomb.
    wave_bonus:
        Extra reward for clearing the whole formation.
    player_speed, bullet_speed:
        Movement speeds (fractions of the playfield per tick).
    max_player_bullets:
        How many player bullets may be in flight simultaneously.
    """

    engine_cls = BatchedShooterEngine

    def __init__(
        self,
        game_id="SpaceInvaders",
        enemy_rows=4,
        enemy_cols=6,
        enemy_points=10.0,
        enemy_speed=0.01,
        descend_step=0.04,
        bomb_prob=0.08,
        bomb_speed=0.03,
        wave_bonus=50.0,
        player_speed=0.05,
        bullet_speed=0.08,
        max_player_bullets=2,
        **kwargs,
    ):
        self.enemy_rows = int(enemy_rows)
        self.enemy_cols = int(enemy_cols)
        self.enemy_points = float(enemy_points)
        self.enemy_speed = float(enemy_speed)
        self.descend_step = float(descend_step)
        self.bomb_prob = float(bomb_prob)
        self.bomb_speed = float(bomb_speed)
        self.wave_bonus = float(wave_bonus)
        self.player_speed = float(player_speed)
        self.bullet_speed = float(bullet_speed)
        self.max_player_bullets = int(max_player_bullets)
        super().__init__(
            game_id=game_id,
            engine_params=dict(
                enemy_rows=enemy_rows,
                enemy_cols=enemy_cols,
                enemy_points=enemy_points,
                enemy_speed=enemy_speed,
                descend_step=descend_step,
                bomb_prob=bomb_prob,
                bomb_speed=bomb_speed,
                wave_bonus=wave_bonus,
                player_speed=player_speed,
                bullet_speed=bullet_speed,
                max_player_bullets=max_player_bullets,
            ),
            **kwargs,
        )

    # ------------------------------------------------------------------ #
    # Lane views of the game state (read-only introspection)
    # ------------------------------------------------------------------ #
    @property
    def player_x(self):
        return self._lane_float(self._engine.player_x)

    @property
    def wave(self):
        return self._lane_int(self._engine.wave)

    @property
    def current_speed(self):
        return self._lane_float(self._engine.current_speed)

    @property
    def alive(self):
        return self._engine.alive[0]

    @property
    def formation_x(self):
        return self._lane_float(self._engine.formation_x)

    @property
    def formation_y(self):
        return self._lane_float(self._engine.formation_y)

    @property
    def formation_dir(self):
        return self._lane_float(self._engine.formation_dir)

    @property
    def bullets(self):
        """In-flight player bullets as ``[x, y]`` pairs in firing order."""
        engine = self._engine
        alive = engine.bullet_alive[0]
        slots = np.flatnonzero(alive)
        slots = slots[np.argsort(engine.bullet_seq[0, slots], kind="stable")]
        return [[float(engine.bullet_x[0, s]), float(engine.bullet_y[0, s])] for s in slots]

    @property
    def bombs(self):
        """Falling enemy bombs as ``[x, y]`` pairs."""
        engine = self._engine
        slots = np.flatnonzero(engine.bomb_alive[0])
        return [[float(engine.bomb_x[0, s]), float(engine.bomb_y[0, s])] for s in slots]
