"""Environment API and the arcade-game base class.

The paper evaluates on Atari 2600 games from the Arcade Learning Environment.
ROMs and the ALE are unavailable offline, so this package provides a family of
lightweight NumPy arcade games that expose the same interface contract:

* image observations (square grey-scale frames, values in ``[0, 1]``),
* a small discrete action set,
* per-game reward scales and difficulty,
* stochasticity through a seedable ``numpy.random.Generator``.

The interface follows the classic Gym convention (``reset`` / ``step``), which
keeps the DRL training code (:mod:`repro.drl`) identical to what would run on
the real ALE.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Discrete", "Box", "Env", "ArcadeGame", "ACTION_MEANINGS", "Action"]


class Action:
    """Integer constants of the shared minimal action set."""

    NOOP = 0
    FIRE = 1
    UP = 2
    DOWN = 3
    LEFT = 4
    RIGHT = 5


#: Human-readable names of the shared action set (index == action id).
ACTION_MEANINGS = ("NOOP", "FIRE", "UP", "DOWN", "LEFT", "RIGHT")


class Discrete:
    """A discrete action space of ``n`` actions, ``{0, ..., n-1}``."""

    def __init__(self, n):
        self.n = int(n)

    def sample(self, rng):
        """Draw a uniformly random action."""
        return int(rng.integers(0, self.n))

    def contains(self, action):
        """Whether ``action`` is a valid member of the space."""
        return 0 <= int(action) < self.n

    def __repr__(self):
        return "Discrete({})".format(self.n)

    def __eq__(self, other):
        return isinstance(other, Discrete) and other.n == self.n


class Box:
    """A continuous observation space with elementwise bounds."""

    def __init__(self, low, high, shape):
        self.low = float(low)
        self.high = float(high)
        self.shape = tuple(shape)

    def contains(self, value):
        """Whether ``value`` has the right shape and lies within bounds."""
        value = np.asarray(value)
        return value.shape == self.shape and bool(
            np.all(value >= self.low - 1e-6) and np.all(value <= self.high + 1e-6)
        )

    def __repr__(self):
        return "Box(low={}, high={}, shape={})".format(self.low, self.high, self.shape)

    def __eq__(self, other):
        return (
            isinstance(other, Box)
            and other.shape == self.shape
            and other.low == self.low
            and other.high == self.high
        )


class Env:
    """Abstract environment interface (Gym-style)."""

    action_space = None
    observation_space = None

    def reset(self, seed=None):
        """Start a new episode and return the first observation."""
        raise NotImplementedError

    def step(self, action):
        """Apply ``action``; return ``(observation, reward, done, info)``."""
        raise NotImplementedError

    def close(self):
        """Release resources (no-op for in-memory games)."""

    def seed(self, seed):
        """Reseed the environment's random generator."""
        self._rng = np.random.default_rng(seed)
        return seed


class ArcadeGame(Env):
    """Base class for the synthetic arcade games.

    Sub-classes implement ``_reset_game`` / ``_step_game`` / ``_render_objects``
    in terms of abstract game state; this base class provides the canvas
    renderer, lives handling, score accounting and episode-length limits.
    (The five shipped engines no longer use these hooks: since the batched
    runtime refactor they are ``num_envs=1`` views over the struct-of-arrays
    engines in :mod:`repro.envs.batched` — see
    :class:`repro.envs.batched.view.BatchedGameView`.  The hook-based path
    remains fully supported for custom games.)

    Parameters
    ----------
    game_id:
        Name of the game (used in reprs and the registry).
    render_size:
        Side length of the square grey-scale observation canvas.
    max_episode_steps:
        Hard cap on episode length (the ALE applies a similar cap).
    lives:
        Number of lives before the episode terminates.
    score_scale:
        Multiplier applied to every reward, reproducing per-game score
        magnitudes (Atlantis scores are ~1e6, Boxing is capped near 100, ...).
    sticky_action_prob:
        Probability of repeating the previous action instead of the new one,
        the standard ALE stochasticity mechanism.
    """

    metadata = {"render_modes": ["array"]}

    def __init__(
        self,
        game_id,
        render_size=84,
        max_episode_steps=1000,
        lives=3,
        score_scale=1.0,
        sticky_action_prob=0.0,
        seed=0,
    ):
        self.game_id = game_id
        self.render_size = int(render_size)
        self.max_episode_steps = int(max_episode_steps)
        self.initial_lives = int(lives)
        self.score_scale = float(score_scale)
        self.sticky_action_prob = float(sticky_action_prob)
        self.action_space = Discrete(len(ACTION_MEANINGS))
        self.observation_space = Box(0.0, 1.0, (self.render_size, self.render_size))
        self._rng = np.random.default_rng(seed)
        self._elapsed = 0
        self._lives = self.initial_lives
        self._score = 0.0
        self._last_action = Action.NOOP
        self._done = True

    # ------------------------------------------------------------------ #
    # Hooks for subclasses
    # ------------------------------------------------------------------ #
    def _reset_game(self):
        """Reset game-specific state (positions, waves, timers)."""
        raise NotImplementedError

    def _step_game(self, action):
        """Advance the game by one tick.

        Returns
        -------
        reward:
            Un-scaled reward earned this tick.
        life_lost:
            Whether the player lost a life this tick.
        """
        raise NotImplementedError

    def _render_objects(self, canvas):
        """Draw all game objects onto ``canvas`` (in place)."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Env interface
    # ------------------------------------------------------------------ #
    def reset(self, seed=None):
        if seed is not None:
            self._rng = np.random.default_rng(seed)
        self._elapsed = 0
        self._lives = self.initial_lives
        self._score = 0.0
        self._last_action = Action.NOOP
        self._done = False
        self._reset_game()
        return self._observation()

    def step(self, action):
        if self._done:
            raise RuntimeError("step() called on a finished episode; call reset() first")
        action = int(action)
        if not self.action_space.contains(action):
            raise ValueError("invalid action {}".format(action))
        if self.sticky_action_prob > 0.0 and self._rng.random() < self.sticky_action_prob:
            action = self._last_action
        self._last_action = action

        reward, life_lost = self._step_game(action)
        reward = float(reward) * self.score_scale
        self._score += reward
        self._elapsed += 1

        if life_lost:
            self._lives -= 1
        done = self._lives <= 0 or self._elapsed >= self.max_episode_steps or self._is_game_over()
        self._done = done
        info = {
            "lives": self._lives,
            "score": self._score,
            "elapsed_steps": self._elapsed,
            "life_lost": life_lost,
        }
        return self._observation(), reward, done, info

    def _is_game_over(self):
        """Game-specific extra termination condition (default: none)."""
        return False

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def _observation(self):
        canvas = np.zeros((self.render_size, self.render_size), dtype=np.float64)
        self._render_objects(canvas)
        return np.clip(canvas, 0.0, 1.0)

    def draw_rect(self, canvas, x, y, width, height, intensity):
        """Draw an axis-aligned rectangle given fractional coordinates.

        ``x, y`` are the centre of the rectangle in ``[0, 1]`` (x to the right,
        y downward); ``width`` / ``height`` are fractional extents.
        """
        size = self.render_size
        half_w = max(1, int(round(width * size / 2)))
        half_h = max(1, int(round(height * size / 2)))
        cx = int(round(x * (size - 1)))
        cy = int(round(y * (size - 1)))
        x0, x1 = max(0, cx - half_w), min(size, cx + half_w)
        y0, y1 = max(0, cy - half_h), min(size, cy + half_h)
        if x0 < x1 and y0 < y1:
            canvas[y0:y1, x0:x1] = np.maximum(canvas[y0:y1, x0:x1], intensity)

    def draw_point(self, canvas, x, y, intensity, radius=1):
        """Draw a small square blob centred at fractional ``(x, y)``."""
        size = self.render_size
        cx = int(round(x * (size - 1)))
        cy = int(round(y * (size - 1)))
        x0, x1 = max(0, cx - radius), min(size, cx + radius + 1)
        y0, y1 = max(0, cy - radius), min(size, cy + radius + 1)
        if x0 < x1 and y0 < y1:
            canvas[y0:y1, x0:x1] = np.maximum(canvas[y0:y1, x0:x1], intensity)

    # ------------------------------------------------------------------ #
    # Introspection helpers
    # ------------------------------------------------------------------ #
    @property
    def lives(self):
        """Remaining lives in the current episode."""
        return self._lives

    @property
    def score(self):
        """Accumulated (scaled) score of the current episode."""
        return self._score

    @property
    def elapsed_steps(self):
        """Number of steps taken in the current episode."""
        return self._elapsed

    def get_action_meanings(self):
        """Names of the actions in this game's action set."""
        return list(ACTION_MEANINGS)

    def __repr__(self):
        return "{}(game_id={!r}, obs={}x{})".format(
            type(self).__name__, self.game_id, self.render_size, self.render_size
        )
