"""Batched arcade runtime: struct-of-arrays engines + array-native rollouts.

The subsystem behind the ``batched`` vector-env backend.  Each game family
has one engine holding the state of ``num_envs`` game copies in
``(num_envs, ...)`` arrays (:mod:`.paddle`, :mod:`.shooter`, :mod:`.maze`,
:mod:`.duel`, :mod:`.navigator`, all built on :mod:`.core`);
:class:`~repro.envs.batched.pipeline.BatchedVectorEnv` wraps one engine with
batched frame-skip / resize / frame-stack / reward-clip transforms; and
:class:`~repro.envs.batched.view.BatchedGameView` re-exposes a single lane
through the classic ``ArcadeGame`` API (the serial game classes are such
views, which is what makes serial and batched trajectories bit-identical).
"""

from .core import BatchedArcadeEngine, BatchedUnsupportedError, blit_points, blit_rects
from .duel import BatchedDuelEngine
from .maze import BatchedMazeEngine
from .navigator import BatchedNavigatorEngine
from .paddle import BatchedPaddleEngine
from .pipeline import BATCHED_ENGINES, BatchedVectorEnv, batched_engine_for
from .shooter import BatchedShooterEngine
from .view import BatchedGameView

__all__ = [
    "BatchedArcadeEngine",
    "BatchedUnsupportedError",
    "BatchedGameView",
    "BatchedPaddleEngine",
    "BatchedShooterEngine",
    "BatchedMazeEngine",
    "BatchedNavigatorEngine",
    "BatchedDuelEngine",
    "BatchedVectorEnv",
    "BATCHED_ENGINES",
    "batched_engine_for",
    "blit_rects",
    "blit_points",
]
