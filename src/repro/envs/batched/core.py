"""Struct-of-arrays core of the batched arcade runtime.

Every game engine in :mod:`repro.envs.batched` keeps the state of
``num_envs`` independent game copies in ``(num_envs, ...)`` NumPy arrays and
advances the whole batch per tick with vectorised physics.  The design goal
is *bit-exact equivalence with the serial engines*: stepping a batch of N
games produces, lane by lane, exactly the float64 trajectory that N
independent single-env games produce.  Three rules make that hold:

* **Elementwise physics.**  All arithmetic along the env axis is elementwise
  (masked adds, ``np.where`` selects, fancy-indexed updates), so a lane's
  values never depend on the batch size or on other lanes.
* **Per-env RNG streams, serial draw order.**  Each lane owns its own
  ``numpy.random.Generator`` (the same ``SeedSequence`` plumbing the serial
  :class:`~repro.envs.vector_env.VectorEnv` uses).  Scalar draws are fetched
  lane by lane in exactly the conditional order the serial engine would draw
  them — randomness is the one genuinely sequential part of a step, and it
  is a handful of scalar draws per lane per tick.
* **Masked auto-reset and sub-stepping.**  ``step(actions, active=...)``
  leaves inactive lanes untouched (state, RNG, reward), which is what lets
  the batched frame-skip pipeline reproduce the serial wrappers' early
  stop on ``done`` exactly.

Rendering is batched too: sprites are *blitted* into a shared
``(num_envs, H, W)`` canvas by the gather/max/scatter helpers below instead
of per-object Python loops (see :func:`blit_rects` / :func:`blit_points`).
"""

from __future__ import annotations

import numpy as np

from ..base import ACTION_MEANINGS, Action, Box, Discrete

__all__ = [
    "BatchedArcadeEngine",
    "BatchedUnsupportedError",
    "blit_rects",
    "blit_points",
    "take_lanes",
    "masked_nonzero",
]


class BatchedUnsupportedError(ValueError):
    """Raised when a configuration cannot run on the batched backend.

    :func:`repro.envs.make_vector_env` catches this during backend
    auto-selection and falls back to the serial backend.
    """


def _as_lane_array(value, count):
    """Broadcast a scalar or per-entry value to a float64 ``(count,)`` array."""
    arr = np.asarray(value, dtype=np.float64)
    if arr.ndim == 0:
        return np.broadcast_to(arr, (count,))
    return arr


def take_lanes(array, lanes):
    """``array`` restricted to ``lanes`` (``None`` = all lanes, zero-copy).

    Render helper: the full-batch render path keeps handing the engines'
    per-lane arrays to the blitters untouched, while a lane-masked render
    gathers just the masked rows.
    """
    return array if lanes is None else array[lanes]


def masked_nonzero(array, lanes):
    """``np.nonzero`` over the ``lanes``-restricted rows of ``array``.

    The first returned axis holds *global* lane indices (remapped through
    ``lanes`` when a mask is active), so the result indexes per-lane state
    and the canvas directly — centralising the remap every masked renderer
    would otherwise have to remember.
    """
    indices = np.nonzero(take_lanes(array, lanes))
    if lanes is None:
        return indices
    return (lanes[indices[0]],) + indices[1:]


def blit_rects(canvas, env_idx, x, y, width, height, intensity):
    """Max-composite axis-aligned rectangles into a batched canvas.

    Mirrors :meth:`repro.envs.base.ArcadeGame.draw_rect` entry by entry:
    fractional centres ``(x, y)``, fractional extents ``width`` / ``height``,
    identical rounding and edge clipping.  Entries overlapping within one
    call compose through the max exactly like sequential ``draw_rect``
    calls (uniform-intensity calls take a faster scatter; varying-intensity
    calls go through ``np.maximum.at``, which handles duplicate pixels).
    """
    env_idx = np.asarray(env_idx, dtype=np.int64)
    count = env_idx.shape[0]
    if count == 0:
        return
    size = canvas.shape[1]
    x = _as_lane_array(x, count)
    y = _as_lane_array(y, count)
    half_w = np.maximum(1, np.rint(_as_lane_array(width, count) * size / 2).astype(np.int64))
    half_h = np.maximum(1, np.rint(_as_lane_array(height, count) * size / 2).astype(np.int64))
    cx = np.rint(x * (size - 1)).astype(np.int64)
    cy = np.rint(y * (size - 1)).astype(np.int64)
    _scatter_max(
        canvas, env_idx,
        cx - half_w, 2 * half_w,
        cy - half_h, 2 * half_h,
        _as_lane_array(intensity, count),
    )


def blit_points(canvas, env_idx, x, y, intensity, radius=1):
    """Max-composite small square blobs (``draw_point`` equivalent)."""
    env_idx = np.asarray(env_idx, dtype=np.int64)
    count = env_idx.shape[0]
    if count == 0:
        return
    size = canvas.shape[1]
    cx = np.rint(_as_lane_array(x, count) * (size - 1)).astype(np.int64)
    cy = np.rint(_as_lane_array(y, count) * (size - 1)).astype(np.int64)
    extent = np.full(count, 2 * radius + 1, dtype=np.int64)
    _scatter_max(
        canvas, env_idx,
        cx - radius, extent,
        cy - radius, extent,
        _as_lane_array(intensity, count),
    )


def _scatter_max(canvas, env_idx, x0, extent_x, y0, extent_y, intensity):
    """Blit variable-extent pixel blocks, max-compositing duplicate pixels."""
    size = canvas.shape[1]
    span_x = int(extent_x.max())
    span_y = int(extent_y.max())
    dx = np.arange(span_x)
    dy = np.arange(span_y)
    xs = x0[:, None] + dx[None, :]                      # (count, span_x)
    ys = y0[:, None] + dy[None, :]                      # (count, span_y)
    ok_x = (dx[None, :] < extent_x[:, None]) & (xs >= 0) & (xs < size)
    ok_y = (dy[None, :] < extent_y[:, None]) & (ys >= 0) & (ys < size)
    mask = ok_y[:, :, None] & ok_x[:, None, :]          # (count, span_y, span_x)
    shape = mask.shape
    ee = np.broadcast_to(env_idx[:, None, None], shape)[mask]
    yy = np.broadcast_to(ys[:, :, None], shape)[mask]
    xx = np.broadcast_to(xs[:, None, :], shape)[mask]
    vv = np.broadcast_to(intensity[:, None, None], shape)[mask]
    if intensity.size and (intensity == intensity.flat[0]).all():
        # Uniform intensity: duplicate pixels write the same value, so the
        # (faster) gather/max/scatter is exact.
        canvas[ee, yy, xx] = np.maximum(canvas[ee, yy, xx], vv)
    else:
        # Varying intensity: overlapping entries (e.g. adjacent brick rows
        # at small render sizes) must keep the max, not the last write.
        np.maximum.at(canvas, (ee, yy, xx), vv)


class BatchedArcadeEngine:
    """Base class of the struct-of-arrays arcade engines.

    Owns the batched bookkeeping that :class:`~repro.envs.base.ArcadeGame`
    keeps per instance — lives, score, elapsed steps, sticky actions, episode
    termination — as ``(num_envs,)`` arrays, plus the per-env generators and
    the shared render canvas.  Subclasses implement ``_reset_game(mask)`` /
    ``_step_game(actions, active)`` / ``_render_game(canvas, lanes)`` (and
    optionally ``_game_over()``) against that state.

    Parameters mirror :class:`~repro.envs.base.ArcadeGame`; ``randomize``
    maps parameter names from :attr:`RANDOMIZABLE` to ``(low, high)`` ranges
    re-drawn per lane from its own generator on every reset (the
    scenario-diversity hook of ``make_vector_env(..., randomize=...)``).
    """

    #: randomize= key -> attribute name of the per-lane float64 parameter array.
    RANDOMIZABLE = {}

    def __init__(
        self,
        game_id,
        num_envs,
        render_size=84,
        max_episode_steps=1000,
        lives=3,
        score_scale=1.0,
        sticky_action_prob=0.0,
        seed=0,
        randomize=None,
    ):
        self.game_id = game_id
        self.num_envs = int(num_envs)
        if self.num_envs < 1:
            raise ValueError("need at least one environment")
        self.render_size = int(render_size)
        self.max_episode_steps = int(max_episode_steps)
        self.initial_lives = int(lives)
        self.score_scale = float(score_scale)
        self.sticky_action_prob = float(sticky_action_prob)
        self.action_space = Discrete(len(ACTION_MEANINGS))
        self.observation_space = Box(0.0, 1.0, (self.render_size, self.render_size))

        n = self.num_envs
        # Constructor seeding matches the serial convention of `make_vector_env`
        # (sub-env i built with seed + i); reset(seed=...) swaps in SeedSequence
        # streams via seed_all().
        self.rngs = [np.random.default_rng(seed + i) for i in range(n)]
        self._elapsed = np.zeros(n, dtype=np.int64)
        self._lives = np.full(n, self.initial_lives, dtype=np.int64)
        self._score = np.zeros(n, dtype=np.float64)
        self._last_action = np.full(n, Action.NOOP, dtype=np.int64)
        self._done = np.ones(n, dtype=bool)
        self._life_lost = np.zeros(n, dtype=bool)
        self._canvas = np.zeros((n, self.render_size, self.render_size), dtype=np.float64)
        self._env_indices = np.arange(n, dtype=np.int64)

        self.randomize = dict(randomize) if randomize else {}
        unknown = sorted(set(self.randomize) - set(self.RANDOMIZABLE))
        if unknown:
            raise BatchedUnsupportedError(
                "cannot randomize {} on {}; supported parameters: {}".format(
                    ", ".join(unknown), type(self).__name__,
                    ", ".join(sorted(self.RANDOMIZABLE)) or "(none)",
                )
            )
        self._randomize_order = sorted(self.randomize)

    # ------------------------------------------------------------------ #
    # Seeding / reset
    # ------------------------------------------------------------------ #
    def seed_all(self, rngs):
        """Install one ``numpy.random.Generator`` per lane."""
        rngs = list(rngs)
        if len(rngs) != self.num_envs:
            raise ValueError(
                "expected {} generators, got {}".format(self.num_envs, len(rngs))
            )
        self.rngs = rngs

    def reset(self, rngs=None):
        """Reset every lane (optionally re-seeding) and render the first frame."""
        if rngs is not None:
            self.seed_all(rngs)
        self.reset_envs(np.ones(self.num_envs, dtype=bool))
        return self.observe()

    def reset_envs(self, mask):
        """Start a new episode on the masked lanes (used by auto-reset)."""
        mask = np.asarray(mask, dtype=bool)
        if not mask.any():
            return
        for i in np.flatnonzero(mask):
            rng = self.rngs[i]
            for name in self._randomize_order:
                low, high = self.randomize[name]
                getattr(self, self.RANDOMIZABLE[name])[i] = rng.uniform(low, high)
        self._elapsed[mask] = 0
        self._lives[mask] = self.initial_lives
        self._score[mask] = 0.0
        self._last_action[mask] = Action.NOOP
        self._done[mask] = False
        self._life_lost[mask] = False
        self._reset_game(mask)

    # ------------------------------------------------------------------ #
    # Stepping
    # ------------------------------------------------------------------ #
    def step(self, actions, active=None):
        """Advance the masked lanes one tick.

        Returns ``(reward, life_lost)`` arrays; lanes outside ``active`` are
        untouched (no state change, no RNG consumption, zero reward).  Episode
        bookkeeping (lives, score, elapsed, done) is applied here exactly as
        the serial :meth:`ArcadeGame.step` does per env.
        """
        n = self.num_envs
        actions = np.array(actions, dtype=np.int64)
        if actions.shape != (n,):
            raise ValueError("expected {} actions, got {}".format(n, actions.shape[0] if actions.ndim else actions))
        if active is None:
            active = np.ones(n, dtype=bool)
        else:
            active = np.asarray(active, dtype=bool)
        if (active & self._done).any():
            raise RuntimeError("step() called on a finished episode; call reset() first")
        bad = active & ((actions < 0) | (actions >= self.action_space.n))
        if bad.any():
            raise ValueError("invalid action {}".format(int(actions[np.flatnonzero(bad)[0]])))

        if self.sticky_action_prob > 0.0:
            for i in np.flatnonzero(active):
                if self.rngs[i].random() < self.sticky_action_prob:
                    actions[i] = self._last_action[i]
        self._last_action[active] = actions[active]

        reward, life_lost = self._step_game(actions, active)
        reward = np.where(active, reward * self.score_scale, 0.0)
        life_lost &= active
        self._score += reward
        self._elapsed[active] += 1
        self._lives -= life_lost

        done = (self._lives <= 0) | (self._elapsed >= self.max_episode_steps) | self._game_over()
        self._done = np.where(active, done, self._done)
        self._life_lost = np.where(active, life_lost, self._life_lost)
        return reward, life_lost

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def observe(self, mask=None):
        """Render into the shared ``(num_envs, H, W)`` canvas.

        With ``mask=None`` the whole batch is re-rendered.  With a boolean
        lane mask only the masked lanes are redrawn — rows outside the mask
        keep whatever the previous call rendered — which is what auto-reset
        uses to refresh the few lanes that just started a new episode without
        paying a full batch render.  Masked rows are bit-identical to what a
        full render would produce (per-lane pixels depend only on that
        lane's state, and the blit helpers compose order-independently).

        The returned array is reused by the next call — callers that keep
        frames (frame stacks, skip buffers) must copy the rows they need.
        """
        canvas = self._canvas
        if mask is None:
            canvas[:] = 0.0
            self._render_game(canvas)
            np.clip(canvas, 0.0, 1.0, out=canvas)
            return canvas
        lanes = np.flatnonzero(np.asarray(mask, dtype=bool))
        if lanes.size == 0:
            return canvas
        canvas[lanes] = 0.0
        self._render_game(canvas, lanes)
        canvas[lanes] = np.clip(canvas[lanes], 0.0, 1.0)
        return canvas

    # ------------------------------------------------------------------ #
    # State the pipeline / views read
    # ------------------------------------------------------------------ #
    @property
    def done(self):
        return self._done

    @property
    def lives(self):
        return self._lives

    @property
    def score(self):
        return self._score

    @property
    def elapsed_steps(self):
        return self._elapsed

    @property
    def life_lost(self):
        return self._life_lost

    # ------------------------------------------------------------------ #
    # Hooks
    # ------------------------------------------------------------------ #
    def _reset_game(self, mask):
        raise NotImplementedError

    def _step_game(self, actions, active):
        raise NotImplementedError

    def _render_game(self, canvas, lanes=None):
        """Draw the game state into ``canvas``.

        ``lanes=None`` draws every lane (the canvas rows are pre-zeroed);
        otherwise ``lanes`` is a sorted index array and only those rows may
        be written — the other rows hold live pixels from a previous render.
        """
        raise NotImplementedError

    def _game_over(self):
        """Game-specific extra termination condition (default: none)."""
        return np.zeros(self.num_envs, dtype=bool)

    def __repr__(self):
        return "{}(game_id={!r}, num_envs={}, obs={}x{})".format(
            type(self).__name__, self.game_id, self.num_envs,
            self.render_size, self.render_size,
        )
