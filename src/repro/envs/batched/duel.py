"""Batched one-on-one duel engine (Boxing, Bowling).

Struct-of-arrays port of :class:`repro.envs.arcade.duel.DuelGame`: boxing
keeps both fighters, cooldowns and the capped raw score as lane arrays;
bowling keeps the pin rack as an ``(num_envs, pins)`` mask and resolves
ball/pin contact for the whole batch at once.
"""

from __future__ import annotations

import numpy as np

from ..base import Action
from .core import BatchedArcadeEngine, blit_points, blit_rects, masked_nonzero, take_lanes

__all__ = ["BatchedDuelEngine"]


def _pin_position(index):
    """Triangular rack layout near the top of the lane (serial formula)."""
    row = 0
    count = 0
    while count + row + 1 <= index:
        count += row + 1
        row += 1
    col = index - count
    x = 0.5 + (col - row / 2.0) * 0.08
    y = 0.1 + row * 0.05
    return x, y


class BatchedDuelEngine(BatchedArcadeEngine):
    """Batched counterpart of ``DuelGame`` (see there for parameters)."""

    RANDOMIZABLE = {
        "opponent_skill": "opponent_skill",
        "player_speed": "player_speed",
    }

    def __init__(
        self,
        game_id="Boxing",
        num_envs=1,
        punch_reward=1.0,
        punch_penalty=1.0,
        opponent_skill=0.5,
        score_cap=100.0,
        static_opponent=False,
        pins=10,
        max_throws=21,
        player_speed=0.05,
        **kwargs,
    ):
        super().__init__(game_id=game_id, num_envs=num_envs, **kwargs)
        n = self.num_envs
        self.punch_reward = float(punch_reward)
        self.punch_penalty = float(punch_penalty)
        self.opponent_skill = np.full(n, float(opponent_skill))
        self.score_cap = score_cap
        self.static_opponent = bool(static_opponent)
        self.num_pins = int(pins)
        self.max_throws = int(max_throws)
        self.player_speed = np.full(n, float(player_speed))

        self.raw_score = np.zeros(n)
        self.player_x = np.zeros(n)
        self.player_y = np.zeros(n)
        if self.static_opponent:
            self.pins_standing = np.zeros((n, self.num_pins), dtype=bool)
            self.throws = np.zeros(n, dtype=np.int64)
            self.ball_active = np.zeros(n, dtype=bool)
            self.ball_x = np.zeros(n)
            self.ball_y = np.zeros(n)
            positions = [_pin_position(i) for i in range(self.num_pins)]
            self._pin_x = np.array([p[0] for p in positions])
            self._pin_y = np.array([p[1] for p in positions])
        else:
            self.opponent_x = np.zeros(n)
            self.opponent_y = np.zeros(n)
            self.player_cooldown = np.zeros(n, dtype=np.int64)
            self.opponent_cooldown = np.zeros(n, dtype=np.int64)

    # ------------------------------------------------------------------ #
    def _reset_game(self, mask):
        self.raw_score[mask] = 0.0
        if self.static_opponent:
            self.player_x[mask] = 0.5
            self.player_y[mask] = 0.9
            self.pins_standing[mask] = True
            self.throws[mask] = 0
            self.ball_active[mask] = False
        else:
            self.player_x[mask] = 0.3
            self.player_y[mask] = 0.5
            self.opponent_x[mask] = 0.7
            self.opponent_y[mask] = 0.5
            self.player_cooldown[mask] = 0
            self.opponent_cooldown[mask] = 0

    def _step_game(self, actions, active):
        if self.static_opponent:
            return self._step_bowling(actions, active)
        return self._step_boxing(actions, active)

    def _game_over(self):
        if self.static_opponent:
            return (self.throws >= self.max_throws) & ~self.ball_active
        if self.score_cap is not None:
            return np.abs(self.raw_score) >= self.score_cap
        return np.zeros(self.num_envs, dtype=bool)

    # ------------------------------------------------------------------ #
    def _step_bowling(self, actions, active):
        n = self.num_envs
        reward = np.zeros(n)

        # Lanes whose ball is rolling at the start of the tick take the
        # rolling branch; everyone else aims (and may throw this tick).
        rolling = active & self.ball_active
        aiming = active & ~self.ball_active

        left = aiming & (actions == Action.LEFT)
        right = aiming & (actions == Action.RIGHT)
        self.player_x[left] -= self.player_speed[left]
        self.player_x[right] += self.player_speed[right]
        throw = aiming & (actions == Action.FIRE) & (self.throws < self.max_throws)
        self.ball_x[throw] = self.player_x[throw]
        self.ball_y[throw] = self.player_y[throw]
        self.ball_active |= throw
        self.throws[throw] += 1
        np.clip(self.player_x, 0.2, 0.8, out=self.player_x)

        roll_idx = np.flatnonzero(rolling)
        if roll_idx.size:
            self.ball_y[roll_idx] -= 0.06
            # Small lane drift makes perfect strikes stochastic.
            drift = np.empty(roll_idx.size)
            for j, i in enumerate(roll_idx):
                drift[j] = self.rngs[i].normal(0.0, 0.004)
            self.ball_x[roll_idx] += drift
            knocked = (
                self.pins_standing
                & rolling[:, None]
                & (np.abs(self.ball_x[:, None] - self._pin_x) < 0.05)
                & (np.abs(self.ball_y[:, None] - self._pin_y) < 0.05)
            )
            self.pins_standing &= ~knocked
            np.add.at(reward, np.nonzero(knocked)[0], self.punch_reward)
            done_roll = rolling & (self.ball_y <= 0.05)
            self.ball_active &= ~done_roll
            rerack = done_roll & ~self.pins_standing.any(axis=1)
            self.pins_standing[rerack] = True  # new rack

        return reward, np.zeros(n, dtype=bool)

    # ------------------------------------------------------------------ #
    def _step_boxing(self, actions, active):
        n = self.num_envs
        reward = np.zeros(n)
        life_lost = np.zeros(n, dtype=bool)

        cooling = active & (self.player_cooldown > 0)
        self.player_cooldown[cooling] -= 1
        cooling = active & (self.opponent_cooldown > 0)
        self.opponent_cooldown[cooling] -= 1

        left = active & (actions == Action.LEFT)
        right = active & (actions == Action.RIGHT)
        up = active & (actions == Action.UP)
        down = active & (actions == Action.DOWN)
        self.player_x[left] -= self.player_speed[left]
        self.player_x[right] += self.player_speed[right]
        self.player_y[up] -= self.player_speed[up]
        self.player_y[down] += self.player_speed[down]
        np.clip(self.player_x, 0.1, 0.9, out=self.player_x)
        np.clip(self.player_y, 0.1, 0.9, out=self.player_y)

        distance = np.hypot(
            self.player_x - self.opponent_x, self.player_y - self.opponent_y
        )

        # Player punch.
        punch = active & (actions == Action.FIRE) & (self.player_cooldown == 0)
        self.player_cooldown[punch] = 3
        landed = punch & (distance < 0.15)
        reward[landed] += self.punch_reward
        self.raw_score[landed] += self.punch_reward

        # Opponent behaviour: close in and counter-punch when skilled,
        # wander otherwise (two normal draws, as serial).
        skilled = np.zeros(n, dtype=bool)
        wander_x = np.zeros(n)
        wander_y = np.zeros(n)
        for i in np.flatnonzero(active):
            rng = self.rngs[i]
            if rng.random() < self.opponent_skill[i]:
                skilled[i] = True
            else:
                wander_x[i] = rng.normal(0.0, 0.01)
                wander_y[i] = rng.normal(0.0, 0.01)
        dx = np.sign(self.player_x - self.opponent_x)
        dy = np.sign(self.player_y - self.opponent_y)
        self.opponent_x[skilled] += dx[skilled] * self.player_speed[skilled] * 0.6
        self.opponent_y[skilled] += dy[skilled] * self.player_speed[skilled] * 0.6
        counter = skilled & (distance < 0.15) & (self.opponent_cooldown == 0)
        self.opponent_cooldown[counter] = 4
        reward[counter] -= self.punch_penalty
        self.raw_score[counter] -= self.punch_penalty
        wandering = active & ~skilled
        self.opponent_x[wandering] += wander_x[wandering]
        self.opponent_y[wandering] += wander_y[wandering]
        np.clip(self.opponent_x, 0.1, 0.9, out=self.opponent_x)
        np.clip(self.opponent_y, 0.1, 0.9, out=self.opponent_y)

        return reward, life_lost

    # ------------------------------------------------------------------ #
    def _render_game(self, canvas, lanes=None):
        envs = self._env_indices if lanes is None else lanes
        if self.static_opponent:
            blit_rects(canvas, envs, take_lanes(self.player_x, lanes),
                       take_lanes(self.player_y, lanes), 0.06, 0.04, 1.0)
            env, pin = masked_nonzero(self.pins_standing, lanes)
            blit_points(canvas, env, self._pin_x[pin], self._pin_y[pin], 0.7, radius=1)
            active = take_lanes(self.ball_active, lanes)
            ball = np.flatnonzero(active) if lanes is None else lanes[active]
            blit_points(canvas, ball, self.ball_x[ball], self.ball_y[ball], 0.9, radius=1)
        else:
            # Ring ropes.
            blit_rects(canvas, envs, 0.5, 0.05, 0.9, 0.02, 0.2)
            blit_rects(canvas, envs, 0.5, 0.95, 0.9, 0.02, 0.2)
            blit_rects(canvas, envs, take_lanes(self.player_x, lanes),
                       take_lanes(self.player_y, lanes), 0.07, 0.07, 1.0)
            blit_rects(canvas, envs, take_lanes(self.opponent_x, lanes),
                       take_lanes(self.opponent_y, lanes), 0.07, 0.07, 0.5)
