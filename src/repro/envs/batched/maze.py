"""Batched maze/chase engine (Alien, WizardOfWor, Qbert, MsPacman).

Struct-of-arrays port of :class:`repro.envs.arcade.maze.MazeGame`.  Walls and
pellets live in ``(num_envs, grid, grid)`` boolean grids; the static part of
the frame (walls + remaining pellets) renders from a cached per-lane layer
that is patched incrementally — collecting a pellet clears one pixel, only a
level respawn re-blits a lane.  Enemy moves keep the serial draw order: for
each enemy index, each moving lane draws its chase/random scalars from its
own generator before the move itself is applied vectorised.
"""

from __future__ import annotations

import numpy as np

from ..base import Action
from .core import BatchedArcadeEngine, blit_points, blit_rects, take_lanes

__all__ = ["BatchedMazeEngine"]

#: Row/column deltas per action id (NOOP, FIRE, UP, DOWN, LEFT, RIGHT).
_ACTION_DR = np.array([0, 0, -1, 1, 0, 0], dtype=np.int64)
_ACTION_DC = np.array([0, 0, 0, 0, -1, 1], dtype=np.int64)
#: Random-walk deltas in the serial engine's dict order (UP, DOWN, LEFT, RIGHT).
_WALK_DR = np.array([-1, 1, 0, 0], dtype=np.int64)
_WALK_DC = np.array([0, 0, -1, 1], dtype=np.int64)


class BatchedMazeEngine(BatchedArcadeEngine):
    """Batched counterpart of ``MazeGame`` (see there for parameters)."""

    RANDOMIZABLE = {
        "chase_prob": "chase_prob",
        "wall_density": "wall_density",
    }

    def __init__(
        self,
        game_id="Alien",
        num_envs=1,
        grid_size=11,
        num_enemies=3,
        chase_prob=0.4,
        pellet_reward=10.0,
        clear_bonus=100.0,
        enemy_penalty=0.0,
        wall_density=0.15,
        enemy_move_every=1,
        **kwargs,
    ):
        super().__init__(game_id=game_id, num_envs=num_envs, **kwargs)
        n = self.num_envs
        self.grid_size = int(grid_size)
        self.num_enemies = int(num_enemies)
        self.chase_prob = np.full(n, float(chase_prob))
        self.pellet_reward = float(pellet_reward)
        self.clear_bonus = float(clear_bonus)
        self.enemy_penalty = float(enemy_penalty)
        self.wall_density = np.full(n, float(wall_density))
        self.enemy_move_every = int(enemy_move_every)

        size = self.grid_size
        self.level = np.zeros(n, dtype=np.int64)
        self.walls = np.zeros((n, size, size), dtype=bool)
        self.pellets = np.zeros((n, size, size), dtype=bool)
        self.player_r = np.zeros(n, dtype=np.int64)
        self.player_c = np.zeros(n, dtype=np.int64)
        self.enemy_r = np.zeros((n, max(self.num_enemies, 1)), dtype=np.int64)
        self.enemy_c = np.zeros((n, max(self.num_enemies, 1)), dtype=np.int64)
        self._tick = np.zeros(n, dtype=np.int64)

        self._layer = np.zeros((n, self.render_size, self.render_size))
        # Grids the cached layer was blitted from; lanes whose walls or
        # pellets differ (level spawns, pellet pickups that bypassed the
        # incremental patch, external mutation) are re-blitted.
        self._layer_walls = self.walls.copy()
        self._layer_pellets = self.pellets.copy()
        # Pixel centre of each grid cell (for incremental pellet clearing).
        cell = 1.0 / size
        centres = (np.arange(size) + 0.5) * cell
        self._cell_px = np.rint(centres * (self.render_size - 1)).astype(np.int64)

    # ------------------------------------------------------------------ #
    def _reset_game(self, mask):
        self.level[mask] = 0
        self._spawn_level(mask)

    def _spawn_level(self, mask):
        """Generate walls, pellets, and starting positions on masked lanes."""
        idx = np.flatnonzero(mask)
        if idx.size == 0:
            return
        size = self.grid_size
        centre = size // 2
        self.level[idx] += 1
        corners = ((1, 1), (1, size - 2), (size - 2, 1), (size - 2, size - 2))
        for i in idx:
            interior = self.rngs[i].random((size - 2, size - 2)) < self.wall_density[i]
            walls = self.walls[i]
            walls[:] = False
            walls[1:-1, 1:-1] = interior
            walls[0, :] = True
            walls[-1, :] = True
            walls[:, 0] = True
            walls[:, -1] = True
            walls[centre, centre] = False
            pellets = self.pellets[i]
            np.logical_not(walls, out=pellets)
            pellets[centre, centre] = False
            for e in range(self.num_enemies):
                row, col = corners[e % len(corners)]
                walls[row, col] = False
                pellets[row, col] = False
                self.enemy_r[i, e] = row
                self.enemy_c[i, e] = col
        self.player_r[idx] = centre
        self.player_c[idx] = centre
        self._tick[idx] = 0

    def _step_game(self, actions, active):
        n = self.num_envs
        envs = self._env_indices
        reward = np.zeros(n)
        life_lost = np.zeros(n, dtype=bool)
        self._tick[active] += 1

        # Player move (walls block; the border guarantees targets stay in-grid).
        moving = active & (actions >= Action.UP)
        target_r = self.player_r + _ACTION_DR[actions]
        target_c = self.player_c + _ACTION_DC[actions]
        allowed = moving & ~self.walls[envs, target_r, target_c]
        self.player_r[allowed] = target_r[allowed]
        self.player_c[allowed] = target_c[allowed]

        # Collect pellet.
        collected = active & self.pellets[envs, self.player_r, self.player_c]
        coll_idx = np.flatnonzero(collected)
        if coll_idx.size:
            self.pellets[coll_idx, self.player_r[coll_idx], self.player_c[coll_idx]] = False
            reward[collected] += self.pellet_reward
            # Patch the cached layer in place: a pellet is a single pixel no
            # wall block reaches, so clearing it needs no re-blit.  The
            # layer's reference grid is updated in step so the per-render
            # comparison stays clean.
            self._layer[
                coll_idx,
                self._cell_px[self.player_r[coll_idx]],
                self._cell_px[self.player_c[coll_idx]],
            ] = 0.0
            self._layer_pellets[
                coll_idx, self.player_r[coll_idx], self.player_c[coll_idx]
            ] = False

        # Enemies move (chase with probability chase_prob, random otherwise),
        # harder levels move every tick even if enemy_move_every > 1.
        period = np.maximum(1, self.enemy_move_every - (self.level - 1))
        enemies_move = active & (self._tick % period == 0)
        move_idx = np.flatnonzero(enemies_move)
        if move_idx.size:
            threshold = np.minimum(0.95, self.chase_prob + 0.05 * (self.level - 1))
            for e in range(self.num_enemies):
                chase = np.zeros(n, dtype=bool)
                walk = np.zeros(n, dtype=np.int64)
                for i in move_idx:
                    if self.rngs[i].random() < threshold[i]:
                        chase[i] = True
                    else:
                        walk[i] = self.rngs[i].integers(4)
                diff_r = self.player_r - self.enemy_r[:, e]
                diff_c = self.player_c - self.enemy_c[:, e]
                vertical = np.abs(diff_r) >= np.abs(diff_c)
                dr = np.where(
                    chase, np.where(vertical, np.sign(diff_r), 0), _WALK_DR[walk]
                )
                dc = np.where(
                    chase, np.where(vertical, 0, np.sign(diff_c)), _WALK_DC[walk]
                )
                target_r = self.enemy_r[:, e] + dr
                target_c = self.enemy_c[:, e] + dc
                step_ok = enemies_move & ~self.walls[envs, target_r, target_c]
                self.enemy_r[step_ok, e] = target_r[step_ok]
                self.enemy_c[step_ok, e] = target_c[step_ok]

        # Collision with an enemy (one life / penalty per tick, as serial).
        if self.num_enemies:
            caught = active & (
                (self.enemy_r == self.player_r[:, None])
                & (self.enemy_c == self.player_c[:, None])
            ).any(axis=1)
        else:
            caught = np.zeros(n, dtype=bool)
        life_lost |= caught
        reward[caught] -= self.enemy_penalty
        # Respawn the player at the centre after being caught.
        self.player_r[caught] = self.grid_size // 2
        self.player_c[caught] = self.grid_size // 2

        # Level cleared.
        cleared = active & ~self.pellets.any(axis=(1, 2))
        reward[cleared] += self.clear_bonus * self.level[cleared]
        self._spawn_level(cleared)

        return reward, life_lost

    # ------------------------------------------------------------------ #
    def _refresh_layer(self):
        """Re-blit walls + pellets for lanes whose static geometry changed.

        Change detection compares the live grids against the ones the layer
        was drawn from (pellet pickups patch both in place), so level
        respawns *and* external mutation of the exposed ``walls`` /
        ``pellets`` arrays invalidate correctly.
        """
        dirty = (
            (self.walls != self._layer_walls).any(axis=(1, 2))
            | (self.pellets != self._layer_pellets).any(axis=(1, 2))
        )
        if not dirty.any():
            return
        self._layer[dirty] = 0.0
        cell = 1.0 / self.grid_size
        env, row, col = np.nonzero(self.walls & dirty[:, None, None])
        blit_rects(self._layer, env, (col + 0.5) * cell, (row + 0.5) * cell, cell, cell, 0.3)
        env, row, col = np.nonzero(self.pellets & dirty[:, None, None])
        blit_points(self._layer, env, (col + 0.5) * cell, (row + 0.5) * cell, 0.5, radius=0)
        self._layer_walls[dirty] = self.walls[dirty]
        self._layer_pellets[dirty] = self.pellets[dirty]

    def _render_game(self, canvas, lanes=None):
        envs = self._env_indices if lanes is None else lanes
        self._refresh_layer()
        if lanes is None:
            np.maximum(canvas, self._layer, out=canvas)
        else:
            canvas[lanes] = np.maximum(canvas[lanes], self._layer[lanes])
        cell = 1.0 / self.grid_size
        if self.num_enemies:
            env = np.repeat(envs, self.num_enemies)
            x = (take_lanes(self.enemy_c, lanes)[:, : self.num_enemies].reshape(-1) + 0.5) * cell
            y = (take_lanes(self.enemy_r, lanes)[:, : self.num_enemies].reshape(-1) + 0.5) * cell
            blit_rects(canvas, env, x, y, cell * 0.8, cell * 0.8, 0.7)
        blit_rects(
            canvas, envs,
            (take_lanes(self.player_c, lanes) + 0.5) * cell,
            (take_lanes(self.player_r, lanes) + 0.5) * cell,
            cell * 0.8, cell * 0.8, 1.0,
        )
