"""Batched free-navigation shooter engine (ChopperCommand, Seaquest, ...).

Struct-of-arrays port of :class:`repro.envs.arcade.navigator.NavigatorGame`.
Targets, hazards, rescues, and bullets occupy fixed-capacity slot arrays with
alive masks and per-lane sequence numbers; bullets are processed in insertion
order (a loop over the at-most-3 ranks) and each bullet kills the *oldest*
matching target, reproducing the serial list-scan semantics exactly.
"""

from __future__ import annotations

import numpy as np

from ..base import Action
from .core import BatchedArcadeEngine, blit_points, blit_rects, masked_nonzero, take_lanes

__all__ = ["BatchedNavigatorEngine"]

_NO_SEQ = np.iinfo(np.int64).max
_BULLET_CAP = 3


class _SlotGroup:
    """Fixed-capacity drifting-object pool (targets / hazards / rescues)."""

    def __init__(self, num_envs, capacity):
        self.x = np.zeros((num_envs, capacity))
        self.y = np.zeros((num_envs, capacity))
        self.vx = np.zeros((num_envs, capacity))
        self.alive = np.zeros((num_envs, capacity), dtype=bool)
        self.seq = np.zeros((num_envs, capacity), dtype=np.int64)
        self.counter = np.zeros(num_envs, dtype=np.int64)

    def clear(self, mask):
        self.alive[mask] = False
        self.counter[mask] = 0

    def add(self, env, x, y, vx):
        slot = int(np.argmax(~self.alive[env]))
        self.x[env, slot] = x
        self.y[env, slot] = y
        self.vx[env, slot] = vx
        self.alive[env, slot] = True
        self.seq[env, slot] = self.counter[env]
        self.counter[env] += 1

    def drift_and_cull(self, active):
        """Move alive objects of active lanes; drop the out-of-bounds ones."""
        moving = self.alive & active[:, None]
        self.x[moving] += self.vx[moving]
        self.alive &= ~(moving & ~((self.x > 0.0) & (self.x < 1.0)))


class BatchedNavigatorEngine(BatchedArcadeEngine):
    """Batched counterpart of ``NavigatorGame`` (see there for parameters)."""

    RANDOMIZABLE = {
        "target_spawn_prob": "target_spawn_prob",
        "hazard_spawn_prob": "hazard_spawn_prob",
        "target_speed": "target_speed",
        "hazard_speed": "hazard_speed",
        "player_speed": "player_speed",
    }

    def __init__(
        self,
        game_id="ChopperCommand",
        num_envs=1,
        target_points=100.0,
        rescue_points=0.0,
        target_spawn_prob=0.12,
        hazard_spawn_prob=0.06,
        rescue_spawn_prob=0.0,
        target_speed=0.015,
        hazard_speed=0.02,
        player_speed=0.05,
        bullet_speed=0.08,
        max_objects=8,
        vertical_motion=True,
        **kwargs,
    ):
        super().__init__(game_id=game_id, num_envs=num_envs, **kwargs)
        n = self.num_envs
        self.target_points = float(target_points)
        self.rescue_points = float(rescue_points)
        self.target_spawn_prob = np.full(n, float(target_spawn_prob))
        self.hazard_spawn_prob = np.full(n, float(hazard_spawn_prob))
        self.rescue_spawn_prob = float(rescue_spawn_prob)
        self.target_speed = np.full(n, float(target_speed))
        self.hazard_speed = np.full(n, float(hazard_speed))
        self.player_speed = np.full(n, float(player_speed))
        self.bullet_speed = float(bullet_speed)
        self.max_objects = int(max_objects)
        self.vertical_motion = bool(vertical_motion)

        self.player_x = np.full(n, 0.5)
        self.player_y = np.zeros(n)
        self.facing = np.ones(n)
        cap = self.max_objects
        self.targets = _SlotGroup(n, cap)
        self.hazards = _SlotGroup(n, cap)
        self.rescues = _SlotGroup(n, cap)
        self.bullet_x = np.zeros((n, _BULLET_CAP))
        self.bullet_y = np.zeros((n, _BULLET_CAP))
        self.bullet_vx = np.zeros((n, _BULLET_CAP))
        self.bullet_vy = np.zeros((n, _BULLET_CAP))
        self.bullet_alive = np.zeros((n, _BULLET_CAP), dtype=bool)
        self.bullet_seq = np.zeros((n, _BULLET_CAP), dtype=np.int64)
        self._bullet_counter = np.zeros(n, dtype=np.int64)

    # ------------------------------------------------------------------ #
    def _reset_game(self, mask):
        self.player_x[mask] = 0.5
        self.player_y[mask] = 0.8 if self.vertical_motion else 0.9
        self.facing[mask] = 1.0
        self.targets.clear(mask)
        self.hazards.clear(mask)
        self.rescues.clear(mask)
        self.bullet_alive[mask] = False
        self._bullet_counter[mask] = 0

    def _spawn_object(self, group, env, speed):
        """One edge spawn (serial draw order: side, then vertical position)."""
        rng = self.rngs[env]
        side = rng.integers(2)
        x = 0.02 if side == 0 else 0.98
        vx = speed if side == 0 else -speed
        y = rng.uniform(0.1, 0.85)
        group.add(env, x, y, vx)

    def _step_game(self, actions, active):
        n = self.num_envs
        envs = self._env_indices
        reward = np.zeros(n)
        life_lost = np.zeros(n, dtype=bool)

        # Player control.
        left = active & (actions == Action.LEFT)
        right = active & (actions == Action.RIGHT)
        self.player_x[left] -= self.player_speed[left]
        self.facing[left] = -1.0
        self.player_x[right] += self.player_speed[right]
        self.facing[right] = 1.0
        if self.vertical_motion:
            up = active & (actions == Action.UP)
            down = active & (actions == Action.DOWN)
            self.player_y[up] -= self.player_speed[up]
            self.player_y[down] += self.player_speed[down]
        fire = (
            active
            & (actions == Action.FIRE)
            & (self.bullet_alive.sum(axis=1) < _BULLET_CAP)
        )
        fire_idx = np.flatnonzero(fire)
        if fire_idx.size:
            slot = np.argmax(~self.bullet_alive[fire_idx], axis=1)
            self.bullet_x[fire_idx, slot] = self.player_x[fire_idx]
            self.bullet_y[fire_idx, slot] = self.player_y[fire_idx]
            if self.vertical_motion:
                # Free-flight games shoot in the direction the player faces.
                self.bullet_vx[fire_idx, slot] = self.facing[fire_idx] * self.bullet_speed
                self.bullet_vy[fire_idx, slot] = 0.0
            else:
                # Bottom-pinned games (BeamRider, BattleZone) shoot upward.
                self.bullet_vx[fire_idx, slot] = 0.0
                self.bullet_vy[fire_idx, slot] = -self.bullet_speed
            self.bullet_alive[fire_idx, slot] = True
            self.bullet_seq[fire_idx, slot] = self._bullet_counter[fire_idx]
            self._bullet_counter[fire_idx] += 1
        np.clip(self.player_x, 0.05, 0.95, out=self.player_x)
        np.clip(self.player_y, 0.1, 0.9, out=self.player_y)

        # Spawning (per-lane conditional draws, in the serial order:
        # targets, then hazards, then rescues).
        target_room = self.targets.alive.sum(axis=1) < self.max_objects
        hazard_room = self.hazards.alive.sum(axis=1) < self.max_objects
        rescue_room = self.rescues.alive.sum(axis=1) < self.max_objects
        rescues_on = self.rescue_points > 0.0
        for i in np.flatnonzero(active):
            rng = self.rngs[i]
            if target_room[i] and rng.random() < self.target_spawn_prob[i]:
                self._spawn_object(self.targets, i, self.target_speed[i])
            if hazard_room[i] and rng.random() < self.hazard_spawn_prob[i]:
                self._spawn_object(self.hazards, i, self.hazard_speed[i])
            if rescues_on and rescue_room[i] and rng.random() < self.rescue_spawn_prob:
                self._spawn_object(self.rescues, i, self.target_speed[i] * 0.5)

        # Object drift + out-of-bounds culling.
        self.targets.drift_and_cull(active)
        self.hazards.drift_and_cull(active)
        self.rescues.drift_and_cull(active)

        # Bullets fly and destroy targets, in per-lane insertion order.
        order = np.argsort(
            np.where(self.bullet_alive, self.bullet_seq, _NO_SEQ), axis=1, kind="stable"
        )
        targets = self.targets
        for rank in range(_BULLET_CAP):
            slot = order[:, rank]
            acting = active & self.bullet_alive[envs, slot]
            if not acting.any():
                continue
            act_idx = np.flatnonzero(acting)
            act_slot = slot[act_idx]
            self.bullet_x[act_idx, act_slot] += self.bullet_vx[act_idx, act_slot]
            self.bullet_y[act_idx, act_slot] += self.bullet_vy[act_idx, act_slot]
            bx = self.bullet_x[envs, slot]
            by = self.bullet_y[envs, slot]
            out = acting & ~((bx > 0.0) & (bx < 1.0) & (by > 0.0) & (by < 1.0))
            out_idx = np.flatnonzero(out)
            self.bullet_alive[out_idx, slot[out_idx]] = False
            flying = acting & ~out
            match = (
                targets.alive
                & (np.abs(bx[:, None] - targets.x) < 0.05)
                & (np.abs(by[:, None] - targets.y) < 0.05)
                & flying[:, None]
            )
            hit = match.any(axis=1)
            # The serial scan deletes the first match in list order == the
            # alive target with the smallest sequence number.
            first = np.where(match, targets.seq, _NO_SEQ).argmin(axis=1)
            hit_idx = np.flatnonzero(hit)
            targets.alive[hit_idx, first[hit_idx]] = False
            reward[hit] += self.target_points
            self.bullet_alive[hit_idx, slot[hit_idx]] = False

        # Hazard collisions.
        struck = (
            self.hazards.alive & active[:, None]
            & (np.abs(self.hazards.x - self.player_x[:, None]) < 0.05)
            & (np.abs(self.hazards.y - self.player_y[:, None]) < 0.05)
        )
        life_lost |= struck.any(axis=1)
        self.hazards.alive &= ~struck

        # Rescue pickups (one reward increment per rescue, as serial).
        saved = (
            self.rescues.alive & active[:, None]
            & (np.abs(self.rescues.x - self.player_x[:, None]) < 0.06)
            & (np.abs(self.rescues.y - self.player_y[:, None]) < 0.06)
        )
        np.add.at(reward, np.nonzero(saved)[0], self.rescue_points)
        self.rescues.alive &= ~saved

        return reward, life_lost

    # ------------------------------------------------------------------ #
    def _render_game(self, canvas, lanes=None):
        envs = self._env_indices if lanes is None else lanes
        blit_rects(canvas, envs, take_lanes(self.player_x, lanes),
                   take_lanes(self.player_y, lanes), 0.07, 0.05, 1.0)
        env, slot = masked_nonzero(self.targets.alive, lanes)
        blit_rects(canvas, env, self.targets.x[env, slot], self.targets.y[env, slot], 0.05, 0.04, 0.6)
        env, slot = masked_nonzero(self.hazards.alive, lanes)
        blit_rects(canvas, env, self.hazards.x[env, slot], self.hazards.y[env, slot], 0.05, 0.04, 0.35)
        env, slot = masked_nonzero(self.rescues.alive, lanes)
        blit_points(canvas, env, self.rescues.x[env, slot], self.rescues.y[env, slot], 0.8, radius=1)
        env, slot = masked_nonzero(self.bullet_alive, lanes)
        blit_points(canvas, env, self.bullet_x[env, slot], self.bullet_y[env, slot], 0.9, radius=0)
