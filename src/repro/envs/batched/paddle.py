"""Batched paddle-and-ball engine (Breakout, Pong, Tennis).

Struct-of-arrays port of :class:`repro.envs.arcade.paddle.PaddleGame`: the
whole batch of balls, paddles, and brick walls advances per tick with
elementwise physics, and the brick wall renders from a cached per-lane layer
that is only re-blitted for lanes whose wall changed.  Lane ``i`` of a batch
reproduces the serial game bit-exactly (same draws, same float64 ops).
"""

from __future__ import annotations

import numpy as np

from ..base import Action
from .core import BatchedArcadeEngine, blit_points, blit_rects, take_lanes

__all__ = ["BatchedPaddleEngine"]


class BatchedPaddleEngine(BatchedArcadeEngine):
    """Batched counterpart of ``PaddleGame`` (see there for parameters)."""

    RANDOMIZABLE = {
        "paddle_width": "paddle_width",
        "paddle_speed": "paddle_speed",
        "ball_speed": "ball_speed",
        "opponent_skill": "opponent_skill",
    }

    def __init__(
        self,
        game_id="Breakout",
        num_envs=1,
        brick_rows=4,
        brick_cols=8,
        brick_points=1.0,
        point_reward=1.0,
        point_penalty=1.0,
        ball_speed=0.04,
        paddle_width=0.2,
        paddle_speed=0.06,
        opponent_skill=0.7,
        **kwargs,
    ):
        super().__init__(game_id=game_id, num_envs=num_envs, **kwargs)
        n = self.num_envs
        self.brick_rows = int(brick_rows)
        self.brick_cols = int(brick_cols)
        self.brick_points = float(brick_points)
        self.point_reward = float(point_reward)
        self.point_penalty = float(point_penalty)
        self.ball_speed = np.full(n, float(ball_speed))
        self.paddle_width = np.full(n, float(paddle_width))
        self.paddle_speed = np.full(n, float(paddle_speed))
        self.opponent_skill = np.full(n, float(opponent_skill))
        self.uses_bricks = self.brick_rows > 0

        self.paddle_x = np.full(n, 0.5)
        self.opponent_x = np.full(n, 0.5)
        self.ball_x = np.zeros(n)
        self.ball_y = np.zeros(n)
        self.ball_vx = np.zeros(n)
        self.ball_vy = np.zeros(n)
        self.ball_live = np.zeros(n, dtype=bool)
        rows = max(self.brick_rows, 0)
        cols = self.brick_cols if self.uses_bricks else 0
        self.bricks = np.zeros((n, rows, cols), dtype=bool)
        self._brick_layer = np.zeros((n, self.render_size, self.render_size))
        # Alive mask the cached layer was blitted from; lanes whose bricks
        # differ (engine events *or* external mutation of the exposed array,
        # as the pre-refactor per-render comparison allowed) are re-blitted.
        self._layer_bricks = self.bricks.copy()

    # ------------------------------------------------------------------ #
    def _reset_game(self, mask):
        self.paddle_x[mask] = 0.5
        self.opponent_x[mask] = 0.5
        self.ball_live[mask] = False
        self._spawn_ball(mask)
        if self.uses_bricks:
            self.bricks[mask] = True

    def _spawn_ball(self, mask):
        """Place the masked lanes' balls on their paddles waiting for FIRE."""
        idx = np.flatnonzero(mask)
        if idx.size == 0:
            return
        angles = np.empty(idx.size)
        for j, i in enumerate(idx):
            angles[j] = self.rngs[i].uniform(np.pi * 0.25, np.pi * 0.75)
        self.ball_x[idx] = self.paddle_x[idx]
        self.ball_y[idx] = 0.82
        self.ball_vx[idx] = self.ball_speed[idx] * np.cos(angles)
        self.ball_vy[idx] = -self.ball_speed[idx] * np.sin(angles)
        self.ball_live[idx] = False

    def _step_game(self, actions, active):
        n = self.num_envs
        reward = np.zeros(n)
        life_lost = np.zeros(n, dtype=bool)

        # Player paddle control.
        left = active & (actions == Action.LEFT)
        right = active & (actions == Action.RIGHT)
        fire = active & (actions == Action.FIRE) & ~self.ball_live
        self.paddle_x[left] -= self.paddle_speed[left]
        self.paddle_x[right] += self.paddle_speed[right]
        self.ball_live |= fire
        np.clip(self.paddle_x, 0.05, 0.95, out=self.paddle_x)

        # Balls waiting on the paddle follow it; their step ends here.
        waiting = active & ~self.ball_live
        self.ball_x[waiting] = self.paddle_x[waiting]
        moving = active & self.ball_live

        # Opponent paddle (Pong/Tennis mode) tracks the ball imperfectly.
        if not self.uses_bricks:
            track = np.zeros(n, dtype=bool)
            for i in np.flatnonzero(moving):
                track[i] = self.rngs[i].random() < self.opponent_skill[i]
            direction = np.sign(self.ball_x - self.opponent_x)
            self.opponent_x[track] += direction[track] * self.paddle_speed[track] * 0.8
            np.clip(self.opponent_x, 0.05, 0.95, out=self.opponent_x)

        # Ball motion.
        self.ball_x[moving] += self.ball_vx[moving]
        self.ball_y[moving] += self.ball_vy[moving]

        # Side walls.
        bounce = moving & ((self.ball_x <= 0.02) | (self.ball_x >= 0.98))
        self.ball_vx[bounce] = -self.ball_vx[bounce]
        self.ball_x[bounce] = np.clip(self.ball_x[bounce], 0.02, 0.98)

        finished = np.zeros(n, dtype=bool)  # lanes whose serial step returned early
        if self.uses_bricks:
            # Ceiling bounce.
            ceiling = moving & (self.ball_y <= 0.02)
            self.ball_vy[ceiling] = np.abs(self.ball_vy[ceiling])
            # Brick collisions: bricks occupy y in [0.08, 0.08 + rows*0.05].
            # int() truncates toward zero, so mirror with trunc, not floor.
            row = np.trunc((self.ball_y - 0.08) / 0.05).astype(np.int64)
            col = np.trunc(self.ball_x * self.brick_cols).astype(np.int64)
            in_wall = (
                moving
                & (row >= 0) & (row < self.brick_rows)
                & (col >= 0) & (col < self.brick_cols)
            )
            row_c = np.clip(row, 0, self.brick_rows - 1)
            col_c = np.clip(col, 0, self.brick_cols - 1)
            hit = in_wall & self.bricks[self._env_indices, row_c, col_c]
            hit_idx = np.flatnonzero(hit)
            self.bricks[hit_idx, row[hit_idx], col[hit_idx]] = False
            reward[hit] += self.brick_points * (self.brick_rows - row[hit])
            self.ball_vy[hit] = np.abs(self.ball_vy[hit])
            # New wave: refill the wall and speed the ball up slightly.
            cleared = hit & ~self.bricks.any(axis=(1, 2))
            self.bricks[cleared] = True
            self.ball_vx[cleared] *= 1.1
            self.ball_vy[cleared] *= 1.1
        else:
            # Opponent end: score when the ball passes the opponent paddle.
            at_top = moving & (self.ball_y <= 0.05)
            saved = at_top & (np.abs(self.ball_x - self.opponent_x) <= self.paddle_width / 2)
            self.ball_vy[saved] = np.abs(self.ball_vy[saved])
            scored = at_top & ~saved
            reward[scored] += self.point_reward
            self._spawn_ball(scored)
            finished |= scored

        # Player end: bounce off the paddle or lose a life.
        at_bottom = moving & ~finished & (self.ball_y >= 0.88)
        on_paddle = at_bottom & (np.abs(self.ball_x - self.paddle_x) <= self.paddle_width / 2)
        self.ball_vy[on_paddle] = -np.abs(self.ball_vy[on_paddle])
        # English: hitting with the paddle edge skews the ball.
        offset = (self.ball_x - self.paddle_x) / (self.paddle_width / 2)
        self.ball_vx[on_paddle] += 0.01 * offset[on_paddle]
        missed = at_bottom & ~on_paddle
        life_lost |= missed
        if not self.uses_bricks:
            reward[missed] -= self.point_penalty
        self._spawn_ball(missed)

        return reward, life_lost

    # ------------------------------------------------------------------ #
    def _refresh_brick_layer(self):
        """Re-blit the cached wall layer for lanes whose bricks changed.

        Change detection compares the live alive mask against the one the
        layer was drawn from, so external mutation of ``bricks`` (the
        pre-refactor engines supported it) invalidates correctly too.
        """
        dirty = (self.bricks != self._layer_bricks).any(axis=(1, 2))
        if not dirty.any():
            return
        self._brick_layer[dirty] = 0.0
        env, row, col = np.nonzero(self.bricks & dirty[:, None, None])
        x = (col + 0.5) / self.brick_cols
        y = 0.08 + row * 0.05
        intensity = 0.4 + 0.1 * (self.brick_rows - row)
        blit_rects(self._brick_layer, env, x, y, 0.9 / self.brick_cols, 0.03, intensity)
        self._layer_bricks[dirty] = self.bricks[dirty]

    def _render_game(self, canvas, lanes=None):
        envs = self._env_indices if lanes is None else lanes
        # Player paddles.
        blit_rects(canvas, envs, take_lanes(self.paddle_x, lanes), 0.92,
                   take_lanes(self.paddle_width, lanes), 0.03, 0.8)
        # Balls.
        blit_points(canvas, envs, take_lanes(self.ball_x, lanes),
                    take_lanes(self.ball_y, lanes), 1.0, radius=1)
        if self.uses_bricks:
            self._refresh_brick_layer()
            if lanes is None:
                np.maximum(canvas, self._brick_layer, out=canvas)
            else:
                canvas[lanes] = np.maximum(canvas[lanes], self._brick_layer[lanes])
        else:
            blit_rects(canvas, envs, take_lanes(self.opponent_x, lanes), 0.05,
                       take_lanes(self.paddle_width, lanes), 0.03, 0.6)
