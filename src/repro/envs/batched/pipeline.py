"""The ``batched`` vector-env backend: one SoA engine + array-native wrappers.

:class:`BatchedVectorEnv` is a drop-in replacement for
``VectorEnv([make_env(...)] * N)``: same interface (``reset`` / ``step`` /
``step_async`` / ``step_wait`` / auto-reset / episode stats), same seed
semantics (constructor ``seed + i`` streams, ``reset(seed=N)`` spawning
``SeedSequence`` children, auto-resets continuing each lane's stream), and —
by construction — bit-identical trajectories.  The difference is that the
standard Atari wrapper stack runs as whole-batch array transforms:

* **frame skip** — masked sub-stepping of the engine; lanes that finish
  mid-skip stop stepping (and stop recording frames), exactly like the
  serial wrapper's early ``break``;
* **max of the last two raw frames** — one batched ``np.maximum``;
* **resize** — one batched block-average (or strided gather);
* **frame stack** — one rolling ``(num_envs, frames, H, W)`` buffer;
* **reward clipping** — one batched ``np.sign``.

No per-env Python loop remains on the hot path; the only lane loops left
are the engines' scalar RNG draws and the per-step info dicts (built from
bulk ``tolist()`` conversions, same fields as the serial backends).
"""

from __future__ import annotations

import numpy as np

from ..base import Box, Env
from .core import BatchedUnsupportedError
from .duel import BatchedDuelEngine
from .maze import BatchedMazeEngine
from .navigator import BatchedNavigatorEngine
from .paddle import BatchedPaddleEngine
from .shooter import BatchedShooterEngine

__all__ = ["BatchedVectorEnv", "BATCHED_ENGINES", "batched_engine_for"]


#: Serial engine class name -> batched engine class (all five families).
BATCHED_ENGINES = {
    "PaddleGame": BatchedPaddleEngine,
    "ShooterGame": BatchedShooterEngine,
    "MazeGame": BatchedMazeEngine,
    "NavigatorGame": BatchedNavigatorEngine,
    "DuelGame": BatchedDuelEngine,
}


def batched_engine_for(engine_cls):
    """The batched engine class for a serial ``ArcadeGame`` subclass.

    Resolved by class name so the registry keeps importing only the serial
    classes; raises :class:`BatchedUnsupportedError` for engines without a
    batched port (make_vector_env then falls back to the serial backend).
    """
    batched = BATCHED_ENGINES.get(engine_cls.__name__)
    if batched is None:
        raise BatchedUnsupportedError(
            "no batched engine for {}".format(engine_cls.__name__)
        )
    return batched


class BatchedVectorEnv(Env):
    """Vectorised environment running one batched engine for all lanes.

    Parameters mirror ``make_vector_env`` / ``make_env``: the wrapper options
    (``obs_size``, ``frame_stack``, ``frame_skip``, ``clip_rewards``,
    ``render_size``) plus registry-parameter ``overrides``.  ``randomize``
    maps engine parameter names to ``(low, high)`` ranges re-drawn per lane
    on every reset.  ``null_op_max`` is evaluation-only preprocessing and is
    not supported batched (auto-selection falls back to the serial backend).
    """

    #: Registry calling convention: built from the game name, not env_fns
    #: (see ``repro.envs.registry.VECTOR_BACKENDS``).
    constructs_from_game_name = True

    def __init__(
        self,
        name,
        num_envs=4,
        obs_size=42,
        frame_stack=2,
        frame_skip=2,
        clip_rewards=False,
        null_op_max=0,
        render_size=84,
        seed=0,
        randomize=None,
        **overrides,
    ):
        if null_op_max and null_op_max > 0:
            raise BatchedUnsupportedError(
                "null-op starts are not supported by the batched backend"
            )
        from ..registry import game_info

        entry = game_info(name)
        engine_cls = batched_engine_for(entry["engine"])
        params = dict(entry["params"])
        params.update(overrides)
        self.engine = engine_cls(
            game_id=name,
            num_envs=num_envs,
            render_size=render_size,
            seed=seed,
            randomize=randomize,
            **params,
        )
        self.num_envs = self.engine.num_envs
        self.frame_skip = max(1, int(frame_skip) if frame_skip else 1)
        self.frame_stack = max(1, int(frame_stack) if frame_stack else 1)
        self.clip_rewards = bool(clip_rewards)
        self.obs_size = int(obs_size) if obs_size else render_size
        self.render_size = self.engine.render_size
        self.action_space = self.engine.action_space
        if self.frame_stack > 1:
            obs_shape = (self.frame_stack, self.obs_size, self.obs_size)
        else:
            obs_shape = (self.obs_size, self.obs_size)
        self.observation_space = Box(0.0, 1.0, obs_shape)

        n = self.num_envs
        raw = (n, self.render_size, self.render_size)
        self._prev_frame = np.zeros(raw)
        self._last_frame = np.zeros(raw)
        self._stack = np.zeros((n, self.frame_stack, self.obs_size, self.obs_size))
        self._episode_returns = np.zeros(n)
        self._episode_lengths = np.zeros(n, dtype=np.int64)
        self._pending_actions = None

    # ------------------------------------------------------------------ #
    # Reset
    # ------------------------------------------------------------------ #
    def reset(self, seed=None):
        if self._pending_actions is not None:
            raise RuntimeError("reset called with a step_async in flight; call step_wait first")
        if seed is not None:
            from ..vector_env import spawn_env_generators

            self.engine.seed_all(spawn_env_generators(seed, self.num_envs))
        raw = self.engine.reset()
        small = self._resize(raw)
        self._stack[:] = small[:, None]
        self._episode_returns[:] = 0.0
        self._episode_lengths[:] = 0
        return self._output_obs()

    # ------------------------------------------------------------------ #
    # Step
    # ------------------------------------------------------------------ #
    def step(self, actions):
        if self._pending_actions is not None:
            raise RuntimeError("step called with a step_async in flight; call step_wait first")
        actions = np.asarray(actions)
        if actions.shape[0] != self.num_envs:
            raise ValueError("expected {} actions, got {}".format(self.num_envs, actions.shape[0]))

        engine = self.engine
        n = self.num_envs
        active = np.ones(n, dtype=bool)
        total_reward = np.zeros(n)
        frames_seen = np.zeros(n, dtype=np.int64)

        # Frame-skip sub-steps: lanes that finish stop stepping (and stop
        # recording frames), like the serial wrapper's early break.
        for _ in range(self.frame_skip):
            reward, _ = engine.step(actions, active=active)
            total_reward += reward
            raw = engine.observe()
            if active.all():
                np.copyto(self._prev_frame, self._last_frame)
                np.copyto(self._last_frame, raw)
            else:
                self._prev_frame[active] = self._last_frame[active]
                self._last_frame[active] = raw[active]
            frames_seen[active] += 1
            active &= ~engine.done
            if not active.any():
                break

        # Max of the last two raw frames (lanes with a single sub-step —
        # frame_skip 1 or an immediate done — return the frame itself).
        two = (frames_seen >= 2)[:, None, None]
        raw_obs = np.where(two, np.maximum(self._prev_frame, self._last_frame), self._last_frame)

        dones = engine.done.copy()
        if self.clip_rewards:
            raw_reward = total_reward
            reward_out = np.sign(total_reward)
        else:
            raw_reward = None
            reward_out = total_reward

        self._episode_returns += reward_out
        self._episode_lengths += 1
        # Per-env info dicts with the same fields the serial backends report
        # every step (bulk tolist() keeps the conversions off the lane loop).
        infos = [
            {"lives": lives, "score": score, "elapsed_steps": elapsed, "life_lost": lost}
            for lives, score, elapsed, lost in zip(
                engine.lives.tolist(), engine.score.tolist(),
                engine.elapsed_steps.tolist(), engine.life_lost.tolist(),
            )
        ]
        if raw_reward is not None:
            for info, value in zip(infos, raw_reward.tolist()):
                info["raw_reward"] = value
        done_idx = np.flatnonzero(dones)
        if done_idx.size:
            for i in done_idx:
                infos[i]["episode_return"] = float(self._episode_returns[i])
                infos[i]["episode_length"] = int(self._episode_lengths[i])
            self._episode_returns[done_idx] = 0.0
            self._episode_lengths[done_idx] = 0
            # Auto-reset: each lane continues its own generator stream.  The
            # lane-masked render only redraws the reset lanes instead of
            # re-rendering the whole batch for a handful of fresh episodes.
            engine.reset_envs(dones)
            raw_obs[done_idx] = engine.observe(dones)[done_idx]

        small = self._resize(raw_obs)
        if self.frame_stack > 1:
            self._stack[:, :-1] = self._stack[:, 1:]
            self._stack[:, -1] = small
            if done_idx.size:
                self._stack[done_idx] = small[done_idx, None]
        else:
            self._stack[:, 0] = small
        return self._output_obs(), reward_out, dones, infos

    # ------------------------------------------------------------------ #
    # Async-compatible interface (trivial for the in-process variant)
    # ------------------------------------------------------------------ #
    def step_async(self, actions):
        if self._pending_actions is not None:
            raise RuntimeError("step_async called twice without step_wait")
        self._pending_actions = np.asarray(actions)

    def step_wait(self):
        if self._pending_actions is None:
            raise RuntimeError("step_wait called without step_async")
        actions = self._pending_actions
        self._pending_actions = None
        return self.step(actions)

    def close(self):
        """Nothing to release (in-memory arrays only); safe to call twice."""

    # ------------------------------------------------------------------ #
    # Batched observation transforms
    # ------------------------------------------------------------------ #
    def _resize(self, raw):
        """Block-average (or strided-gather) resize of the whole batch."""
        source = raw.shape[1]
        size = self.obs_size
        if source == size:
            return raw
        if source % size == 0:
            factor = source // size
            return raw.reshape(self.num_envs, size, factor, size, factor).mean(axis=(2, 4))
        indices = (np.arange(size) * source / size).astype(int)
        return raw[:, indices[:, None], indices[None, :]]

    def _output_obs(self):
        if self.frame_stack > 1:
            return self._stack.copy()
        return self._stack[:, 0].copy()

    def __repr__(self):
        return "BatchedVectorEnv({!r}, num_envs={}, obs={})".format(
            self.engine.game_id, self.num_envs, self.observation_space.shape
        )
