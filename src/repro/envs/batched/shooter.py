"""Batched fixed-shooter engine (SpaceInvaders, Assault, DemonAttack, ...).

Struct-of-arrays port of :class:`repro.envs.arcade.shooter.ShooterGame`.
Formations, bullets, and bombs live in ``(num_envs, ...)`` arrays; player
bullets are processed in per-lane insertion order (sequence numbers + a loop
over the at-most-``max_player_bullets`` ranks, not over lanes) so the serial
"first bullet kills the enemy, the second flies on" semantics hold exactly.
"""

from __future__ import annotations

import numpy as np

from ..base import Action
from .core import BatchedArcadeEngine, blit_points, blit_rects, masked_nonzero, take_lanes

__all__ = ["BatchedShooterEngine"]

_NO_SEQ = np.iinfo(np.int64).max


class BatchedShooterEngine(BatchedArcadeEngine):
    """Batched counterpart of ``ShooterGame`` (see there for parameters)."""

    RANDOMIZABLE = {
        "enemy_speed": "enemy_speed",
        "bomb_prob": "bomb_prob",
        "player_speed": "player_speed",
    }

    def __init__(
        self,
        game_id="SpaceInvaders",
        num_envs=1,
        enemy_rows=4,
        enemy_cols=6,
        enemy_points=10.0,
        enemy_speed=0.01,
        descend_step=0.04,
        bomb_prob=0.08,
        bomb_speed=0.03,
        wave_bonus=50.0,
        player_speed=0.05,
        bullet_speed=0.08,
        max_player_bullets=2,
        **kwargs,
    ):
        super().__init__(game_id=game_id, num_envs=num_envs, **kwargs)
        n = self.num_envs
        self.enemy_rows = int(enemy_rows)
        self.enemy_cols = int(enemy_cols)
        self.enemy_points = float(enemy_points)
        self.enemy_speed = np.full(n, float(enemy_speed))
        self.descend_step = float(descend_step)
        self.bomb_prob = np.full(n, float(bomb_prob))
        self.bomb_speed = float(bomb_speed)
        self.wave_bonus = float(wave_bonus)
        self.player_speed = np.full(n, float(player_speed))
        self.bullet_speed = float(bullet_speed)
        self.max_player_bullets = int(max_player_bullets)

        self.player_x = np.full(n, 0.5)
        self.wave = np.zeros(n, dtype=np.int64)
        self.alive = np.zeros((n, self.enemy_rows, self.enemy_cols), dtype=bool)
        self.formation_x = np.zeros(n)
        self.formation_y = np.zeros(n)
        self.formation_dir = np.ones(n)
        self.current_speed = np.zeros(n)

        cap = max(1, self.max_player_bullets)
        self.bullet_x = np.zeros((n, cap))
        self.bullet_y = np.zeros((n, cap))
        self.bullet_alive = np.zeros((n, cap), dtype=bool)
        self.bullet_seq = np.zeros((n, cap), dtype=np.int64)
        self._bullet_counter = np.zeros(n, dtype=np.int64)

        bomb_cap = 8
        self.bomb_x = np.zeros((n, bomb_cap))
        self.bomb_y = np.zeros((n, bomb_cap))
        self.bomb_alive = np.zeros((n, bomb_cap), dtype=bool)

        # Per-enemy offsets from the formation origin (static grid geometry).
        self._col_offset = np.arange(self.enemy_cols) * 0.6 / max(self.enemy_cols - 1, 1)
        self._row_offset = np.arange(self.enemy_rows) * 0.28 / max(self.enemy_rows - 1, 1)

    # ------------------------------------------------------------------ #
    def _reset_game(self, mask):
        self.player_x[mask] = 0.5
        self.wave[mask] = 0
        self._spawn_wave(mask)
        self.bullet_alive[mask] = False
        self._bullet_counter[mask] = 0
        self.bomb_alive[mask] = False

    def _spawn_wave(self, mask):
        """Lay out fresh formations on the masked lanes; later waves are faster."""
        self.alive[mask] = True
        self.formation_x[mask] = 0.2
        self.formation_y[mask] = 0.08
        self.formation_dir[mask] = 1.0
        self.wave[mask] += 1
        self.current_speed[mask] = self.enemy_speed[mask] * (1.0 + 0.25 * (self.wave[mask] - 1))

    def _grow_bombs(self):
        """Double the bomb capacity (rarely needed; preserves slot contents)."""
        n, cap = self.bomb_x.shape
        for name in ("bomb_x", "bomb_y"):
            grown = np.zeros((n, cap * 2))
            grown[:, :cap] = getattr(self, name)
            setattr(self, name, grown)
        grown = np.zeros((n, cap * 2), dtype=bool)
        grown[:, :cap] = self.bomb_alive
        self.bomb_alive = grown

    def _add_bomb(self, env, x, y):
        free = np.flatnonzero(~self.bomb_alive[env])
        if free.size == 0:
            self._grow_bombs()
            free = np.flatnonzero(~self.bomb_alive[env])
        slot = free[0]
        self.bomb_x[env, slot] = x
        self.bomb_y[env, slot] = y
        self.bomb_alive[env, slot] = True

    def _step_game(self, actions, active):
        n = self.num_envs
        envs = self._env_indices
        reward = np.zeros(n)
        life_lost = np.zeros(n, dtype=bool)

        # Player control.
        left = active & (actions == Action.LEFT)
        right = active & (actions == Action.RIGHT)
        self.player_x[left] -= self.player_speed[left]
        self.player_x[right] += self.player_speed[right]
        fire = (
            active
            & (actions == Action.FIRE)
            & (self.bullet_alive.sum(axis=1) < self.max_player_bullets)
        )
        fire_idx = np.flatnonzero(fire)
        if fire_idx.size:
            slot = np.argmax(~self.bullet_alive[fire_idx], axis=1)
            self.bullet_x[fire_idx, slot] = self.player_x[fire_idx]
            self.bullet_y[fire_idx, slot] = 0.88
            self.bullet_alive[fire_idx, slot] = True
            self.bullet_seq[fire_idx, slot] = self._bullet_counter[fire_idx]
            self._bullet_counter[fire_idx] += 1
        np.clip(self.player_x, 0.05, 0.95, out=self.player_x)

        # Formation movement.
        self.formation_x[active] += self.formation_dir[active] * self.current_speed[active]
        rightmost = self.formation_x + 0.6
        bounced = active & ((self.formation_x <= 0.05) | (rightmost >= 0.95))
        self.formation_dir[bounced] = -self.formation_dir[bounced]
        self.formation_y[bounced] += self.descend_step
        # Formation reached the player row: lose a life, respawn, step ends.
        reached = active & (self.formation_y + 0.28 >= 0.85) & self.alive.any(axis=(1, 2))
        life_lost |= reached
        self._spawn_wave(reached)
        finished = reached

        # Enemy bombs (one conditional scalar draw per armed lane, as serial).
        armed = active & ~finished & self.alive.any(axis=(1, 2))
        for i in np.flatnonzero(armed):
            rng = self.rngs[i]
            if rng.random() < self.bomb_prob[i]:
                candidates = np.argwhere(self.alive[i])
                row, col = candidates[rng.integers(len(candidates))]
                x = self.formation_x[i] + col * 0.6 / max(self.enemy_cols - 1, 1)
                y = self.formation_y[i] + row * 0.28 / max(self.enemy_rows - 1, 1)
                self._add_bomb(i, x, y)

        # Player bullets move up and hit enemies, in per-lane insertion order.
        stepping = active & ~finished
        enemy_x = self.formation_x[:, None, None] + self._col_offset[None, None, :]
        enemy_y = self.formation_y[:, None, None] + self._row_offset[None, :, None]
        order = np.argsort(
            np.where(self.bullet_alive, self.bullet_seq, _NO_SEQ), axis=1, kind="stable"
        )
        for rank in range(order.shape[1]):
            slot = order[:, rank]
            acting = stepping & self.bullet_alive[envs, slot]
            if not acting.any():
                continue
            act_idx = np.flatnonzero(acting)
            act_slot = slot[act_idx]
            self.bullet_y[act_idx, act_slot] -= self.bullet_speed
            gone = acting & (self.bullet_y[envs, slot] <= 0.0)
            self.bullet_alive[np.flatnonzero(gone), slot[np.flatnonzero(gone)]] = False
            flying = acting & ~gone
            match = (
                self.alive
                & (np.abs(self.bullet_x[envs, slot][:, None, None] - enemy_x) < 0.05)
                & (np.abs(self.bullet_y[envs, slot][:, None, None] - enemy_y) < 0.04)
                & flying[:, None, None]
            )
            hit = match.any(axis=(1, 2))
            # argmax over the flattened grid picks the first match in
            # row-major order, the serial scan order.
            first = match.reshape(n, -1).argmax(axis=1)
            row, col = np.divmod(first, self.enemy_cols)
            hit_idx = np.flatnonzero(hit)
            self.alive[hit_idx, row[hit_idx], col[hit_idx]] = False
            # Higher (further) rows are worth more, as in Space Invaders.
            reward[hit] += self.enemy_points * (self.enemy_rows - row[hit])
            self.bullet_alive[hit_idx, slot[hit_idx]] = False

        # Bombs move down and may hit the player.
        falling = self.bomb_alive & stepping[:, None]
        self.bomb_y[falling] += self.bomb_speed
        past = falling & (self.bomb_y >= 0.95)
        struck = (
            falling & ~past
            & (self.bomb_y >= 0.88)
            & (np.abs(self.bomb_x - self.player_x[:, None]) < 0.05)
        )
        life_lost |= struck.any(axis=1)
        self.bomb_alive &= ~(past | struck)

        # Wave cleared.
        cleared = stepping & ~self.alive.any(axis=(1, 2))
        reward[cleared] += self.wave_bonus
        self._spawn_wave(cleared)

        return reward, life_lost

    # ------------------------------------------------------------------ #
    def _render_game(self, canvas, lanes=None):
        envs = self._env_indices if lanes is None else lanes
        # Player ships.
        blit_rects(canvas, envs, take_lanes(self.player_x, lanes), 0.92, 0.08, 0.04, 0.9)
        # Enemies (intensity varies by row so the formation has texture).
        env, row, col = masked_nonzero(self.alive, lanes)
        x = self.formation_x[env] + col * 0.6 / max(self.enemy_cols - 1, 1)
        y = self.formation_y[env] + row * 0.28 / max(self.enemy_rows - 1, 1)
        blit_rects(canvas, env, x, y, 0.06, 0.04, 0.4 + 0.1 * row)
        env, slot = masked_nonzero(self.bullet_alive, lanes)
        blit_points(canvas, env, self.bullet_x[env, slot], self.bullet_y[env, slot], 1.0, radius=0)
        env, slot = masked_nonzero(self.bomb_alive, lanes)
        blit_points(canvas, env, self.bomb_x[env, slot], self.bomb_y[env, slot], 0.7, radius=0)
