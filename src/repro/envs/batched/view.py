"""Single-env facade over a ``num_envs=1`` batched engine.

The serial arcade classes (``PaddleGame`` et al.) are thin views over the
struct-of-arrays engines: one lane of batched state, the same
``reset``/``step`` contract as :class:`~repro.envs.base.ArcadeGame`, and the
lane's own ``numpy.random.Generator`` shared with the engine.  Because the
view executes the *same* code as the batched backend, a serial
``VectorEnv`` of views and a ``BatchedVectorEnv`` produce bit-identical
trajectories by construction.
"""

from __future__ import annotations

import numpy as np

from ..base import ArcadeGame

__all__ = ["BatchedGameView"]


class BatchedGameView(ArcadeGame):
    """An :class:`ArcadeGame` whose state lives in a one-lane batched engine.

    Subclasses set :attr:`engine_cls` and pass the engine's game parameters
    through ``engine_params``; the :class:`ArcadeGame` bookkeeping arguments
    (render size, lives, score scale, sticky actions, seed) are forwarded
    unchanged.
    """

    engine_cls = None

    def __init__(self, game_id, engine_params=None, **kwargs):
        super().__init__(game_id=game_id, **kwargs)
        self._engine = type(self).engine_cls(
            game_id=game_id,
            num_envs=1,
            render_size=self.render_size,
            max_episode_steps=self.max_episode_steps,
            lives=self.initial_lives,
            score_scale=self.score_scale,
            sticky_action_prob=self.sticky_action_prob,
            **(engine_params or {}),
        )
        # The view's generator *is* the lane's stream (reset(seed=...) and
        # seed() swap it; auto-resets keep drawing from it).
        self._engine.rngs[0] = self._rng
        self._one_action = np.zeros(1, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Env interface
    # ------------------------------------------------------------------ #
    def reset(self, seed=None):
        if seed is not None:
            self._rng = np.random.default_rng(seed)
            self._engine.rngs[0] = self._rng
        self._done = False
        return self._engine.reset()[0].copy()

    def step(self, action):
        engine = self._engine
        if engine.done[0]:
            raise RuntimeError("step() called on a finished episode; call reset() first")
        action = int(action)
        if not self.action_space.contains(action):
            raise ValueError("invalid action {}".format(action))
        self._one_action[0] = action
        reward, life_lost = engine.step(self._one_action)
        done = bool(engine.done[0])
        self._done = done
        info = {
            "lives": int(engine.lives[0]),
            "score": float(engine.score[0]),
            "elapsed_steps": int(engine.elapsed_steps[0]),
            "life_lost": bool(life_lost[0]),
        }
        return engine.observe()[0].copy(), float(reward[0]), done, info

    def seed(self, seed):
        result = super().seed(seed)
        self._engine.rngs[0] = self._rng
        return result

    # ------------------------------------------------------------------ #
    # Bookkeeping read from the engine lane
    # ------------------------------------------------------------------ #
    @property
    def lives(self):
        return int(self._engine.lives[0])

    @property
    def score(self):
        return float(self._engine.score[0])

    @property
    def elapsed_steps(self):
        return int(self._engine.elapsed_steps[0])

    # The ArcadeGame hooks never run for a view (reset/step are overridden);
    # keep them defined so introspection and subclassing stay sane.
    def _reset_game(self):  # pragma: no cover - unreachable by design
        raise RuntimeError("BatchedGameView delegates to its engine")

    def _step_game(self, action):  # pragma: no cover - unreachable by design
        raise RuntimeError("BatchedGameView delegates to its engine")

    def _render_objects(self, canvas):  # pragma: no cover - unreachable by design
        raise RuntimeError("BatchedGameView delegates to its engine")

    @staticmethod
    def _lane_float(array):
        return float(array[0])

    @staticmethod
    def _lane_int(array):
        return int(array[0])
