"""Registry of the Atari-like game suite used throughout the paper.

Every game the paper evaluates (Tables I-III, Figs. 1-3) has an entry here
mapping its name to one of the arcade engines plus a parameter set that gives
the game its own dynamics, difficulty, and score scale.  Score scales are
chosen so the *relative magnitudes* of the games roughly match the paper
(e.g. Atlantis and DemonAttack produce very large scores, Boxing is capped
near 100, Tennis / Pong hover around small positive and negative values).

The ``difficulty`` field (1 = easy ... 5 = hard) drives how much a larger
backbone helps: it is used by tests and the Table I harness to verify the
paper's qualitative claim that bigger networks pay off on harder games.
"""

from __future__ import annotations

import os

from .arcade import DuelGame, MazeGame, NavigatorGame, PaddleGame, ShooterGame
from .wrappers import ClipReward, FrameSkip, FrameStack, NullOpStart, ResizeObservation

__all__ = [
    "GAME_REGISTRY",
    "ATARI_GAMES",
    "make_game",
    "make_env",
    "game_names",
    "game_info",
    "VECTOR_BACKENDS",
    "register_vector_backend",
    "get_vector_backend",
    "default_vector_backend",
    "async_supervision",
]


def _entry(engine, difficulty, **params):
    return {"engine": engine, "difficulty": difficulty, "params": params}


#: Game name -> engine class, difficulty rating and constructor parameters.
GAME_REGISTRY = {
    # Paddle family -------------------------------------------------------
    "Breakout": _entry(
        PaddleGame, 2,
        brick_rows=4, brick_cols=8, brick_points=1.0, ball_speed=0.04,
        paddle_width=0.2, lives=5, score_scale=1.0, max_episode_steps=1000,
    ),
    "Pong": _entry(
        PaddleGame, 1,
        brick_rows=0, point_reward=1.0, point_penalty=1.0, ball_speed=0.035,
        paddle_width=0.22, opponent_skill=0.6, lives=21, score_scale=1.0,
        max_episode_steps=1000,
    ),
    "Tennis": _entry(
        PaddleGame, 3,
        brick_rows=0, point_reward=1.0, point_penalty=1.0, ball_speed=0.045,
        paddle_width=0.16, opponent_skill=0.8, lives=24, score_scale=1.0,
        max_episode_steps=1000,
    ),
    # Fixed shooter family -------------------------------------------------
    "SpaceInvaders": _entry(
        ShooterGame, 3,
        enemy_rows=4, enemy_cols=6, enemy_points=5.0, enemy_speed=0.01,
        bomb_prob=0.08, wave_bonus=100.0, lives=3, score_scale=2.0,
        max_episode_steps=1200,
    ),
    "Assault": _entry(
        ShooterGame, 3,
        enemy_rows=3, enemy_cols=5, enemy_points=21.0, enemy_speed=0.012,
        bomb_prob=0.1, wave_bonus=150.0, lives=4, score_scale=2.0,
        max_episode_steps=1200,
    ),
    "DemonAttack": _entry(
        ShooterGame, 4,
        enemy_rows=3, enemy_cols=4, enemy_points=20.0, enemy_speed=0.015,
        bomb_prob=0.12, wave_bonus=400.0, lives=4, score_scale=20.0,
        max_episode_steps=1500,
    ),
    "Asterix": _entry(
        ShooterGame, 3,
        enemy_rows=2, enemy_cols=6, enemy_points=50.0, enemy_speed=0.012,
        bomb_prob=0.05, wave_bonus=500.0, lives=3, score_scale=10.0,
        max_episode_steps=1200,
    ),
    "Atlantis": _entry(
        ShooterGame, 2,
        enemy_rows=2, enemy_cols=4, enemy_points=100.0, enemy_speed=0.02,
        bomb_prob=0.03, wave_bonus=1000.0, lives=6, score_scale=100.0,
        max_episode_steps=1500,
    ),
    "Centipede": _entry(
        ShooterGame, 2,
        enemy_rows=5, enemy_cols=6, enemy_points=3.0, enemy_speed=0.008,
        bomb_prob=0.06, wave_bonus=60.0, lives=3, score_scale=3.0,
        max_episode_steps=1000,
    ),
    "Phoenix": _entry(
        ShooterGame, 3,
        enemy_rows=3, enemy_cols=6, enemy_points=8.0, enemy_speed=0.013,
        bomb_prob=0.09, wave_bonus=120.0, lives=4, score_scale=2.0,
        max_episode_steps=1200,
    ),
    # Maze / chase family --------------------------------------------------
    "Alien": _entry(
        MazeGame, 4,
        grid_size=11, num_enemies=3, chase_prob=0.4, pellet_reward=10.0,
        clear_bonus=200.0, lives=3, score_scale=1.0, max_episode_steps=1000,
    ),
    "WizardOfWor": _entry(
        MazeGame, 4,
        grid_size=9, num_enemies=4, chase_prob=0.5, pellet_reward=5.0,
        clear_bonus=100.0, lives=3, score_scale=1.0, max_episode_steps=900,
    ),
    "Qbert": _entry(
        MazeGame, 3,
        grid_size=9, num_enemies=2, chase_prob=0.35, pellet_reward=25.0,
        clear_bonus=300.0, lives=4, score_scale=1.0, max_episode_steps=1000,
    ),
    "MsPacman": _entry(
        MazeGame, 3,
        grid_size=13, num_enemies=4, chase_prob=0.45, pellet_reward=10.0,
        clear_bonus=250.0, lives=3, score_scale=1.0, max_episode_steps=1200,
    ),
    # Free navigation / flight family --------------------------------------
    "ChopperCommand": _entry(
        NavigatorGame, 4,
        target_points=100.0, target_spawn_prob=0.12, hazard_spawn_prob=0.08,
        lives=3, score_scale=1.0, max_episode_steps=1000,
    ),
    "BeamRider": _entry(
        NavigatorGame, 4,
        target_points=44.0, target_spawn_prob=0.15, hazard_spawn_prob=0.1,
        vertical_motion=False, lives=3, score_scale=2.0, max_episode_steps=1200,
    ),
    "Seaquest": _entry(
        NavigatorGame, 5,
        target_points=20.0, rescue_points=50.0, rescue_spawn_prob=0.05,
        target_spawn_prob=0.14, hazard_spawn_prob=0.1, lives=3,
        score_scale=50.0, max_episode_steps=1500,
    ),
    "TimePilot": _entry(
        NavigatorGame, 3,
        target_points=100.0, target_spawn_prob=0.1, hazard_spawn_prob=0.07,
        target_speed=0.02, lives=4, score_scale=1.0, max_episode_steps=1000,
    ),
    "BattleZone": _entry(
        NavigatorGame, 4,
        target_points=1000.0, target_spawn_prob=0.06, hazard_spawn_prob=0.06,
        vertical_motion=False, lives=3, score_scale=1.0, max_episode_steps=1000,
    ),
    "Asteroids": _entry(
        NavigatorGame, 3,
        target_points=50.0, target_spawn_prob=0.18, hazard_spawn_prob=0.12,
        target_speed=0.025, hazard_speed=0.03, lives=4, score_scale=1.0,
        max_episode_steps=1000,
    ),
    "CrazyClimber": _entry(
        NavigatorGame, 2,
        target_points=100.0, target_spawn_prob=0.2, hazard_spawn_prob=0.04,
        target_speed=0.01, lives=5, score_scale=10.0, max_episode_steps=1200,
    ),
    # Duel / aiming family --------------------------------------------------
    "Boxing": _entry(
        DuelGame, 2,
        punch_reward=1.0, punch_penalty=1.0, opponent_skill=0.5, score_cap=100.0,
        lives=1, score_scale=1.0, max_episode_steps=800,
    ),
    "Bowling": _entry(
        DuelGame, 1,
        static_opponent=True, punch_reward=1.0, pins=10, max_throws=21,
        lives=1, score_scale=3.0, max_episode_steps=800,
    ),
}

#: All registered game names in a stable order.
ATARI_GAMES = tuple(sorted(GAME_REGISTRY))


def game_names():
    """Return the list of registered game names."""
    return list(ATARI_GAMES)


def game_info(name):
    """Return the registry entry (engine, difficulty, params) for ``name``."""
    if name not in GAME_REGISTRY:
        raise KeyError(
            "unknown game {!r}; registered games: {}".format(name, ", ".join(ATARI_GAMES))
        )
    return GAME_REGISTRY[name]


def make_game(name, render_size=84, seed=0, **overrides):
    """Instantiate the raw (unwrapped) arcade game for ``name``.

    ``overrides`` are merged over the registry parameters, letting experiments
    shrink episodes or change difficulty without editing the registry.
    """
    entry = game_info(name)
    params = dict(entry["params"])
    params.update(overrides)
    return entry["engine"](game_id=name, render_size=render_size, seed=seed, **params)


def make_env(
    name,
    obs_size=42,
    frame_stack=2,
    frame_skip=2,
    clip_rewards=False,
    null_op_max=0,
    render_size=84,
    seed=0,
    **overrides,
):
    """Build the standard wrapped environment used by the DRL trainer.

    The wrapper stack mirrors the usual Atari preprocessing pipeline:
    frame-skip -> resize -> frame-stack (-> reward clipping -> null-op starts).
    """
    env = make_game(name, render_size=render_size, seed=seed, **overrides)
    if frame_skip and frame_skip > 1:
        env = FrameSkip(env, skip=frame_skip)
    if obs_size and obs_size != render_size:
        env = ResizeObservation(env, size=obs_size)
    if frame_stack and frame_stack > 1:
        env = FrameStack(env, num_frames=frame_stack)
    if clip_rewards:
        env = ClipReward(env)
    if null_op_max and null_op_max > 0:
        env = NullOpStart(env, max_null_ops=null_op_max)
    return env


# --------------------------------------------------------------------------- #
# Vectorised-environment backends
# --------------------------------------------------------------------------- #
#: Backend name -> vector-env constructor.  Two calling conventions exist,
#: distinguished by the factory's ``constructs_from_game_name`` attribute:
#: factories without it (the default — "sync" / "async" and most third-party
#: backends) take a list of per-env constructors, ``factory(env_fns)``;
#: factories that set it to True (the built-in "batched" backend) are built
#: from the game name instead, ``factory(name, num_envs=..., seed=...,
#: randomize=..., **env_kwargs)`` — one struct-of-arrays engine for all
#: lanes, so no per-env closures exist.  ``make_vector_env`` dispatches on
#: the attribute; callers resolving a factory directly via
#: ``get_vector_backend`` must do the same.
VECTOR_BACKENDS = {}


def register_vector_backend(name, factory):
    """Register a vector-env factory under ``name``.

    ``factory(env_fns) -> Env`` by default; set
    ``factory.constructs_from_game_name = True`` to register a name-based
    backend called as ``factory(game_name, num_envs=..., ...)`` instead
    (see the ``VECTOR_BACKENDS`` note above).  ``make_vector_env``
    dispatches either way, so a registered ``"batched"`` replacement is
    honoured.
    """
    VECTOR_BACKENDS[name] = factory
    return factory


def default_vector_backend():
    """The backend used when callers do not pick one explicitly.

    Controlled by the ``REPRO_VECTOR_BACKEND`` environment variable
    (``"batched"`` struct-of-arrays engine, ``"sync"`` in-process lock-step,
    ``"async"`` worker processes).  Defaults to ``"batched"`` — the
    auto-selection order is batched > sync > async: every registered game
    has a batched engine and the serial backends only matter as references
    or for configurations the batched pipeline does not cover
    (``make_vector_env`` falls back to ``"sync"`` for those).  ``"async"``
    is never auto-selected: at current model sizes the fork/pipe round trip
    per step costs more than the overlapped env work saves (see README).
    """
    return os.environ.get("REPRO_VECTOR_BACKEND", "batched")


def async_supervision():
    """Resolve the async backend's supervision defaults from the environment.

    Returns a dict with ``step_timeout`` (seconds one ``step_wait`` may wait
    per worker; ``REPRO_ENV_STEP_TIMEOUT``, default 60, <= 0 disables the
    deadline), ``restart_budget`` (consecutive failures one lane may absorb
    before the env degrades to the sync backend;
    ``REPRO_ENV_RESTART_BUDGET``, default 5) and ``restart_backoff`` (base
    seconds of the exponential respawn backoff;
    ``REPRO_ENV_RESTART_BACKOFF``, default 0.05).  Explicit
    ``supervision=`` kwargs to ``make_vector_env`` override these.
    """
    timeout = float(os.environ.get("REPRO_ENV_STEP_TIMEOUT", "60"))
    return {
        "step_timeout": timeout if timeout > 0 else 0.0,
        "restart_budget": int(os.environ.get("REPRO_ENV_RESTART_BUDGET", "5")),
        "restart_backoff": float(os.environ.get("REPRO_ENV_RESTART_BACKOFF", "0.05")),
    }


def get_vector_backend(name=None):
    """Resolve a backend name (``None`` -> :func:`default_vector_backend`)."""
    _ensure_vector_backends()
    name = name if name is not None else default_vector_backend()
    if name not in VECTOR_BACKENDS:
        raise KeyError(
            "unknown vector-env backend {!r}; registered: {}".format(
                name, ", ".join(sorted(VECTOR_BACKENDS))
            )
        )
    return VECTOR_BACKENDS[name]


def _ensure_vector_backends():
    """Register the built-in backends (lazy: avoids an import cycle)."""
    if "sync" in VECTOR_BACKENDS and "async" in VECTOR_BACKENDS and "batched" in VECTOR_BACKENDS:
        return
    from .batched import BatchedVectorEnv
    from .vector_env import AsyncVectorEnv, VectorEnv

    VECTOR_BACKENDS.setdefault("sync", VectorEnv)
    VECTOR_BACKENDS.setdefault("async", AsyncVectorEnv)
    # Unlike the serial factories, the batched backend is constructed from
    # the game name (one engine for all lanes), not from per-env closures;
    # make_vector_env special-cases it.
    VECTOR_BACKENDS.setdefault("batched", BatchedVectorEnv)
