"""Synchronous and worker-parallel vectorised environments.

A3C/A2C-style training interleaves several environment copies so each gradient
update sees decorrelated rollouts.  Two implementations share one interface:

* :class:`VectorEnv` steps ``num_envs`` wrapped environments in lock-step,
  in-process;
* :class:`AsyncVectorEnv` runs each environment in its own worker process
  (fork-based ``multiprocessing``) so env stepping overlaps with the main
  process's batched policy inference: ``step_async`` dispatches the actions
  and returns immediately, ``step_wait`` gathers results.

Both auto-reset finished episodes (reporting ``episode_return`` /
``episode_length`` through the step ``info``) and both derive per-env
randomness the same way, so a seeded serial and async vector env produce
identical trajectories.

Seed plumbing: ``reset(seed=N)`` spawns one child ``np.random.SeedSequence``
per sub-environment and threads an explicit ``np.random.Generator`` built
from it through every ``reset`` — including episode auto-resets, which
continue the same per-env stream instead of silently re-deriving state from
the original ``seed + index`` integer.  (``np.random.default_rng(generator)``
returns the generator itself, so the base ``Env.reset(seed=...)`` contract is
unchanged.)
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np

from .base import Env

__all__ = ["VectorEnv", "AsyncVectorEnv", "make_vector_env", "spawn_env_generators"]


def spawn_env_generators(seed, num_envs):
    """One independent ``np.random.Generator`` per sub-environment.

    Uses ``SeedSequence.spawn`` so the streams are statistically independent
    (unlike the historical ``seed + index`` convention) yet fully determined
    by ``(seed, num_envs)`` — the property that makes serial and async vector
    envs reproduce each other.
    """
    children = np.random.SeedSequence(seed).spawn(num_envs)
    return [np.random.default_rng(child) for child in children]


class VectorEnv(Env):
    """Run ``len(env_fns)`` environments in lock-step.

    Parameters
    ----------
    env_fns:
        A list of zero-argument callables, each constructing one environment.
    """

    def __init__(self, env_fns):
        if not env_fns:
            raise ValueError("need at least one environment")
        self.envs = [fn() for fn in env_fns]
        self.num_envs = len(self.envs)
        self.action_space = self.envs[0].action_space
        self.observation_space = self.envs[0].observation_space
        self._episode_returns = np.zeros(self.num_envs)
        self._episode_lengths = np.zeros(self.num_envs, dtype=int)
        self._rngs = [None] * self.num_envs
        self._pending_actions = None
        self._closed = False

    def reset(self, seed=None):
        if self._pending_actions is not None:
            raise RuntimeError("reset called with a step_async in flight; call step_wait first")
        if seed is not None:
            self._rngs = spawn_env_generators(seed, self.num_envs)
        observations = [
            env.reset(seed=rng) for env, rng in zip(self.envs, self._rngs)
        ]
        self._episode_returns[:] = 0.0
        self._episode_lengths[:] = 0
        return np.stack(observations)

    def step(self, actions):
        """Step every environment; auto-reset finished ones.

        Returns
        -------
        observations, rewards, dones, infos:
            Batched arrays / list of per-env info dicts.  When an episode
            finishes, its info contains ``episode_return`` / ``episode_length``
            and the observation returned is the first of the next episode.
        """
        if self._pending_actions is not None:
            raise RuntimeError("step called with a step_async in flight; call step_wait first")
        actions = np.asarray(actions)
        if actions.shape[0] != self.num_envs:
            raise ValueError("expected {} actions, got {}".format(self.num_envs, actions.shape[0]))
        observations, rewards, dones, infos = [], [], [], []
        for index, (env, action) in enumerate(zip(self.envs, actions)):
            obs, reward, done, info = env.step(int(action))
            self._episode_returns[index] += reward
            self._episode_lengths[index] += 1
            info = dict(info)
            if done:
                info["episode_return"] = float(self._episode_returns[index])
                info["episode_length"] = int(self._episode_lengths[index])
                self._episode_returns[index] = 0.0
                self._episode_lengths[index] = 0
                # Thread the per-env generator through the auto-reset so the
                # episode stream continues instead of replaying seed + index.
                obs = env.reset(seed=self._rngs[index])
            observations.append(obs)
            rewards.append(reward)
            dones.append(done)
            infos.append(info)
        return np.stack(observations), np.asarray(rewards), np.asarray(dones), infos

    # ------------------------------------------------------------------ #
    # Async-compatible interface (trivial for the in-process variant)
    # ------------------------------------------------------------------ #
    def step_async(self, actions):
        """Record the next batch of actions (executed by :meth:`step_wait`)."""
        if self._pending_actions is not None:
            raise RuntimeError("step_async called twice without step_wait")
        self._pending_actions = np.asarray(actions)

    def step_wait(self):
        """Complete a :meth:`step_async` call."""
        if self._pending_actions is None:
            raise RuntimeError("step_wait called without step_async")
        actions = self._pending_actions
        self._pending_actions = None
        return self.step(actions)

    def close(self):
        """Close every sub-environment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for env in self.envs:
            env.close()


def _async_worker(env_fn, conn):
    """Worker loop owning one environment (and its generator) end-to-end.

    Every reply is a ``("ok", payload)`` or ``("error", traceback)`` pair so
    worker-side exceptions (bad action, bad game name, game bug) surface in
    the parent process as real errors instead of a dead pipe.
    """
    import traceback

    try:
        env = env_fn()
        init_error = None
    except Exception:
        env = None
        init_error = traceback.format_exc()
    rng = None
    episode_return = 0.0
    episode_length = 0
    try:
        while True:
            command, payload = conn.recv()
            if command == "close":
                if env is not None:
                    env.close()
                conn.send(("ok", None))
                break
            if init_error is not None:
                conn.send(("error", init_error))
                continue
            try:
                if command == "reset":
                    if payload is not None:
                        rng = np.random.default_rng(payload)
                    episode_return = 0.0
                    episode_length = 0
                    conn.send(("ok", env.reset(seed=rng)))
                elif command == "step":
                    obs, reward, done, info = env.step(int(payload))
                    episode_return += reward
                    episode_length += 1
                    info = dict(info)
                    if done:
                        info["episode_return"] = float(episode_return)
                        info["episode_length"] = int(episode_length)
                        episode_return = 0.0
                        episode_length = 0
                        obs = env.reset(seed=rng)
                    conn.send(("ok", (obs, reward, done, info)))
                elif command == "spec":
                    conn.send(("ok", (env.action_space, env.observation_space)))
                else:
                    conn.send(("error", "unknown command {!r}".format(command)))
            except Exception:
                conn.send(("error", traceback.format_exc()))
    finally:
        conn.close()


class AsyncVectorEnv(Env):
    """Worker-process vectorised environment behind the ``VectorEnv`` interface.

    Each sub-environment lives in a forked worker; ``step_async`` ships one
    action per worker and returns immediately, letting rollout collectors
    overlap environment stepping with batched policy inference on the main
    process.  ``step`` is ``step_async`` + ``step_wait`` for drop-in use.

    Parameters
    ----------
    env_fns:
        Zero-argument environment constructors, one per worker.  Fork start
        method means plain closures work (nothing is pickled at spawn time).
    context:
        ``multiprocessing`` start method; ``"fork"`` (default) is required
        for closure ``env_fns`` and is available on every POSIX platform.
    """

    def __init__(self, env_fns, context="fork"):
        if not env_fns:
            raise ValueError("need at least one environment")
        try:
            ctx = mp.get_context(context)
        except ValueError as error:
            raise RuntimeError(
                "AsyncVectorEnv needs the {!r} multiprocessing start method; "
                "use the sync backend on this platform".format(context)
            ) from error
        self.num_envs = len(env_fns)
        self._conns = []
        self._procs = []
        for fn in env_fns:
            parent, child = ctx.Pipe()
            proc = ctx.Process(target=_async_worker, args=(fn, child), daemon=True)
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)
        self._seed_sequences = [None] * self.num_envs
        self._waiting = False
        self._closed = False
        self._conns[0].send(("spec", None))
        self.action_space, self.observation_space = self._recv(self._conns[0])

    @staticmethod
    def _recv(conn):
        """Receive one worker reply, re-raising worker-side errors here."""
        status, payload = conn.recv()
        if status == "error":
            raise RuntimeError("async env worker failed:\n{}".format(payload))
        return payload

    def reset(self, seed=None):
        if self._waiting:
            raise RuntimeError("reset called with a step_async in flight; call step_wait first")
        if seed is not None:
            self._seed_sequences = np.random.SeedSequence(seed).spawn(self.num_envs)
        for conn, child_sequence in zip(self._conns, self._seed_sequences):
            conn.send(("reset", child_sequence))
        observations = [self._recv(conn) for conn in self._conns]
        # Sequences were delivered; workers keep the generators from now on.
        self._seed_sequences = [None] * self.num_envs
        return np.stack(observations)

    def step_async(self, actions):
        """Dispatch one action per worker without waiting for results."""
        actions = np.asarray(actions)
        if actions.shape[0] != self.num_envs:
            raise ValueError("expected {} actions, got {}".format(self.num_envs, actions.shape[0]))
        if self._waiting:
            raise RuntimeError("step_async called twice without step_wait")
        dead = []
        for index, (conn, action) in enumerate(zip(self._conns, actions)):
            try:
                conn.send(("step", int(action)))
            except (BrokenPipeError, OSError):
                dead.append(index)
        if dead:
            # A worker died before the dispatch: some workers now hold an
            # unanswered request, so tear everything down rather than leak.
            self.close(terminate=True)
            raise RuntimeError(
                "async env worker(s) {} died during step dispatch; "
                "vector env closed".format(dead)
            )
        self._waiting = True

    def step_wait(self):
        """Gather the results of the in-flight :meth:`step_async`."""
        if not self._waiting:
            raise RuntimeError("step_wait called without step_async")
        # Drain every worker before raising so one failed worker neither
        # wedges the env in the waiting state nor desynchronises the other
        # pipes' request/reply pairing.
        replies = []
        dead = []
        try:
            for index, conn in enumerate(self._conns):
                try:
                    replies.append(conn.recv())
                except (EOFError, OSError):
                    dead.append(index)
        finally:
            self._waiting = False
        if dead:
            # A worker died mid-step (crash / kill): the request/reply
            # protocol cannot recover, so tear everything down instead of
            # leaking the surviving forked workers.
            self.close(terminate=True)
            raise RuntimeError(
                "async env worker(s) {} died during step_wait; "
                "vector env closed".format(dead)
            )
        errors = [payload for status, payload in replies if status == "error"]
        if errors:
            raise RuntimeError("async env worker failed:\n{}".format("\n".join(errors)))
        results = [payload for _, payload in replies]
        observations, rewards, dones, infos = zip(*results)
        return (
            np.stack(observations),
            np.asarray(rewards),
            np.asarray(dones),
            list(infos),
        )

    def step(self, actions):
        """Synchronous convenience wrapper: ``step_async`` + ``step_wait``."""
        self.step_async(actions)
        return self.step_wait()

    def close(self, terminate=False):
        """Shut the workers down (idempotent; safe with a step in flight).

        ``terminate=True`` skips the polite close handshake and kills the
        workers outright — used when the pipe protocol is already broken.
        """
        if self._closed:
            return
        self._closed = True
        if self._waiting and not terminate:
            # Drain the in-flight step replies so the close command is not
            # answered by a stale step result (and the workers actually see
            # it instead of blocking on a full pipe).
            for conn in self._conns:
                try:
                    conn.recv()
                except (EOFError, OSError):
                    pass
            self._waiting = False
        if not terminate:
            for conn in self._conns:
                try:
                    conn.send(("close", None))
                except (BrokenPipeError, OSError):
                    continue
            for conn in self._conns:
                try:
                    conn.recv()
                except (EOFError, OSError):
                    pass
        for conn in self._conns:
            conn.close()
        for proc in self._procs:
            if terminate:
                proc.terminate()
            proc.join(timeout=5)
            if proc.is_alive():
                # Last resort: never leak a forked worker into the test run.
                proc.terminate()
                proc.join(timeout=5)

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass


def make_vector_env(name, num_envs=4, seed=0, backend=None, randomize=None, **env_kwargs):
    """Build a vectorised environment of ``num_envs`` copies of a registered game.

    ``backend`` selects the implementation from the registry in
    :mod:`repro.envs.registry` (``"batched"`` struct-of-arrays engine,
    ``"sync"`` in-process lock-step, ``"async"`` worker processes); ``None``
    resolves the default via
    :func:`repro.envs.registry.default_vector_backend` (the
    ``REPRO_VECTOR_BACKEND`` environment variable, falling back to
    ``"batched"``).  When the default resolution picks ``"batched"`` but the
    configuration is not batchable (e.g. ``null_op_max``), construction
    falls back to ``"sync"``; an explicitly requested backend never falls
    back.  All three backends produce bit-identical trajectories for the
    same ``reset(seed=N)``.

    ``randomize`` maps engine parameter names (e.g. ``paddle_width``,
    ``ball_speed``, ``bomb_prob``, ``wall_density``) to ``(low, high)``
    ranges re-drawn per env from its own stream on every reset — the cheap
    scenario-diversity hook of the batched backend (serial backends do not
    support it).
    """
    from .batched import BatchedUnsupportedError
    from .registry import default_vector_backend, get_vector_backend, make_env

    choice = backend if backend is not None else default_vector_backend()
    factory = get_vector_backend(choice)
    if getattr(factory, "constructs_from_game_name", False):
        # Name-based convention (the batched backend, or a registered
        # replacement): one engine for all lanes, no per-env closures.
        try:
            return factory(name, num_envs=num_envs, seed=seed, randomize=randomize, **env_kwargs)
        except BatchedUnsupportedError:
            # Fall back to the serial backend only for auto-selected,
            # randomize-free configs; an explicit backend request or a bad
            # randomize spec must surface its own error, not the fallback's.
            if backend is not None or randomize is not None:
                raise
            factory = get_vector_backend("sync")
    if randomize is not None:
        raise ValueError(
            "randomize= requires the batched backend (got backend={!r})".format(choice)
        )

    def make_one(index):
        return lambda: make_env(name, seed=seed + index, **env_kwargs)

    return factory([make_one(i) for i in range(num_envs)])
