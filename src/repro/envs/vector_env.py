"""Synchronous vectorised environment.

A3C/A2C-style training interleaves several environment copies so each gradient
update sees decorrelated rollouts.  ``VectorEnv`` steps ``num_envs`` wrapped
environments in lock-step (synchronously, in-process) and auto-resets finished
episodes, reporting completed episode returns through the step ``info``.
"""

from __future__ import annotations

import numpy as np

from .base import Env

__all__ = ["VectorEnv", "make_vector_env"]


class VectorEnv(Env):
    """Run ``len(env_fns)`` environments in lock-step.

    Parameters
    ----------
    env_fns:
        A list of zero-argument callables, each constructing one environment.
    """

    def __init__(self, env_fns):
        if not env_fns:
            raise ValueError("need at least one environment")
        self.envs = [fn() for fn in env_fns]
        self.num_envs = len(self.envs)
        self.action_space = self.envs[0].action_space
        self.observation_space = self.envs[0].observation_space
        self._episode_returns = np.zeros(self.num_envs)
        self._episode_lengths = np.zeros(self.num_envs, dtype=int)

    def reset(self, seed=None):
        observations = []
        for index, env in enumerate(self.envs):
            env_seed = None if seed is None else seed + index
            observations.append(env.reset(seed=env_seed))
        self._episode_returns[:] = 0.0
        self._episode_lengths[:] = 0
        return np.stack(observations)

    def step(self, actions):
        """Step every environment; auto-reset finished ones.

        Returns
        -------
        observations, rewards, dones, infos:
            Batched arrays / list of per-env info dicts.  When an episode
            finishes, its info contains ``episode_return`` / ``episode_length``
            and the observation returned is the first of the next episode.
        """
        actions = np.asarray(actions)
        if actions.shape[0] != self.num_envs:
            raise ValueError("expected {} actions, got {}".format(self.num_envs, actions.shape[0]))
        observations, rewards, dones, infos = [], [], [], []
        for index, (env, action) in enumerate(zip(self.envs, actions)):
            obs, reward, done, info = env.step(int(action))
            self._episode_returns[index] += reward
            self._episode_lengths[index] += 1
            info = dict(info)
            if done:
                info["episode_return"] = float(self._episode_returns[index])
                info["episode_length"] = int(self._episode_lengths[index])
                self._episode_returns[index] = 0.0
                self._episode_lengths[index] = 0
                obs = env.reset()
            observations.append(obs)
            rewards.append(reward)
            dones.append(done)
            infos.append(info)
        return np.stack(observations), np.asarray(rewards), np.asarray(dones), infos

    def close(self):
        for env in self.envs:
            env.close()


def make_vector_env(name, num_envs=4, seed=0, **env_kwargs):
    """Build a :class:`VectorEnv` of ``num_envs`` copies of a registered game."""
    from .registry import make_env

    def make_one(index):
        return lambda: make_env(name, seed=seed + index, **env_kwargs)

    return VectorEnv([make_one(i) for i in range(num_envs)])
