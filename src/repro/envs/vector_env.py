"""Synchronous and worker-parallel vectorised environments.

A3C/A2C-style training interleaves several environment copies so each gradient
update sees decorrelated rollouts.  Two implementations share one interface:

* :class:`VectorEnv` steps ``num_envs`` wrapped environments in lock-step,
  in-process;
* :class:`AsyncVectorEnv` runs each environment in its own worker process
  (fork-based ``multiprocessing``) so env stepping overlaps with the main
  process's batched policy inference: ``step_async`` dispatches the actions
  and returns immediately, ``step_wait`` gathers results.

Both auto-reset finished episodes (reporting ``episode_return`` /
``episode_length`` through the step ``info``) and both derive per-env
randomness the same way, so a seeded serial and async vector env produce
identical trajectories.

Seed plumbing: ``reset(seed=N)`` spawns one child ``np.random.SeedSequence``
per sub-environment and threads an explicit ``np.random.Generator`` built
from it through every ``reset`` — including episode auto-resets, which
continue the same per-env stream instead of silently re-deriving state from
the original ``seed + index`` integer.  (``np.random.default_rng(generator)``
returns the generator itself, so the base ``Env.reset(seed=...)`` contract is
unchanged.)

Supervision: the async backend is *supervised* — every ``step_wait`` enforces
a per-worker deadline (``REPRO_ENV_STEP_TIMEOUT``), and a worker that dies or
hangs is killed and respawned from its lane's retained ``SeedSequence`` (a
fresh spawn child, so restarted lanes stay on deterministic, independent
streams).  The restarted lane reports ``(reset_obs, 0.0, done=True,
{"worker_restarted": True})`` — masked exactly like an auto-reset boundary,
so rollout buffers and return bootstrapping stay well-defined.  Restarts are
budgeted per lane with exponential backoff
(:class:`~repro.reliability.retry.RetryPolicy`); when a lane exhausts its
budget (``REPRO_ENV_RESTART_BUDGET`` consecutive failures) the whole env
*degrades* to the in-process sync backend — one all-lanes ``done=True``
boundary, then training continues without worker processes instead of dying
mid-rollout.  Worker-side *program* errors (bad action, bad game name, env
bug) still raise ``RuntimeError`` in the parent: a restart cannot fix those.
"""

from __future__ import annotations

import multiprocessing as mp
import time

import numpy as np

from ..reliability import health
from ..reliability.faults import get_injector
from ..reliability.retry import RetryPolicy
from .base import Env

__all__ = ["VectorEnv", "AsyncVectorEnv", "make_vector_env", "spawn_env_generators"]


def spawn_env_generators(seed, num_envs):
    """One independent ``np.random.Generator`` per sub-environment.

    Uses ``SeedSequence.spawn`` so the streams are statistically independent
    (unlike the historical ``seed + index`` convention) yet fully determined
    by ``(seed, num_envs)`` — the property that makes serial and async vector
    envs reproduce each other.
    """
    children = np.random.SeedSequence(seed).spawn(num_envs)
    return [np.random.default_rng(child) for child in children]


class VectorEnv(Env):
    """Run ``len(env_fns)`` environments in lock-step.

    Parameters
    ----------
    env_fns:
        A list of zero-argument callables, each constructing one environment.
    """

    def __init__(self, env_fns):
        if not env_fns:
            raise ValueError("need at least one environment")
        self.envs = [fn() for fn in env_fns]
        self.num_envs = len(self.envs)
        self.action_space = self.envs[0].action_space
        self.observation_space = self.envs[0].observation_space
        self._episode_returns = np.zeros(self.num_envs)
        self._episode_lengths = np.zeros(self.num_envs, dtype=int)
        self._rngs = [None] * self.num_envs
        self._pending_actions = None
        self._closed = False

    def reset(self, seed=None):
        if self._pending_actions is not None:
            raise RuntimeError("reset called with a step_async in flight; call step_wait first")
        if seed is not None:
            self._rngs = spawn_env_generators(seed, self.num_envs)
        observations = [
            env.reset(seed=rng) for env, rng in zip(self.envs, self._rngs)
        ]
        self._episode_returns[:] = 0.0
        self._episode_lengths[:] = 0
        return np.stack(observations)

    def step(self, actions):
        """Step every environment; auto-reset finished ones.

        Returns
        -------
        observations, rewards, dones, infos:
            Batched arrays / list of per-env info dicts.  When an episode
            finishes, its info contains ``episode_return`` / ``episode_length``
            and the observation returned is the first of the next episode.
        """
        if self._pending_actions is not None:
            raise RuntimeError("step called with a step_async in flight; call step_wait first")
        actions = np.asarray(actions)
        if actions.shape[0] != self.num_envs:
            raise ValueError("expected {} actions, got {}".format(self.num_envs, actions.shape[0]))
        observations, rewards, dones, infos = [], [], [], []
        for index, (env, action) in enumerate(zip(self.envs, actions)):
            obs, reward, done, info = env.step(int(action))
            self._episode_returns[index] += reward
            self._episode_lengths[index] += 1
            info = dict(info)
            if done:
                info["episode_return"] = float(self._episode_returns[index])
                info["episode_length"] = int(self._episode_lengths[index])
                self._episode_returns[index] = 0.0
                self._episode_lengths[index] = 0
                # Thread the per-env generator through the auto-reset so the
                # episode stream continues instead of replaying seed + index.
                obs = env.reset(seed=self._rngs[index])
            observations.append(obs)
            rewards.append(reward)
            dones.append(done)
            infos.append(info)
        return np.stack(observations), np.asarray(rewards), np.asarray(dones), infos

    # ------------------------------------------------------------------ #
    # Async-compatible interface (trivial for the in-process variant)
    # ------------------------------------------------------------------ #
    def step_async(self, actions):
        """Record the next batch of actions (executed by :meth:`step_wait`)."""
        if self._pending_actions is not None:
            raise RuntimeError("step_async called twice without step_wait")
        self._pending_actions = np.asarray(actions)

    def step_wait(self):
        """Complete a :meth:`step_async` call."""
        if self._pending_actions is None:
            raise RuntimeError("step_wait called without step_async")
        actions = self._pending_actions
        self._pending_actions = None
        return self.step(actions)

    def close(self):
        """Close every sub-environment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for env in self.envs:
            env.close()


def _async_worker(env_fn, conn):
    """Worker loop owning one environment (and its generator) end-to-end.

    Every reply is a ``("ok", payload)`` or ``("error", traceback)`` pair so
    worker-side exceptions (bad action, bad game name, game bug) surface in
    the parent process as real errors instead of a dead pipe.
    """
    import traceback

    try:
        env = env_fn()
        init_error = None
    except Exception:
        env = None
        init_error = traceback.format_exc()
    rng = None
    episode_return = 0.0
    episode_length = 0
    try:
        while True:
            command, payload = conn.recv()
            if command == "close":
                if env is not None:
                    env.close()
                conn.send(("ok", None))
                break
            if init_error is not None:
                conn.send(("error", init_error))
                continue
            try:
                if command == "reset":
                    if payload is not None:
                        rng = np.random.default_rng(payload)
                    episode_return = 0.0
                    episode_length = 0
                    conn.send(("ok", env.reset(seed=rng)))
                elif command == "step":
                    obs, reward, done, info = env.step(int(payload))
                    episode_return += reward
                    episode_length += 1
                    info = dict(info)
                    if done:
                        info["episode_return"] = float(episode_return)
                        info["episode_length"] = int(episode_length)
                        episode_return = 0.0
                        episode_length = 0
                        obs = env.reset(seed=rng)
                    conn.send(("ok", (obs, reward, done, info)))
                elif command == "spec":
                    conn.send(("ok", (env.action_space, env.observation_space)))
                else:
                    conn.send(("error", "unknown command {!r}".format(command)))
            except Exception:
                conn.send(("error", traceback.format_exc()))
    finally:
        conn.close()


class AsyncVectorEnv(Env):
    """Supervised worker-process vector env behind the ``VectorEnv`` interface.

    Each sub-environment lives in a forked worker; ``step_async`` ships one
    action per worker and returns immediately, letting rollout collectors
    overlap environment stepping with batched policy inference on the main
    process.  ``step`` is ``step_async`` + ``step_wait`` for drop-in use.

    The parent *supervises* the workers (see the module docstring): crashed
    or deadline-blown workers are respawned on their lane's seed stream and
    the lane is masked like an auto-reset boundary; a lane that keeps dying
    degrades the whole env to the in-process sync backend instead of raising
    mid-rollout.

    Parameters
    ----------
    env_fns:
        Zero-argument environment constructors, one per worker.  Fork start
        method means plain closures work (nothing is pickled at spawn time).
        The constructors are retained for respawns and the sync fallback.
    context:
        ``multiprocessing`` start method; ``"fork"`` (default) is required
        for closure ``env_fns`` and is available on every POSIX platform.
    step_timeout:
        Per-worker deadline (seconds) that one ``step_wait`` enforces across
        all lanes.  ``None`` resolves ``REPRO_ENV_STEP_TIMEOUT`` (default 60);
        0 disables the deadline.
    restart_budget:
        Consecutive failed steps one lane may accumulate before the env
        degrades to the sync backend.  ``None`` resolves
        ``REPRO_ENV_RESTART_BUDGET`` (default 5).
    restart_backoff:
        Base backoff (seconds) of the exponential respawn delay.  ``None``
        resolves ``REPRO_ENV_RESTART_BACKOFF`` (default 0.05).
    """

    #: ``make_vector_env`` forwards its ``supervision=`` kwargs only to
    #: factories declaring this attribute.
    accepts_supervision = True

    def __init__(self, env_fns, context="fork", step_timeout=None,
                 restart_budget=None, restart_backoff=None):
        if not env_fns:
            raise ValueError("need at least one environment")
        try:
            ctx = mp.get_context(context)
        except ValueError as error:
            raise RuntimeError(
                "AsyncVectorEnv needs the {!r} multiprocessing start method; "
                "use the sync backend on this platform".format(context)
            ) from error
        from .registry import async_supervision

        defaults = async_supervision()
        if step_timeout is None:
            step_timeout = defaults["step_timeout"]
        self._step_timeout = float(step_timeout) if step_timeout else None
        if restart_budget is None:
            restart_budget = defaults["restart_budget"]
        self._restart_budget = max(0, int(restart_budget))
        if restart_backoff is None:
            restart_backoff = defaults["restart_backoff"]
        self._retry = RetryPolicy(
            max_attempts=max(1, self._restart_budget),
            backoff=float(restart_backoff),
            factor=2.0,
            max_backoff=2.0,
        )
        self._ctx = ctx
        self._env_fns = list(env_fns)
        self.num_envs = len(env_fns)
        self._conns = [None] * self.num_envs
        self._procs = [None] * self.num_envs
        for index in range(self.num_envs):
            self._spawn_worker(index)
        #: Retained per-lane seed streams: delivered to the worker at seeded
        #: resets, and spawned from (``seq.spawn(1)[0]``) to re-seed
        #: replacement workers, so restarts stay deterministic per lane.
        self._lane_sequences = [None] * self.num_envs
        #: Consecutive failed steps per lane; reset by any successful reply.
        self._streaks = [0] * self.num_envs
        #: Lanes whose dispatch failed (no reply will come): index -> reason.
        self._broken = {}
        #: The sync :class:`VectorEnv` this env delegates to after degrading.
        self._fallback = None
        self._waiting = False
        self._closed = False
        self._conns[0].send(("spec", None))
        self.action_space, self.observation_space = self._recv(self._conns[0])

    @staticmethod
    def _recv(conn):
        """Receive one worker reply, re-raising worker-side errors here."""
        status, payload = conn.recv()
        if status == "error":
            raise RuntimeError("async env worker failed:\n{}".format(payload))
        return payload

    # ------------------------------------------------------------------ #
    # Worker lifecycle
    # ------------------------------------------------------------------ #
    def _spawn_worker(self, index):
        """(Re)create lane ``index``'s worker process and pipe."""
        parent, child = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_async_worker, args=(self._env_fns[index], child), daemon=True
        )
        proc.start()
        child.close()
        self._conns[index] = parent
        self._procs[index] = proc

    def _kill_lane(self, index):
        """Tear down lane ``index``'s worker unconditionally (never raises)."""
        conn = self._conns[index]
        proc = self._procs[index]
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        if proc is not None:
            try:
                proc.terminate()
                proc.join(timeout=5)
                if proc.is_alive():
                    proc.kill()
                    proc.join(timeout=5)
            except Exception:
                pass

    def _teardown_workers(self):
        """Kill every worker (degrade path; ``close`` handles the polite path)."""
        for index in range(self.num_envs):
            self._kill_lane(index)

    def _restart_lane(self, index, reason, reset_payload=None):
        """Respawn a dead or hung lane and reset its replacement worker.

        Returns the lane's masked step result ``(reset_obs, 0.0, True,
        info)`` — the same shape as an auto-reset boundary — or ``None``
        when the lane's restart budget is exhausted (the caller degrades the
        env).  ``reset_payload`` overrides the replacement's seed stream
        (used by :meth:`reset`, where the lane's undelivered ``SeedSequence``
        must reach the new worker verbatim so seeded resets stay exact).
        """
        while True:
            streak = self._streaks[index]
            if streak >= self._restart_budget:
                return None
            self._streaks[index] = streak + 1
            delay = self._retry.delay(self._streaks[index])
            if delay:
                time.sleep(delay)
            self._kill_lane(index)
            self._spawn_worker(index)
            payload = reset_payload
            if payload is None:
                sequence = self._lane_sequences[index]
                payload = (
                    sequence.spawn(1)[0] if sequence is not None else np.random.SeedSequence()
                )
            conn = self._conns[index]
            try:
                conn.send(("reset", payload))
                if self._step_timeout is not None and not conn.poll(self._step_timeout):
                    raise EOFError("replacement worker missed the reset deadline")
                status, reply = conn.recv()
            except (EOFError, OSError, BrokenPipeError):
                # The replacement died too: burn another unit of budget.
                continue
            if status == "error":
                # The env itself cannot construct or reset — a program error
                # no amount of restarting fixes.
                self._waiting = False
                self.close(terminate=True)
                raise RuntimeError("async env worker failed:\n{}".format(reply))
            health.record("worker_restarts")
            info = {"worker_restarted": True, "restart_reason": reason}
            return reply, 0.0, True, info

    def _degrade_to_sync(self, seed=None):
        """Budget exhausted: continue on an in-process :class:`VectorEnv`.

        Tears the workers down, builds the sync env from the retained
        constructors, and seeds each lane by spawning a fresh child off the
        lane's retained ``SeedSequence`` (or with ``seed`` when degrading
        inside a seeded ``reset``).  Returns the reset observations.
        """
        health.record("env_degraded")
        self._teardown_workers()
        fallback = VectorEnv(self._env_fns)
        if seed is not None:
            observations = fallback.reset(seed=seed)
        else:
            fallback._rngs = [
                np.random.default_rng(seq.spawn(1)[0]) if seq is not None
                else np.random.default_rng()
                for seq in self._lane_sequences
            ]
            observations = fallback.reset()
        self._fallback = fallback
        self._waiting = False
        self._broken = {}
        return observations

    # ------------------------------------------------------------------ #
    # Env interface
    # ------------------------------------------------------------------ #
    def reset(self, seed=None):
        if self._fallback is not None:
            return self._fallback.reset(seed=seed)
        if self._waiting:
            raise RuntimeError("reset called with a step_async in flight; call step_wait first")
        if seed is not None:
            self._lane_sequences = np.random.SeedSequence(seed).spawn(self.num_envs)
            payloads = list(self._lane_sequences)
        else:
            payloads = [None] * self.num_envs
        delivered = [False] * self.num_envs
        for index, conn in enumerate(self._conns):
            try:
                conn.send(("reset", payloads[index]))
                delivered[index] = True
            except (BrokenPipeError, OSError):
                pass
        observations = [None] * self.num_envs
        for index, conn in enumerate(self._conns):
            obs = None
            if delivered[index]:
                try:
                    if self._step_timeout is not None and not conn.poll(self._step_timeout):
                        raise EOFError("reset deadline expired")
                    status, reply = conn.recv()
                except (EOFError, OSError):
                    pass
                else:
                    if status == "error":
                        raise RuntimeError("async env worker failed:\n{}".format(reply))
                    obs = reply
                    self._streaks[index] = 0
            if obs is None:
                result = self._restart_lane(index, "reset", reset_payload=payloads[index])
                if result is None:
                    return self._degrade_to_sync(seed=seed)
                obs = result[0]
            observations[index] = obs
        return np.stack(observations)

    def step_async(self, actions):
        """Dispatch one action per worker without waiting for results."""
        if self._fallback is not None:
            return self._fallback.step_async(actions)
        actions = np.asarray(actions)
        if actions.shape[0] != self.num_envs:
            raise ValueError("expected {} actions, got {}".format(self.num_envs, actions.shape[0]))
        if self._waiting:
            raise RuntimeError("step_async called twice without step_wait")
        injector = get_injector()
        self._broken = {}
        for index, (conn, action) in enumerate(zip(self._conns, actions)):
            if injector is not None:
                if injector.should_fire("worker_crash"):
                    # Kill the worker under the parent's feet; the recv path
                    # discovers the death and restarts the lane.
                    try:
                        self._procs[index].kill()
                    except (OSError, AttributeError):
                        pass
                if injector.should_fire("step_hang"):
                    # Withhold the request: the lane never replies, so its
                    # deadline expires in step_wait — a synthetic hang.
                    continue
            try:
                conn.send(("step", int(action)))
            except (BrokenPipeError, OSError):
                # Dead at dispatch: no reply will come; restart in step_wait.
                self._broken[index] = "crash"
        self._waiting = True

    def step_wait(self):
        """Gather the in-flight step, supervising every lane.

        One shared deadline covers all lanes; dead lanes restart immediately,
        deadline-blown lanes are treated as hung and restarted, and worker
        *program* errors still raise after every lane is drained.  A lane out
        of restart budget degrades the whole env to the sync backend: all
        lanes reset and report ``done=True`` (a global episode boundary).
        """
        if self._fallback is not None:
            return self._fallback.step_wait()
        if not self._waiting:
            raise RuntimeError("step_wait called without step_async")
        deadline = (
            None if self._step_timeout is None else time.monotonic() + self._step_timeout
        )
        results = [None] * self.num_envs
        errors = []
        degrade = False
        for index, conn in enumerate(self._conns):
            if index in self._broken:
                result = self._restart_lane(index, self._broken[index])
            else:
                timed_out = False
                try:
                    if deadline is not None:
                        remaining = max(0.0, deadline - time.monotonic())
                        if not conn.poll(remaining):
                            timed_out = True
                    if not timed_out:
                        status, payload = conn.recv()
                except (EOFError, OSError):
                    result = self._restart_lane(index, "crash")
                else:
                    if timed_out:
                        health.record("step_timeouts")
                        result = self._restart_lane(index, "hang")
                    elif status == "error":
                        errors.append(payload)
                        self._streaks[index] = 0
                        result = ("worker-error", 0.0, False, {})
                    else:
                        self._streaks[index] = 0
                        result = payload
            if result is None:
                degrade = True
                break
            results[index] = result
        self._broken = {}
        self._waiting = False
        if degrade:
            observations = self._degrade_to_sync()
            infos = [
                {"worker_restarted": True, "env_degraded": True}
                for _ in range(self.num_envs)
            ]
            return (
                observations,
                np.zeros(self.num_envs),
                np.ones(self.num_envs, dtype=bool),
                infos,
            )
        if errors:
            raise RuntimeError("async env worker failed:\n{}".format("\n".join(errors)))
        observations, rewards, dones, infos = zip(*results)
        return (
            np.stack(observations),
            np.asarray(rewards),
            np.asarray(dones),
            list(infos),
        )

    def step(self, actions):
        """Synchronous convenience wrapper: ``step_async`` + ``step_wait``."""
        self.step_async(actions)
        return self.step_wait()

    def close(self, terminate=False):
        """Shut the workers down (idempotent; safe with a step in flight).

        ``terminate=True`` skips the polite close handshake and kills the
        workers outright — used when the pipe protocol is already broken.
        """
        if self._closed:
            return
        self._closed = True
        if self._fallback is not None:
            self._fallback.close()
            return
        if self._waiting and not terminate:
            # Drain the in-flight step replies so the close command is not
            # answered by a stale step result (and the workers actually see
            # it instead of blocking on a full pipe).  Lanes that never got a
            # request (or never reply) bound the wait by the step deadline.
            for index, conn in enumerate(self._conns):
                if index in self._broken:
                    continue
                try:
                    if conn.poll(self._step_timeout):
                        conn.recv()
                except (EOFError, OSError):
                    pass
            self._waiting = False
        if not terminate:
            for conn in self._conns:
                try:
                    conn.send(("close", None))
                except (BrokenPipeError, OSError):
                    continue
            for conn in self._conns:
                try:
                    if conn.poll(self._step_timeout):
                        conn.recv()
                except (EOFError, OSError):
                    pass
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        for proc in self._procs:
            if proc is None:
                continue
            if terminate:
                proc.terminate()
            proc.join(timeout=5)
            if proc.is_alive():
                # Last resort: never leak a forked worker into the test run.
                proc.terminate()
                proc.join(timeout=5)

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass


def make_vector_env(name, num_envs=4, seed=0, backend=None, randomize=None,
                    supervision=None, **env_kwargs):
    """Build a vectorised environment of ``num_envs`` copies of a registered game.

    ``backend`` selects the implementation from the registry in
    :mod:`repro.envs.registry` (``"batched"`` struct-of-arrays engine,
    ``"sync"`` in-process lock-step, ``"async"`` worker processes); ``None``
    resolves the default via
    :func:`repro.envs.registry.default_vector_backend` (the
    ``REPRO_VECTOR_BACKEND`` environment variable, falling back to
    ``"batched"``).  When the default resolution picks ``"batched"`` but the
    configuration is not batchable (e.g. ``null_op_max``), construction
    falls back to ``"sync"``; an explicitly requested backend never falls
    back.  All three backends produce bit-identical trajectories for the
    same ``reset(seed=N)``.

    ``randomize`` maps engine parameter names (e.g. ``paddle_width``,
    ``ball_speed``, ``bomb_prob``, ``wall_density``) to ``(low, high)``
    ranges re-drawn per env from its own stream on every reset — the cheap
    scenario-diversity hook of the batched backend (serial backends do not
    support it).

    ``supervision`` is a dict of supervision overrides (``step_timeout``,
    ``restart_budget``, ``restart_backoff``) forwarded to backends declaring
    ``accepts_supervision`` (the built-in ``"async"``); passing it with any
    other backend raises ``ValueError``.  Omitted, the env-var defaults of
    :func:`repro.envs.registry.async_supervision` apply.
    """
    from .batched import BatchedUnsupportedError
    from .registry import default_vector_backend, get_vector_backend, make_env

    choice = backend if backend is not None else default_vector_backend()
    factory = get_vector_backend(choice)
    if getattr(factory, "constructs_from_game_name", False):
        if supervision is not None:
            raise ValueError(
                "supervision= requires a worker-process backend (got backend={!r})".format(choice)
            )
        # Name-based convention (the batched backend, or a registered
        # replacement): one engine for all lanes, no per-env closures.
        try:
            return factory(name, num_envs=num_envs, seed=seed, randomize=randomize, **env_kwargs)
        except BatchedUnsupportedError:
            # Fall back to the serial backend only for auto-selected,
            # randomize-free configs; an explicit backend request or a bad
            # randomize spec must surface its own error, not the fallback's.
            if backend is not None or randomize is not None:
                raise
            factory = get_vector_backend("sync")
    if randomize is not None:
        raise ValueError(
            "randomize= requires the batched backend (got backend={!r})".format(choice)
        )
    if supervision is not None and not getattr(factory, "accepts_supervision", False):
        raise ValueError(
            "supervision= requires a supervised backend (got backend={!r})".format(choice)
        )

    def make_one(index):
        return lambda: make_env(name, seed=seed + index, **env_kwargs)

    env_fns = [make_one(i) for i in range(num_envs)]
    if getattr(factory, "accepts_supervision", False) and supervision is not None:
        return factory(env_fns, **supervision)
    return factory(env_fns)
