"""Observation / reward wrappers reproducing the standard Atari pipeline.

The paper follows the DQN evaluation protocol: frame skipping, 84x84
grey-scale observations, stacked frames, and evaluation episodes started with
a random number of null-ops.  Each of those preprocessing steps is a wrapper
here so the training and evaluation code composes them explicitly.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .base import Action, Box, Env

__all__ = ["Wrapper", "FrameSkip", "ResizeObservation", "FrameStack", "ClipReward", "NullOpStart", "EpisodicLife"]


class Wrapper(Env):
    """Base wrapper delegating everything to the wrapped environment."""

    def __init__(self, env):
        self.env = env
        self.action_space = env.action_space
        self.observation_space = env.observation_space

    def reset(self, seed=None):
        return self.env.reset(seed=seed)

    def step(self, action):
        return self.env.step(action)

    def close(self):
        self.env.close()

    def seed(self, seed):
        return self.env.seed(seed)

    @property
    def unwrapped(self):
        """The innermost (raw) environment."""
        env = self.env
        while isinstance(env, Wrapper):
            env = env.env
        return env

    def __repr__(self):
        return "{}({!r})".format(type(self).__name__, self.env)


class FrameSkip(Wrapper):
    """Repeat each action ``skip`` times, summing rewards.

    The returned observation is the elementwise maximum of the last two raw
    frames, mirroring the ALE convention that avoids sprite flickering.
    """

    def __init__(self, env, skip=4):
        super().__init__(env)
        if skip < 1:
            raise ValueError("skip must be >= 1")
        self.skip = int(skip)

    def step(self, action):
        total_reward = 0.0
        done = False
        info = {}
        frames = deque(maxlen=2)
        obs = None
        for _ in range(self.skip):
            obs, reward, done, info = self.env.step(action)
            frames.append(obs)
            total_reward += reward
            if done:
                break
        if len(frames) == 2:
            obs = np.maximum(frames[0], frames[1])
        return obs, total_reward, done, info


class ResizeObservation(Wrapper):
    """Downsample the square observation to ``size`` x ``size`` by block averaging."""

    def __init__(self, env, size=42):
        super().__init__(env)
        self.size = int(size)
        self.observation_space = Box(0.0, 1.0, (self.size, self.size))

    def _resize(self, obs):
        source = obs.shape[0]
        if source == self.size:
            return obs
        if source % self.size == 0:
            factor = source // self.size
            return obs.reshape(self.size, factor, self.size, factor).mean(axis=(1, 3))
        # General path: nearest-neighbour sampling on a uniform grid.
        indices = (np.arange(self.size) * source / self.size).astype(int)
        return obs[np.ix_(indices, indices)]

    def reset(self, seed=None):
        return self._resize(self.env.reset(seed=seed))

    def step(self, action):
        obs, reward, done, info = self.env.step(action)
        return self._resize(obs), reward, done, info


class FrameStack(Wrapper):
    """Stack the last ``num_frames`` observations along a leading channel axis."""

    def __init__(self, env, num_frames=4):
        super().__init__(env)
        self.num_frames = int(num_frames)
        obs_shape = env.observation_space.shape
        self.observation_space = Box(0.0, 1.0, (self.num_frames,) + tuple(obs_shape))
        self._frames = deque(maxlen=self.num_frames)

    def _stacked(self):
        return np.stack(list(self._frames), axis=0)

    def reset(self, seed=None):
        obs = self.env.reset(seed=seed)
        self._frames.clear()
        for _ in range(self.num_frames):
            self._frames.append(obs)
        return self._stacked()

    def step(self, action):
        obs, reward, done, info = self.env.step(action)
        self._frames.append(obs)
        return self._stacked(), reward, done, info


class ClipReward(Wrapper):
    """Clip rewards to their sign, the DQN trick for cross-game LR stability."""

    def step(self, action):
        obs, reward, done, info = self.env.step(action)
        info = dict(info)
        info["raw_reward"] = reward
        return obs, float(np.sign(reward)), done, info


class NullOpStart(Wrapper):
    """Start each episode with a random number of NOOP actions.

    This is the paper's evaluation protocol ("null-op starts" following [1]):
    it decorrelates evaluation episodes without changing the policy.
    """

    def __init__(self, env, max_null_ops=30, rng=None):
        super().__init__(env)
        self.max_null_ops = int(max_null_ops)
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def reset(self, seed=None):
        obs = self.env.reset(seed=seed)
        if self.max_null_ops <= 0:
            return obs
        num_null = int(self._rng.integers(0, self.max_null_ops + 1))
        for _ in range(num_null):
            obs, _, done, _ = self.env.step(Action.NOOP)
            if done:
                obs = self.env.reset()
        return obs


class EpisodicLife(Wrapper):
    """Treat every life lost as an episode end for the learner.

    The underlying game keeps running, so evaluation (which bypasses this
    wrapper) still measures full-episode scores; training sees denser episode
    boundaries, a standard DQN-era trick.
    """

    def __init__(self, env):
        super().__init__(env)
        self._true_done = True

    def reset(self, seed=None):
        if self._true_done:
            obs = self.env.reset(seed=seed)
        else:
            obs, _, done, _ = self.env.step(Action.NOOP)
            if done:
                obs = self.env.reset(seed=seed)
        self._true_done = False
        return obs

    def step(self, action):
        obs, reward, done, info = self.env.step(action)
        self._true_done = done
        if info.get("life_lost", False):
            done = True
        return obs, reward, done, info
