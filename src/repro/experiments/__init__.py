"""Experiment harnesses regenerating every table and figure of the paper."""

from .ablations import (
    run_chunk_ablation,
    run_das_vs_random,
    run_hw_penalty_ablation,
    run_search_space_audit,
    run_topk_ablation,
)
from .fig1 import PAPER_FIG1_GAMES, format_fig1, run_fig1
from .fig2 import SEARCH_SCHEMES, format_fig2, run_fig2
from .fig3 import PAPER_FIG3_CLAIMS, format_fig3, run_fig3
from .profiles import ExperimentProfile, PROFILES, default_profile_name, get_profile
from .reporting import format_series, format_table, paper_comparison_table, rows_to_csv, rows_to_json
from .runners import build_evaluator, train_backbone_agent, train_with_distillation
from .table1 import PAPER_TABLE1, format_table1, run_table1
from .table2 import DISTILLATION_STRATEGIES, PAPER_TABLE2, format_table2, run_table2
from .table3 import PAPER_TABLE3, format_table3, run_table3

__all__ = [
    "ExperimentProfile",
    "PROFILES",
    "get_profile",
    "default_profile_name",
    "format_table",
    "format_series",
    "paper_comparison_table",
    "rows_to_csv",
    "rows_to_json",
    "build_evaluator",
    "train_backbone_agent",
    "train_with_distillation",
    "PAPER_TABLE1",
    "run_table1",
    "format_table1",
    "PAPER_TABLE2",
    "DISTILLATION_STRATEGIES",
    "run_table2",
    "format_table2",
    "PAPER_TABLE3",
    "run_table3",
    "format_table3",
    "PAPER_FIG1_GAMES",
    "run_fig1",
    "format_fig1",
    "SEARCH_SCHEMES",
    "run_fig2",
    "format_fig2",
    "PAPER_FIG3_CLAIMS",
    "run_fig3",
    "format_fig3",
    "run_topk_ablation",
    "run_hw_penalty_ablation",
    "run_chunk_ablation",
    "run_search_space_audit",
    "run_das_vs_random",
]
