"""Ablation harnesses for the design choices DESIGN.md calls out.

These go beyond the paper's three tables / three figures and exercise the
knobs that the paper discusses but does not sweep explicitly:

* the number of activated backward paths K (Eq. 7),
* the activated-path hardware penalty (Eq. 8) vs an expected-cost penalty,
* the pipeline depth (number of chunks) of the accelerator template,
* search-space cardinality audits (9^12 agents, > 10^27 accelerators),
* DAS vs uniform random accelerator search at matched evaluation budgets.
"""

from __future__ import annotations

import numpy as np

from ..accelerator import (
    AcceleratorCostModel,
    AcceleratorDesignSpace,
    ChunkConfig,
    AcceleratorConfig,
    DASConfig,
    DifferentiableAcceleratorSearch,
    balanced_layer_assignment,
    extract_workload,
)
from ..baselines import random_accelerator_search
from ..drl import DistillationMode
from ..nas import DRLArchitectureSearch, SearchConfig
from ..networks import AgentSuperNet, CANDIDATE_OPERATORS
from .profiles import get_profile
from .reporting import format_table

__all__ = [
    "run_topk_ablation",
    "run_hw_penalty_ablation",
    "run_chunk_ablation",
    "run_search_space_audit",
    "run_das_vs_random",
]


def run_topk_ablation(profile=None, game="Breakout", k_values=(1, 2, 4)):
    """Sweep the number of activated backward paths K (Eq. 7).

    Returns one row per K with the final derived-architecture entropy, the
    recent training return, and the wall-clock proxy (number of updates).
    """
    profile = profile if profile is not None else get_profile()
    rows = []
    for k in k_values:
        config = SearchConfig(
            total_steps=profile.search_steps,
            num_envs=profile.num_envs,
            distillation_mode=DistillationMode.NONE,
            num_backward_paths=k,
            seed=profile.seed,
        )
        searcher = DRLArchitectureSearch(
            game,
            config=config,
            env_kwargs={
                "obs_size": profile.obs_size,
                "frame_stack": profile.frame_stack,
                "max_episode_steps": profile.max_episode_steps,
            },
            supernet_kwargs={
                "input_size": profile.obs_size,
                "in_channels": profile.frame_stack,
                "feature_dim": profile.feature_dim,
                "base_width": profile.base_width,
            },
        )
        result = searcher.search()
        rows.append(
            {
                "k": k,
                "alpha_entropy": result.final_entropy,
                "train_return": searcher.mean_recent_return(),
                "updates": searcher.updates,
                "derived_ops": ",".join(result.operator_names()),
            }
        )
    return rows


def run_hw_penalty_ablation(profile=None, penalty_weights=(0.0, 0.1, 1.0), seed=None):
    """Effect of the hardware-penalty weight ``lambda`` on the derived agent cost.

    A supernet's candidate MAC table provides the per-cell cost; an expected-
    cost penalty over the architecture distribution is minimised directly (no
    environment interaction), isolating the penalty's pull towards cheaper
    operators as ``lambda`` grows.
    """
    profile = profile if profile is not None else get_profile()
    seed = profile.seed if seed is None else seed
    from ..nas.arch_params import ArchitectureParameters
    from ..nn import Adam

    supernet = AgentSuperNet(
        in_channels=profile.frame_stack,
        input_size=profile.obs_size,
        feature_dim=profile.feature_dim,
        base_width=profile.base_width,
        rng=np.random.default_rng(seed),
    )
    macs_table = supernet.candidate_macs_table()
    macs_table = macs_table / macs_table.max()
    rows = []
    for weight in penalty_weights:
        arch = ArchitectureParameters(
            supernet.num_cells, supernet.num_choices_per_cell, rng=np.random.default_rng(seed)
        )
        optimizer = Adam(arch.parameters(), lr=0.05)
        for _ in range(100):
            # Pure hardware objective: expected cost under the current alpha.
            loss = arch.expected_cost(macs_table) * weight
            if weight == 0.0:
                break
            arch.zero_grad()
            loss.backward()
            optimizer.step()
        op_indices = arch.derive()
        flops = supernet.flops(op_indices)
        rows.append(
            {
                "penalty_weight": weight,
                "derived_flops": flops,
                "derived_ops": ",".join(CANDIDATE_OPERATORS[i].name for i in op_indices),
            }
        )
    return rows


def run_chunk_ablation(network, chunk_counts=(1, 2, 3, 4), pe_array=(8, 16)):
    """Sweep the pipeline depth of the accelerator template for one network."""
    workloads = extract_workload(network)
    cost_model = AcceleratorCostModel()
    rows = []
    for num_chunks in chunk_counts:
        chunks = [
            ChunkConfig(
                pe_rows=pe_array[0],
                pe_cols=pe_array[1],
                noc="systolic",
                dataflow="weight_stationary",
                buffer_kb=256.0,
                tile_oc=16,
                tile_ic=16,
                tile_spatial=8,
            )
            for _ in range(num_chunks)
        ]
        config = AcceleratorConfig(
            chunks=chunks, layer_assignment=balanced_layer_assignment(workloads, num_chunks)
        )
        metrics = cost_model.evaluate(workloads, config)
        rows.append(
            {
                "chunks": num_chunks,
                "fps": metrics.fps,
                "latency_ms": metrics.latency_ms,
                "dsp": metrics.dsp_used,
                "feasible": metrics.feasible,
            }
        )
    return rows


def run_search_space_audit(num_layers=16, num_cells=12, max_chunks=4):
    """Audit the cardinality claims: 9^12 agents and > 10^27 accelerators."""
    agent_space = len(CANDIDATE_OPERATORS) ** num_cells
    accel_space = AcceleratorDesignSpace(num_layers=num_layers, max_chunks=max_chunks).space_size()
    return {
        "agent_space": agent_space,
        "agent_space_meets_paper": agent_space == 9 ** 12,
        "accelerator_space": accel_space,
        "accelerator_space_exceeds_1e27": accel_space > 1e27,
        "joint_space": agent_space * accel_space,
    }


def run_das_vs_random(network, steps=120, seed=0):
    """DAS against uniform random search at a matched evaluation budget."""
    das = DifferentiableAcceleratorSearch(network, config=DASConfig(seed=seed, objective="fps"))
    das_result = das.search(steps=steps)
    _, random_metrics, _ = random_accelerator_search(network, trials=steps, objective="fps", seed=seed)
    return {
        "das_fps": das_result.fps,
        "random_fps": random_metrics.fps,
        "das_wins": das_result.fps >= random_metrics.fps,
        "das_dsp": das_result.best_metrics.dsp_used,
        "random_dsp": random_metrics.dsp_used,
    }
