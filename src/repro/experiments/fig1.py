"""Fig. 1: test-score evolution during training for different backbone sizes.

The paper plots the 30-episode evaluation score against training steps for
five backbones on four games (Alien, Atlantis, SpaceInvaders, WizardOfWor).
The harness reproduces the same curves at the profile's scale: periodic
evaluations are recorded during A2C training of each (game, backbone) pair.
"""

from __future__ import annotations

from ..drl import DistillationMode
from .profiles import get_profile
from .reporting import format_series
from .runners import train_backbone_agent

__all__ = ["run_fig1", "format_fig1", "PAPER_FIG1_GAMES"]

#: The four games shown in the paper's Fig. 1.
PAPER_FIG1_GAMES = ("Alien", "Atlantis", "SpaceInvaders", "WizardOfWor")


def run_fig1(profile=None, games=None, backbones=None):
    """Regenerate the Fig. 1 training curves.

    Returns
    -------
    curves:
        ``{game: {backbone: [(step, score), ...]}}``.
    """
    profile = profile if profile is not None else get_profile()
    games = list(games if games is not None else profile.games_fig1)
    backbones = list(backbones if backbones is not None else profile.backbones_fig1)
    curves = {}
    for game in games:
        curves[game] = {}
        for backbone in backbones:
            result = train_backbone_agent(
                game,
                backbone,
                profile,
                distillation_mode=DistillationMode.NONE,
                track_curve=True,
            )
            curves[game][backbone] = result["curve"]
    return curves


def format_fig1(curves):
    """Text rendering of the Fig. 1 curves (one line per game/backbone)."""
    lines = ["### Fig. 1 - test-score evolution during training", ""]
    for game, by_backbone in curves.items():
        for backbone, curve in by_backbone.items():
            steps = [point[0] for point in curve]
            values = [point[1] for point in curve]
            lines.append(format_series((steps, values), name="{} / {}".format(game, backbone)))
    return "\n".join(lines)
