"""Fig. 2: test-score evolution of the three search schemes.

The paper compares (1) Direct-NAS (no distillation), (2) A3C-S with bi-level
optimisation, and (3) A3C-S with one-level optimisation, showing that only
the distilled one-level scheme improves steadily — the first demonstration
that DNAS can work for DRL.  The harness runs all three schemes at the
profile's scale, recording the evaluation score of the currently derived
architecture at regular intervals.
"""

from __future__ import annotations

import numpy as np

from ..drl import DistillationMode, train_teacher
from ..nas import DRLArchitectureSearch, OptimizationScheme, SearchConfig
from .profiles import get_profile
from .reporting import format_series

__all__ = ["SEARCH_SCHEMES", "run_fig2", "format_fig2"]

#: The three curves of Fig. 2 (label, distillation mode, optimisation scheme).
SEARCH_SCHEMES = (
    ("Direct-NAS", DistillationMode.NONE, OptimizationScheme.ONE_LEVEL),
    ("A3C-S:Bi-level", DistillationMode.AC, OptimizationScheme.BI_LEVEL),
    ("A3C-S:One-level", DistillationMode.AC, OptimizationScheme.ONE_LEVEL),
)


def _make_search_evaluator(game, profile):
    """Evaluator that scores the currently derived architecture of a supernet agent."""

    def evaluator(agent, op_indices):
        return _evaluate_fixed_path(agent, op_indices, game, profile)

    return evaluator


def _evaluate_fixed_path(agent, op_indices, game, profile):
    """Score the supernet agent constrained to the derived single path."""
    from ..envs import make_env
    from ..nn import no_grad

    env = make_env(
        game,
        obs_size=profile.obs_size,
        frame_stack=profile.frame_stack,
        max_episode_steps=profile.max_episode_steps,
        null_op_max=30,
        seed=profile.seed,
    )
    rng = np.random.default_rng(profile.seed)
    scores = []
    for episode in range(profile.eval_episodes):
        obs = env.reset(seed=profile.seed + 500 + episode)
        done = False
        total = 0.0
        while not done:
            with no_grad():
                actions, _ = agent.act(obs[None, ...], rng, op_indices=op_indices)
            obs, reward, done, _ = env.step(int(actions[0]))
            total += reward
        scores.append(total)
    return float(np.mean(scores))


def run_fig2(profile=None, games=None, schemes=None):
    """Regenerate the Fig. 2 search-score curves.

    Returns
    -------
    curves:
        ``{game: {scheme_label: [(step, score), ...]}}``.
    """
    profile = profile if profile is not None else get_profile()
    games = list(games if games is not None else profile.games_fig2)
    schemes = list(schemes if schemes is not None else SEARCH_SCHEMES)
    env_kwargs = {
        "obs_size": profile.obs_size,
        "frame_stack": profile.frame_stack,
        "max_episode_steps": profile.max_episode_steps,
    }
    supernet_kwargs = {
        "input_size": profile.obs_size,
        "in_channels": profile.frame_stack,
        "feature_dim": profile.feature_dim,
        "base_width": profile.base_width,
    }
    curves = {}
    for game in games:
        curves[game] = {}
        teacher = None
        if any(mode != DistillationMode.NONE for _, mode, _ in schemes):
            teacher, _ = train_teacher(
                game,
                backbone_name="ResNet-20",
                total_steps=profile.teacher_steps,
                num_envs=profile.num_envs,
                obs_size=profile.obs_size,
                frame_stack=profile.frame_stack,
                feature_dim=profile.feature_dim,
                base_width=profile.base_width,
                seed=profile.seed,
            )
        for label, mode, scheme in schemes:
            config = SearchConfig(
                total_steps=profile.search_steps,
                num_envs=profile.num_envs,
                distillation_mode=mode,
                scheme=scheme,
                eval_interval=max(1, profile.search_steps // max(profile.eval_points, 1)),
                eval_episodes=profile.eval_episodes,
                seed=profile.seed,
            )
            searcher = DRLArchitectureSearch(
                game,
                teacher=teacher if mode != DistillationMode.NONE else None,
                config=config,
                evaluator=_make_search_evaluator(game, profile),
                env_kwargs=env_kwargs,
                supernet_kwargs=supernet_kwargs,
            )
            result = searcher.search()
            steps, values = result.logger.series("eval_score")
            final_score = _evaluate_fixed_path(searcher.agent, result.op_indices, game, profile)
            curve = list(zip(steps, values)) + [(result.total_env_steps, final_score)]
            curves[game][label] = curve
    return curves


def format_fig2(curves):
    """Text rendering of the Fig. 2 curves."""
    lines = ["### Fig. 2 - search-score evolution of the three search schemes", ""]
    for game, by_scheme in curves.items():
        for label, curve in by_scheme.items():
            steps = [point[0] for point in curve]
            values = [point[1] for point in curve]
            lines.append(format_series((steps, values), name="{} / {}".format(game, label)))
    return "\n".join(lines)
