"""Fig. 3: test-score / FPS trade-off of agents and accelerators.

The paper's Fig. 3 plots, per game, three design points under the same
900-DSP (ZC706) budget:

1. **ResNet-14 + DAS accelerator** — the strongest hand-designed agent from
   Table II, accelerated by A3C-S's own DAS engine;
2. **A3C-S agent + DAS accelerator** — the fully co-searched solution;
3. **A3C-S agent + DNNBuilder** — the searched agent on the SOTA baseline
   accelerator.

Claims reproduced: (a) the searched agent achieves higher FPS than ResNet-14
on searched accelerators at comparable-or-better scores, and (b) the DAS
accelerator achieves higher FPS than DNNBuilder for the same agent.
Both agents are trained with AC-distillation, as in the paper.
"""

from __future__ import annotations

from ..accelerator import DifferentiableAcceleratorSearch, DASConfig, DNNBuilderAccelerator
from ..cosearch import A3CSCoSearch, A3CSConfig
from ..drl import DistillationMode
from .profiles import get_profile
from .reporting import format_table
from .runners import build_evaluator, train_backbone_agent

__all__ = ["run_fig3", "format_fig3", "PAPER_FIG3_CLAIMS"]

#: Qualitative claims of Fig. 3 recorded for EXPERIMENTS.md.
PAPER_FIG3_CLAIMS = {
    "das_vs_dnnbuilder": "A3C-S's DAS accelerators achieve higher FPS than DNNBuilder for the same agent",
    "a3cs_vs_resnet14": "A3C-S searched agents achieve higher FPS than ResNet-14 on DAS accelerators "
    "at comparable or better test scores",
}


def run_fig3(profile=None, games=None):
    """Regenerate the Fig. 3 design points.

    Returns one row per (game, configuration) with the test score, predicted
    FPS, and resource usage of each design point.
    """
    profile = profile if profile is not None else get_profile()
    games = list(games if games is not None else profile.games_fig3)
    das_config = DASConfig(objective="fps", seed=profile.seed)
    rows = []
    for game in games:
        # --- A3C-S co-searched agent + accelerator -----------------------
        cosearch_config = A3CSConfig(
            obs_size=profile.obs_size,
            frame_stack=profile.frame_stack,
            max_episode_steps=profile.max_episode_steps,
            num_envs=profile.num_envs,
            base_width=profile.base_width,
            feature_dim=profile.feature_dim,
            search_steps=profile.search_steps,
            teacher_steps=profile.teacher_steps,
            final_das_steps=profile.das_steps,
            seed=profile.seed,
        )
        cosearch = A3CSCoSearch(game, config=cosearch_config)
        a3cs_result = cosearch.run()
        evaluator = build_evaluator(game, profile)
        a3cs_score = float(evaluator(a3cs_result.agent))

        # --- ResNet-14 trained with AC-distillation (shared teacher) -----
        resnet_result = train_backbone_agent(
            game,
            "ResNet-14",
            profile,
            distillation_mode=DistillationMode.AC,
            teacher=cosearch.teacher,
            total_steps=profile.search_steps,
        )
        resnet_agent = resnet_result["agent"]
        resnet_score = resnet_result["score"]

        # --- Accelerators -------------------------------------------------
        resnet_das = DifferentiableAcceleratorSearch(
            resnet_agent.backbone, config=das_config
        ).search(steps=profile.das_steps)
        a3cs_dnnbuilder = DNNBuilderAccelerator(a3cs_result.agent.backbone)

        rows.append(
            {
                "game": game,
                "configuration": "ResNet-14 + DAS",
                "score": resnet_score,
                "fps": resnet_das.fps,
                "dsp": resnet_das.best_metrics.dsp_used,
                "feasible": resnet_das.best_metrics.feasible,
            }
        )
        rows.append(
            {
                "game": game,
                "configuration": "A3C-S + DAS",
                "score": a3cs_score,
                "fps": a3cs_result.fps,
                "dsp": a3cs_result.accelerator_metrics.dsp_used,
                "feasible": a3cs_result.accelerator_metrics.feasible,
            }
        )
        rows.append(
            {
                "game": game,
                "configuration": "A3C-S + DNNBuilder",
                "score": a3cs_score,
                "fps": a3cs_dnnbuilder.fps,
                "dsp": a3cs_dnnbuilder.metrics.dsp_used,
                "feasible": a3cs_dnnbuilder.metrics.feasible,
            }
        )
    return rows


def format_fig3(rows):
    """Markdown rendering of the Fig. 3 reproduction."""
    return format_table(
        rows,
        headers=["game", "configuration", "score", "fps", "dsp", "feasible"],
        title="Fig. 3 - test score / FPS trade-off under the ZC706 DSP budget",
    )
