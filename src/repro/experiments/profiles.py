"""Experiment scale profiles.

The paper trains every agent for 3e7 environment steps on a GPU farm and
measures accelerators on a real ZC706.  The NumPy substrate cannot reach that
scale, so every experiment harness accepts an :class:`ExperimentProfile`
controlling observation size, training budget, and how many games / backbones
are swept.  Three profiles are provided:

* ``smoke``  — seconds-scale, used by the pytest-benchmark harness and CI.
* ``fast``   — minutes-scale, the default for the example scripts.
* ``full``   — hours-scale, the closest this reproduction gets to the paper's
  sweep (all games / backbones, longer training).

Select a profile by name with :func:`get_profile`; the ``REPRO_PROFILE``
environment variable overrides the default everywhere.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

__all__ = ["ExperimentProfile", "PROFILES", "get_profile", "default_profile_name"]


@dataclass(frozen=True)
class ExperimentProfile:
    """Scale knobs shared by all experiment harnesses."""

    name: str
    obs_size: int = 28
    frame_stack: int = 2
    num_envs: int = 2
    max_episode_steps: int = 200
    feature_dim: int = 64
    base_width: int = 8
    train_steps: int = 600
    search_steps: int = 400
    teacher_steps: int = 400
    das_steps: int = 120
    eval_episodes: int = 3
    eval_points: int = 4
    games_table1: tuple = ("Breakout", "Alien", "SpaceInvaders", "Boxing")
    games_table2: tuple = ("Breakout", "Alien")
    games_table3: tuple = ("Breakout", "SpaceInvaders")
    games_fig1: tuple = ("Alien", "SpaceInvaders")
    games_fig2: tuple = ("Breakout",)
    games_fig3: tuple = ("Breakout", "SpaceInvaders")
    backbones_table1: tuple = ("Vanilla", "ResNet-14", "ResNet-20", "ResNet-38", "ResNet-74")
    backbones_fig1: tuple = ("Vanilla", "ResNet-14", "ResNet-20")
    seed: int = 0

    def with_overrides(self, **overrides):
        """Return a copy of the profile with some fields replaced."""
        return replace(self, **overrides)


PROFILES = {
    "smoke": ExperimentProfile(
        name="smoke",
        obs_size=28,
        num_envs=2,
        max_episode_steps=120,
        train_steps=200,
        search_steps=150,
        teacher_steps=150,
        das_steps=60,
        eval_episodes=2,
        eval_points=3,
        games_table1=("Breakout", "Alien"),
        games_table2=("Breakout",),
        games_table3=("Breakout",),
        games_fig1=("Alien",),
        games_fig2=("Breakout",),
        games_fig3=("Breakout",),
        backbones_table1=("Vanilla", "ResNet-14", "ResNet-20"),
        backbones_fig1=("Vanilla", "ResNet-14"),
    ),
    "fast": ExperimentProfile(name="fast"),
    "full": ExperimentProfile(
        name="full",
        obs_size=42,
        num_envs=4,
        max_episode_steps=500,
        feature_dim=128,
        base_width=16,
        train_steps=20000,
        search_steps=8000,
        teacher_steps=8000,
        das_steps=500,
        eval_episodes=30,
        eval_points=10,
        games_table1=(
            "Breakout", "Alien", "Asterix", "Atlantis", "TimePilot", "SpaceInvaders",
            "WizardOfWor", "Tennis", "Asteroids", "Assault", "BattleZone", "BeamRider",
            "Bowling", "Boxing", "Centipede", "ChopperCommand",
        ),
        games_table2=(
            "Alien", "SpaceInvaders", "Asterix", "Asteroids", "Assault", "BattleZone",
            "BeamRider", "Boxing", "Centipede", "ChopperCommand", "CrazyClimber", "DemonAttack",
        ),
        games_table3=("BeamRider", "Breakout", "Pong", "Qbert", "Seaquest", "SpaceInvaders"),
        games_fig1=("Alien", "Atlantis", "SpaceInvaders", "WizardOfWor"),
        games_fig2=("Alien", "Atlantis", "SpaceInvaders", "WizardOfWor"),
        games_fig3=("Alien", "Atlantis", "SpaceInvaders", "WizardOfWor"),
        backbones_table1=("Vanilla", "ResNet-14", "ResNet-20", "ResNet-38", "ResNet-74"),
        backbones_fig1=("Vanilla", "ResNet-14", "ResNet-20", "ResNet-38", "ResNet-74"),
    ),
}


def default_profile_name():
    """Profile selected by the ``REPRO_PROFILE`` environment variable (default ``smoke``)."""
    return os.environ.get("REPRO_PROFILE", "smoke")


def get_profile(name=None, **overrides):
    """Look up a profile by name and optionally override individual fields."""
    name = name or default_profile_name()
    if name not in PROFILES:
        raise KeyError("unknown profile {!r}; available: {}".format(name, ", ".join(PROFILES)))
    profile = PROFILES[name]
    if overrides:
        profile = profile.with_overrides(**overrides)
    return profile
