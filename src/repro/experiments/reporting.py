"""Result formatting: markdown tables, CSV export, paper-vs-measured reports."""

from __future__ import annotations

import csv
import json
import os

__all__ = ["format_table", "rows_to_csv", "rows_to_json", "paper_comparison_table", "format_series"]


def format_table(rows, headers=None, floatfmt="{:.1f}", title=None):
    """Render a list of dict rows as a GitHub-markdown table string.

    Parameters
    ----------
    rows:
        List of dictionaries (all sharing the same keys).
    headers:
        Column order; defaults to the keys of the first row.
    floatfmt:
        Format string applied to float cells.
    title:
        Optional title line prepended to the table.
    """
    if not rows:
        return "(no rows)"
    headers = list(headers) if headers is not None else list(rows[0].keys())

    def fmt(value):
        if isinstance(value, float):
            return floatfmt.format(value)
        return str(value)

    lines = []
    if title:
        lines.append("### {}".format(title))
        lines.append("")
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(fmt(row.get(h, "")) for h in headers) + " |")
    return "\n".join(lines)


def format_series(series, name="series", floatfmt="{:.1f}"):
    """Render an ``(steps, values)`` curve as a compact single-line summary."""
    steps, values = series
    if not values:
        return "{}: (empty)".format(name)
    points = ", ".join(
        "{}:{}".format(step, floatfmt.format(value)) for step, value in zip(steps, values)
    )
    return "{}: {}".format(name, points)


def rows_to_csv(rows, path, headers=None):
    """Write dict rows to a CSV file and return the path."""
    if not rows:
        raise ValueError("no rows to write")
    headers = list(headers) if headers is not None else list(rows[0].keys())
    directory = os.path.dirname(os.path.abspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=headers, extrasaction="ignore")
        writer.writeheader()
        writer.writerows(rows)
    return path


def rows_to_json(rows, path, metadata=None):
    """Write dict rows (plus optional metadata) to a JSON file and return the path."""
    directory = os.path.dirname(os.path.abspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump({"metadata": metadata or {}, "rows": rows}, handle, indent=2)
    return path


def paper_comparison_table(measured, paper_reference, key_field, value_field="value",
                           measured_label="measured", paper_label="paper"):
    """Join measured rows with paper-reported values on ``key_field``.

    ``measured`` is a list of dicts; ``paper_reference`` maps key -> reported
    value.  Rows missing from either side are kept with blank cells, so the
    report makes gaps explicit instead of hiding them.
    """
    rows = []
    seen = set()
    for row in measured:
        key = row[key_field]
        seen.add(key)
        rows.append(
            {
                key_field: key,
                measured_label: row.get(value_field, ""),
                paper_label: paper_reference.get(key, ""),
            }
        )
    for key, value in paper_reference.items():
        if key not in seen:
            rows.append({key_field: key, measured_label: "", paper_label: value})
    return rows
