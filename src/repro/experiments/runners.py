"""Shared experiment runners used by the table / figure harnesses."""

from __future__ import annotations

import numpy as np

from ..drl import A2CConfig, A2CTrainer, DistillationMode, Evaluator, make_agent, train_teacher
from ..envs import make_vector_env

__all__ = ["train_backbone_agent", "build_evaluator", "train_with_distillation"]


def build_evaluator(game, profile, greedy=False):
    """Evaluator bound to the profile's evaluation protocol."""
    return Evaluator(
        game,
        episodes=profile.eval_episodes,
        null_op_max=30,
        seed=profile.seed,
        env_kwargs={
            "obs_size": profile.obs_size,
            "frame_stack": profile.frame_stack,
            "max_episode_steps": profile.max_episode_steps,
        },
        greedy=greedy,
    )


def train_backbone_agent(game, backbone, profile, distillation_mode=DistillationMode.NONE,
                         teacher=None, track_curve=False, total_steps=None, seed=None,
                         randomize=None):
    """Train one agent on one game at the profile's scale.

    Parameters
    ----------
    game, backbone:
        Registered game name and backbone name.
    profile:
        An :class:`~repro.experiments.profiles.ExperimentProfile`.
    distillation_mode:
        One of the Table II strategies; a teacher is trained on demand when a
        distillation mode is requested and no teacher is supplied.
    track_curve:
        Record periodic evaluation scores (for the Fig. 1 curves).
    total_steps:
        Override the profile's training budget.
    randomize:
        Optional per-env scenario randomization for the *training* vector
        env: a mapping of engine parameter names to ``(low, high)`` ranges,
        re-drawn per lane on every reset (forwarded to
        :func:`repro.envs.make_vector_env`).  Evaluation stays on the
        nominal parameters, so the returned score measures generalisation
        from the randomized training distribution.

    Returns
    -------
    result:
        Dict with ``agent``, ``trainer``, ``score`` (final evaluation), and
        ``curve`` (list of ``(step, score)``; empty unless ``track_curve``).
    """
    seed = profile.seed if seed is None else seed
    total_steps = total_steps if total_steps is not None else profile.train_steps
    agent = make_agent(
        backbone,
        obs_size=profile.obs_size,
        frame_stack=profile.frame_stack,
        feature_dim=profile.feature_dim,
        base_width=profile.base_width,
        seed=seed,
    )
    env = make_vector_env(
        game,
        num_envs=profile.num_envs,
        obs_size=profile.obs_size,
        frame_stack=profile.frame_stack,
        max_episode_steps=profile.max_episode_steps,
        seed=seed,
        randomize=randomize,
    )
    if teacher is None and distillation_mode != DistillationMode.NONE:
        teacher, _ = train_teacher(
            game,
            backbone_name="ResNet-20",
            total_steps=profile.teacher_steps,
            num_envs=profile.num_envs,
            obs_size=profile.obs_size,
            frame_stack=profile.frame_stack,
            feature_dim=profile.feature_dim,
            base_width=profile.base_width,
            seed=seed,
        )

    eval_interval = 0
    evaluator = None
    if track_curve:
        eval_interval = max(1, total_steps // max(profile.eval_points, 1))
        evaluator = build_evaluator(game, profile)

    config = A2CConfig(
        total_steps=total_steps,
        num_envs=profile.num_envs,
        distillation_mode=distillation_mode,
        eval_interval=eval_interval,
        eval_episodes=profile.eval_episodes,
        seed=seed,
    )
    trainer = A2CTrainer(agent, env, config=config, teacher=teacher, evaluator=evaluator)
    trainer.train()

    final_evaluator = build_evaluator(game, profile)
    score = float(final_evaluator(agent))
    curve = []
    if track_curve:
        steps, values = trainer.logger.series("eval_score")
        curve = list(zip(steps, values))
        curve.append((trainer.total_env_steps, score))
    return {"agent": agent, "trainer": trainer, "score": score, "curve": curve, "teacher": teacher}


def train_with_distillation(game, backbone, profile, mode, teacher=None, seed=None):
    """Convenience wrapper returning just the evaluation score for Table II cells."""
    result = train_backbone_agent(
        game, backbone, profile, distillation_mode=mode, teacher=teacher, seed=seed
    )
    return result["score"], result["teacher"]
