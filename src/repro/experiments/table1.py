"""Table I: test scores of backbones of different sizes on the Atari suite.

Paper claim (Sec. V-B): larger backbones generally score higher, especially on
harder games, but there is a task-specific sweet spot — ResNet-74 is *worse*
than ResNet-20/38 on most games because it is harder to train within the step
budget.  The harness trains every (game, backbone) pair at the profile's scale
and reports the evaluation scores next to the paper's reported numbers.
"""

from __future__ import annotations

from ..drl import DistillationMode
from .profiles import get_profile
from .reporting import format_table
from .runners import train_backbone_agent

__all__ = ["PAPER_TABLE1", "run_table1", "format_table1"]

#: Paper Table I (test scores); games x {Vanilla, ResNet-14/20/38/74}.
PAPER_TABLE1 = {
    "Breakout": {"Vanilla": 523.7, "ResNet-14": 776.5, "ResNet-20": 811.0, "ResNet-38": 818.5, "ResNet-74": 2.2},
    "Alien": {"Vanilla": 1724.0, "ResNet-14": 9007.0, "ResNet-20": 9323.0, "ResNet-38": 8829.0, "ResNet-74": 4456.0},
    "Asterix": {"Vanilla": 4850.0, "ResNet-14": 708500.0, "ResNet-20": 856800.0, "ResNet-38": 756120.0, "ResNet-74": 539060.0},
    "Atlantis": {"Vanilla": 3064320.0, "ResNet-14": 3127390.0, "ResNet-20": 3156130.0, "ResNet-38": 3181090.0, "ResNet-74": 3046490.0},
    "TimePilot": {"Vanilla": 4780.0, "ResNet-14": 9070.0, "ResNet-20": 9680.0, "ResNet-38": 9500.0, "ResNet-74": 9040.0},
    "SpaceInvaders": {"Vanilla": 1171.0, "ResNet-14": 9848.0, "ResNet-20": 46870.0, "ResNet-38": 17962.0, "ResNet-74": 15111.0},
    "WizardOfWor": {"Vanilla": 1320.0, "ResNet-14": 2690.0, "ResNet-20": 3580.0, "ResNet-38": 3160.0, "ResNet-74": 1850.0},
    "Tennis": {"Vanilla": -23.7, "ResNet-14": 13.8, "ResNet-20": 11.5, "ResNet-38": 19.6, "ResNet-74": 19.3},
    "Asteroids": {"Vanilla": 2095.0, "ResNet-14": 5690.0, "ResNet-20": 5744.0, "ResNet-38": 1947.0, "ResNet-74": 4792.0},
    "Assault": {"Vanilla": 10164.0, "ResNet-14": 14470.0, "ResNet-20": 17314.0, "ResNet-38": 12406.5, "ResNet-74": 9849.0},
    "BattleZone": {"Vanilla": 7600.0, "ResNet-14": 5800.0, "ResNet-20": 13100.0, "ResNet-38": 13300.0, "ResNet-74": 4100.0},
    "BeamRider": {"Vanilla": 5530.0, "ResNet-14": 23984.0, "ResNet-20": 25961.0, "ResNet-38": 29498.0, "ResNet-74": 30048.0},
    "Bowling": {"Vanilla": 28.1, "ResNet-14": 53.0, "ResNet-20": 59.2, "ResNet-38": 33.2, "ResNet-74": 50.8},
    "Boxing": {"Vanilla": 4.2, "ResNet-14": 100.0, "ResNet-20": 100.0, "ResNet-38": 99.3, "ResNet-74": 87.1},
    "Centipede": {"Vanilla": 5025.0, "ResNet-14": 6690.0, "ResNet-20": 6410.0, "ResNet-38": 6384.6, "ResNet-74": 6899.0},
    "ChopperCommand": {"Vanilla": 1320.0, "ResNet-14": 11170.0, "ResNet-20": 14910.0, "ResNet-38": 4370.0, "ResNet-74": 8240.0},
}


def run_table1(profile=None, games=None, backbones=None):
    """Regenerate Table I at the profile's scale.

    Returns
    -------
    rows:
        One dict per (game, backbone): measured score, backbone FLOPs and
        parameter count, plus the paper-reported score for reference.
    """
    profile = profile if profile is not None else get_profile()
    games = list(games if games is not None else profile.games_table1)
    backbones = list(backbones if backbones is not None else profile.backbones_table1)
    rows = []
    for game in games:
        for backbone in backbones:
            result = train_backbone_agent(
                game, backbone, profile, distillation_mode=DistillationMode.NONE
            )
            agent = result["agent"]
            rows.append(
                {
                    "game": game,
                    "backbone": backbone,
                    "score": result["score"],
                    "train_return": result["trainer"].mean_recent_return(),
                    "flops": agent.backbone.flops(),
                    "params": agent.backbone.num_parameters(),
                    "paper_score": PAPER_TABLE1.get(game, {}).get(backbone, float("nan")),
                }
            )
    return rows


def format_table1(rows):
    """Markdown rendering of the Table I reproduction."""
    return format_table(
        rows,
        headers=["game", "backbone", "score", "paper_score", "flops", "params"],
        title="Table I - test scores of different backbone sizes",
    )
