"""Table II: the AC-distillation ablation.

Paper claim (Sec. V-C): distillation helps DRL training, and the proposed
AC-distillation (actor KL + critic MSE) beats policy-only distillation on most
games, for both the Vanilla backbone and ResNet-14.  The harness trains each
(game, backbone, strategy) cell at the profile's scale, sharing one teacher
per game across strategies for a controlled comparison.
"""

from __future__ import annotations

from ..drl import DistillationMode, train_teacher
from .profiles import get_profile
from .reporting import format_table
from .runners import train_with_distillation

__all__ = ["PAPER_TABLE2", "DISTILLATION_STRATEGIES", "run_table2", "format_table2"]

#: The three strategies of Table II, in presentation order.
DISTILLATION_STRATEGIES = (
    ("No distillation", DistillationMode.NONE),
    ("Policy distillation only", DistillationMode.POLICY_ONLY),
    ("AC-distillation", DistillationMode.AC),
)

#: Paper Table II: game -> backbone -> strategy -> score.
PAPER_TABLE2 = {
    "Alien": {
        "Vanilla": {"none": 1724.0, "policy": 3096.0, "ac": 3419.0},
        "ResNet-14": {"none": 9007.0, "policy": 14682.0, "ac": 15723.0},
    },
    "SpaceInvaders": {
        "Vanilla": {"none": 1171.0, "policy": 26821.0, "ac": 30124.0},
        "ResNet-14": {"none": 9848.0, "policy": 76246.0, "ac": 111189.0},
    },
    "Asterix": {
        "Vanilla": {"none": 4850.0, "policy": 59020.0, "ac": 64510.0},
        "ResNet-14": {"none": 708500.0, "policy": 749870.0, "ac": 849400.0},
    },
    "Asteroids": {
        "Vanilla": {"none": 2095.0, "policy": 4131.0, "ac": 4647.0},
        "ResNet-14": {"none": 5690.0, "policy": 15371.0, "ac": 15947.0},
    },
    "Assault": {
        "Vanilla": {"none": 10164.0, "policy": 8088.4, "ac": 9628.5},
        "ResNet-14": {"none": 14470.0, "policy": 11697.0, "ac": 14052.0},
    },
    "BattleZone": {
        "Vanilla": {"none": 7600.0, "policy": 14200.0, "ac": 14400.0},
        "ResNet-14": {"none": 5800.0, "policy": 16300.0, "ac": 17500.0},
    },
    "BeamRider": {
        "Vanilla": {"none": 5530.0, "policy": 14417.0, "ac": 21519.0},
        "ResNet-14": {"none": 23984.0, "policy": 38311.0, "ac": 39604.0},
    },
    "Boxing": {
        "Vanilla": {"none": 4.2, "policy": 2.8, "ac": 100.0},
        "ResNet-14": {"none": 100.0, "policy": 100.0, "ac": 100.0},
    },
    "Centipede": {
        "Vanilla": {"none": 5025.0, "policy": 5800.0, "ac": 6575.5},
        "ResNet-14": {"none": 6690.0, "policy": 7744.3, "ac": 8056.9},
    },
    "ChopperCommand": {
        "Vanilla": {"none": 1320.0, "policy": 15900.0, "ac": 19120.0},
        "ResNet-14": {"none": 11170.0, "policy": 26320.0, "ac": 31190.0},
    },
    "CrazyClimber": {
        "Vanilla": {"none": 118300.0, "policy": 138610.0, "ac": 145700.0},
        "ResNet-14": {"none": 128710.0, "policy": 135290.0, "ac": 138470.0},
    },
    "DemonAttack": {
        "Vanilla": {"none": 318349.0, "policy": 463823.0, "ac": 483490.0},
        "ResNet-14": {"none": 481818.0, "policy": 517801.0, "ac": 521051.0},
    },
}


def run_table2(profile=None, games=None, backbones=("Vanilla", "ResNet-14")):
    """Regenerate Table II at the profile's scale.

    Returns one row per (game, backbone) with the scores under all three
    distillation strategies and the paper's reported values for reference.
    """
    profile = profile if profile is not None else get_profile()
    games = list(games if games is not None else profile.games_table2)
    rows = []
    for game in games:
        # One ResNet-20 teacher per game, shared by every strategy and backbone.
        teacher, _ = train_teacher(
            game,
            backbone_name="ResNet-20",
            total_steps=profile.teacher_steps,
            num_envs=profile.num_envs,
            obs_size=profile.obs_size,
            frame_stack=profile.frame_stack,
            feature_dim=profile.feature_dim,
            base_width=profile.base_width,
            seed=profile.seed,
        )
        for backbone in backbones:
            row = {"game": game, "backbone": backbone}
            for label, mode in DISTILLATION_STRATEGIES:
                score, _ = train_with_distillation(game, backbone, profile, mode, teacher=teacher)
                row[mode] = score
            paper = PAPER_TABLE2.get(game, {}).get(backbone, {})
            row["paper_none"] = paper.get("none", float("nan"))
            row["paper_policy"] = paper.get("policy", float("nan"))
            row["paper_ac"] = paper.get("ac", float("nan"))
            rows.append(row)
    return rows


def format_table2(rows):
    """Markdown rendering of the Table II reproduction."""
    return format_table(
        rows,
        headers=["game", "backbone", "none", "policy", "ac", "paper_none", "paper_policy", "paper_ac"],
        title="Table II - distillation strategy ablation",
    )
