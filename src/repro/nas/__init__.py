"""Differentiable NAS machinery: Gumbel sampling, architecture parameters, search loops."""

from .arch_params import ArchitectureParameters
from .gumbel import TemperatureSchedule, gumbel_softmax, hard_gumbel_softmax, sample_gumbel, top_k_active
from .search import DRLArchitectureSearch, OptimizationScheme, SearchConfig, SearchResult

__all__ = [
    "ArchitectureParameters",
    "TemperatureSchedule",
    "gumbel_softmax",
    "hard_gumbel_softmax",
    "sample_gumbel",
    "top_k_active",
    "DRLArchitectureSearch",
    "OptimizationScheme",
    "SearchConfig",
    "SearchResult",
]
