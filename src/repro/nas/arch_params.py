"""Architecture parameters (alpha) of the agent search.

One logit vector per searchable cell; sampling them through the hard
Gumbel-Softmax yields the per-cell gates used by
:class:`repro.networks.supernet.AgentSuperNet`, and the arg-max per cell
derives the final architecture (last line of Algorithm 1).
"""

from __future__ import annotations

import numpy as np

from ..nn import Parameter, Tensor
from ..nn import functional as F
from .gumbel import hard_gumbel_softmax, top_k_active

__all__ = ["ArchitectureParameters"]


class ArchitectureParameters:
    """Holds and samples the per-cell operator logits (alpha).

    Parameters
    ----------
    num_cells:
        Number of searchable cells (12 in the paper).
    num_choices:
        Number of candidate operators per cell (9 in the paper).
    init_scale:
        Standard deviation of the random logit initialisation (small values
        start the search near the uniform distribution).
    """

    def __init__(self, num_cells, num_choices, init_scale=1e-3, rng=None):
        rng = rng if rng is not None else np.random.default_rng(0)
        self.num_cells = int(num_cells)
        self.num_choices = int(num_choices)
        self.alphas = [
            Parameter(rng.normal(0.0, init_scale, size=num_choices)) for _ in range(num_cells)
        ]

    # ------------------------------------------------------------------ #
    # Optimiser plumbing
    # ------------------------------------------------------------------ #
    def parameters(self):
        """The list of alpha Parameters (for the architecture optimiser)."""
        return list(self.alphas)

    def zero_grad(self):
        """Clear gradients on every alpha."""
        for alpha in self.alphas:
            alpha.zero_grad()

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def sample(self, temperature, rng, num_backward_paths=2):
        """Sample per-cell gates with single-path forward / multi-path backward.

        Returns
        -------
        gates:
            List of per-cell straight-through gate tensors (one-hot data).
        active_indices:
            List of per-cell activated path index lists (top-K probabilities,
            always containing the sampled path).
        sampled_indices:
            The hard-sampled operator index per cell.
        """
        gates, active_indices, sampled_indices = [], [], []
        for alpha in self.alphas:
            gate, soft, index = hard_gumbel_softmax(alpha, temperature, rng)
            active = top_k_active(soft, num_backward_paths, always_include=index)
            gates.append(gate)
            active_indices.append(active)
            sampled_indices.append(index)
        return gates, active_indices, sampled_indices

    # ------------------------------------------------------------------ #
    # Inspection / derivation
    # ------------------------------------------------------------------ #
    def probabilities(self):
        """Softmax probabilities per cell, shape ``(num_cells, num_choices)``."""
        return np.stack([F.softmax(alpha, axis=-1).data for alpha in self.alphas])

    def derive(self):
        """Arg-max operator index per cell (the final derived architecture)."""
        return [int(np.argmax(alpha.data)) for alpha in self.alphas]

    def entropy(self):
        """Mean per-cell entropy of the operator distributions (search progress)."""
        probs = self.probabilities()
        logp = np.log(np.clip(probs, 1e-12, None))
        return float(-(probs * logp).sum(axis=-1).mean())

    def expected_cost(self, cost_table):
        """Differentiable expected cost ``sum_l sum_i p_l,i * cost_l,i``.

        ``cost_table`` has shape ``(num_cells, num_choices)``; used by the
        expected-cost variant of the hardware penalty ablation.
        """
        total = None
        for cell_index, alpha in enumerate(self.alphas):
            probs = F.softmax(alpha, axis=-1)
            contribution = (probs * Tensor(np.asarray(cost_table[cell_index], dtype=np.float64))).sum()
            total = contribution if total is None else total + contribution
        return total

    def state_dict(self):
        """Snapshot of the alpha values."""
        return {"alpha{}".format(i): alpha.data.copy() for i, alpha in enumerate(self.alphas)}

    def load_state_dict(self, state):
        """Restore alpha values from :meth:`state_dict` output."""
        for i, alpha in enumerate(self.alphas):
            key = "alpha{}".format(i)
            if key in state:
                alpha.data[...] = state[key]
                alpha.bump_version()
        return self
