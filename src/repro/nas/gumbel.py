"""Gumbel-Softmax sampling machinery for differentiable architecture search.

A3C-S relies on two pieces of Gumbel machinery (paper Eq. 6-9):

* **hard Gumbel-Softmax (straight-through)** sampling — the forward pass uses
  a one-hot sample (single-path forward, Eq. 6) while the backward pass flows
  gradients through the soft relaxation;
* **top-K multi-path backward** (Eq. 7) — only the K most probable paths
  participate in the gradient approximation, trading search stability (more
  paths) against cost (fewer paths), following ProxylessNAS [19];
* a **temperature schedule** — the paper initialises the temperature at 5 and
  decays it by 0.98 every 1e5 steps.
"""

from __future__ import annotations

import numpy as np

from ..nn import Tensor
from ..nn import functional as F

__all__ = ["sample_gumbel", "gumbel_softmax", "hard_gumbel_softmax", "top_k_active", "TemperatureSchedule"]


def sample_gumbel(shape, rng, eps=1e-12):
    """Draw standard Gumbel(0, 1) noise of the given shape."""
    uniform = rng.random(shape)
    return -np.log(-np.log(uniform + eps) + eps)


def gumbel_softmax(logits, temperature, rng, noise=None):
    """Soft Gumbel-Softmax relaxation (differentiable w.r.t. ``logits``).

    Parameters
    ----------
    logits:
        Tensor of unnormalised log-probabilities, shape ``(num_choices,)``.
    temperature:
        Softmax temperature; lower values approach a one-hot sample.
    rng:
        Random generator for the Gumbel noise.
    noise:
        Optional pre-drawn Gumbel noise (for reproducibility across calls).

    Returns
    -------
    soft:
        Tensor of relaxed probabilities summing to one.
    """
    if noise is None:
        noise = sample_gumbel(logits.data.shape, rng)
    perturbed = (logits + Tensor(noise)) / float(temperature)
    return F.softmax(perturbed, axis=-1)


def hard_gumbel_softmax(logits, temperature, rng, noise=None):
    """Straight-through hard Gumbel-Softmax (paper's ``GS_hard``).

    Returns
    -------
    gates:
        Tensor whose *data* is a one-hot vector selecting the sampled choice
        but whose gradient is that of the soft relaxation (straight-through
        estimator) — exactly the single-path-forward / soft-backward behaviour
        of Eq. 6-7.
    soft:
        The underlying soft relaxation tensor.
    index:
        The sampled (arg-max) choice index.
    """
    soft = gumbel_softmax(logits, temperature, rng, noise=noise)
    index = int(np.argmax(soft.data))
    one_hot = np.zeros_like(soft.data)
    one_hot[index] = 1.0
    # Straight-through: forward value is one-hot, gradient is d(soft)/d(logits).
    gates = soft + Tensor(one_hot - soft.data)
    return gates, soft, index


def top_k_active(soft_probs, k, always_include=None):
    """Indices of the top-``k`` probability paths (multi-path backward, Eq. 7).

    Parameters
    ----------
    soft_probs:
        Soft Gumbel probabilities (Tensor or array), shape ``(num_choices,)``.
    k:
        Number of activated paths, clipped to ``[1, num_choices]``.
    always_include:
        An index (typically the hard-sampled one) guaranteed to be active.
    """
    probs = soft_probs.data if isinstance(soft_probs, Tensor) else np.asarray(soft_probs)
    num_choices = probs.shape[-1]
    k = int(np.clip(k, 1, num_choices))
    order = np.argsort(-probs)
    active = list(order[:k])
    if always_include is not None and always_include not in active:
        active[-1] = int(always_include)
    return sorted(int(i) for i in active)


class TemperatureSchedule:
    """Exponential temperature decay: ``tau = tau0 * decay^(step / interval)``.

    Defaults follow Sec. V-A: initial temperature 5, decayed by 0.98 every
    1e5 steps.  ``min_temperature`` keeps the relaxation numerically sane.
    """

    def __init__(self, initial=5.0, decay=0.98, decay_interval=int(1e5), min_temperature=0.1):
        self.initial = float(initial)
        self.decay = float(decay)
        self.decay_interval = int(decay_interval)
        self.min_temperature = float(min_temperature)

    def value(self, step):
        """Temperature at training step ``step``."""
        exponent = step // self.decay_interval
        return max(self.min_temperature, self.initial * (self.decay ** exponent))

    def __repr__(self):
        return "TemperatureSchedule(initial={}, decay={}, every={})".format(
            self.initial, self.decay, self.decay_interval
        )
