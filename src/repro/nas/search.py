"""Differentiable NAS for DRL agents (the agent-search half of A3C-S).

Implements the three search schemes compared in Fig. 2 of the paper:

* **Direct-NAS** — DNAS applied to DRL without any distillation; the paper
  shows this fails because of the high variance of DRL gradients.
* **A3C-S: bi-level** — AC-distillation plus DARTS-style bi-level
  optimisation, whose one-step approximation yields biased gradients that
  interact badly with DRL's variance (scores stay low).
* **A3C-S: one-level** — AC-distillation plus one-level optimisation (update
  the supernet weights and the architecture parameters in the same iteration,
  SNAS-style), the scheme A3C-S adopts.

The searcher also accepts a hardware-penalty hook so the full co-search
(:mod:`repro.cosearch`) can reuse the exact same loop with the accelerator
term of Eq. 4 added to the architecture-parameter gradient (Eq. 8).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

import numpy as np

from ..drl.agent import ActorCriticAgent
from ..drl.distillation import ACDistiller, DistillationMode
from ..drl.losses import TaskLossWeights, combine_task_loss, entropy_loss, policy_gradient_loss, value_loss
from ..drl.rollout import RolloutCollector
from ..envs import make_vector_env
from ..networks.supernet import AgentSuperNet
from ..nn import Adam, RMSProp, Tensor, clip_grad_norm, no_grad
from ..nn.serialization import load_state_dict, save_state_dict, validate_state
from ..reliability import health
from ..reliability.faults import get_injector
from ..telemetry.metrics import Reporter
from ..utils.logging import MetricLogger
from .arch_params import ArchitectureParameters
from .gumbel import TemperatureSchedule

__all__ = ["SearchConfig", "SearchResult", "DRLArchitectureSearch", "OptimizationScheme"]


class OptimizationScheme:
    """String constants for the Fig. 2 search schemes."""

    ONE_LEVEL = "one-level"
    BI_LEVEL = "bi-level"

    ALL = (ONE_LEVEL, BI_LEVEL)

    @staticmethod
    def validate(scheme):
        """Return ``scheme`` if known, raise otherwise."""
        if scheme not in OptimizationScheme.ALL:
            raise ValueError(
                "unknown optimisation scheme {!r}; expected one of {}".format(scheme, OptimizationScheme.ALL)
            )
        return scheme


@dataclass
class SearchConfig:
    """Hyper-parameters of the DRL agent search (defaults follow Sec. V-A)."""

    gamma: float = 0.99
    rollout_length: int = 5
    num_envs: int = 4
    total_steps: int = 4000
    weight_lr: float = 1e-3
    alpha_lr: float = 1e-3
    alpha_momentum: float = 0.9
    max_grad_norm: float = 0.5
    entropy_beta: float = 1e-2
    actor_distill_beta: float = 1e-1
    critic_distill_beta: float = 1e-3
    distillation_mode: str = DistillationMode.AC
    scheme: str = OptimizationScheme.ONE_LEVEL
    num_backward_paths: int = 2
    temperature_initial: float = 5.0
    temperature_decay: float = 0.98
    temperature_interval: int = 1000
    hw_penalty_weight: float = 0.0
    eval_interval: int = 0
    eval_episodes: int = 3
    seed: int = 0
    #: Route one-level updates through the compiled training runtime (gated
    #: multi-path plans + fused RMSProp); the eager tape stays the per-call
    #: fallback.  ``compiled_train_dtype=None`` means float64.
    use_compiled_train: bool = True
    compiled_train_dtype: object = None
    #: Gumbel samples per one-level update.  With ``K > 1`` the compiled
    #: runtime stacks all K sampled paths into one batched plan (one compile
    #: + one GEMM sweep over a leading sample axis) and the update applies
    #: the mean of the K per-sample losses — a variance-reduced alpha
    #: gradient at far less than K compiled updates' cost.  The rollout is
    #: still collected along the first sample's hard path.
    grad_samples: int = 1
    #: Crash safety: atomically checkpoint the full search state (alphas,
    #: both optimisers, supernet weights, RNG, counters) to ``autosave_path``
    #: every ``autosave_interval`` updates (0 disables).  Resuming from an
    #: autosave reproduces the uninterrupted run bit-identically.
    autosave_interval: int = 0
    autosave_path: object = None
    #: After this many *consecutive* non-finite updates (guard trips), roll
    #: the search back to the last autosave (when one exists; 0 disables).
    guard_rollback_after: int = 3
    #: Sample ``repro.telemetry.snapshot()`` every this many updates (0
    #: disables); ``telemetry_path`` appends the snapshots to a JSONL file.
    telemetry_interval: int = 0
    telemetry_path: object = None

    def loss_weights(self):
        """Bundle the beta coefficients of Eq. 12."""
        return TaskLossWeights(
            entropy=self.entropy_beta,
            actor_distill=self.actor_distill_beta,
            critic_distill=self.critic_distill_beta,
        )


@dataclass
class SearchResult:
    """Outcome of a search run."""

    op_indices: list
    logger: object
    alpha_probabilities: object
    final_entropy: float
    total_env_steps: int

    def operator_names(self):
        """Names of the derived operators per cell."""
        from ..networks.operators import CANDIDATE_OPERATORS

        return [CANDIDATE_OPERATORS[i].name for i in self.op_indices]


class DRLArchitectureSearch:
    """DNAS over the agent supernet driven by actor-critic training.

    Parameters
    ----------
    game:
        Registered game name (the environment the agent is searched for).
    supernet:
        An :class:`~repro.networks.supernet.AgentSuperNet`; built from
        ``supernet_kwargs`` when omitted.
    teacher:
        A frozen teacher agent for AC-distillation (``None`` disables
        distillation regardless of ``config.distillation_mode``).
    config:
        A :class:`SearchConfig`.
    hardware_penalty:
        Optional callable ``(sampled_indices, gates) -> Tensor`` implementing
        the layer-wise hardware-cost penalty of Eq. 8; its output is added to
        the architecture-parameter objective weighted by
        ``config.hw_penalty_weight`` (this is how the co-search injects
        ``lambda * L_cost``).
    env_kwargs / supernet_kwargs:
        Geometry options shared between the environment and the supernet.
    """

    def __init__(
        self,
        game,
        supernet=None,
        teacher=None,
        config=None,
        hardware_penalty=None,
        evaluator=None,
        env_kwargs=None,
        supernet_kwargs=None,
    ):
        self.game = game
        self.config = config if config is not None else SearchConfig()
        OptimizationScheme.validate(self.config.scheme)
        self.env_kwargs = dict(env_kwargs or {})
        self.env_kwargs.setdefault("obs_size", 42)
        self.env_kwargs.setdefault("frame_stack", 2)
        supernet_kwargs = dict(supernet_kwargs or {})
        supernet_kwargs.setdefault("in_channels", self.env_kwargs["frame_stack"])
        supernet_kwargs.setdefault("input_size", self.env_kwargs["obs_size"])
        supernet_kwargs.setdefault("feature_dim", 128)
        supernet_kwargs.setdefault("base_width", 8)

        self.rng = np.random.default_rng(self.config.seed)
        if supernet is None:
            supernet = AgentSuperNet(rng=np.random.default_rng(self.config.seed), **supernet_kwargs)
        self.supernet = supernet
        self.agent = ActorCriticAgent(
            supernet, num_actions=6, feature_dim=supernet.feature_dim, rng=np.random.default_rng(self.config.seed)
        )
        self.arch = ArchitectureParameters(
            supernet.num_cells, supernet.num_choices_per_cell, rng=np.random.default_rng(self.config.seed + 1)
        )
        self.distiller = (
            ACDistiller(teacher, mode=self.config.distillation_mode)
            if teacher is not None
            else ACDistiller(None, mode=DistillationMode.NONE)
        )
        self.hardware_penalty = hardware_penalty
        self.evaluator = evaluator

        self.env = make_vector_env(
            game, num_envs=self.config.num_envs, seed=self.config.seed, **self.env_kwargs
        )
        self.weight_optimizer = RMSProp(self.agent.parameters(), lr=self.config.weight_lr)
        self.alpha_optimizer = Adam(
            self.arch.parameters(), lr=self.config.alpha_lr, betas=(self.config.alpha_momentum, 0.999)
        )
        self.temperature = TemperatureSchedule(
            initial=self.config.temperature_initial,
            decay=self.config.temperature_decay,
            decay_interval=self.config.temperature_interval,
        )
        self.logger = MetricLogger()
        self.reporter = Reporter(
            interval=self.config.telemetry_interval, path=self.config.telemetry_path
        )
        self.total_env_steps = 0
        self.updates = 0
        self._collector = None
        self._recent_returns = []
        self._train_step = None
        self._guard_streak = 0
        self._update_skipped = False
        #: Override for the periodic autosave (the co-search points this at
        #: its combined searcher+DAS checkpoint); ``None`` uses
        #: :meth:`save_checkpoint` on ``config.autosave_path``.
        self.autosave_fn = None

    # ------------------------------------------------------------------ #
    # Rollout collection along the currently sampled path
    # ------------------------------------------------------------------ #
    def collector(self):
        """The search's :class:`RolloutCollector`, rebound if the env was swapped."""
        self._collector = RolloutCollector.for_env(
            self._collector, self.env, self.config.rollout_length
        )
        return self._collector

    def _collect_rollout(self, sampled_indices):
        """Collect one rollout along the sampled path; returns (buffer, bootstrap)."""
        collector = self.collector()

        def policy(observations):
            with no_grad():
                return self.agent.act(observations, self.rng, op_indices=sampled_indices)

        def on_step(infos):
            self.total_env_steps += self.env.num_envs
            for info in infos:
                if "episode_return" in info:
                    self._recent_returns.append(info["episode_return"])
                    self.logger.log("episode_return", info["episode_return"], step=self.total_env_steps)

        buffer = collector.collect(policy, seed=self.config.seed, on_step=on_step)
        # Bootstrap values are pure inference along the sampled path: the
        # runtime engine serves them from its per-path plan cache.
        _, bootstrap = self.agent.policy_value(
            collector.observations, op_indices=sampled_indices
        )
        return buffer, bootstrap

    # ------------------------------------------------------------------ #
    # Loss evaluation on a rollout with gated (multi-path-backward) forward
    # ------------------------------------------------------------------ #
    def _task_loss(self, batch, gates, active_indices):
        chosen_log_probs, entropy_per_sample, values, output = self.agent.evaluate_actions(
            batch["observations"], batch["actions"], gates=gates, active_indices=active_indices
        )
        loss_policy = policy_gradient_loss(chosen_log_probs, batch["advantages"])
        loss_value = value_loss(values, batch["returns"])
        loss_entropy = entropy_loss(output.probs, output.log_probs)
        actor_distill, critic_distill = (None, None)
        if self.distiller.enabled:
            actor_distill, critic_distill = self.distiller.losses(batch["observations"], output)
        total = combine_task_loss(
            loss_policy,
            loss_value,
            loss_entropy,
            actor_distill=actor_distill,
            critic_distill=critic_distill,
            weights=self.config.loss_weights(),
        )
        components = {
            "policy": loss_policy.item(),
            "value": loss_value.item(),
            "entropy": loss_entropy.item(),
            "actor_distill": actor_distill.item() if actor_distill is not None else 0.0,
            "critic_distill": critic_distill.item() if critic_distill is not None else 0.0,
        }
        return total, components

    def _add_hardware_penalty(self, total_loss, sampled_indices, gates):
        """Add ``lambda * L_cost`` (Eq. 4 / Eq. 8) when a penalty hook is set."""
        if self.hardware_penalty is None or self.config.hw_penalty_weight <= 0.0:
            return total_loss, 0.0
        penalty = self.hardware_penalty(sampled_indices, gates)
        if penalty is None:
            return total_loss, 0.0
        total = total_loss + penalty * self.config.hw_penalty_weight
        value = penalty.item() if isinstance(penalty, Tensor) else float(penalty)
        return total, value

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    def _compiled_train_step(self):
        """The lazily-built :class:`~repro.runtime.train.CompiledTrainStep`."""
        if self._train_step is None:
            from ..runtime.train import CompiledTrainStep

            dtype = self.config.compiled_train_dtype
            self._train_step = CompiledTrainStep(
                self.agent,
                self.weight_optimizer,
                dtype=np.float64 if dtype is None else dtype,
            )
        return self._train_step

    def _compiled_one_level(self, batch, gates, active, sampled):
        """One-level update on the compiled runtime (Eq. 6-8, tape-free weights).

        The supernet weights take the gated multi-path reverse plan plus the
        fused RMSProp step; the architecture parameters receive the per-gate
        gradients the plan produced, chained through the (tiny, eager) Gumbel
        relaxation together with the hardware penalty of Eq. 8.
        """
        cfg = self.config
        step = self._compiled_train_step()
        gated_key = tuple(tuple(int(i) for i in cell) for cell in active)
        # Compile (or fetch) the plan before the teacher forward, so an
        # uncompilable supernet falls back without a wasted teacher inference.
        step.plan_for(np.asarray(batch["observations"]).shape, gated_paths=gated_key)
        teacher_probs = teacher_values = None
        if self.distiller.enabled:
            teacher_probs, values = self.distiller.teacher_targets(batch["observations"])
            if self.distiller.mode == DistillationMode.AC:
                teacher_values = values
        result = step.step(
            batch["observations"],
            batch["actions"],
            batch["returns"],
            batch["advantages"],
            max_grad_norm=cfg.max_grad_norm,
            weights=cfg.loss_weights(),
            teacher_probs=teacher_probs,
            teacher_values=teacher_values,
            gated_paths=gated_key,
            gate_values=[
                np.array([gates[c].data[i] for i in cell], dtype=np.float64)
                for c, cell in enumerate(active)
            ],
        )
        if result.skipped:
            # The non-finite guard suppressed the weight update; the gate
            # gradients came from the same poisoned backward, so alpha skips
            # too (and the search loop notes the trip for rollback streaks).
            self._note_guard(True)
            components = dict(result.components)
            components.setdefault("actor_distill", 0.0)
            components.setdefault("critic_distill", 0.0)
            return result.total, components, 0.0
        self._note_guard(False)
        # Alpha update: seed the gate gradients back through the Gumbel graph.
        self.alpha_optimizer.zero_grad()
        seed = None
        for gate, gate_grad, cell in zip(gates, result.gate_grads, active):
            full = np.zeros(gate.data.shape)
            full[list(cell)] = gate_grad
            term = (gate * Tensor(full)).sum()
            seed = term if seed is None else seed + term
        total_value = result.total
        hw_value = 0.0
        if self.hardware_penalty is not None and cfg.hw_penalty_weight > 0.0:
            penalty = self.hardware_penalty(sampled, gates)
            if penalty is not None:
                if isinstance(penalty, Tensor):
                    seed = seed + penalty * cfg.hw_penalty_weight
                    hw_value = penalty.item()
                else:
                    hw_value = float(penalty)
                total_value += hw_value * cfg.hw_penalty_weight
        seed.backward()
        self.alpha_optimizer.step()

        components = dict(result.components)
        components.setdefault("actor_distill", 0.0)
        components.setdefault("critic_distill", 0.0)
        return total_value, components, hw_value

    def _compiled_stacked_one_level(self, batch, samples):
        """Stacked-path one-level update: K Gumbel samples, one compiled plan.

        The plan's cells hold the union of the samples' active candidates;
        per-sample gate values select each sample's paths (zero for branches
        a sample did not activate), and alpha receives each sample's gate
        gradients masked to *its own* active set — exactly the mean of K
        per-path compiled updates, for one compile and one GEMM sweep.
        """
        cfg = self.config
        step = self._compiled_train_step()
        num_samples = len(samples)
        num_cells = self.supernet.num_cells
        union = tuple(
            tuple(sorted(set().union(*[set(sample[1][c]) for sample in samples])))
            for c in range(num_cells)
        )
        gate_values = []
        for c in range(num_cells):
            values = np.zeros((num_samples, len(union[c])))
            for k, (gates, active, _) in enumerate(samples):
                for i in active[c]:
                    values[k, union[c].index(i)] = gates[c].data[i]
            gate_values.append(values)
        # Compile (or fetch) before the teacher forward, mirroring the K=1 path.
        step.plan_for(
            np.asarray(batch["observations"]).shape,
            gated_paths=union,
            num_samples=num_samples,
        )
        teacher_probs = teacher_values = None
        if self.distiller.enabled:
            teacher_probs, values = self.distiller.teacher_targets(batch["observations"])
            if self.distiller.mode == DistillationMode.AC:
                teacher_values = values
        result = step.step(
            batch["observations"],
            batch["actions"],
            batch["returns"],
            batch["advantages"],
            max_grad_norm=cfg.max_grad_norm,
            weights=cfg.loss_weights(),
            teacher_probs=teacher_probs,
            teacher_values=teacher_values,
            gated_paths=union,
            gate_values=gate_values,
            num_samples=num_samples,
        )
        gates0, _, sampled0 = samples[0]
        if result.skipped:
            self._note_guard(True)
            components = dict(result.components)
            components.setdefault("actor_distill", 0.0)
            components.setdefault("critic_distill", 0.0)
            return result.total, components, 0.0
        self._note_guard(False)
        self.alpha_optimizer.zero_grad()
        seed = None
        for k, (gates, active, _) in enumerate(samples):
            for c, cell in enumerate(result.gate_layout):
                full = np.zeros(gates[c].data.shape)
                touched = False
                for pos, i in enumerate(cell):
                    if i in active[c]:
                        full[i] = result.gate_grads[c][k, pos]
                        touched = True
                if not touched:
                    continue
                term = (gates[c] * Tensor(full)).sum()
                seed = term if seed is None else seed + term
        total_value = result.total
        hw_value = 0.0
        if self.hardware_penalty is not None and cfg.hw_penalty_weight > 0.0:
            penalty = self.hardware_penalty(sampled0, gates0)
            if penalty is not None:
                if isinstance(penalty, Tensor):
                    seed = seed + penalty * cfg.hw_penalty_weight
                    hw_value = penalty.item()
                else:
                    hw_value = float(penalty)
                total_value += hw_value * cfg.hw_penalty_weight
        seed.backward()
        self.alpha_optimizer.step()

        components = dict(result.components)
        components.setdefault("actor_distill", 0.0)
        components.setdefault("critic_distill", 0.0)
        return total_value, components, hw_value

    def _stacked_one_level_update(self):
        """One-level update averaging the loss over K sampled architectures."""
        cfg = self.config
        temperature = self.temperature.value(self.total_env_steps)
        samples = [
            self.arch.sample(temperature, self.rng, num_backward_paths=cfg.num_backward_paths)
            for _ in range(cfg.grad_samples)
        ]
        gates0, _, sampled0 = samples[0]
        buffer, bootstrap = self._collect_rollout(sampled0)
        batch = buffer.compute_targets(bootstrap, cfg.gamma)
        if cfg.use_compiled_train:
            from ..runtime.compiler import CompileError

            try:
                return self._compiled_stacked_one_level(batch, samples)
            except CompileError:
                health.record("eager_fallbacks")
        # Eager fallback: mean of the K per-sample task losses on the tape.
        total = None
        components_mean = {}
        for gates, active, _ in samples:
            sample_total, components = self._task_loss(batch, gates, active)
            total = sample_total if total is None else total + sample_total
            for key, value in components.items():
                components_mean[key] = components_mean.get(key, 0.0) + value / len(samples)
        total = total * (1.0 / len(samples))
        total, hw_value = self._add_hardware_penalty(total, sampled0, gates0)
        self.weight_optimizer.zero_grad()
        self.alpha_optimizer.zero_grad()
        total.backward()
        self._guarded_eager_step(total)
        return total.item(), components_mean, hw_value

    def _one_level_update(self):
        """One-level: weights and alpha updated from the same rollout loss."""
        if self.config.grad_samples > 1:
            return self._stacked_one_level_update()
        temperature = self.temperature.value(self.total_env_steps)
        gates, active, sampled = self.arch.sample(
            temperature, self.rng, num_backward_paths=self.config.num_backward_paths
        )
        buffer, bootstrap = self._collect_rollout(sampled)
        batch = buffer.compute_targets(bootstrap, self.config.gamma)
        if self.config.use_compiled_train:
            from ..runtime.compiler import CompileError

            try:
                return self._compiled_one_level(batch, gates, active, sampled)
            except CompileError:
                health.record("eager_fallbacks")
        total, components = self._task_loss(batch, gates, active)
        total, hw_value = self._add_hardware_penalty(total, sampled, gates)

        self.weight_optimizer.zero_grad()
        self.alpha_optimizer.zero_grad()
        total.backward()
        self._guarded_eager_step(total)
        return total.item(), components, hw_value

    def _guarded_eager_step(self, total, update_alpha=True):
        """Clip, guard, and apply the eager optimiser step(s).

        Mirrors the compiled path's non-finite guard: a NaN/Inf loss, weight
        gradient norm, or alpha gradient norm skips both optimiser steps
        (leaving parameters and optimiser state untouched), bumps the
        ``guard_trips`` counter, and feeds the rollback streak.  The
        ``nan_grad`` fault poisons the first weight gradient here, exactly
        as on the compiled path.  Returns True when the step was applied.
        """
        injector = get_injector()
        if injector is not None and injector.should_fire("nan_grad"):
            for param in self.agent.parameters():
                if param.grad is not None:
                    param.grad.flat[0] = np.nan
                    break
        grad_norm = clip_grad_norm(self.agent.parameters(), self.config.max_grad_norm)
        alpha_norm = clip_grad_norm(self.arch.parameters(), None) if update_alpha else 0.0
        if not (
            np.isfinite(total.item())
            and np.isfinite(grad_norm)
            and np.isfinite(alpha_norm)
        ):
            health.record("guard_trips")
            self._note_guard(True)
            return False
        self.weight_optimizer.step()
        if update_alpha:
            self.alpha_optimizer.step()
        self._note_guard(False)
        return True

    def _bi_level_update(self):
        """Bi-level: weights on one rollout, alpha on a fresh "validation" rollout.

        This is the DARTS-style one-step approximation whose gradient bias the
        paper blames for the failure of bi-level search under DRL variance.
        """
        temperature = self.temperature.value(self.total_env_steps)
        # --- weight step -------------------------------------------------
        gates, active, sampled = self.arch.sample(
            temperature, self.rng, num_backward_paths=self.config.num_backward_paths
        )
        buffer, bootstrap = self._collect_rollout(sampled)
        batch = buffer.compute_targets(bootstrap, self.config.gamma)
        total_w, components = self._task_loss(batch, gates, active)
        self.weight_optimizer.zero_grad()
        self.alpha_optimizer.zero_grad()
        total_w.backward()
        self._guarded_eager_step(total_w, update_alpha=False)

        # --- alpha step on a fresh rollout ("validation" data) -----------
        gates_v, active_v, sampled_v = self.arch.sample(
            temperature, self.rng, num_backward_paths=self.config.num_backward_paths
        )
        buffer_v, bootstrap_v = self._collect_rollout(sampled_v)
        batch_v = buffer_v.compute_targets(bootstrap_v, self.config.gamma)
        total_a, _ = self._task_loss(batch_v, gates_v, active_v)
        total_a, hw_value = self._add_hardware_penalty(total_a, sampled_v, gates_v)
        self.weight_optimizer.zero_grad()
        self.alpha_optimizer.zero_grad()
        total_a.backward()
        alpha_norm = clip_grad_norm(self.arch.parameters(), None)
        if np.isfinite(total_a.item()) and np.isfinite(alpha_norm):
            self.alpha_optimizer.step()
        else:
            health.record("guard_trips")
            self._note_guard(True)
        return total_w.item(), components, hw_value

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def search(self, total_steps=None):
        """Run the agent search and return a :class:`SearchResult`."""
        cfg = self.config
        target = total_steps if total_steps is not None else cfg.total_steps
        next_eval = cfg.eval_interval if cfg.eval_interval else None

        self.agent.train()
        while self.total_env_steps < target:
            if cfg.scheme == OptimizationScheme.ONE_LEVEL:
                loss_value, components, hw_value = self._one_level_update()
            else:
                loss_value, components, hw_value = self._bi_level_update()
            self.updates += 1
            self._maybe_autosave()
            self.logger.log("loss/total", loss_value, step=self.total_env_steps)
            for key, value in components.items():
                self.logger.log("loss/{}".format(key), value, step=self.total_env_steps)
            if hw_value:
                self.logger.log("loss/hw_penalty", hw_value, step=self.total_env_steps)
            self.logger.log("alpha_entropy", self.arch.entropy(), step=self.total_env_steps)
            self._log_runtime_stats()
            self.reporter.tick(step=self.total_env_steps)

            if next_eval is not None and self.total_env_steps >= next_eval and self.evaluator is not None:
                score = float(self.evaluator(self.agent, self.arch.derive()))
                self.logger.log("eval_score", score, step=self.total_env_steps)
                next_eval += cfg.eval_interval

        op_indices = self.arch.derive()
        return SearchResult(
            op_indices=op_indices,
            logger=self.logger,
            alpha_probabilities=self.arch.probabilities(),
            final_entropy=self.arch.entropy(),
            total_env_steps=self.total_env_steps,
        )

    # ------------------------------------------------------------------ #
    # Guard bookkeeping + crash safety
    # ------------------------------------------------------------------ #
    def _note_guard(self, skipped):
        """Track consecutive guard trips; roll back after K in a row."""
        if not skipped:
            self._update_skipped = False
            self._guard_streak = 0
            return
        self._update_skipped = True
        self._guard_streak += 1
        cfg = self.config
        if not cfg.guard_rollback_after or self._guard_streak < cfg.guard_rollback_after:
            return
        self._guard_streak = 0
        if cfg.autosave_path and os.path.exists(str(cfg.autosave_path)):
            self.load_checkpoint(cfg.autosave_path)
            health.record("checkpoint_rollbacks")

    def _maybe_autosave(self):
        """Write the periodic autosave checkpoint when one is due.

        The co-search overrides the write via :attr:`autosave_fn` so one
        autosave covers the searcher *and* the accelerator-search state.
        """
        cfg = self.config
        if not cfg.autosave_interval or self.updates % cfg.autosave_interval != 0:
            return
        if self.autosave_fn is not None:
            self.autosave_fn()
            health.record("autosaves")
        elif cfg.autosave_path:
            self.save_checkpoint(cfg.autosave_path)
            health.record("autosaves")

    def save_checkpoint(self, path):
        """Atomically persist everything needed to resume bit-identically.

        Covers the supernet/agent parameters and buffers, both optimisers
        (RMSProp on the weights, Adam on alpha), the architecture
        parameters, the search RNG stream, and the step/update counters
        driving the temperature schedule.  The environment is *not*
        serialised — resume with a freshly constructed (seeded) environment,
        exactly as at the start of the search.
        """
        return save_state_dict(self._checkpoint_state(), path)

    def _checkpoint_state(self):
        """The full resume state (also the key/shape reference for loads)."""
        state = {}
        for key, value in self.agent.state_dict().items():
            state["agent." + key] = value
        for key, value in self.weight_optimizer.state_dict().items():
            state["woptim." + key] = value
        for key, value in self.alpha_optimizer.state_dict().items():
            state["aoptim." + key] = value
        for key, value in self.arch.state_dict().items():
            state["arch." + key] = value
        state["search.total_env_steps"] = np.int64(self.total_env_steps)
        state["search.updates"] = np.int64(self.updates)
        state["search.rng"] = np.asarray(json.dumps(self.rng.bit_generator.state))
        return state

    def load_checkpoint(self, path):
        """Restore a checkpoint written by :meth:`save_checkpoint` (in place).

        The checkpoint is validated against the searcher's current state
        layout *before* anything is restored, so a truncated, corrupt, or
        mismatched file raises
        :class:`~repro.nn.serialization.CheckpointError` and never
        half-restores.  Compiled plans read parameters live and survive the
        load; continuation is bit-identical to a search that never stopped
        (given the same environment construction).
        """
        state = load_state_dict(path)
        validate_state(state, self._checkpoint_state(), path)
        self.agent.load_state_dict(
            {k[len("agent."):]: v for k, v in state.items() if k.startswith("agent.")}
        )
        self.weight_optimizer.load_state_dict(
            {k[len("woptim."):]: v for k, v in state.items() if k.startswith("woptim.")}
        )
        self.alpha_optimizer.load_state_dict(
            {k[len("aoptim."):]: v for k, v in state.items() if k.startswith("aoptim.")}
        )
        self.arch.load_state_dict(
            {k[len("arch."):]: v for k, v in state.items() if k.startswith("arch.")}
        )
        self.total_env_steps = int(state["search.total_env_steps"])
        self.updates = int(state["search.updates"])
        self.rng = np.random.default_rng()
        self.rng.bit_generator.state = json.loads(str(state["search.rng"].item()))
        self._guard_streak = 0
        if self._collector is not None:
            self._collector.restart()
        return self

    def _log_runtime_stats(self):
        """Log plan-cache / buffer-pool counters so compilation amortisation
        (and the fusion/aliasing wins behind it) stays observable, plus the
        process-wide reliability counters (restarts, guard trips, fallbacks)
        so recovery activity shows up in the same per-update stream."""
        from ..runtime import cache_stats

        stats = cache_stats()
        step = self.total_env_steps
        for name, value in stats["health"].items():
            self.logger.log("health/" + name, value, step=step)
        self.logger.log("runtime/train_plan_hits", stats["train_plans"]["cache_hits"], step=step)
        self.logger.log("runtime/train_plan_misses", stats["train_plans"]["cache_misses"], step=step)
        self.logger.log(
            "runtime/rollout_plan_hits", stats["inference_plans"]["cache_hits"], step=step
        )
        self.logger.log(
            "runtime/rollout_plan_misses", stats["inference_plans"]["cache_misses"], step=step
        )
        self.logger.log(
            "runtime/pool_bytes_recycled", stats["buffer_pools"]["bytes_pooled"], step=step
        )
        self.logger.log(
            "runtime/pool_bytes_fresh", stats["buffer_pools"]["bytes_fresh"], step=step
        )

    def derive_agent(self, rng=None):
        """Derive the final stand-alone agent from the current alpha."""
        op_indices = self.arch.derive()
        backbone = self.supernet.derive(op_indices, rng=rng)
        derived = ActorCriticAgent(
            backbone, num_actions=self.agent.num_actions, feature_dim=backbone.feature_dim,
            rng=np.random.default_rng(self.config.seed),
        )
        # The heads keep the weights trained during the search.
        derived.policy_head.load_state_dict(self.agent.policy_head.state_dict())
        derived.value_head.load_state_dict(self.agent.value_head.state_dict())
        return derived

    def mean_recent_return(self, window=20):
        """Mean of the last ``window`` training episode returns."""
        if not self._recent_returns:
            return 0.0
        return float(np.mean(self._recent_returns[-window:]))
