"""DRL agent backbones: Vanilla DQN CNN, ResNets, NAS operators and supernet."""

from .operators import (
    CANDIDATE_OPERATORS,
    OperatorSpec,
    build_operator,
    operator_macs,
    operator_params,
)
from .resnet import RESNET_BLOCKS, ResNet, build_backbone, resnet14, resnet20, resnet38, resnet74
from .supernet import AgentSuperNet, CellConfig, DerivedAgentNet, SearchableCell, default_cell_configs
from .vanilla import VanillaNet

__all__ = [
    "VanillaNet",
    "ResNet",
    "resnet14",
    "resnet20",
    "resnet38",
    "resnet74",
    "RESNET_BLOCKS",
    "build_backbone",
    "OperatorSpec",
    "CANDIDATE_OPERATORS",
    "build_operator",
    "operator_macs",
    "operator_params",
    "CellConfig",
    "SearchableCell",
    "AgentSuperNet",
    "DerivedAgentNet",
    "default_cell_configs",
]
