"""Candidate operators of the A3C-S agent search space.

Sec. V-A of the paper: the supernet has 12 sequential searchable cells whose
candidate operators are

* standard convolution with kernel size 3 or 5,
* inverted residual blocks with kernel size 3 or 5 and channel expansion
  1, 3 or 5 (six combinations),
* a skip connection,

i.e. 9 choices per cell and a search space of 9^12 networks.
"""

from __future__ import annotations

import numpy as np

from ..nn import ConvBNReLU, InvertedResidual, Module, SkipConnection

__all__ = ["OperatorSpec", "CANDIDATE_OPERATORS", "build_operator", "operator_macs", "operator_params"]


class OperatorSpec:
    """A named, parameter-free description of one candidate operator."""

    def __init__(self, name, kind, kernel_size=3, expansion=1):
        self.name = name
        self.kind = kind  # "conv", "inverted_residual", or "skip"
        self.kernel_size = kernel_size
        self.expansion = expansion

    def __repr__(self):
        return "OperatorSpec({!r})".format(self.name)

    def __eq__(self, other):
        return isinstance(other, OperatorSpec) and other.name == self.name

    def __hash__(self):
        return hash(self.name)


#: The 9 candidate operators of the paper, in a stable order (index == choice id).
CANDIDATE_OPERATORS = (
    OperatorSpec("conv_k3", "conv", kernel_size=3),
    OperatorSpec("conv_k5", "conv", kernel_size=5),
    OperatorSpec("ir_k3_e1", "inverted_residual", kernel_size=3, expansion=1),
    OperatorSpec("ir_k3_e3", "inverted_residual", kernel_size=3, expansion=3),
    OperatorSpec("ir_k3_e5", "inverted_residual", kernel_size=3, expansion=5),
    OperatorSpec("ir_k5_e1", "inverted_residual", kernel_size=5, expansion=1),
    OperatorSpec("ir_k5_e3", "inverted_residual", kernel_size=5, expansion=3),
    OperatorSpec("ir_k5_e5", "inverted_residual", kernel_size=5, expansion=5),
    OperatorSpec("skip", "skip"),
)


def build_operator(spec, in_channels, out_channels, stride=1, rng=None):
    """Instantiate the :class:`~repro.nn.Module` for an operator spec.

    Parameters
    ----------
    spec:
        An :class:`OperatorSpec` (or its name).
    in_channels, out_channels, stride:
        Cell-level shape configuration shared by every candidate in the cell.
    """
    if isinstance(spec, str):
        by_name = {s.name: s for s in CANDIDATE_OPERATORS}
        spec = by_name[spec]
    rng = rng if rng is not None else np.random.default_rng(0)
    if spec.kind == "conv":
        return ConvBNReLU(in_channels, out_channels, spec.kernel_size, stride=stride, rng=rng)
    if spec.kind == "inverted_residual":
        return InvertedResidual(
            in_channels,
            out_channels,
            kernel_size=spec.kernel_size,
            stride=stride,
            expansion=spec.expansion,
            rng=rng,
        )
    if spec.kind == "skip":
        return SkipConnection(in_channels, out_channels, stride=stride, rng=rng)
    raise ValueError("unknown operator kind {!r}".format(spec.kind))


def operator_macs(spec, in_channels, out_channels, input_size, stride=1):
    """Multiply-accumulate count of one candidate operator at a given shape.

    Used both for the FLOPs-proportional part of the hardware-cost penalty and
    by tests asserting the expected cost ordering of the candidates.
    """
    if isinstance(spec, str):
        spec = {s.name: s for s in CANDIDATE_OPERATORS}[spec]
    out_size = (input_size + 2 * (spec.kernel_size // 2) - spec.kernel_size) // stride + 1 \
        if spec.kind != "skip" else (input_size + stride - 1) // stride
    if spec.kind == "conv":
        return int(out_size ** 2 * out_channels * in_channels * spec.kernel_size ** 2)
    if spec.kind == "inverted_residual":
        hidden = max(1, int(round(in_channels * spec.expansion)))
        macs = 0
        if spec.expansion != 1:
            macs += input_size ** 2 * hidden * in_channels  # 1x1 expansion
        macs += out_size ** 2 * hidden * spec.kernel_size ** 2  # depthwise
        macs += out_size ** 2 * out_channels * hidden  # 1x1 projection
        return int(macs)
    if spec.kind == "skip":
        if stride == 1 and in_channels == out_channels:
            return 0
        return int(out_size ** 2 * out_channels * in_channels)  # 1x1 projection
    raise ValueError("unknown operator kind {!r}".format(spec.kind))


def operator_params(spec, in_channels, out_channels):
    """Parameter count of one candidate operator (ignoring batch-norm scales)."""
    if isinstance(spec, str):
        spec = {s.name: s for s in CANDIDATE_OPERATORS}[spec]
    if spec.kind == "conv":
        return int(out_channels * in_channels * spec.kernel_size ** 2)
    if spec.kind == "inverted_residual":
        hidden = max(1, int(round(in_channels * spec.expansion)))
        params = 0
        if spec.expansion != 1:
            params += hidden * in_channels
        params += hidden * spec.kernel_size ** 2
        params += out_channels * hidden
        return int(params)
    if spec.kind == "skip":
        if in_channels == out_channels:
            return 0
        return int(out_channels * in_channels)
    raise ValueError("unknown operator kind {!r}".format(spec.kind))
