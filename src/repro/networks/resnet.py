"""ResNet-14/20/38/74 feature extractors adapted for DRL agents.

The paper evaluates the AC-based DRL agent with ResNet backbones of four
depths.  Following Sec. V-A, the stride of the first convolution is set to 2
(so the 84x84 Atari observation is downsampled early) and the output
dimension of the final FC layer is 256.

The depth convention matches CIFAR-style ResNets: three stages of ``n`` basic
blocks each, total depth ``6 n + 2``:

* ResNet-14 -> n = 2
* ResNet-20 -> n = 3
* ResNet-38 -> n = 6
* ResNet-74 -> n = 12
"""

from __future__ import annotations

import numpy as np

from ..nn import BasicResBlock, ConvBNReLU, Flatten, GlobalAvgPool2d, Linear, Module, ReLU, Sequential

__all__ = ["ResNet", "resnet14", "resnet20", "resnet38", "resnet74", "RESNET_BLOCKS", "build_backbone"]

RESNET_BLOCKS = {14: 2, 20: 3, 38: 6, 74: 12}


class ResNet(Module):
    """CIFAR-style ResNet adapted to Atari observations.

    Parameters
    ----------
    depth:
        One of 14 / 20 / 38 / 74.
    in_channels:
        Number of stacked input frames.
    input_size:
        Observation resolution (84 in the paper).
    feature_dim:
        Dimensionality of the output feature (256 in the paper).
    base_width:
        Channel width of the first stage (doubled at each later stage).
    """

    def __init__(self, depth=20, in_channels=4, input_size=84, feature_dim=256, base_width=16, rng=None):
        super().__init__()
        if depth not in RESNET_BLOCKS:
            raise ValueError("unsupported ResNet depth {}; choose from {}".format(depth, sorted(RESNET_BLOCKS)))
        rng = rng if rng is not None else np.random.default_rng(0)
        self.depth = depth
        self.name = "ResNet-{}".format(depth)
        self.in_channels = in_channels
        self.input_size = input_size
        self.feature_dim = feature_dim
        blocks_per_stage = RESNET_BLOCKS[depth]

        # Paper: stride of the first convolution modified to 2.
        self.stem = ConvBNReLU(in_channels, base_width, 3, stride=2, rng=rng)

        stages = []
        widths = [base_width, base_width * 2, base_width * 4]
        in_width = base_width
        for stage_index, width in enumerate(widths):
            for block_index in range(blocks_per_stage):
                stride = 2 if (block_index == 0 and stage_index > 0) else 1
                stages.append(BasicResBlock(in_width, width, stride=stride, rng=rng))
                in_width = width
        self.stages = Sequential(*stages)
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(widths[-1], feature_dim, rng=rng)
        self.relu = ReLU()
        self._widths = widths
        self._blocks_per_stage = blocks_per_stage

    def forward(self, x):
        x = self.stem(x)
        x = self.stages(x)
        x = self.pool(x)
        return self.relu(self.fc(x))

    # ------------------------------------------------------------------ #
    # Workload description for the accelerator cost model
    # ------------------------------------------------------------------ #
    def layer_specs(self):
        """Flattened per-layer conv/FC workload list for the accelerator model."""
        specs = []
        size = self.input_size

        def add_conv(name, conv, in_size):
            out_size = conv.output_spatial(in_size)
            specs.append(
                {
                    "name": name,
                    "type": "conv",
                    "in_channels": conv.in_channels,
                    "out_channels": conv.out_channels,
                    "kernel_size": conv.kernel_size,
                    "stride": conv.stride,
                    "input_size": in_size,
                    "output_size": out_size,
                    "groups": conv.groups,
                }
            )
            return out_size

        size = add_conv("stem", self.stem.conv, size)
        for i, block in enumerate(self.stages):
            block_in = size
            size = add_conv("block{}.conv1".format(i), block.conv1.conv, block_in)
            size = add_conv("block{}.conv2".format(i), block.conv2.conv, size)
            if hasattr(block.shortcut, "conv"):  # projection shortcut present
                add_conv("block{}.shortcut".format(i), block.shortcut.conv, block_in)
        specs.append(
            {
                "name": "fc",
                "type": "fc",
                "in_features": self.fc.in_features,
                "out_features": self.fc.out_features,
            }
        )
        return specs

    def flops(self):
        """Total MAC count of one forward pass (batch size 1)."""
        total = 0
        for spec in self.layer_specs():
            if spec["type"] == "conv":
                total += (
                    spec["output_size"] ** 2
                    * spec["out_channels"]
                    * (spec["in_channels"] // spec["groups"])
                    * spec["kernel_size"] ** 2
                )
            else:
                total += spec["in_features"] * spec["out_features"]
        return int(total)


def resnet14(**kwargs):
    """ResNet-14 backbone (2 blocks per stage)."""
    return ResNet(depth=14, **kwargs)


def resnet20(**kwargs):
    """ResNet-20 backbone (3 blocks per stage); the paper's teacher agent."""
    return ResNet(depth=20, **kwargs)


def resnet38(**kwargs):
    """ResNet-38 backbone (6 blocks per stage)."""
    return ResNet(depth=38, **kwargs)


def resnet74(**kwargs):
    """ResNet-74 backbone (12 blocks per stage)."""
    return ResNet(depth=74, **kwargs)


def build_backbone(name, **kwargs):
    """Build a backbone by its paper name: ``Vanilla`` or ``ResNet-<depth>``.

    This is the factory used by the Table I / Fig. 1 experiment harness.
    """
    from .vanilla import VanillaNet

    if name.lower() == "vanilla":
        return VanillaNet(**kwargs)
    if name.lower().startswith("resnet-"):
        depth = int(name.split("-")[1])
        return ResNet(depth=depth, **kwargs)
    raise ValueError("unknown backbone name: {!r}".format(name))
