"""The A3C-S agent supernet: 12 sequential searchable cells.

Sec. V-A: "The supernet structure follows the network design (i.e., #groups
and stride) of the ResNet series with 12 sequential searchable cells", each
cell choosing among the 9 candidate operators of
:data:`repro.networks.operators.CANDIDATE_OPERATORS` -> a 9^12 search space.

The supernet itself is architecture-parameter agnostic: the forward pass is
given, per cell, a gate tensor (produced by the Gumbel machinery in
:mod:`repro.nas.gumbel`) and the list of activated paths.  Single-path
forward / multi-path backward (paper Eq. 6-7) is realised by evaluating only
the activated candidates and weighting them by the gate values, whose data is
one-hot (hard Gumbel) but whose gradient flows through the soft relaxation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn import ConvBNReLU, GlobalAvgPool2d, Linear, Module, ModuleList, ReLU, Sequential, Tensor
from .operators import CANDIDATE_OPERATORS, build_operator, operator_macs, operator_params

__all__ = ["CellConfig", "SearchableCell", "AgentSuperNet", "DerivedAgentNet", "default_cell_configs"]


@dataclass(frozen=True)
class CellConfig:
    """Static shape configuration of one searchable cell."""

    index: int
    in_channels: int
    out_channels: int
    stride: int
    input_size: int

    @property
    def output_size(self):
        """Spatial output size of the cell (same for every candidate operator)."""
        return (self.input_size + self.stride - 1) // self.stride


def default_cell_configs(num_cells=12, in_channels=16, input_size=42, base_width=16, num_stages=3):
    """Build the ResNet-style stage layout for the searchable cells.

    The cells are split evenly across ``num_stages`` stages; the first cell of
    every stage after the first uses stride 2 and doubles the channel width,
    mirroring the #groups / stride design of the ResNet baselines.
    """
    if num_cells % num_stages != 0:
        raise ValueError("num_cells must be divisible by num_stages")
    per_stage = num_cells // num_stages
    configs = []
    size = input_size
    current_in = in_channels
    width = base_width
    index = 0
    for stage in range(num_stages):
        for cell in range(per_stage):
            stride = 2 if (stage > 0 and cell == 0) else 1
            configs.append(
                CellConfig(
                    index=index,
                    in_channels=current_in,
                    out_channels=width,
                    stride=stride,
                    input_size=size,
                )
            )
            size = configs[-1].output_size
            current_in = width
            index += 1
        width *= 2
    return configs


class SearchableCell(Module):
    """One searchable cell holding all candidate operators in parallel."""

    def __init__(self, config, rng=None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.config = config
        self.candidates = ModuleList(
            build_operator(spec, config.in_channels, config.out_channels, config.stride, rng=rng)
            for spec in CANDIDATE_OPERATORS
        )

    @property
    def num_choices(self):
        return len(self.candidates)

    def forward(self, x, gates, active_indices=None):
        """Weighted sum over the activated candidate operators.

        Parameters
        ----------
        x:
            Input feature map tensor.
        gates:
            Tensor of shape ``(num_choices,)``.  With hard Gumbel sampling its
            data is one-hot, so the forward value equals the single sampled
            path, while gradients w.r.t. the architecture parameters flow
            through all activated paths (multi-path backward, Eq. 7).
        active_indices:
            Which candidate operators to evaluate.  Defaults to the indices
            whose gate data is non-zero (pure single-path forward).
        """
        if active_indices is None:
            active_indices = [int(i) for i in np.flatnonzero(gates.data)]
        if not active_indices:
            raise ValueError("at least one path must be active")
        out = None
        for index in active_indices:
            branch = self.candidates[index](x) * gates[index]
            out = branch if out is None else out + branch
        return out

    def forward_single(self, x, index):
        """Evaluate exactly one candidate (used after derivation / by tests)."""
        return self.candidates[index](x)

    def candidate_macs(self):
        """MAC count of every candidate operator at this cell's shape."""
        return np.array(
            [
                operator_macs(
                    spec,
                    self.config.in_channels,
                    self.config.out_channels,
                    self.config.input_size,
                    self.config.stride,
                )
                for spec in CANDIDATE_OPERATORS
            ],
            dtype=np.float64,
        )

    def candidate_params(self):
        """Parameter count of every candidate operator at this cell's shape."""
        return np.array(
            [
                operator_params(spec, self.config.in_channels, self.config.out_channels)
                for spec in CANDIDATE_OPERATORS
            ],
            dtype=np.float64,
        )


class AgentSuperNet(Module):
    """The weight-sharing supernet over the 9^12 agent search space.

    Parameters
    ----------
    in_channels:
        Number of stacked observation frames.
    input_size:
        Observation resolution.
    feature_dim:
        Output feature dimension (256 in the paper).
    num_cells:
        Number of sequential searchable cells (12 in the paper).
    base_width:
        Channel width of the first stage.
    """

    name = "A3C-S-SuperNet"

    def __init__(self, in_channels=4, input_size=42, feature_dim=256, num_cells=12, base_width=16,
                 num_stages=3, rng=None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_channels = in_channels
        self.input_size = input_size
        self.feature_dim = feature_dim
        self.num_cells = num_cells

        self.stem = ConvBNReLU(in_channels, base_width, 3, stride=2, rng=rng)
        stem_out_size = (input_size + 1) // 2
        self.cell_configs = default_cell_configs(
            num_cells=num_cells,
            in_channels=base_width,
            input_size=stem_out_size,
            base_width=base_width,
            num_stages=num_stages,
        )
        self.cells = ModuleList(SearchableCell(cfg, rng=rng) for cfg in self.cell_configs)
        final_width = self.cell_configs[-1].out_channels
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(final_width, feature_dim, rng=rng)
        self.relu = ReLU()

    @property
    def num_choices_per_cell(self):
        return len(CANDIDATE_OPERATORS)

    def search_space_size(self):
        """Cardinality of the agent search space (9^12 in the paper)."""
        return self.num_choices_per_cell ** self.num_cells

    def forward(self, x, gates=None, active_indices=None, op_indices=None):
        """Run the supernet with per-cell gates or along a fixed path.

        Parameters
        ----------
        gates:
            A list of per-cell gate tensors (length ``num_cells``) for the
            gated (search-time) forward.
        active_indices:
            Optional list of per-cell activated-path index lists.
        op_indices:
            Alternative to ``gates``: a fixed operator index per cell, running
            the supernet as the corresponding single-path network (used for
            evaluation of the currently derived architecture).
        """
        if op_indices is not None:
            return self.forward_architecture(x, op_indices)
        if gates is None:
            raise ValueError("either gates or op_indices must be provided")
        if len(gates) != self.num_cells:
            raise ValueError("expected {} gate tensors, got {}".format(self.num_cells, len(gates)))
        x = self.stem(x)
        for i, cell in enumerate(self.cells):
            active = active_indices[i] if active_indices is not None else None
            x = cell(x, gates[i], active)
        x = self.pool(x)
        return self.relu(self.fc(x))

    def forward_architecture(self, x, op_indices):
        """Run the supernet along a fixed single path (one op index per cell)."""
        x = self.stem(x)
        for cell, index in zip(self.cells, op_indices):
            x = cell.forward_single(x, int(index))
        x = self.pool(x)
        return self.relu(self.fc(x))

    # ------------------------------------------------------------------ #
    # Cost tables used by the hardware penalty and the accelerator model
    # ------------------------------------------------------------------ #
    def candidate_macs_table(self):
        """Matrix ``(num_cells, num_choices)`` of per-candidate MAC counts."""
        return np.stack([cell.candidate_macs() for cell in self.cells])

    def candidate_params_table(self):
        """Matrix ``(num_cells, num_choices)`` of per-candidate parameter counts."""
        return np.stack([cell.candidate_params() for cell in self.cells])

    def layer_specs(self, op_indices):
        """Per-layer workload of the single-path network selected by ``op_indices``.

        The skip operator contributes no conv layer when it is a true identity.
        """
        specs = [
            {
                "name": "stem",
                "type": "conv",
                "in_channels": self.stem.conv.in_channels,
                "out_channels": self.stem.conv.out_channels,
                "kernel_size": self.stem.conv.kernel_size,
                "stride": self.stem.conv.stride,
                "input_size": self.input_size,
                "output_size": self.stem.conv.output_spatial(self.input_size),
                "groups": 1,
            }
        ]
        for cfg, op_index in zip(self.cell_configs, op_indices):
            spec = CANDIDATE_OPERATORS[int(op_index)]
            in_size = cfg.input_size
            out_size = cfg.output_size
            base = {"input_size": in_size, "output_size": out_size, "stride": cfg.stride}
            prefix = "cell{}".format(cfg.index)
            if spec.kind == "conv":
                specs.append(
                    dict(
                        base,
                        name="{}.{}".format(prefix, spec.name),
                        type="conv",
                        in_channels=cfg.in_channels,
                        out_channels=cfg.out_channels,
                        kernel_size=spec.kernel_size,
                        groups=1,
                    )
                )
            elif spec.kind == "inverted_residual":
                hidden = max(1, int(round(cfg.in_channels * spec.expansion)))
                if spec.expansion != 1:
                    specs.append(
                        dict(
                            base,
                            name="{}.expand".format(prefix),
                            type="conv",
                            in_channels=cfg.in_channels,
                            out_channels=hidden,
                            kernel_size=1,
                            stride=1,
                            output_size=in_size,
                            groups=1,
                        )
                    )
                specs.append(
                    dict(
                        base,
                        name="{}.depthwise".format(prefix),
                        type="conv",
                        in_channels=hidden,
                        out_channels=hidden,
                        kernel_size=spec.kernel_size,
                        groups=hidden,
                    )
                )
                specs.append(
                    dict(
                        base,
                        name="{}.project".format(prefix),
                        type="conv",
                        in_channels=hidden,
                        out_channels=cfg.out_channels,
                        kernel_size=1,
                        stride=1,
                        input_size=out_size,
                        output_size=out_size,
                        groups=1,
                    )
                )
            elif spec.kind == "skip":
                if cfg.stride != 1 or cfg.in_channels != cfg.out_channels:
                    specs.append(
                        dict(
                            base,
                            name="{}.skip_proj".format(prefix),
                            type="conv",
                            in_channels=cfg.in_channels,
                            out_channels=cfg.out_channels,
                            kernel_size=1,
                            groups=1,
                        )
                    )
        specs.append(
            {
                "name": "fc",
                "type": "fc",
                "in_features": self.fc.in_features,
                "out_features": self.fc.out_features,
            }
        )
        return specs

    def flops(self, op_indices):
        """Total MAC count of the single-path network selected by ``op_indices``."""
        total = 0
        for spec in self.layer_specs(op_indices):
            if spec["type"] == "conv":
                total += (
                    spec["output_size"] ** 2
                    * spec["out_channels"]
                    * (spec["in_channels"] // spec["groups"])
                    * spec["kernel_size"] ** 2
                )
            else:
                total += spec["in_features"] * spec["out_features"]
        return int(total)

    # ------------------------------------------------------------------ #
    # Derivation
    # ------------------------------------------------------------------ #
    def derive(self, op_indices, rng=None, copy_weights=True):
        """Extract the stand-alone network selected by ``op_indices``.

        When ``copy_weights`` is true the derived network inherits the
        supernet weights of the chosen candidates (weight sharing), which is
        how the final A3C-S agent is obtained at the end of the co-search.
        """
        derived = DerivedAgentNet(self, op_indices, rng=rng)
        if copy_weights:
            derived.inherit_weights(self)
        return derived


class DerivedAgentNet(Module):
    """A fixed single-path network derived from the supernet."""

    def __init__(self, supernet, op_indices, rng=None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.op_indices = [int(i) for i in op_indices]
        if len(self.op_indices) != supernet.num_cells:
            raise ValueError("expected {} op indices".format(supernet.num_cells))
        self.name = "A3C-S"
        self.in_channels = supernet.in_channels
        self.input_size = supernet.input_size
        self.feature_dim = supernet.feature_dim
        self._cell_configs = supernet.cell_configs
        self._supernet_base_width = supernet.stem.conv.out_channels

        self.stem = ConvBNReLU(
            supernet.in_channels, supernet.stem.conv.out_channels, 3, stride=2, rng=rng
        )
        ops = []
        for cfg, op_index in zip(supernet.cell_configs, self.op_indices):
            ops.append(
                build_operator(
                    CANDIDATE_OPERATORS[op_index], cfg.in_channels, cfg.out_channels, cfg.stride, rng=rng
                )
            )
        self.ops = Sequential(*ops)
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(supernet.fc.in_features, supernet.fc.out_features, rng=rng)
        self.relu = ReLU()
        # Snapshot the workload description so the derived net is self-contained
        # (usable by the accelerator cost model without keeping the supernet alive).
        self._layer_specs = supernet.layer_specs(self.op_indices)
        self._flops = supernet.flops(self.op_indices)

    def inherit_weights(self, supernet):
        """Copy stem / chosen-candidate / head weights from the supernet."""
        self.stem.load_state_dict(supernet.stem.state_dict())
        for op, cell, index in zip(self.ops, supernet.cells, self.op_indices):
            op.load_state_dict(cell.candidates[index].state_dict())
        self.fc.load_state_dict(supernet.fc.state_dict())
        return self

    def forward(self, x):
        x = self.stem(x)
        x = self.ops(x)
        x = self.pool(x)
        return self.relu(self.fc(x))

    def layer_specs(self):
        """Per-layer workload list (same convention as the baselines)."""
        return [dict(spec) for spec in self._layer_specs]

    def flops(self):
        """Total MAC count of one forward pass."""
        return self._flops

    def operator_names(self):
        """Human-readable list of the chosen operator per cell."""
        return [CANDIDATE_OPERATORS[i].name for i in self.op_indices]
