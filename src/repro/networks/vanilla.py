"""The "Vanilla" backbone: the original small CNN from Nature DQN [1].

The paper uses this network (conv 8x8/4 -> conv 4x4/2 -> conv 3x3/1 -> FC) as
the smallest baseline feature extractor for its model-size ablation (Table I,
Fig. 1) and distillation ablation (Table II).
"""

from __future__ import annotations

import numpy as np

from ..nn import Conv2d, Flatten, Linear, Module, ReLU

__all__ = ["VanillaNet"]


class VanillaNet(Module):
    """Nature-DQN convolutional feature extractor.

    Parameters
    ----------
    in_channels:
        Number of stacked input frames (the paper stacks 4 grey-scale frames).
    input_size:
        Spatial resolution of the (square) observation, 84 for Atari.
    feature_dim:
        Output feature dimensionality fed to the policy / value heads.
    """

    name = "Vanilla"

    def __init__(self, in_channels=4, input_size=84, feature_dim=256, rng=None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_channels = in_channels
        self.input_size = input_size
        self.feature_dim = feature_dim

        # The classic Nature-DQN kernels assume a large (84x84) observation.
        # Smaller observations (used by the scaled-down experiment profiles)
        # get proportionally smaller kernels/strides so every conv still
        # produces a non-empty feature map.
        if input_size >= 64:
            conv_params = [(32, 8, 4, 0), (64, 4, 2, 0), (64, 3, 1, 0)]
        elif input_size >= 32:
            conv_params = [(32, 4, 2, 0), (64, 4, 2, 0), (64, 3, 1, 0)]
        else:
            conv_params = [(32, 3, 2, 1), (64, 3, 2, 1), (64, 3, 1, 1)]
        channels = in_channels
        convs = []
        for out_channels, kernel, stride, padding in conv_params:
            convs.append(Conv2d(channels, out_channels, kernel, stride=stride, padding=padding, rng=rng))
            channels = out_channels
        self.conv1, self.conv2, self.conv3 = convs

        size = input_size
        for conv in (self.conv1, self.conv2, self.conv3):
            size = conv.output_spatial(size)
        self._final_spatial = size
        self.flatten = Flatten()
        self.fc = Linear(64 * size * size, feature_dim, rng=rng)
        self.relu = ReLU()

    def forward(self, x):
        x = self.relu(self.conv1(x))
        x = self.relu(self.conv2(x))
        x = self.relu(self.conv3(x))
        x = self.flatten(x)
        return self.relu(self.fc(x))

    def layer_specs(self):
        """Per-layer workload description consumed by the accelerator cost model.

        Returns a list of dicts, one per conv / FC layer, with the fields the
        analytical model needs (channel counts, kernel, stride, output size).
        """
        specs = []
        size = self.input_size
        for name, conv in (("conv1", self.conv1), ("conv2", self.conv2), ("conv3", self.conv3)):
            out_size = conv.output_spatial(size)
            specs.append(
                {
                    "name": name,
                    "type": "conv",
                    "in_channels": conv.in_channels,
                    "out_channels": conv.out_channels,
                    "kernel_size": conv.kernel_size,
                    "stride": conv.stride,
                    "input_size": size,
                    "output_size": out_size,
                    "groups": conv.groups,
                }
            )
            size = out_size
        specs.append(
            {
                "name": "fc",
                "type": "fc",
                "in_features": self.fc.in_features,
                "out_features": self.fc.out_features,
            }
        )
        return specs

    def flops(self):
        """Total multiply-accumulate count of one forward pass (batch of 1)."""
        total = 0
        for spec in self.layer_specs():
            if spec["type"] == "conv":
                total += (
                    spec["output_size"] ** 2
                    * spec["out_channels"]
                    * (spec["in_channels"] // spec["groups"])
                    * spec["kernel_size"] ** 2
                )
            else:
                total += spec["in_features"] * spec["out_features"]
        return int(total)
