"""NumPy autodiff + neural-network substrate used by the A3C-S reproduction.

Public surface:

* :class:`Tensor` — reverse-mode autodiff array.
* :mod:`repro.nn.functional` — functional ops and losses (imported as ``F``).
* Layer classes (:class:`Linear`, :class:`Conv2d`, :class:`BatchNorm2d`, ...).
* Building blocks (:class:`BasicResBlock`, :class:`InvertedResidual`, ...).
* Optimisers (:class:`SGD`, :class:`RMSProp`, :class:`Adam`) and schedules.
"""

from . import functional
from . import init
from . import vjp
from .blocks import BasicResBlock, ConvBNReLU, InvertedResidual, SkipConnection, count_conv_flops
from .modules import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    LeakyReLU,
    Linear,
    MaxPool2d,
    Module,
    ModuleList,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from .optim import (
    Adam,
    ConstantSchedule,
    LinearDecaySchedule,
    Optimizer,
    RMSProp,
    SGD,
    StepDecaySchedule,
    clip_grad_norm,
)
from .serialization import (
    CheckpointError,
    load_module,
    load_state_dict,
    save_module,
    save_state_dict,
    validate_state,
)
from .tensor import Tensor, as_tensor, no_grad, is_grad_enabled, unbroadcast

F = functional

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "unbroadcast",
    "functional",
    "F",
    "init",
    "vjp",
    "Parameter",
    "Module",
    "Sequential",
    "ModuleList",
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Flatten",
    "Identity",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Dropout",
    "ConvBNReLU",
    "BasicResBlock",
    "InvertedResidual",
    "SkipConnection",
    "count_conv_flops",
    "Optimizer",
    "SGD",
    "RMSProp",
    "Adam",
    "ConstantSchedule",
    "LinearDecaySchedule",
    "StepDecaySchedule",
    "clip_grad_norm",
    "save_state_dict",
    "load_state_dict",
    "validate_state",
    "CheckpointError",
    "save_module",
    "load_module",
]
