"""Composite building blocks: ConvBNReLU, residual blocks, inverted residuals.

These are the operator primitives from which the ResNet baselines
(ResNet-14/20/38/74) and the A3C-S supernet candidate operators
(standard conv k3/k5, inverted residual blocks k3/k5 with expansion 1/3/5,
and skip connections) are assembled.
"""

from __future__ import annotations

import numpy as np

from .modules import BatchNorm2d, Conv2d, Identity, Module, ReLU, Sequential

__all__ = ["ConvBNReLU", "BasicResBlock", "InvertedResidual", "SkipConnection", "count_conv_flops"]


def count_conv_flops(in_channels, out_channels, kernel_size, out_h, out_w, groups=1):
    """Multiply-accumulate count of one conv layer (used by the cost model)."""
    return int(out_h * out_w * out_channels * (in_channels // groups) * kernel_size * kernel_size)


class ConvBNReLU(Module):
    """Convolution + batch norm + ReLU, the standard CNN building unit."""

    def __init__(self, in_channels, out_channels, kernel_size=3, stride=1, groups=1, rng=None,
                 use_relu=True):
        super().__init__()
        padding = kernel_size // 2
        self.conv = Conv2d(
            in_channels,
            out_channels,
            kernel_size,
            stride=stride,
            padding=padding,
            groups=groups,
            bias=False,
            rng=rng,
        )
        self.bn = BatchNorm2d(out_channels)
        self.act = ReLU() if use_relu else Identity()
        self.stride = stride
        self.kernel_size = kernel_size
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.groups = groups

    def forward(self, x):
        return self.act(self.bn(self.conv(x)))


class BasicResBlock(Module):
    """The two-conv residual block used by the ResNet-14/20/38/74 baselines.

    When the stride is larger than one or the channel count changes, a 1x1
    projection shortcut is inserted, exactly as in the original ResNet.
    """

    def __init__(self, in_channels, out_channels, stride=1, kernel_size=3, rng=None):
        super().__init__()
        self.conv1 = ConvBNReLU(in_channels, out_channels, kernel_size, stride=stride, rng=rng)
        self.conv2 = ConvBNReLU(out_channels, out_channels, kernel_size, stride=1, rng=rng,
                                use_relu=False)
        if stride != 1 or in_channels != out_channels:
            self.shortcut = ConvBNReLU(in_channels, out_channels, 1, stride=stride, rng=rng,
                                       use_relu=False)
        else:
            self.shortcut = Identity()
        self.act = ReLU()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.stride = stride

    def forward(self, x):
        residual = self.shortcut(x)
        out = self.conv2(self.conv1(x))
        return self.act(out + residual)


class InvertedResidual(Module):
    """MobileNetV2-style inverted residual block (candidate NAS operator).

    Structure: 1x1 expansion conv -> depthwise kxk conv -> 1x1 projection.
    A residual connection is added when the block preserves shape.
    """

    def __init__(self, in_channels, out_channels, kernel_size=3, stride=1, expansion=3, rng=None):
        super().__init__()
        hidden = max(1, int(round(in_channels * expansion)))
        layers = []
        if expansion != 1:
            layers.append(ConvBNReLU(in_channels, hidden, 1, stride=1, rng=rng))
        layers.append(ConvBNReLU(hidden, hidden, kernel_size, stride=stride, groups=hidden, rng=rng))
        layers.append(ConvBNReLU(hidden, out_channels, 1, stride=1, rng=rng, use_relu=False))
        self.body = Sequential(*layers)
        self.use_residual = stride == 1 and in_channels == out_channels
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.expansion = expansion
        self.hidden_channels = hidden

    def forward(self, x):
        out = self.body(x)
        if self.use_residual:
            out = out + x
        return out


class SkipConnection(Module):
    """Skip / identity candidate operator.

    When the operator must change resolution or channel count (stride > 1 or
    ``in_channels != out_channels``), the skip degenerates to a 1x1 strided
    projection so the supernet cell remains shape-consistent; otherwise it is
    a true identity with zero compute cost.
    """

    def __init__(self, in_channels, out_channels, stride=1, rng=None):
        super().__init__()
        self.is_identity = stride == 1 and in_channels == out_channels
        if self.is_identity:
            self.op = Identity()
        else:
            self.op = ConvBNReLU(in_channels, out_channels, 1, stride=stride, rng=rng,
                                 use_relu=False)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.stride = stride

    def forward(self, x):
        return self.op(x)
