"""Functional neural-network operations on :class:`repro.nn.tensor.Tensor`.

These free functions implement the forward/backward math for the layers the
A3C-S reproduction needs: convolutions (via im2col), pooling, activations,
normalisation statistics, softmax families, and the loss primitives used by
the actor-critic training objective (Eq. 12-15 of the paper) and by the
AC-distillation mechanism (Eq. 10-11).
"""

from __future__ import annotations

import numpy as np

from . import vjp
from .tensor import Tensor, as_tensor

__all__ = [
    "relu",
    "leaky_relu",
    "sigmoid",
    "tanh",
    "linear",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "batch_norm2d",
    "softmax",
    "log_softmax",
    "dropout",
    "mse_loss",
    "huber_loss",
    "cross_entropy",
    "nll_loss",
    "kl_divergence",
    "entropy",
    "im2col",
    "col2im",
    "conv_output_size",
]


# --------------------------------------------------------------------------- #
# Activations
# --------------------------------------------------------------------------- #
def relu(x):
    """Rectified linear unit."""
    return as_tensor(x).relu()


def leaky_relu(x, negative_slope=0.01):
    """Leaky ReLU with configurable negative slope."""
    x = as_tensor(x)
    mask = (x.data > 0).astype(np.float64)
    scale = mask + negative_slope * (1.0 - mask)
    out_data = x.data * scale

    def backward(grad):
        x._accumulate(vjp.leaky_relu_vjp(grad, out_data, negative_slope))

    return Tensor._make(out_data, (x,), backward)


def sigmoid(x):
    """Logistic sigmoid."""
    return as_tensor(x).sigmoid()


def tanh(x):
    """Hyperbolic tangent."""
    return as_tensor(x).tanh()


# --------------------------------------------------------------------------- #
# Linear / convolution
# --------------------------------------------------------------------------- #
def linear(x, weight, bias=None):
    """Affine map ``x @ weight.T + bias``.

    Parameters
    ----------
    x:
        Input of shape ``(batch, in_features)``.
    weight:
        Weight of shape ``(out_features, in_features)``.
    bias:
        Optional bias of shape ``(out_features,)``.
    """
    out = as_tensor(x).matmul(as_tensor(weight).transpose())
    if bias is not None:
        out = out + as_tensor(bias)
    return out


def conv_output_size(size, kernel, stride, padding):
    """Spatial output size of a convolution along one dimension."""
    return (size + 2 * padding - kernel) // stride + 1


def im2col(x, kernel_size, stride, padding):
    """Unfold image patches into columns.

    Parameters
    ----------
    x:
        Array of shape ``(N, C, H, W)``.

    Returns
    -------
    cols:
        Array of shape ``(N, out_h, out_w, C * kh * kw)``.
    """
    n, c, h, w = x.shape
    kh, kw = kernel_size
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (h + 2 * padding - kh) // stride + 1
    out_w = (w + 2 * padding - kw) // stride + 1
    strides = x.strides
    shape = (n, c, out_h, out_w, kh, kw)
    new_strides = (
        strides[0],
        strides[1],
        strides[2] * stride,
        strides[3] * stride,
        strides[2],
        strides[3],
    )
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=new_strides)
    # (N, out_h, out_w, C, kh, kw) -> (N, out_h, out_w, C*kh*kw)
    cols = patches.transpose(0, 2, 3, 1, 4, 5).reshape(n, out_h, out_w, c * kh * kw)
    return np.ascontiguousarray(cols)


def col2im(cols, x_shape, kernel_size, stride, padding):
    """Fold column gradients back into an image gradient (adjoint of im2col)."""
    n, c, h, w = x_shape
    kh, kw = kernel_size
    out_h = (h + 2 * padding - kh) // stride + 1
    out_w = (w + 2 * padding - kw) // stride + 1
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    cols = cols.reshape(n, out_h, out_w, c, kh, kw)
    for i in range(kh):
        for j in range(kw):
            padded[:, :, i : i + stride * out_h : stride, j : j + stride * out_w : stride] += (
                cols[:, :, :, :, i, j].transpose(0, 3, 1, 2)
            )
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


def conv2d(x, weight, bias=None, stride=1, padding=0, groups=1):
    """2-D convolution with im2col, supporting grouped / depthwise convs.

    Parameters
    ----------
    x:
        Input tensor of shape ``(N, C_in, H, W)``.
    weight:
        Filter tensor of shape ``(C_out, C_in // groups, kh, kw)``.
    bias:
        Optional bias tensor of shape ``(C_out,)``.
    stride, padding:
        Spatial stride and zero padding.
    groups:
        Number of filter groups; ``groups == C_in`` gives a depthwise conv.
    """
    x = as_tensor(x)
    weight = as_tensor(weight)
    n, c_in, h, w = x.data.shape
    c_out, c_in_g, kh, kw = weight.data.shape
    if c_in % groups != 0 or c_out % groups != 0:
        raise ValueError("channels must be divisible by groups")
    if c_in_g != c_in // groups:
        raise ValueError(
            "weight expects {} input channels per group, input provides {}".format(
                c_in_g, c_in // groups
            )
        )
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)

    if groups == 1:
        cols = im2col(x.data, (kh, kw), stride, padding)  # (N, oh, ow, C*kh*kw)
        w_mat = weight.data.reshape(c_out, -1)  # (C_out, C*kh*kw)
        out_data = cols @ w_mat.T  # (N, oh, ow, C_out)
        out_data = out_data.transpose(0, 3, 1, 2)

        def backward(grad):
            # grad: (N, C_out, oh, ow)
            grad_mat = grad.transpose(0, 2, 3, 1)  # (N, oh, ow, C_out)
            if weight.requires_grad:
                gw = vjp.conv2d_weight_vjp(grad_mat, cols)
                weight._accumulate(gw.reshape(weight.data.shape))
            if x.requires_grad:
                gcols = vjp.conv2d_cols_vjp(grad_mat, w_mat)
                x._accumulate(col2im(gcols, x.data.shape, (kh, kw), stride, padding))

        out = Tensor._make(out_data, (x, weight), backward)
    else:
        group_in = c_in // groups
        group_out = c_out // groups
        cols_per_group = []
        out_chunks = []
        w_mats = []
        for g in range(groups):
            xg = x.data[:, g * group_in : (g + 1) * group_in]
            cols = im2col(xg, (kh, kw), stride, padding)
            wg = weight.data[g * group_out : (g + 1) * group_out].reshape(group_out, -1)
            cols_per_group.append(cols)
            w_mats.append(wg)
            out_chunks.append((cols @ wg.T).transpose(0, 3, 1, 2))
        out_data = np.concatenate(out_chunks, axis=1)

        def backward(grad):
            gx_full = np.zeros_like(x.data) if x.requires_grad else None
            gw_full = np.zeros_like(weight.data) if weight.requires_grad else None
            for g in range(groups):
                grad_g = grad[:, g * group_out : (g + 1) * group_out]
                grad_mat = grad_g.transpose(0, 2, 3, 1)
                if gw_full is not None:
                    gw = vjp.conv2d_weight_vjp(grad_mat, cols_per_group[g])
                    gw_full[g * group_out : (g + 1) * group_out] = gw.reshape(
                        group_out, group_in, kh, kw
                    )
                if gx_full is not None:
                    gcols = vjp.conv2d_cols_vjp(grad_mat, w_mats[g])
                    gx_full[:, g * group_in : (g + 1) * group_in] = col2im(
                        gcols, (n, group_in, h, w), (kh, kw), stride, padding
                    )
            if gw_full is not None:
                weight._accumulate(gw_full)
            if gx_full is not None:
                x._accumulate(gx_full)

        out = Tensor._make(out_data, (x, weight), backward)

    if bias is not None:
        bias = as_tensor(bias)
        out = out + bias.reshape(1, -1, 1, 1)
    return out


# --------------------------------------------------------------------------- #
# Pooling
# --------------------------------------------------------------------------- #
def max_pool2d(x, kernel_size=2, stride=None):
    """Max pooling over non-overlapping (or strided) windows."""
    x = as_tensor(x)
    stride = stride or kernel_size
    n, c, h, w = x.data.shape
    out_h = (h - kernel_size) // stride + 1
    out_w = (w - kernel_size) // stride + 1
    cols = im2col(
        x.data.reshape(n * c, 1, h, w), (kernel_size, kernel_size), stride, 0
    )  # (N*C, oh, ow, k*k)
    argmax = cols.argmax(axis=-1)
    out_data = cols.max(axis=-1).reshape(n, c, out_h, out_w)

    def backward(grad):
        gcols = vjp.max_pool_cols_vjp(grad, argmax, kernel_size * kernel_size)
        gx = col2im(gcols, (n * c, 1, h, w), (kernel_size, kernel_size), stride, 0)
        x._accumulate(gx.reshape(n, c, h, w))

    return Tensor._make(out_data, (x,), backward)


def avg_pool2d(x, kernel_size=2, stride=None):
    """Average pooling over windows."""
    x = as_tensor(x)
    stride = stride or kernel_size
    n, c, h, w = x.data.shape
    out_h = (h - kernel_size) // stride + 1
    out_w = (w - kernel_size) // stride + 1
    cols = im2col(x.data.reshape(n * c, 1, h, w), (kernel_size, kernel_size), stride, 0)
    out_data = cols.mean(axis=-1).reshape(n, c, out_h, out_w)
    k2 = kernel_size * kernel_size

    def backward(grad):
        gcols = np.repeat(grad.reshape(n * c, out_h, out_w, 1), k2, axis=-1) / k2
        gx = col2im(gcols, (n * c, 1, h, w), (kernel_size, kernel_size), stride, 0)
        x._accumulate(gx.reshape(n, c, h, w))

    return Tensor._make(out_data, (x,), backward)


def global_avg_pool2d(x):
    """Average over the full spatial extent, returning ``(N, C)``."""
    x = as_tensor(x)
    return x.mean(axis=(2, 3))


# --------------------------------------------------------------------------- #
# Normalisation
# --------------------------------------------------------------------------- #
def batch_norm2d(x, gamma, beta, running_mean, running_var, training, momentum=0.1, eps=1e-5):
    """Batch normalisation over the channel dimension of an NCHW tensor.

    ``running_mean`` / ``running_var`` are plain NumPy arrays updated in place
    during training and used verbatim during evaluation.
    """
    x = as_tensor(x)
    gamma = as_tensor(gamma)
    beta = as_tensor(beta)
    if training:
        mean = x.mean(axis=(0, 2, 3), keepdims=True)
        var = x.var(axis=(0, 2, 3), keepdims=True)
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean.data.reshape(-1)
        running_var *= 1.0 - momentum
        running_var += momentum * var.data.reshape(-1)
    else:
        mean = Tensor(running_mean.reshape(1, -1, 1, 1))
        var = Tensor(running_var.reshape(1, -1, 1, 1))
    x_hat = (x - mean) / (var + eps).sqrt()
    return x_hat * gamma.reshape(1, -1, 1, 1) + beta.reshape(1, -1, 1, 1)


def dropout(x, p=0.5, training=True, rng=None):
    """Inverted dropout; identity when ``training`` is False or ``p == 0``."""
    x = as_tensor(x)
    if not training or p <= 0.0:
        return x
    rng = rng if rng is not None else np.random.default_rng()
    mask = (rng.random(x.data.shape) >= p).astype(np.float64) / (1.0 - p)

    def backward(grad):
        x._accumulate(grad * mask)

    return Tensor._make(x.data * mask, (x,), backward)


# --------------------------------------------------------------------------- #
# Softmax family
# --------------------------------------------------------------------------- #
def softmax(x, axis=-1):
    """Numerically stable softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x, axis=-1):
    """Numerically stable log-softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


# --------------------------------------------------------------------------- #
# Losses
# --------------------------------------------------------------------------- #
def mse_loss(prediction, target, reduction="mean"):
    """Mean-squared error; used by the value loss (Eq. 14) and critic distillation (Eq. 11)."""
    prediction = as_tensor(prediction)
    target = as_tensor(target)
    diff = prediction - target
    loss = diff * diff
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    return loss


def huber_loss(prediction, target, delta=1.0, reduction="mean"):
    """Huber (smooth-L1) loss, a robust alternative to MSE for value targets."""
    prediction = as_tensor(prediction)
    target = as_tensor(target)
    diff = prediction - target
    abs_diff = diff.abs()
    quadratic = abs_diff.clip(0.0, delta)
    linear = abs_diff - quadratic
    loss = quadratic * quadratic * 0.5 + linear * delta
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    return loss


def nll_loss(log_probs, targets, reduction="mean"):
    """Negative log likelihood given log-probabilities and integer targets."""
    log_probs = as_tensor(log_probs)
    targets = np.asarray(targets.data if isinstance(targets, Tensor) else targets, dtype=np.int64)
    n = log_probs.data.shape[0]
    mask = np.zeros_like(log_probs.data)
    mask[np.arange(n), targets] = -1.0
    picked = log_probs * Tensor(mask)
    loss = picked.sum(axis=-1)
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    return loss


def cross_entropy(logits, targets, reduction="mean"):
    """Cross-entropy between logits and integer class targets."""
    return nll_loss(log_softmax(logits, axis=-1), targets, reduction=reduction)


def kl_divergence(p_probs, q_log_probs, axis=-1, reduction="mean"):
    """KL(p || q) where ``p_probs`` are probabilities and ``q_log_probs`` log-probs.

    This is the actor-distillation loss of Eq. 10: the teacher distribution
    ``p`` is treated as a constant, so only gradients w.r.t. the student
    log-probabilities flow.
    """
    p_probs = as_tensor(p_probs).detach()
    q_log_probs = as_tensor(q_log_probs)
    p_log = Tensor(np.log(np.clip(p_probs.data, 1e-12, None)))
    per_sample = (p_probs * (p_log - q_log_probs)).sum(axis=axis)
    if reduction == "mean":
        return per_sample.mean()
    if reduction == "sum":
        return per_sample.sum()
    return per_sample


def entropy(probs, log_probs=None, axis=-1, reduction="mean"):
    """Shannon entropy of a categorical distribution (Eq. 15 uses its negation)."""
    probs = as_tensor(probs)
    if log_probs is None:
        log_probs = Tensor(np.log(np.clip(probs.data, 1e-12, None)))
    else:
        log_probs = as_tensor(log_probs)
    per_sample = -(probs * log_probs).sum(axis=axis)
    if reduction == "mean":
        return per_sample.mean()
    if reduction == "sum":
        return per_sample.sum()
    return per_sample
