"""Weight initialisation schemes for :mod:`repro.nn` modules."""

from __future__ import annotations

import numpy as np

__all__ = ["kaiming_uniform", "kaiming_normal", "xavier_uniform", "uniform_", "zeros", "ones", "orthogonal"]


def _fan_in_out(shape):
    """Compute fan-in / fan-out for linear and conv weight shapes."""
    if len(shape) == 2:
        fan_out, fan_in = shape
    elif len(shape) == 4:
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        fan_in = fan_out = int(np.prod(shape))
    return fan_in, fan_out


def kaiming_uniform(shape, rng, gain=np.sqrt(2.0)):
    """He/Kaiming uniform initialisation suited to ReLU networks."""
    fan_in, _ = _fan_in_out(shape)
    bound = gain * np.sqrt(3.0 / max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape)


def kaiming_normal(shape, rng, gain=np.sqrt(2.0)):
    """He/Kaiming normal initialisation."""
    fan_in, _ = _fan_in_out(shape)
    std = gain / np.sqrt(max(fan_in, 1))
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(shape, rng, gain=1.0):
    """Glorot/Xavier uniform initialisation."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = gain * np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-bound, bound, size=shape)


def uniform_(shape, rng, low=-0.1, high=0.1):
    """Plain uniform initialisation in ``[low, high]``."""
    return rng.uniform(low, high, size=shape)


def zeros(shape, rng=None):
    """All-zeros initialisation (biases, batch-norm beta)."""
    return np.zeros(shape)


def ones(shape, rng=None):
    """All-ones initialisation (batch-norm gamma)."""
    return np.ones(shape)


def orthogonal(shape, rng, gain=1.0):
    """Orthogonal initialisation, commonly used for RL policy/value heads."""
    flat_shape = (shape[0], int(np.prod(shape[1:])))
    a = rng.normal(0.0, 1.0, flat_shape)
    u, _, vt = np.linalg.svd(a, full_matrices=False)
    q = u if u.shape == flat_shape else vt
    return gain * q.reshape(shape)
