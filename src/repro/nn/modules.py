"""Module system (layers, containers) built on the autograd :class:`Tensor`.

This mirrors the subset of ``torch.nn`` that the A3C-S agents, supernets and
teachers need: parameter registration, train/eval modes, state-dict
(de)serialisation, and the standard layer zoo (Linear, Conv2d, BatchNorm2d,
activations, pooling, Sequential).
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from . import functional as F
from . import init
from .tensor import Tensor

__all__ = [
    "Parameter",
    "Module",
    "Sequential",
    "ModuleList",
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Flatten",
    "Identity",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Dropout",
]


class Parameter(Tensor):
    """A :class:`Tensor` that is registered as a learnable parameter.

    Parameters additionally carry a monotonically increasing :attr:`version`
    counter used by the compiled runtime's caches (cast-parameter buffers,
    folded conv-BN weights) to detect live updates without comparing array
    contents.  Any assignment to :attr:`data` — including augmented
    assignments like ``param.data -= update``, which is how the optimisers
    write back — bumps the version automatically.  Code that mutates the
    array *through* the reference (``param.data[...] = value``) must call
    :meth:`bump_version` afterwards; :meth:`Module.load_state_dict` does.
    """

    __slots__ = ("_version",)

    def __init__(self, data):
        self._version = 0
        super().__init__(data, requires_grad=True)

    @property
    def data(self):
        return Tensor.data.__get__(self, Parameter)

    @data.setter
    def data(self, value):
        Tensor.data.__set__(self, value)
        self._version += 1

    @property
    def version(self):
        """Counter incremented on every (sanctioned) mutation of ``data``."""
        return self._version

    def bump_version(self):
        """Mark ``data`` as mutated in place (invalidates runtime caches)."""
        self._version += 1


class Module:
    """Base class for all neural-network modules.

    Sub-modules and parameters assigned as attributes are registered
    automatically, enabling :meth:`parameters`, :meth:`state_dict` and
    recursive train/eval switching.
    """

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name, array):
        """Register a non-learnable persistent array (e.g. BN running stats)."""
        self._buffers[name] = array
        object.__setattr__(self, name, array)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix=""):
        """Yield ``(name, Parameter)`` pairs recursively."""
        for name, param in self._parameters.items():
            yield prefix + name, param
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix + mod_name + ".")

    def parameters(self):
        """Return the list of all parameters in this module tree."""
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix=""):
        """Yield ``(name, Module)`` pairs recursively, including self."""
        yield prefix.rstrip("."), self
        for mod_name, module in self._modules.items():
            yield from module.named_modules(prefix + mod_name + ".")

    def modules(self):
        """Return all modules in the tree (including self)."""
        return [m for _, m in self.named_modules()]

    def named_buffers(self, prefix=""):
        """Yield ``(name, ndarray)`` buffer pairs recursively."""
        for name, buf in self._buffers.items():
            yield prefix + name, buf
        for mod_name, module in self._modules.items():
            yield from module.named_buffers(prefix + mod_name + ".")

    def num_parameters(self):
        """Total number of scalar parameters."""
        return int(sum(p.data.size for p in self.parameters()))

    # ------------------------------------------------------------------ #
    # Modes
    # ------------------------------------------------------------------ #
    def train(self, mode=True):
        """Switch the module (and children) to training mode."""
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self):
        """Switch the module (and children) to evaluation mode."""
        return self.train(False)

    def zero_grad(self):
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------ #
    # State dict
    # ------------------------------------------------------------------ #
    def state_dict(self):
        """Return a flat ``{name: ndarray}`` snapshot of parameters and buffers."""
        state = OrderedDict()
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state["buffer." + name] = np.asarray(buf).copy()
        return state

    def load_state_dict(self, state):
        """Load a snapshot produced by :meth:`state_dict` (in place)."""
        params = dict(self.named_parameters())
        buffers = dict(self.named_buffers())
        buffers_loaded = False
        for name, value in state.items():
            if name.startswith("buffer."):
                buf_name = name[len("buffer."):]
                if buf_name in buffers:
                    buffers[buf_name][...] = value
                    buffers_loaded = True
            elif name in params:
                if params[name].data.shape != value.shape:
                    raise ValueError(
                        "shape mismatch for parameter {}: {} vs {}".format(
                            name, params[name].data.shape, value.shape
                        )
                    )
                params[name].data[...] = value
                params[name].bump_version()
        if buffers_loaded:
            for _, module in self.named_modules():
                bump = getattr(module, "bump_stats_version", None)
                if bump is not None:
                    bump()
        return self

    def copy_weights_from(self, other):
        """Copy parameters from another module with the same structure."""
        self.load_state_dict(other.state_dict())
        return self

    # ------------------------------------------------------------------ #
    # Call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Run sub-modules in order, feeding each one the previous output."""

    def __init__(self, *layers):
        super().__init__()
        self._layers = []
        for i, layer in enumerate(layers):
            setattr(self, "layer{}".format(i), layer)
            self._layers.append(layer)

    def __iter__(self):
        return iter(self._layers)

    def __len__(self):
        return len(self._layers)

    def __getitem__(self, index):
        return self._layers[index]

    def append(self, layer):
        """Append a layer to the sequence."""
        setattr(self, "layer{}".format(len(self._layers)), layer)
        self._layers.append(layer)
        return self

    def forward(self, x):
        for layer in self._layers:
            x = layer(x)
        return x


class ModuleList(Module):
    """A list container whose elements are registered sub-modules."""

    def __init__(self, modules=()):
        super().__init__()
        self._items = []
        for module in modules:
            self.append(module)

    def append(self, module):
        """Append and register a module."""
        setattr(self, "item{}".format(len(self._items)), module)
        self._items.append(module)
        return self

    def __iter__(self):
        return iter(self._items)

    def __len__(self):
        return len(self._items)

    def __getitem__(self, index):
        return self._items[index]

    def forward(self, *args, **kwargs):  # pragma: no cover - containers are not called
        raise RuntimeError("ModuleList is a container and cannot be called directly")


class Linear(Module):
    """Fully-connected layer ``y = x W^T + b``."""

    def __init__(self, in_features, out_features, bias=True, rng=None, init_scheme="kaiming"):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        if init_scheme == "orthogonal":
            weight = init.orthogonal((out_features, in_features), rng)
        elif init_scheme == "xavier":
            weight = init.xavier_uniform((out_features, in_features), rng)
        else:
            weight = init.kaiming_uniform((out_features, in_features), rng)
        self.weight = Parameter(weight)
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x):
        return F.linear(x, self.weight, self.bias)

    def __repr__(self):
        return "Linear({}, {})".format(self.in_features, self.out_features)


class Conv2d(Module):
    """2-D convolution layer with optional groups (depthwise supported)."""

    def __init__(
        self,
        in_channels,
        out_channels,
        kernel_size,
        stride=1,
        padding=0,
        groups=1,
        bias=True,
        rng=None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        shape = (out_channels, in_channels // groups, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_uniform(shape, rng))
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x):
        return F.conv2d(
            x, self.weight, self.bias, stride=self.stride, padding=self.padding, groups=self.groups
        )

    def output_spatial(self, size):
        """Spatial output size for an input of spatial ``size``."""
        return F.conv_output_size(size, self.kernel_size, self.stride, self.padding)

    def __repr__(self):
        return "Conv2d({}, {}, k={}, s={}, p={}, g={})".format(
            self.in_channels,
            self.out_channels,
            self.kernel_size,
            self.stride,
            self.padding,
            self.groups,
        )


class BatchNorm2d(Module):
    """Batch normalisation for NCHW feature maps with running statistics.

    The running buffers carry a :attr:`stats_version` counter (mirroring
    :attr:`Parameter.version`) bumped by every sanctioned in-place update —
    train-mode forwards and ``load_state_dict`` — so the runtime's folded
    conv-BN weights can validate against an integer instead of comparing
    buffer contents per run.
    """

    def __init__(self, num_features, momentum=0.1, eps=1e-5):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))
        self.stats_version = 0

    def bump_stats_version(self):
        """Mark the running buffers as mutated in place."""
        self.stats_version += 1

    def forward(self, x):
        if self.training:
            self.bump_stats_version()
        return F.batch_norm2d(
            x,
            self.gamma,
            self.beta,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )

    def __repr__(self):
        return "BatchNorm2d({})".format(self.num_features)


class ReLU(Module):
    """Elementwise ReLU layer."""

    def forward(self, x):
        return F.relu(x)


class LeakyReLU(Module):
    """Elementwise leaky ReLU layer."""

    def __init__(self, negative_slope=0.01):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x):
        return F.leaky_relu(x, self.negative_slope)


class Tanh(Module):
    """Elementwise tanh layer."""

    def forward(self, x):
        return F.tanh(x)


class Sigmoid(Module):
    """Elementwise sigmoid layer."""

    def forward(self, x):
        return F.sigmoid(x)


class Flatten(Module):
    """Flatten all non-batch dimensions."""

    def forward(self, x):
        return x.flatten(start_dim=1)


class Identity(Module):
    """Pass-through layer (used by skip-connection operator candidates)."""

    def forward(self, x):
        return x


class MaxPool2d(Module):
    """Max pooling layer."""

    def __init__(self, kernel_size=2, stride=None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x):
        return F.max_pool2d(x, self.kernel_size, self.stride)


class AvgPool2d(Module):
    """Average pooling layer."""

    def __init__(self, kernel_size=2, stride=None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x):
        return F.avg_pool2d(x, self.kernel_size, self.stride)


class GlobalAvgPool2d(Module):
    """Global average pooling producing ``(N, C)`` features."""

    def forward(self, x):
        return F.global_avg_pool2d(x)


class Dropout(Module):
    """Inverted dropout layer (identity in eval mode)."""

    def __init__(self, p=0.5, rng=None):
        super().__init__()
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def forward(self, x):
        return F.dropout(x, self.p, training=self.training, rng=self._rng)
