"""Optimisers and learning-rate schedules.

The paper trains DRL agents with RMSProp (initial LR 1e-3, constant for the
first third of training then linearly decayed to 1e-4) and updates the
architecture parameters alpha with Adam (LR 1e-3).  Both optimisers, plus
plain SGD with momentum and the linear-decay schedule, are implemented here.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Optimizer",
    "SGD",
    "RMSProp",
    "Adam",
    "LinearDecaySchedule",
    "ConstantSchedule",
    "StepDecaySchedule",
    "clip_grad_norm",
]


def clip_grad_norm(parameters, max_norm):
    """Clip the global L2 norm of gradients in place.

    Returns the pre-clipping norm so callers can log it; gradient clipping is
    a standard stabiliser for A2C-style training.
    """
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    total = float(np.sqrt(sum(float((g ** 2).sum()) for g in grads)))
    if max_norm is not None and total > max_norm and total > 0.0:
        scale = max_norm / (total + 1e-12)
        for param in parameters:
            if param.grad is not None:
                param.grad = param.grad * scale
    return total


class Optimizer:
    """Base optimiser: holds parameters and per-parameter state.

    Two update entry points share the same state and can be interleaved:

    * :meth:`step` — the eager path, reading ``param.grad`` tensors filled by
      the autograd tape;
    * :meth:`apply_gradients` — the fused path used by the compiled training
      runtime: takes raw gradient arrays (the plan's pre-allocated buffers),
      applies global-norm clipping in place, and updates parameters through a
      single reusable scratch buffer instead of materialising intermediate
      tensors.
    """

    def __init__(self, parameters, lr):
        self.parameters = list(parameters)
        self.lr = float(lr)
        self.steps = 0
        self._scratch_buf = None

    def zero_grad(self):
        """Clear gradients on all managed parameters."""
        for param in self.parameters:
            param.zero_grad()

    def step(self):
        """Apply one update using the accumulated gradients."""
        raise NotImplementedError

    def set_lr(self, lr):
        """Update the learning rate (used by schedules)."""
        self.lr = float(lr)

    # ------------------------------------------------------------------ #
    # Fused in-place update path (compiled training runtime)
    # ------------------------------------------------------------------ #
    def apply_gradients(self, grads, max_norm=None, skip_nonfinite=False):
        """Clip and apply raw gradient arrays in one fused, in-place pass.

        Parameters
        ----------
        grads:
            Gradient arrays aligned with :attr:`parameters`; ``None`` entries
            are skipped (parameters untouched by the compiled plan, exactly
            like ``param.grad is None`` on the eager path).  The arrays are
            mutated in place by clipping — they are plan-owned buffers that
            get re-zeroed before the next backward.
        max_norm:
            Optional global L2-norm bound (the trainers' grad clipping).
        skip_nonfinite:
            When True and the global norm is NaN/Inf, return without clipping
            or applying anything — parameters and optimiser state are left
            untouched.  The check costs nothing extra: any non-finite grad
            entry propagates into the norm already computed for logging.
            (The check must precede clipping: an Inf norm would otherwise
            scale every grad to ~0 and "apply" a silent no-op-ish update.)

        Returns
        -------
        The pre-clipping global gradient norm, for logging.  Callers using
        ``skip_nonfinite`` detect a skipped update by the norm being
        non-finite.
        """
        grads = list(grads)
        if len(grads) != len(self.parameters):
            raise ValueError(
                "expected {} gradient arrays, got {}".format(len(self.parameters), len(grads))
            )
        total = float(np.sqrt(sum(float(np.vdot(g, g)) for g in grads if g is not None)))
        if skip_nonfinite and not np.isfinite(total):
            return total
        if max_norm is not None and total > max_norm and total > 0.0:
            scale = max_norm / (total + 1e-12)
            for grad in grads:
                if grad is not None:
                    grad *= scale
        self._apply(grads)
        return total

    def _apply(self, grads):
        """Subclass hook: consume aligned gradient arrays in place."""
        raise NotImplementedError

    def _scratch(self, shape):
        """A float64 scratch view of ``shape`` (one buffer reused across params)."""
        size = int(np.prod(shape))
        if self._scratch_buf is None or self._scratch_buf.size < size:
            self._scratch_buf = np.empty(size, dtype=np.float64)
        return self._scratch_buf[:size].reshape(shape)

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def _state_buffers(self):
        """Subclass hook: the per-parameter state arrays, in a fixed order."""
        return []

    def state_dict(self):
        """Snapshot of learning rate, step count, and per-parameter state."""
        state = {"lr": np.float64(self.lr), "steps": np.int64(self.steps)}
        for i, buf in enumerate(self._state_buffers()):
            state["state{}".format(i)] = buf.copy()
        return state

    def load_state_dict(self, state):
        """Restore a snapshot produced by :meth:`state_dict` (in place).

        Raises ``KeyError`` on missing state entries (and the usual NumPy
        shape error on mismatched buffers): a half-restored optimiser would
        train subtly wrong, so mismatches fail loudly.
        """
        self.lr = float(state["lr"])
        self.steps = int(state["steps"])
        for i, buf in enumerate(self._state_buffers()):
            key = "state{}".format(i)
            if key not in state:
                raise KeyError(
                    "optimizer checkpoint is missing {!r}: state was saved from a "
                    "different optimizer configuration".format(key)
                )
            buf[...] = state[key]
        return self


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters, lr=0.01, momentum=0.0, weight_decay=0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self):
        self.steps += 1
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data -= self.lr * update

    def _apply(self, grads):
        self.steps += 1
        for param, velocity, grad in zip(self.parameters, self._velocity, grads):
            if grad is None:
                continue
            ws = self._scratch(param.data.shape)
            np.multiply(grad, 1.0, out=ws)
            if self.weight_decay:
                ws += self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += ws
                np.multiply(velocity, self.lr, out=ws)
            else:
                ws *= self.lr
            param.data -= ws

    def _state_buffers(self):
        return list(self._velocity)


class RMSProp(Optimizer):
    """RMSProp as used by the Nature DQN / A3C line of work.

    Uses the "centered=False" variant with a shared epsilon, matching the
    optimiser the paper inherits from [1] (Mnih et al.).
    """

    def __init__(self, parameters, lr=1e-3, alpha=0.99, eps=1e-5, weight_decay=0.0):
        super().__init__(parameters, lr)
        self.alpha = alpha
        self.eps = eps
        self.weight_decay = weight_decay
        self._square_avg = [np.zeros_like(p.data) for p in self.parameters]

    def step(self):
        self.steps += 1
        for param, square_avg in zip(self.parameters, self._square_avg):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            square_avg *= self.alpha
            square_avg += (1.0 - self.alpha) * grad * grad
            param.data -= self.lr * grad / (np.sqrt(square_avg) + self.eps)

    def _apply(self, grads):
        """Fused in-place RMSProp: one scratch buffer, zero intermediate tensors."""
        self.steps += 1
        for param, square_avg, grad in zip(self.parameters, self._square_avg, grads):
            if grad is None:
                continue
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            ws = self._scratch(param.data.shape)
            np.multiply(grad, grad, out=ws)
            ws *= 1.0 - self.alpha
            square_avg *= self.alpha
            square_avg += ws
            np.sqrt(square_avg, out=ws)
            ws += self.eps
            np.divide(grad, ws, out=ws)
            ws *= self.lr
            param.data -= ws

    def _state_buffers(self):
        return list(self._square_avg)


class Adam(Optimizer):
    """Adam optimiser; used for the architecture parameters alpha (Sec. V-A)."""

    def __init__(self, parameters, lr=1e-3, betas=(0.9, 0.999), eps=1e-8, weight_decay=0.0):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self):
        self.steps += 1
        bias1 = 1.0 - self.beta1 ** self.steps
        bias2 = 1.0 - self.beta2 ** self.steps
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def _apply(self, grads):
        self.steps += 1
        bias1 = 1.0 - self.beta1 ** self.steps
        bias2 = 1.0 - self.beta2 ** self.steps
        for param, m, v, grad in zip(self.parameters, self._m, self._v, grads):
            if grad is None:
                continue
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            ws = self._scratch(param.data.shape)
            np.multiply(grad, grad, out=ws)
            ws *= 1.0 - self.beta2
            v *= self.beta2
            v += ws
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            np.divide(v, bias2, out=ws)
            np.sqrt(ws, out=ws)
            ws += self.eps
            np.divide(m, ws, out=ws)
            ws *= self.lr / bias1
            param.data -= ws

    def _state_buffers(self):
        return list(self._m) + list(self._v)


class ConstantSchedule:
    """A learning-rate schedule that never changes."""

    def __init__(self, lr):
        self.lr = float(lr)

    def value(self, step):
        """Learning rate at ``step``."""
        return self.lr


class LinearDecaySchedule:
    """Paper schedule: constant LR until ``hold_steps`` then linear decay.

    The paper keeps 1e-3 for the first 1e7 steps of a 3e7-step run, then
    decays linearly to 1e-4 by the final step.
    """

    def __init__(self, initial_lr=1e-3, final_lr=1e-4, hold_steps=int(1e7), total_steps=int(3e7)):
        if total_steps <= hold_steps:
            raise ValueError("total_steps must exceed hold_steps")
        self.initial_lr = float(initial_lr)
        self.final_lr = float(final_lr)
        self.hold_steps = int(hold_steps)
        self.total_steps = int(total_steps)

    def value(self, step):
        """Learning rate at environment step ``step``."""
        if step <= self.hold_steps:
            return self.initial_lr
        fraction = min(1.0, (step - self.hold_steps) / (self.total_steps - self.hold_steps))
        return self.initial_lr + fraction * (self.final_lr - self.initial_lr)

    def apply(self, optimizer, step):
        """Set the optimiser learning rate for the given step and return it."""
        lr = self.value(step)
        optimizer.set_lr(lr)
        return lr


class StepDecaySchedule:
    """Multiply the learning rate by ``gamma`` every ``step_size`` steps."""

    def __init__(self, initial_lr, step_size, gamma=0.5, min_lr=0.0):
        self.initial_lr = float(initial_lr)
        self.step_size = int(step_size)
        self.gamma = float(gamma)
        self.min_lr = float(min_lr)

    def value(self, step):
        """Learning rate at ``step``."""
        decays = step // self.step_size
        return max(self.min_lr, self.initial_lr * (self.gamma ** decays))

    def apply(self, optimizer, step):
        """Set the optimiser learning rate for the given step and return it."""
        lr = self.value(step)
        optimizer.set_lr(lr)
        return lr
