"""Saving and loading module state dicts to ``.npz`` files.

Checkpoint writes are *atomic*: the archive is written to a temporary file in
the destination directory, fsynced, and ``os.replace``d over the target, so a
crash (or SIGKILL) mid-write can never corrupt the previous checkpoint — the
invariant the autosave/rollback machinery in the trainers depends on.
Corrupt, truncated, or mismatched checkpoints surface as
:class:`CheckpointError` naming the path (and the missing/extra keys for
shape/key validation), never as raw ``KeyError`` / zipfile noise.
"""

from __future__ import annotations

import os
import tempfile
import zipfile

import numpy as np

__all__ = [
    "CheckpointError",
    "save_state_dict",
    "load_state_dict",
    "validate_state",
    "save_module",
    "load_module",
]


class CheckpointError(RuntimeError):
    """A checkpoint could not be read or does not match the expected state."""


def save_state_dict(state_dict, path):
    """Atomically write a ``{name: ndarray}`` state dict to a ``.npz`` file.

    The write lands in a temp file next to ``path`` first (same filesystem,
    so the final ``os.replace`` is atomic), is flushed and fsynced, then
    renamed over the target; the directory entry is fsynced afterwards.  A
    reader therefore always sees either the old complete checkpoint or the
    new complete checkpoint, never a partial file.
    """
    path = os.path.abspath(path)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    arrays = {key: np.asarray(value) for key, value in state_dict.items()}
    fd, temp_path = tempfile.mkstemp(dir=directory, prefix=os.path.basename(path) + ".tmp.")
    try:
        with os.fdopen(fd, "wb") as handle:
            # Passing the open handle (not a name) stops numpy appending
            # ".npz" to the extensionless temp path.
            np.savez_compressed(handle, **arrays)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    try:
        dir_fd = os.open(directory or ".", os.O_RDONLY)
    except OSError:
        return path
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)
    return path


def load_state_dict(path):
    """Load a state dict previously written by :func:`save_state_dict`.

    Raises :class:`CheckpointError` (naming the path) on missing, truncated,
    or corrupt files instead of leaking raw zipfile / numpy exceptions.
    """
    if not os.path.exists(path):
        raise CheckpointError("checkpoint {!r} does not exist".format(str(path)))
    try:
        with np.load(path, allow_pickle=False) as data:
            return {key: data[key] for key in data.files}
    except CheckpointError:
        raise
    except (zipfile.BadZipFile, ValueError, OSError, EOFError, KeyError) as error:
        raise CheckpointError(
            "checkpoint {!r} is truncated or corrupt: {}".format(str(path), error)
        ) from error


def validate_state(state, reference, path="<checkpoint>"):
    """Check a loaded ``state`` against a ``reference`` state dict.

    ``reference`` maps the expected keys to arrays of the expected shapes
    (typically the consumer's *current* ``state_dict()``).  Missing keys,
    unexpected extra keys, and shape mismatches raise :class:`CheckpointError`
    naming the path and every offending key — *before* any state is mutated,
    so a bad checkpoint can never half-restore a trainer.
    """
    missing = sorted(set(reference) - set(state))
    extra = sorted(set(state) - set(reference))
    if missing or extra:
        raise CheckpointError(
            "checkpoint {!r} does not match the expected state: missing keys {}, "
            "unexpected keys {}".format(str(path), missing or "none", extra or "none")
        )
    mismatched = [
        "{} (checkpoint {} vs expected {})".format(
            key, np.asarray(state[key]).shape, np.asarray(reference[key]).shape
        )
        for key in reference
        if np.asarray(state[key]).shape != np.asarray(reference[key]).shape
    ]
    if mismatched:
        raise CheckpointError(
            "checkpoint {!r} has mismatched shapes: {}".format(
                str(path), "; ".join(sorted(mismatched))
            )
        )
    return state


def save_module(module, path):
    """Persist a module's parameters and buffers to disk."""
    return save_state_dict(module.state_dict(), path)


def load_module(module, path):
    """Load parameters and buffers from disk into ``module`` (in place)."""
    module.load_state_dict(load_state_dict(path))
    return module
