"""Saving and loading module state dicts to ``.npz`` files."""

from __future__ import annotations

import os

import numpy as np

__all__ = ["save_state_dict", "load_state_dict", "save_module", "load_module"]


def save_state_dict(state_dict, path):
    """Write a ``{name: ndarray}`` state dict to a compressed ``.npz`` file."""
    directory = os.path.dirname(os.path.abspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    np.savez_compressed(path, **{k: np.asarray(v) for k, v in state_dict.items()})
    return path


def load_state_dict(path):
    """Load a state dict previously written by :func:`save_state_dict`."""
    with np.load(path) as data:
        return {key: data[key] for key in data.files}


def save_module(module, path):
    """Persist a module's parameters and buffers to disk."""
    return save_state_dict(module.state_dict(), path)


def load_module(module, path):
    """Load parameters and buffers from disk into ``module`` (in place)."""
    module.load_state_dict(load_state_dict(path))
    return module
