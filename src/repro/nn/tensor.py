"""Reverse-mode automatic differentiation on NumPy arrays.

This module is the foundation of the :mod:`repro.nn` substrate.  The paper's
experiments rely on PyTorch; this reproduction rebuilds the minimal but
complete autograd engine the A3C-S algorithms need: a :class:`Tensor` that
records the operations applied to it and can back-propagate gradients through
arbitrary DAGs of those operations.

The design follows the classic "tape of nodes" approach:

* every differentiable operation creates a new :class:`Tensor` whose
  ``_parents`` reference the input tensors and whose ``_backward`` closure
  knows how to push the output gradient onto each parent's ``grad``;
* :meth:`Tensor.backward` topologically sorts the graph and runs the closures
  in reverse order.

Broadcasting is fully supported: gradients flowing into a broadcast operand
are reduced (summed) back to the operand's shape by :func:`unbroadcast`.
"""

from __future__ import annotations

import numpy as np

from . import vjp

__all__ = ["Tensor", "unbroadcast", "as_tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = [True]


class no_grad:
    """Context manager that disables gradient tracking.

    Mirrors ``torch.no_grad``: operations performed inside the block produce
    tensors with ``requires_grad=False`` and do not record parents, which
    keeps rollout collection and evaluation cheap.
    """

    def __enter__(self):
        self._prev = _GRAD_ENABLED[0]
        _GRAD_ENABLED[0] = False
        return self

    def __exit__(self, exc_type, exc, tb):
        _GRAD_ENABLED[0] = self._prev
        return False


def is_grad_enabled():
    """Return ``True`` when operations should record the autograd graph."""
    return _GRAD_ENABLED[0]


def unbroadcast(grad, shape):
    """Reduce ``grad`` so that it matches ``shape``.

    When an operand was broadcast during the forward pass, the gradient
    arriving at the operand has the broadcast (larger) shape.  Summing over
    the broadcast axes recovers the gradient of the original operand.

    Parameters
    ----------
    grad:
        Gradient with the broadcast output shape.
    shape:
        The shape of the original operand.
    """
    if grad.shape == tuple(shape):
        return grad
    # Sum over leading axes that were added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were size-1 in the operand but expanded in the output.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def as_tensor(value, requires_grad=False):
    """Coerce ``value`` into a :class:`Tensor` (no copy if already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


class Tensor:
    """A NumPy-backed array with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Anything convertible to a ``numpy.ndarray`` of ``float64``.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` for this
        tensor during :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")

    def __init__(self, data, requires_grad=False, _parents=(), _backward=None, name=None):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad = None
        self._parents = tuple(_parents) if is_grad_enabled() else ()
        self._backward = _backward if is_grad_enabled() else None
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic protocol
    # ------------------------------------------------------------------ #
    @property
    def shape(self):
        return self.data.shape

    @property
    def ndim(self):
        return self.data.ndim

    @property
    def size(self):
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self):
        return self.transpose()

    def __len__(self):
        return len(self.data)

    def __repr__(self):
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return "Tensor(shape={}, data={}{})".format(self.shape, self.data, grad_flag)

    def item(self):
        """Return the single scalar held by this tensor as a Python float."""
        return float(self.data)

    def numpy(self):
        """Return the underlying ``numpy.ndarray`` (no copy)."""
        return self.data

    def detach(self):
        """Return a new tensor sharing data but severed from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self):
        """Return a detached deep copy of this tensor."""
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self):
        """Reset the accumulated gradient to ``None``."""
        self.grad = None

    # ------------------------------------------------------------------ #
    # Graph construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def _make(cls, data, parents, backward):
        """Create a result tensor, wiring the graph only when needed."""
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = cls(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad):
        """Accumulate ``grad`` into this tensor's ``grad`` buffer."""
        if not self.requires_grad:
            return
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            grad = unbroadcast(grad, self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad=None):
        """Back-propagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of some scalar objective w.r.t. this tensor.  Defaults to
            ``1.0`` which requires this tensor to be a scalar.
        """
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "backward() without an explicit gradient requires a scalar "
                    "tensor, got shape {}".format(self.shape)
                )
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)

        # Topological order over the reachable graph.
        topo = []
        visited = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # Elementwise arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other):
        other = as_tensor(other)

        def backward(grad):
            self._accumulate(grad)
            other._accumulate(grad)

        return Tensor._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __sub__(self, other):
        other = as_tensor(other)

        def backward(grad):
            self._accumulate(grad)
            other._accumulate(-grad)

        return Tensor._make(self.data - other.data, (self, other), backward)

    def __rsub__(self, other):
        return as_tensor(other).__sub__(self)

    def __mul__(self, other):
        other = as_tensor(other)

        def backward(grad):
            self._accumulate(grad * other.data)
            other._accumulate(grad * self.data)

        return Tensor._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = as_tensor(other)

        def backward(grad):
            self._accumulate(grad / other.data)
            other._accumulate(-grad * self.data / (other.data ** 2))

        return Tensor._make(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other):
        return as_tensor(other).__truediv__(self)

    def __neg__(self):
        def backward(grad):
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __pow__(self, exponent):
        if isinstance(exponent, Tensor):
            exponent = float(exponent.data)
        exponent = float(exponent)

        def backward(grad):
            self._accumulate(grad * exponent * np.power(self.data, exponent - 1))

        return Tensor._make(np.power(self.data, exponent), (self,), backward)

    # Comparison operators return plain boolean arrays (non-differentiable).
    def __gt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data > other

    def __lt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data < other

    def __ge__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data >= other

    def __le__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data <= other

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape

        def backward(grad):
            self._accumulate(grad.reshape(original))

        return Tensor._make(self.data.reshape(shape), (self,), backward)

    def flatten(self, start_dim=1):
        """Flatten dimensions from ``start_dim`` onward (batch-preserving)."""
        shape = self.data.shape
        new_shape = shape[:start_dim] + (-1,)
        return self.reshape(*new_shape)

    def transpose(self, *axes):
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)

        def backward(grad):
            self._accumulate(np.transpose(grad, inverse))

        return Tensor._make(np.transpose(self.data, axes), (self,), backward)

    def __getitem__(self, index):
        if isinstance(index, Tensor):
            index = index.data.astype(np.int64)

        def backward(grad):
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(self.data[index], (self,), backward)

    def pad2d(self, padding):
        """Zero-pad the last two (spatial) dimensions by ``padding`` pixels."""
        if padding == 0:
            return self
        pad_width = [(0, 0)] * (self.data.ndim - 2) + [(padding, padding), (padding, padding)]

        def backward(grad):
            slices = tuple(
                slice(p[0], grad.shape[i] - p[1]) for i, p in enumerate(pad_width)
            )
            self._accumulate(grad[slices])

        return Tensor._make(np.pad(self.data, pad_width), (self,), backward)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims=False):
        def backward(grad):
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._make(self.data.sum(axis=axis, keepdims=keepdims), (self,), backward)

    def mean(self, axis=None, keepdims=False):
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]

        def backward(grad):
            g = grad / count
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._make(self.data.mean(axis=axis, keepdims=keepdims), (self,), backward)

    def max(self, axis=None, keepdims=False):
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            g = grad
            expanded = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                expanded = np.expand_dims(out_data, axis=axis)
            mask = (self.data == expanded).astype(np.float64)
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            self._accumulate(mask * g)

        return Tensor._make(out_data, (self,), backward)

    def var(self, axis=None, keepdims=False):
        """Population variance (ddof=0), differentiable."""
        mu = self.mean(axis=axis, keepdims=True)
        diff = self - mu
        return (diff * diff).mean(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------ #
    # Elementwise math used throughout the library
    # ------------------------------------------------------------------ #
    def exp(self):
        out_data = np.exp(self.data)

        def backward(grad):
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self):
        def backward(grad):
            self._accumulate(grad / self.data)

        return Tensor._make(np.log(self.data), (self,), backward)

    def sqrt(self):
        out_data = np.sqrt(self.data)

        def backward(grad):
            self._accumulate(grad * 0.5 / np.maximum(out_data, 1e-12))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self):
        out_data = np.tanh(self.data)

        def backward(grad):
            self._accumulate(vjp.tanh_vjp(grad, out_data))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self):
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad):
            self._accumulate(vjp.sigmoid_vjp(grad, out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self):
        out_data = np.maximum(self.data, 0.0)

        def backward(grad):
            self._accumulate(vjp.relu_vjp(grad, out_data))

        return Tensor._make(out_data, (self,), backward)

    def clip(self, low, high):
        mask = ((self.data >= low) & (self.data <= high)).astype(np.float64)

        def backward(grad):
            self._accumulate(grad * mask)

        return Tensor._make(np.clip(self.data, low, high), (self,), backward)

    def abs(self):
        sign = np.sign(self.data)

        def backward(grad):
            self._accumulate(grad * sign)

        return Tensor._make(np.abs(self.data), (self,), backward)

    # ------------------------------------------------------------------ #
    # Linear algebra
    # ------------------------------------------------------------------ #
    def matmul(self, other):
        other = as_tensor(other)
        a, b = self.data, other.data

        def backward(grad):
            ga, gb = vjp.matmul_vjp(grad, a, b)
            self._accumulate(ga)
            other._accumulate(gb)

        return Tensor._make(np.matmul(a, b), (self, other), backward)

    __matmul__ = matmul

    # ------------------------------------------------------------------ #
    # Graph composition helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def stack(tensors, axis=0):
        """Stack tensors along a new ``axis`` (differentiable)."""
        tensors = [as_tensor(t) for t in tensors]
        data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad):
            pieces = np.split(grad, len(tensors), axis=axis)
            for tensor, piece in zip(tensors, pieces):
                tensor._accumulate(np.squeeze(piece, axis=axis))

        return Tensor._make(data, tuple(tensors), backward)

    @staticmethod
    def concatenate(tensors, axis=0):
        """Concatenate tensors along an existing ``axis`` (differentiable)."""
        tensors = [as_tensor(t) for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad):
            for i, tensor in enumerate(tensors):
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(offsets[i], offsets[i + 1])
                tensor._accumulate(grad[tuple(slicer)])

        return Tensor._make(data, tuple(tensors), backward)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def zeros(cls, shape, requires_grad=False):
        return cls(np.zeros(shape), requires_grad=requires_grad)

    @classmethod
    def ones(cls, shape, requires_grad=False):
        return cls(np.ones(shape), requires_grad=requires_grad)

    @classmethod
    def randn(cls, shape, rng=None, scale=1.0, requires_grad=False):
        rng = rng if rng is not None else np.random.default_rng()
        return cls(rng.standard_normal(shape) * scale, requires_grad=requires_grad)
