"""Vector-Jacobian products shared by the eager tape and the compiled runtime.

Historically every backward rule lived inside a closure captured by the
:class:`~repro.nn.tensor.Tensor` op that created it (or by a free function in
:mod:`repro.nn.functional`), which made the rules impossible to reuse: the
compiled training runtime (:mod:`repro.runtime`) needs the exact same math,
but applied to pre-allocated gradient buffers instead of freshly allocated
arrays.  This module extracts those rules into free functions with optional
``out=`` workspaces:

* the eager closures call them without workspaces (allocating, as before);
* the reverse-mode plan steps call them with plan-owned buffers, keeping the
  training hot path allocation-free.

Every function computes a VJP: given the gradient of some scalar loss with
respect to an op's *output*, it returns the gradient(s) with respect to the
op's inputs (and parameters).  Activation VJPs are expressed in terms of the
forward *output* (not the input), which is what both engines have at hand.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "VJP_REGISTRY",
    "register_vjp",
    "relu_vjp",
    "leaky_relu_vjp",
    "tanh_vjp",
    "sigmoid_vjp",
    "activation_vjp",
    "matmul_vjp",
    "linear_vjp",
    "conv2d_cols_vjp",
    "col2im_nchw_accumulate",
    "batchnorm2d_vjp",
    "softmax_vjp",
    "max_pool_cols_vjp",
    "global_avg_pool_vjp",
]

#: Name -> VJP function, so engines (and tests) can enumerate the supported rules.
VJP_REGISTRY = {}


def register_vjp(name):
    """Class decorator registering a VJP function under ``name``."""

    def decorator(fn):
        VJP_REGISTRY[name] = fn
        return fn

    return decorator


# --------------------------------------------------------------------------- #
# Activations (output-based: usable after the forward buffer was overwritten
# by the activation itself)
# --------------------------------------------------------------------------- #
@register_vjp("relu")
def relu_vjp(grad, out, into=None):
    """``d relu`` from the post-activation output (``out > 0`` <=> input > 0)."""
    if into is None:
        return grad * (out > 0)
    np.multiply(grad, out > 0, out=into)
    return into


@register_vjp("leaky_relu")
def leaky_relu_vjp(grad, out, negative_slope=0.01, into=None):
    """``d leaky_relu``; the output sign matches the input sign for slope > 0."""
    scale = np.where(out > 0, 1.0, negative_slope)
    if into is None:
        return grad * scale
    np.multiply(grad, scale, out=into)
    return into


@register_vjp("tanh")
def tanh_vjp(grad, out, into=None):
    """``d tanh = 1 - out**2``."""
    if into is None:
        return grad * (1.0 - out ** 2)
    np.multiply(grad, 1.0 - out ** 2, out=into)
    return into


@register_vjp("sigmoid")
def sigmoid_vjp(grad, out, into=None):
    """``d sigmoid = out * (1 - out)``."""
    if into is None:
        return grad * out * (1.0 - out)
    np.multiply(grad, out * (1.0 - out), out=into)
    return into


def activation_vjp(kind, out, grad):
    """Apply the VJP of a fused-activation tag *in place* on ``grad``.

    ``kind`` uses the compiler's fused-activation vocabulary: ``None`` (no
    activation), ``"relu"``, ``"tanh"``, ``"sigmoid"``, or
    ``("leaky_relu", slope)``.
    """
    if kind is None:
        return grad
    if kind == "relu":
        return relu_vjp(grad, out, into=grad)
    if kind == "tanh":
        return tanh_vjp(grad, out, into=grad)
    if kind == "sigmoid":
        return sigmoid_vjp(grad, out, into=grad)
    if isinstance(kind, tuple) and kind[0] == "leaky_relu":
        return leaky_relu_vjp(grad, out, negative_slope=kind[1], into=grad)
    raise ValueError("unknown activation {!r}".format(kind))


# --------------------------------------------------------------------------- #
# Linear algebra
# --------------------------------------------------------------------------- #
@register_vjp("matmul")
def matmul_vjp(grad, a, b):
    """Gradients of ``a @ b`` w.r.t. both operands (2-D or batched)."""
    if a.ndim == 2 and b.ndim == 2:
        return grad @ b.T, a.T @ grad
    return (
        np.matmul(grad, np.swapaxes(b, -1, -2)),
        np.matmul(np.swapaxes(a, -1, -2), grad),
    )


@register_vjp("linear")
def linear_vjp(grad, x, weight, gx_out=None, gw_out=None):
    """Gradients of ``x @ weight.T + bias``.

    Returns ``(gx, gw, gb)``; ``gx``/``gw`` are written into the provided
    workspaces when given (the bias gradient is always a fresh small array).
    """
    gw = np.matmul(grad.T, x, out=gw_out)
    gx = np.matmul(grad, weight, out=gx_out)
    return gx, gw, grad.sum(axis=0)


# --------------------------------------------------------------------------- #
# Convolution
# --------------------------------------------------------------------------- #
@register_vjp("conv2d_weight")
def conv2d_weight_vjp(grad_mat, cols):
    """Weight gradient of the channels-last im2col GEMM used by the eager engine.

    ``grad_mat`` is ``(N, oh, ow, C_out)`` and ``cols`` is
    ``(N, oh, ow, C*kh*kw)``; returns ``(C_out, C*kh*kw)``.
    """
    return np.tensordot(grad_mat, cols, axes=([0, 1, 2], [0, 1, 2]))


@register_vjp("conv2d_cols")
def conv2d_cols_vjp(grad_mat, w_mat):
    """Column (input-patch) gradient of the im2col GEMM: ``(N, oh, ow, C*kh*kw)``."""
    return grad_mat @ w_mat


@register_vjp("col2im_nchw")
def col2im_nchw_accumulate(gcols, out, stride, padding, pad_ws=None):
    """Adjoint of the runtime's ``(N, C, kh, kw, oh, ow)`` patch gather.

    Scatter-adds the column gradients back onto the image gradient ``out``
    (accumulating: ``out`` may already hold contributions from other
    consumers).  ``pad_ws`` is a caller-owned ``(N, C, H+2p, W+2p)`` workspace
    required when ``padding > 0``.
    """
    n, c, kh, kw, oh, ow = gcols.shape
    if padding > 0:
        pad_ws.fill(0.0)
        target = pad_ws
    else:
        target = out
    for i in range(kh):
        for j in range(kw):
            target[:, :, i : i + stride * oh : stride, j : j + stride * ow : stride] += gcols[
                :, :, i, j
            ]
    if padding > 0:
        h, w = out.shape[2], out.shape[3]
        out += target[:, :, padding : padding + h, padding : padding + w]
    return out


# --------------------------------------------------------------------------- #
# Normalisation / softmax / pooling
# --------------------------------------------------------------------------- #
@register_vjp("batchnorm2d")
def batchnorm2d_vjp(grad, x, mean, inv_std, gamma, training, ws=None, channel_axis=1):
    """Gradients of batch norm over a 4-D tensor.

    Parameters
    ----------
    grad:
        Gradient w.r.t. the BN output, shape ``(N, C, H, W)`` (or
        ``(N, H, W, C)`` when ``channel_axis=3``).
    x:
        The BN *input* (pre-normalisation activations), same layout.
    mean, inv_std:
        The statistics used by the forward pass: batch statistics in training
        mode, running statistics in eval mode.  ``inv_std = 1/sqrt(var+eps)``.
    gamma:
        The learnable per-channel scale.
    training:
        Whether the forward used batch statistics (their dependence on ``x``
        contributes extra terms to ``gx``).
    ws:
        Optional workspace of ``grad``'s shape; ``gx`` is written into it.
    channel_axis:
        Which axis carries channels: ``1`` (NCHW, the default) or ``3``
        (NHWC, used by layout-propagated compiled plans).

    Returns
    -------
    gx, dgamma, dbeta
    """
    if channel_axis == 1:
        bcast = lambda v: v[None, :, None, None]  # noqa: E731
        axes = (0, 2, 3)
        contract = "nchw,nchw->c"
    else:
        bcast = lambda v: v  # noqa: E731  (channels trail: natural broadcast)
        axes = (0, 1, 2)
        contract = "nhwc,nhwc->c"
    if ws is None:
        ws = np.empty_like(grad)
    # xhat in the workspace.
    np.subtract(x, bcast(mean), out=ws)
    ws *= bcast(inv_std)
    dgamma = np.einsum(contract, grad, ws)
    dbeta = grad.sum(axis=axes)
    scale = gamma * inv_std
    if training:
        m = 1
        for axis in axes:
            m *= x.shape[axis]
        ws *= bcast(dgamma / m)
        np.subtract(grad, ws, out=ws)
        ws -= bcast(dbeta / m)
        ws *= bcast(scale)
    else:
        np.multiply(grad, bcast(scale), out=ws)
    return ws, dgamma, dbeta


@register_vjp("softmax")
def softmax_vjp(grad, probs, into=None):
    """Gradient of softmax along the last axis given the output ``probs``."""
    if into is None:
        into = np.empty_like(grad)
    np.multiply(grad, probs, out=into)
    total = into.sum(axis=-1, keepdims=True)
    np.subtract(grad, total, out=into)
    into *= probs
    return into


@register_vjp("max_pool_cols")
def max_pool_cols_vjp(grad, argmax, window):
    """Column gradients of max pooling given the flat per-window ``argmax``.

    ``grad`` and ``argmax`` share any leading shape; the result appends a
    ``window``-sized axis holding the gradient routed to the single winning
    element of each window (first winner on ties, matching ``argmax``).
    """
    gcols = np.zeros(argmax.shape + (window,), dtype=grad.dtype)
    flat_idx = argmax.reshape(-1)
    gcols.reshape(-1, window)[np.arange(flat_idx.size), flat_idx] = grad.reshape(-1)
    return gcols


@register_vjp("global_avg_pool2d")
def global_avg_pool_vjp(grad, spatial_shape):
    """Gradient of a spatial mean: evenly spread over ``spatial_shape``."""
    h, w = spatial_shape
    return (grad / (h * w))[:, :, None, None]
