"""Fault tolerance: fault injection, retry policies, and health counters.

Long search runs are only as reliable as their weakest worker: a crashed env
process, a hung pipe, a NaN gradient, or a kernel that segfault-adjacently
raises during autotuning must not take down an hour of co-search.  This
package holds the three primitives the env / runtime / training layers wire
through:

* :mod:`repro.reliability.faults` — a seeded, deterministic fault injector
  configured via the ``REPRO_FAULTS`` environment variable, so every
  recovery path is testable on demand (and exercised by CI under two
  standing fault profiles);
* :mod:`repro.reliability.retry` — reusable :class:`RetryPolicy` objects
  (max attempts, exponential backoff, deadline) shared by the env worker
  supervisor and anything else that restarts things;
* :mod:`repro.reliability.health` — process-wide counters (worker restarts,
  step timeouts, guard trips, eager fallbacks, quarantined kernels)
  surfaced through ``repro.runtime.cache_stats()["health"]`` and logged per
  update by the search loop.

With ``REPRO_FAULTS`` unset the injector is ``None`` and every
instrumentation site reduces to one ``is None`` branch — the fault harness
costs nothing on clean runs.
"""

from .faults import FaultInjector, get_injector, reset_injector
from .health import KNOWN_COUNTERS
from .health import delta as health_delta
from .health import get as health_get
from .health import record as health_record
from .health import reset as health_reset
from .health import snapshot as health_snapshot
from .health import stats as health_stats
from .retry import RetryError, RetryPolicy

__all__ = [
    "FaultInjector",
    "get_injector",
    "reset_injector",
    "RetryPolicy",
    "RetryError",
    "KNOWN_COUNTERS",
    "health_record",
    "health_get",
    "health_stats",
    "health_reset",
    "health_snapshot",
    "health_delta",
]
