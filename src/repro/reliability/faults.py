"""Seeded deterministic fault injection, configured via ``REPRO_FAULTS``.

The instrumented layers (async env supervisor, compiled train step, plan
compiler, kernel autotuner) each consult the process injector at the point
where a real fault *would* surface, so every recovery path in the codebase
can be exercised on demand — in unit tests, in a live run, and by the CI
fault-injection job.

Spec grammar (comma-separated ``name=value`` entries)::

    REPRO_FAULTS="worker_crash=0.01,step_hang=0.005,nan_grad=1@update:40,kernel_error=im2col_block,seed=7"

Three value forms, selected by shape:

* ``name=<float>`` — *probability* fault: each opportunity fires with the
  given probability, drawn from one seeded ``np.random.default_rng`` stream
  (``seed=<int>`` entry, default 0), so a given spec string replays the
  same fault schedule every run.
* ``name=<count>@<site>:<index>`` — *scheduled* fault: fires for exactly
  ``count`` consecutive opportunities starting at the ``index``-th query of
  ``name`` (1-based).  The ``site`` label is documentation (e.g.
  ``update``); occurrence counting is per fault name.
* ``name=<token>`` — *targeted* fault: fires whenever the instrumentation
  site passes a matching ``target=`` (e.g. a kernel name).

Fault names the codebase instruments:

``worker_crash``
    Async env worker killed at step dispatch (queried per worker per step).
``step_hang``
    Async env step withheld from one worker so its deadline expires.
``nan_grad``
    A NaN written into the first parameter gradient before the optimiser
    stage (compiled and eager update paths; queried once per update).
``compile_error``
    :class:`~repro.runtime.compiler.CompileError` raised from ``plan_for``
    (inference engine and compiled train step), driving the eager fallback.
``kernel_error``
    The named autotuner candidate raises during its timing run, exercising
    quarantine (targeted form only).

With ``REPRO_FAULTS`` unset, :func:`get_injector` returns ``None`` and
instrumented hot paths pay a single ``is None`` branch.
"""

from __future__ import annotations

import os

import numpy as np

from . import health

__all__ = ["ENV_VAR", "FaultInjector", "get_injector", "reset_injector", "parse_spec"]

ENV_VAR = "REPRO_FAULTS"


class _Probability:
    __slots__ = ("p",)

    def __init__(self, p):
        self.p = float(p)


class _Schedule:
    __slots__ = ("start", "count")

    def __init__(self, start, count):
        self.start = int(start)
        self.count = int(count)


class _Target:
    __slots__ = ("token",)

    def __init__(self, token):
        self.token = str(token)


def parse_spec(spec):
    """Parse a ``REPRO_FAULTS`` string into ``(faults, seed)``.

    ``faults`` maps fault names to one of the internal rule objects; bad
    entries raise ``ValueError`` naming the offending part, so typos fail
    loudly at the first injector query rather than silently disabling the
    harness.
    """
    faults = {}
    seed = 0
    for part in str(spec).split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(
                "bad {} entry {!r}: expected name=value".format(ENV_VAR, part)
            )
        name, _, value = part.partition("=")
        name = name.strip()
        value = value.strip()
        if not name or not value:
            raise ValueError(
                "bad {} entry {!r}: expected name=value".format(ENV_VAR, part)
            )
        if name == "seed":
            seed = int(value)
            continue
        if "@" in value:
            count_text, _, site = value.partition("@")
            site = site.strip()
            if ":" not in site:
                raise ValueError(
                    "bad {} schedule {!r}: expected count@site:index".format(ENV_VAR, part)
                )
            _, _, index_text = site.rpartition(":")
            try:
                count = int(count_text)
                start = int(index_text)
            except ValueError as error:
                raise ValueError(
                    "bad {} schedule {!r}: expected count@site:index".format(ENV_VAR, part)
                ) from error
            if count < 1 or start < 1:
                raise ValueError(
                    "bad {} schedule {!r}: count and index must be >= 1".format(ENV_VAR, part)
                )
            faults[name] = _Schedule(start, count)
            continue
        try:
            probability = float(value)
        except ValueError:
            faults[name] = _Target(value)
            continue
        if not 0.0 <= probability <= 1.0:
            raise ValueError(
                "bad {} probability {!r}: must be in [0, 1]".format(ENV_VAR, part)
            )
        faults[name] = _Probability(probability)
    return faults, seed


class FaultInjector:
    """Deterministic fault oracle for one parsed spec.

    Probability faults draw from one seeded generator in query order, and
    scheduled faults count queries per name, so for a fixed spec the exact
    same opportunities fire on every run — fault scenarios replay.
    """

    def __init__(self, spec, seed=None):
        self.spec = str(spec)
        self.faults, spec_seed = parse_spec(spec)
        self.rng = np.random.default_rng(spec_seed if seed is None else seed)
        self._occurrences = {}
        self.fired = {}

    def configured(self, name):
        """Whether the spec mentions fault ``name`` at all."""
        return name in self.faults

    def target(self, name):
        """The token of a targeted fault (``None`` for other rule kinds)."""
        rule = self.faults.get(name)
        return rule.token if isinstance(rule, _Target) else None

    def should_fire(self, name, target=None):
        """Consult (and advance) the fault oracle for one opportunity.

        Unconfigured names return False without consuming randomness or
        occurrence counts, so adding instrumentation sites never perturbs
        the schedule of existing specs.
        """
        rule = self.faults.get(name)
        if rule is None:
            return False
        occurrence = self._occurrences.get(name, 0) + 1
        self._occurrences[name] = occurrence
        if isinstance(rule, _Target):
            fire = target is not None and target == rule.token
        elif isinstance(rule, _Schedule):
            fire = rule.start <= occurrence < rule.start + rule.count
        else:
            fire = bool(self.rng.random() < rule.p)
        if fire:
            self.fired[name] = self.fired.get(name, 0) + 1
            health.record("faults_injected")
        return fire

    def __repr__(self):
        return "FaultInjector({!r})".format(self.spec)


#: Cached (spec string, injector) pair: the injector persists (with its RNG
#: and occurrence counters) as long as the env var holds the same string.
_cached_spec = None
_cached_injector = None


def get_injector():
    """The process fault injector, or ``None`` when ``REPRO_FAULTS`` is unset.

    Cached on the raw spec string, so hot paths pay one ``os.environ`` read
    and the injector's counters survive across queries; changing the env var
    mid-process builds a fresh injector.
    """
    global _cached_spec, _cached_injector
    spec = os.environ.get(ENV_VAR)
    if spec != _cached_spec:
        _cached_spec = spec
        _cached_injector = FaultInjector(spec) if spec else None
    return _cached_injector


def reset_injector():
    """Drop the cached injector so the next query re-reads ``REPRO_FAULTS``.

    Tests that reuse a spec string call this to restart occurrence counters
    and the probability stream.
    """
    global _cached_spec, _cached_injector
    _cached_spec = None
    _cached_injector = None
