"""Process-wide reliability counters.

A flat, dependency-free counter registry: the env supervisor, the runtime
guards, and the checkpoint layer record events here, and observability
surfaces read them back — ``repro.runtime.cache_stats()`` exposes them under
``"health"`` and the search loop logs them per update.  Counters are plain
ints behind module functions (no locks: the instrumented paths are all
single-threaded; forked env workers get an independent copy-on-write copy
that nothing reads).

Well-known counter names (always present in :func:`stats`, so dashboards and
tests can rely on the keys):

``worker_restarts``
    Async env workers respawned after a crash or a step deadline.
``step_timeouts``
    Async env steps that exceeded their per-worker deadline.
``env_degraded``
    Vector envs that exhausted their restart budget and fell back to the
    in-process sync backend.
``guard_trips``
    Updates skipped because the loss or gradient norm went non-finite.
``checkpoint_rollbacks``
    Trainer state rolled back to the last autosave after K consecutive
    guard trips.
``eager_fallbacks``
    Compiled-runtime calls (train or inference) that fell back to the eager
    tape on :class:`~repro.runtime.compiler.CompileError`.
``quarantined_kernels``
    Autotuner candidates excluded for the session after raising or
    producing non-finite output.
``autosaves``
    Periodic checkpoints written by the training / search loops.
``faults_injected``
    Faults actually fired by the :mod:`repro.reliability.faults` injector.
``serving_shed``
    Policy-server requests rejected at admission because the intake queue
    was full (the typed load-shed path, never silent queue growth).
``serving_batch_failures``
    Policy-server batches whose model call raised; every request in the
    batch had the error set on its future and the server kept serving.
``serving_restarts``
    Policy-server worker loops restarted after an unexpected crash outside
    the per-batch guard.

Counters only ever grow, which is the right shape for a training run but
useless for a long-lived server that wants per-window rates.
:func:`snapshot` freezes the current totals and :func:`delta` reports what
accumulated since, with wall-clock seconds and per-second rates — dashboards
poll ``delta(window)`` and re-snapshot instead of diffing totals by hand.
"""

from __future__ import annotations

import time

__all__ = ["KNOWN_COUNTERS", "record", "get", "stats", "reset", "snapshot", "delta",
           "Snapshot", "Window"]

#: Counter names guaranteed to appear in :func:`stats` (with value 0 when
#: never recorded), so consumers can key on them unconditionally.
KNOWN_COUNTERS = (
    "worker_restarts",
    "step_timeouts",
    "env_degraded",
    "guard_trips",
    "checkpoint_rollbacks",
    "eager_fallbacks",
    "quarantined_kernels",
    "autosaves",
    "faults_injected",
    "serving_shed",
    "serving_batch_failures",
    "serving_restarts",
)

_COUNTS = {}


def record(name, count=1):
    """Add ``count`` to counter ``name`` (created on first use)."""
    _COUNTS[name] = _COUNTS.get(name, 0) + int(count)
    return _COUNTS[name]


def get(name):
    """Current value of counter ``name`` (0 if never recorded)."""
    return _COUNTS.get(name, 0)


def stats():
    """Snapshot of every counter, known names always included."""
    out = {name: 0 for name in KNOWN_COUNTERS}
    out.update(_COUNTS)
    return out


def reset():
    """Zero every counter (tests)."""
    _COUNTS.clear()


class Snapshot:
    """Frozen counter totals at one instant, the base of a reporting window."""

    __slots__ = ("counters", "taken_at")

    def __init__(self, counters, taken_at):
        self.counters = counters
        self.taken_at = taken_at

    def __repr__(self):
        nonzero = {k: v for k, v in self.counters.items() if v}
        return "Snapshot({})".format(nonzero)


class Window:
    """What accumulated between a :class:`Snapshot` and now.

    ``counters`` holds per-counter increments (never negative: a counter
    reset mid-window clamps to 0 rather than reporting a phantom decrease),
    ``seconds`` the wall-clock width of the window, and :attr:`rates` the
    per-second view a long-lived server reports instead of lifetime totals.
    """

    __slots__ = ("counters", "seconds")

    def __init__(self, counters, seconds):
        self.counters = counters
        self.seconds = seconds

    @property
    def rates(self):
        """Per-second rate of every counter over this window."""
        seconds = max(self.seconds, 1e-9)
        return {name: count / seconds for name, count in self.counters.items()}

    def __repr__(self):
        nonzero = {k: v for k, v in self.counters.items() if v}
        return "Window({}, seconds={:.3f})".format(nonzero, self.seconds)


def snapshot():
    """Freeze the current totals as the base of a reporting window."""
    return Snapshot(stats(), time.monotonic())


def delta(since):
    """The :class:`Window` of counter increments since ``since``.

    Counters that first appeared after the snapshot report their full value;
    known counters that never moved report 0, so window consumers can key on
    the same names as :func:`stats`.
    """
    current = stats()
    counters = {
        name: max(0, value - since.counters.get(name, 0))
        for name, value in current.items()
    }
    return Window(counters, time.monotonic() - since.taken_at)
