"""Process-wide reliability counters.

A flat, dependency-free counter registry: the env supervisor, the runtime
guards, and the checkpoint layer record events here, and observability
surfaces read them back — ``repro.runtime.cache_stats()`` exposes them under
``"health"`` and the search loop logs them per update.  Counters are plain
ints behind module functions (no locks: the instrumented paths are all
single-threaded; forked env workers get an independent copy-on-write copy
that nothing reads).

Well-known counter names (always present in :func:`stats`, so dashboards and
tests can rely on the keys):

``worker_restarts``
    Async env workers respawned after a crash or a step deadline.
``step_timeouts``
    Async env steps that exceeded their per-worker deadline.
``env_degraded``
    Vector envs that exhausted their restart budget and fell back to the
    in-process sync backend.
``guard_trips``
    Updates skipped because the loss or gradient norm went non-finite.
``checkpoint_rollbacks``
    Trainer state rolled back to the last autosave after K consecutive
    guard trips.
``eager_fallbacks``
    Compiled-runtime calls (train or inference) that fell back to the eager
    tape on :class:`~repro.runtime.compiler.CompileError`.
``quarantined_kernels``
    Autotuner candidates excluded for the session after raising or
    producing non-finite output.
``autosaves``
    Periodic checkpoints written by the training / search loops.
``faults_injected``
    Faults actually fired by the :mod:`repro.reliability.faults` injector.
"""

from __future__ import annotations

__all__ = ["KNOWN_COUNTERS", "record", "get", "stats", "reset"]

#: Counter names guaranteed to appear in :func:`stats` (with value 0 when
#: never recorded), so consumers can key on them unconditionally.
KNOWN_COUNTERS = (
    "worker_restarts",
    "step_timeouts",
    "env_degraded",
    "guard_trips",
    "checkpoint_rollbacks",
    "eager_fallbacks",
    "quarantined_kernels",
    "autosaves",
    "faults_injected",
)

_COUNTS = {}


def record(name, count=1):
    """Add ``count`` to counter ``name`` (created on first use)."""
    _COUNTS[name] = _COUNTS.get(name, 0) + int(count)
    return _COUNTS[name]


def get(name):
    """Current value of counter ``name`` (0 if never recorded)."""
    return _COUNTS.get(name, 0)


def stats():
    """Snapshot of every counter, known names always included."""
    out = {name: 0 for name in KNOWN_COUNTERS}
    out.update(_COUNTS)
    return out


def reset():
    """Zero every counter (tests)."""
    _COUNTS.clear()
