"""Reusable retry policies: max attempts, exponential backoff, deadline.

One :class:`RetryPolicy` object describes *how* to retry (how many times,
how long to sleep between attempts, how much wall-clock the whole effort may
burn); callers either wrap a callable with :meth:`RetryPolicy.call` or drive
their own loop off :meth:`RetryPolicy.delay` when the retry state machine
spans multiple entry points (the async env supervisor's per-lane restart
streaks work that way).
"""

from __future__ import annotations

import time

__all__ = ["RetryPolicy", "RetryError"]


class RetryError(RuntimeError):
    """Every attempt failed (or the deadline expired).

    The last underlying exception is chained as ``__cause__`` and kept on
    :attr:`last_error`.
    """

    def __init__(self, message, last_error=None, attempts=0):
        super().__init__(message)
        self.last_error = last_error
        self.attempts = attempts


class RetryPolicy:
    """Bounded exponential backoff.

    Parameters
    ----------
    max_attempts:
        Total attempts (first try included); must be >= 1.
    backoff:
        Sleep before the second attempt, in seconds.  Attempt ``k``
        (0-indexed) retries after ``backoff * factor**(k-1)`` seconds,
        capped at ``max_backoff``.
    factor:
        Exponential growth factor of the backoff.
    max_backoff:
        Upper bound on any single sleep, in seconds.
    deadline:
        Optional wall-clock budget for the whole :meth:`call`, in seconds;
        a retry whose scheduled sleep would overrun the deadline is not
        attempted.
    sleep:
        Injection point for tests (defaults to :func:`time.sleep`).
    """

    def __init__(self, max_attempts=3, backoff=0.05, factor=2.0, max_backoff=2.0,
                 deadline=None, sleep=time.sleep):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1, got {}".format(max_attempts))
        self.max_attempts = int(max_attempts)
        self.backoff = float(backoff)
        self.factor = float(factor)
        self.max_backoff = float(max_backoff)
        self.deadline = None if deadline is None else float(deadline)
        self._sleep = sleep

    def delay(self, failures):
        """Backoff seconds after ``failures`` consecutive failures (>= 1)."""
        if failures <= 0:
            return 0.0
        return min(self.max_backoff, self.backoff * self.factor ** (failures - 1))

    def call(self, fn, retry_on=(Exception,)):
        """Invoke ``fn()`` until it succeeds, backing off between attempts.

        Re-raises nothing mid-flight: exceptions matching ``retry_on`` are
        swallowed until the attempt/deadline budget runs out, at which point
        a :class:`RetryError` chaining the last failure is raised.
        Exceptions *not* matching ``retry_on`` propagate immediately.
        """
        start = time.monotonic()
        last = None
        for attempt in range(self.max_attempts):
            if attempt:
                pause = self.delay(attempt)
                if self.deadline is not None and (
                    time.monotonic() - start + pause > self.deadline
                ):
                    break
                if pause:
                    self._sleep(pause)
            try:
                return fn()
            except retry_on as error:  # noqa: PERF203 — the loop IS the point
                last = error
        raise RetryError(
            "gave up after {} attempt(s): {!r}".format(
                self.max_attempts if last is not None else 0, last
            ),
            last_error=last,
            attempts=self.max_attempts,
        ) from last

    def __repr__(self):
        return "RetryPolicy(max_attempts={}, backoff={}, factor={}, max_backoff={}, deadline={})".format(
            self.max_attempts, self.backoff, self.factor, self.max_backoff, self.deadline
        )
