"""Tape-free batched inference runtime.

Training needs gradients; inference needs throughput.  The autograd
:class:`~repro.nn.tensor.Tensor` substrate pays for the former on every
forward pass: each op allocates fresh output arrays, wraps them in tensors,
and (outside ``no_grad``) wires backward closures.  Rollout collection,
evaluation, teacher distillation and the co-search's agent-reward queries are
all pure inference, so this subsystem executes them on a different engine:

* :func:`~repro.runtime.compiler.compile_plan` captures a :class:`repro.nn`
  module graph **once** (structurally, no tracing overhead) into a flat
  :class:`~repro.runtime.plan.Plan` of NumPy steps;
* :class:`~repro.runtime.engine.InferenceEngine` executes the plan with
  pre-allocated activation buffers and cached im2col workspaces — zero
  per-call allocations on the hot path and no ``Tensor`` wrapping;
* :class:`~repro.runtime.engine.RuntimePolicy` wraps an
  :class:`~repro.drl.agent.ActorCriticAgent` and serves ``(probs, values)``
  batches for rollout collection, including sampled supernet paths (plans are
  cached per path).

The engine reads parameters live from the source module on every run, so a
module can keep training between rollouts without invalidating its plans.
``dtype=np.float64`` (the default) reproduces the eager math to a few ulps;
``dtype=np.float32`` is the production fast path (~2-3x on BLAS-bound nets).
"""

from .compiler import compile_plan, register_expander, supported_module_types
from .engine import InferenceEngine, RuntimePolicy
from .plan import Plan

__all__ = [
    "Plan",
    "compile_plan",
    "register_expander",
    "supported_module_types",
    "InferenceEngine",
    "RuntimePolicy",
]
