"""Tape-free batched inference runtime.

Training needs gradients; inference needs throughput.  The autograd
:class:`~repro.nn.tensor.Tensor` substrate pays for the former on every
forward pass: each op allocates fresh output arrays, wraps them in tensors,
and (outside ``no_grad``) wires backward closures.  Rollout collection,
evaluation, teacher distillation and the co-search's agent-reward queries are
all pure inference, so this subsystem executes them on a different engine:

* :func:`~repro.runtime.compiler.compile_plan` captures a :class:`repro.nn`
  module graph **once** (structurally, no tracing overhead) into a flat
  :class:`~repro.runtime.plan.Plan` of NumPy steps;
* :class:`~repro.runtime.engine.InferenceEngine` executes the plan with
  pre-allocated activation buffers and cached im2col workspaces — zero
  per-call allocations on the hot path and no ``Tensor`` wrapping;
* :class:`~repro.runtime.engine.RuntimePolicy` wraps an
  :class:`~repro.drl.agent.ActorCriticAgent` and serves ``(probs, values)``
  batches for rollout collection, including sampled supernet paths (plans are
  cached per path).

The engine reads parameters live from the source module on every run, so a
module can keep training between rollouts without invalidating its plans.
``dtype=np.float64`` (the default) reproduces the eager math to a few ulps;
``dtype=np.float32`` is the production fast path (~2-3x on BLAS-bound nets).

Since the compiled-training extension, the same compiler also emits
**reverse-mode plans**: ``compile_plan(..., train=True)`` adds per-slot
gradient buffers and per-op VJP steps (sharing the rules in
:mod:`repro.nn.vjp` with the eager tape), and
:class:`~repro.runtime.train.CompiledTrainStep` packages forward + loss head
+ backward + fused optimiser step into the facade that
:class:`~repro.drl.a2c.A2CTrainer`, teacher training, and the one-level
co-search updates route through.  The eager tape remains the
always-available reference path, selected per call on
:class:`~repro.runtime.compiler.CompileError`.

Convolution steps dispatch their compute through the pluggable kernel
subsystem in :mod:`repro.runtime.kernels`: named implementations (direct
depthwise, lane-blocked im2col, the general im2col+GEMM fallback) are
selected per op signature by a registry with a ``REPRO_KERNELS`` override
and a per-signature autotuner; :func:`cache_stats` reports the chosen
kernel (and candidate timings) for every signature the process compiled.

The quantized inference path rides the same machinery:
:class:`~repro.runtime.quantize.Calibrator` harvests activation ranges from
a short rollout, and passing the resulting
:class:`~repro.runtime.quantize.QuantCalibration` to an engine (or
``compile_plan(quantize=...)``) lowers eligible convolutions to int8/int16
kernels with a fused requantization tail — eval-only, score-parity gated,
and bitwise-reproducible across kernel candidates.
"""

from .compiler import CompileError, compile_plan, register_expander, supported_module_types
from .engine import InferenceEngine, RuntimePolicy
from .passes import PASS_NAMES, enabled_passes
from .plan import BufferPool, Plan
from .quantize import Calibrator, QuantCalibration
from .train import CompiledTrainStep, TrainStepResult

__all__ = [
    "Plan",
    "BufferPool",
    "compile_plan",
    "register_expander",
    "supported_module_types",
    "CompileError",
    "InferenceEngine",
    "RuntimePolicy",
    "CompiledTrainStep",
    "TrainStepResult",
    "Calibrator",
    "QuantCalibration",
    "PASS_NAMES",
    "enabled_passes",
    "cache_stats",
]


def cache_stats():
    """Aggregate plan-cache, :class:`BufferPool` and kernel-dispatch counters.

    Sums hits / misses / evictions over every live :class:`InferenceEngine`
    and :class:`CompiledTrainStep`, recycled vs freshly-allocated bytes over
    every live pool, and reports the conv kernel chosen per op signature
    (with the autotuner's candidate timings where a timing run decided), so
    search loops can log how well compilation amortises and which compute
    kernels their plans actually run on.  The ``"health"`` entry mirrors the
    process-wide reliability counters of :mod:`repro.reliability.health`
    (worker restarts, guard trips, eager fallbacks, ...), putting recovery
    activity next to the cache counters in the same observability surface.
    The ``"serving"`` entry aggregates every live
    :class:`repro.serving.PolicyServer` (requests, batches, shed counts,
    per-bucket dispatch histogram) so batching efficiency shows up beside
    the plan-cache hit rates it exists to protect.
    """
    from ..reliability import health
    from ..serving.server import serving_stats
    from .engine import _ENGINES
    from .kernels import selection_table
    from .plan import _POOLS
    from .train import _TRAIN_STEPS

    def _sum(objects, keys):
        out = dict.fromkeys(keys, 0)
        for obj in objects:
            for key in keys:
                out[key] += getattr(obj, key)
        return out

    inference = _sum(list(_ENGINES), ("cache_hits", "cache_misses", "cache_evictions"))
    inference["engines"] = len(_ENGINES)
    train = _sum(list(_TRAIN_STEPS), ("cache_hits", "cache_misses", "cache_evictions"))
    train["executors"] = len(_TRAIN_STEPS)
    pools = _sum(list(_POOLS), ("hits", "misses", "bytes_pooled", "bytes_fresh"))
    pools["pools"] = len(_POOLS)
    return {
        "inference_plans": inference,
        "train_plans": train,
        "buffer_pools": pools,
        "kernels": selection_table(),
        "health": health.stats(),
        "serving": serving_stats(),
    }
