"""Structural compiler: :class:`repro.nn` module trees -> flat :class:`Plan`.

The module zoo of this repository is small and closed, so instead of tracing
an example forward pass the compiler walks the module structure directly: a
registry maps module types to *expanders* that append steps to the plan and
return the output slot.  Composite expanders (``ConvBNReLU``, residual
blocks, whole backbones) fuse what the eager path computes as separate tensor
ops — conv + bias + batch-norm + activation become one GEMM plus in-place
channel-wise arithmetic on a staging buffer.

Modules without a registered expander fall back to an :class:`OpaqueStep`
that runs their eager ``forward`` under ``no_grad``, so the engine stays
total over custom user modules (just slower for that one node).

Custom layers can join the fast path via :func:`register_expander`.
"""

from __future__ import annotations

import numpy as np

from ..nn import blocks as nn_blocks
from ..nn import modules as nn_modules
from ..nn.functional import conv_output_size
from ..telemetry import trace
from .passes import PassContext, enabled_passes, run_passes
from .plan import (
    AddStep,
    BatchNormStep,
    Conv2dStep,
    FlattenStep,
    GateCombineStep,
    GlobalAvgPoolStep,
    LinearStep,
    OpaqueStep,
    Plan,
    Pool2dStep,
    ReshapeStep,
    SoftmaxStep,
    TileStep,
)

__all__ = ["compile_plan", "register_expander", "supported_module_types", "CompileError"]

_EXPANDERS = {}


class CompileError(RuntimeError):
    """Raised when a module tree cannot be compiled into a plan."""


def register_expander(module_type, expander):
    """Register ``expander(module, ctx, in_slot) -> out_slot`` for a module type."""
    _EXPANDERS[module_type] = expander
    return expander


def supported_module_types():
    """Module types with a native (non-opaque) expander."""
    return sorted(_EXPANDERS, key=lambda t: t.__name__)


def _expander(module_type):
    def decorator(fn):
        return register_expander(module_type, fn)

    return decorator


class CompileContext:
    """Mutable state threaded through expanders while building one plan."""

    def __init__(self, plan, path=None, gated=None):
        self.plan = plan
        self.path = path
        self.path_consumed = False
        self.gated = gated
        self.gated_consumed = False
        #: Sample-group count of the region currently being expanded: 1 on the
        #: shared trunk, ``plan.num_samples`` past the stacked-path TileStep.
        #: Train-mode batch-norm steps read it to group their statistics.
        self.stack_k = 1
        #: Running-stat EMA repeats for shared-trunk BN of stacked plans (the
        #: trunk runs once for what per-path execution would run K times).
        self.stat_repeats = 1

    @property
    def train(self):
        """Whether this plan must also support the reverse-mode program."""
        return self.plan.train

    def emit(self, module, in_slot):
        """Expand ``module`` (dispatching over its MRO) and return its output slot."""
        for klass in type(module).__mro__:
            expander = _EXPANDERS.get(klass)
            if expander is not None:
                return expander(module, self, in_slot)
        return _emit_opaque(module, self, in_slot)

    # Convenience wrappers -------------------------------------------------
    def slot(self, shape, view=False):
        return self.plan.new_slot(shape, view=view)

    def shape(self, slot):
        return self.plan.shape(slot)

    def add(self, step):
        return self.plan.add(step)


def _emit_opaque(module, ctx, in_slot):
    """Fallback expander: run the module eagerly to discover its output shape.

    The probe runs in eval mode so compile-time shape discovery never mutates
    training state (BN running statistics, dropout RNG streams); the module's
    mode is restored afterwards and :class:`OpaqueStep` respects it at run
    time.
    """
    from ..nn import Tensor, no_grad

    if ctx.train:
        raise CompileError(
            "{} has no compiled backward; training stays on the autograd tape".format(
                type(module).__name__
            )
        )
    probe = np.zeros(ctx.shape(in_slot), dtype=np.float64)
    was_training = bool(getattr(module, "training", False))
    if was_training:
        module.eval()
    try:
        with no_grad():
            out = module(Tensor(probe))
    finally:
        if was_training:
            module.train()
    out_slot = ctx.slot(out.shape)
    ctx.add(OpaqueStep(module, in_slot, out_slot))
    return out_slot


# --------------------------------------------------------------------------- #
# Primitive layers
# --------------------------------------------------------------------------- #
def _activation_kind(module):
    """The fused-activation tag of an activation module, or ``None``."""
    if isinstance(module, nn_modules.ReLU):
        return "relu"
    if isinstance(module, nn_modules.LeakyReLU):
        return ("leaky_relu", module.negative_slope)
    if isinstance(module, nn_modules.Tanh):
        return "tanh"
    if isinstance(module, nn_modules.Sigmoid):
        return "sigmoid"
    return None


def _emit_conv(conv, ctx, in_slot, bn=None, activation=None):
    """Emit a fused convolution step and its output slot.

    Training plans keep BN as its own step: reverse-mode batch norm needs the
    pre-normalisation activations, which the fused step would overwrite.  The
    activation still fuses into the last step of the pair (its VJP only needs
    the post-activation output).
    """
    n, _, h, w = ctx.shape(in_slot)
    oh = conv_output_size(h, conv.kernel_size, conv.stride, conv.padding)
    ow = conv_output_size(w, conv.kernel_size, conv.stride, conv.padding)
    if bn is not None and ctx.train:
        conv_slot = ctx.slot((n, conv.out_channels, oh, ow))
        ctx.add(Conv2dStep(conv, in_slot, conv_slot))
        out_slot = ctx.slot((n, conv.out_channels, oh, ow))
        ctx.add(
            BatchNormStep(
                bn, conv_slot, out_slot, activation=activation,
                num_samples=ctx.stack_k, stat_repeats=ctx.stat_repeats,
            )
        )
        return out_slot
    out_slot = ctx.slot((n, conv.out_channels, oh, ow))
    ctx.add(Conv2dStep(conv, in_slot, out_slot, bn=bn, activation=activation))
    return out_slot


@_expander(nn_modules.Conv2d)
def _expand_conv2d(module, ctx, in_slot):
    return _emit_conv(module, ctx, in_slot)


@_expander(nn_modules.Linear)
def _expand_linear(module, ctx, in_slot):
    n = ctx.shape(in_slot)[0]
    out_slot = ctx.slot((n, module.out_features))
    ctx.add(LinearStep(module, in_slot, out_slot))
    return out_slot


@_expander(nn_modules.BatchNorm2d)
def _expand_batchnorm(module, ctx, in_slot):
    out_slot = ctx.slot(ctx.shape(in_slot))
    ctx.add(
        BatchNormStep(
            module, in_slot, out_slot,
            num_samples=ctx.stack_k, stat_repeats=ctx.stat_repeats,
        )
    )
    return out_slot


def _expand_activation(module, ctx, in_slot):
    # Standalone activation modules write to a fresh slot: the compiler cannot
    # prove single-consumer ownership of an arbitrary input slot, and the copy
    # is cheap next to any surrounding GEMM.  Composite expanders fuse
    # activations in place instead.
    out_slot = ctx.slot(ctx.shape(in_slot))
    kind = _activation_kind(module)
    ctx.add(AddStep(in_slot, _zero_like(ctx, in_slot), out_slot, activation=kind))
    return out_slot


_ZERO_SLOTS = "_zero_slots"


def _zero_like(ctx, slot):
    """A shared all-zero slot matching ``slot`` (used to copy-then-activate)."""
    cache = getattr(ctx, _ZERO_SLOTS, None)
    if cache is None:
        cache = {}
        setattr(ctx, _ZERO_SLOTS, cache)
    shape = ctx.shape(slot)
    if shape not in cache:
        cache[shape] = ctx.slot(shape)  # plan buffers start uninitialised...
    return cache[shape]


for _act_type in (nn_modules.ReLU, nn_modules.LeakyReLU, nn_modules.Tanh, nn_modules.Sigmoid):
    register_expander(_act_type, _expand_activation)


@_expander(nn_modules.Identity)
def _expand_identity(module, ctx, in_slot):
    return in_slot


@_expander(nn_modules.Flatten)
def _expand_flatten(module, ctx, in_slot):
    shape = ctx.shape(in_slot)
    flat = int(np.prod(shape[1:]))
    out_slot = ctx.slot((shape[0], flat), view=True)
    ctx.add(FlattenStep(in_slot, out_slot))
    return out_slot


@_expander(nn_modules.Dropout)
def _expand_dropout(module, ctx, in_slot):
    if module.p <= 0.0:
        return in_slot
    # Plans outlive train/eval switches and training-mode dropout needs the
    # module's RNG stream, so stay faithful via the eager fallback (which
    # checks ``module.training`` at run time; inference rarely hits this).
    # Training plans cannot host the fallback: _emit_opaque raises there.
    return _emit_opaque(module, ctx, in_slot)


@_expander(nn_modules.MaxPool2d)
def _expand_maxpool(module, ctx, in_slot):
    return _emit_pool("max", module.kernel_size, module.stride, ctx, in_slot)


@_expander(nn_modules.AvgPool2d)
def _expand_avgpool(module, ctx, in_slot):
    return _emit_pool("avg", module.kernel_size, module.stride, ctx, in_slot)


def _emit_pool(mode, kernel, stride, ctx, in_slot):
    n, c, h, w = ctx.shape(in_slot)
    oh = (h - kernel) // stride + 1
    ow = (w - kernel) // stride + 1
    out_slot = ctx.slot((n, c, oh, ow))
    ctx.add(Pool2dStep(mode, kernel, stride, in_slot, out_slot))
    return out_slot


@_expander(nn_modules.GlobalAvgPool2d)
def _expand_gap(module, ctx, in_slot):
    n, c = ctx.shape(in_slot)[:2]
    out_slot = ctx.slot((n, c))
    ctx.add(GlobalAvgPoolStep(in_slot, out_slot))
    return out_slot


@_expander(nn_modules.Sequential)
def _expand_sequential(module, ctx, in_slot):
    slot = in_slot
    for layer in module:
        slot = ctx.emit(layer, slot)
    return slot


# --------------------------------------------------------------------------- #
# Composite blocks
# --------------------------------------------------------------------------- #
@_expander(nn_blocks.ConvBNReLU)
def _expand_conv_bn_relu(module, ctx, in_slot):
    return _emit_conv(
        module.conv,
        ctx,
        in_slot,
        bn=module.bn,
        activation=_activation_kind(module.act),
    )


@_expander(nn_blocks.BasicResBlock)
def _expand_basic_res_block(module, ctx, in_slot):
    body = ctx.emit(module.conv1, in_slot)
    body = ctx.emit(module.conv2, body)
    shortcut = ctx.emit(module.shortcut, in_slot)
    # The body slot is owned by this block, so the join can write into it.
    ctx.add(AddStep(body, shortcut, body, activation=_activation_kind(module.act)))
    return body


@_expander(nn_blocks.InvertedResidual)
def _expand_inverted_residual(module, ctx, in_slot):
    body = ctx.emit(module.body, in_slot)
    if module.use_residual:
        ctx.add(AddStep(body, in_slot, body))
    return body


@_expander(nn_blocks.SkipConnection)
def _expand_skip(module, ctx, in_slot):
    return ctx.emit(module.op, in_slot)


# --------------------------------------------------------------------------- #
# Backbones and agents (registered lazily to avoid import cycles)
# --------------------------------------------------------------------------- #
def _register_network_expanders():
    from ..drl.agent import ActorCriticAgent
    from ..networks.resnet import ResNet
    from ..networks.supernet import AgentSuperNet, DerivedAgentNet
    from ..networks.vanilla import VanillaNet

    if VanillaNet in _EXPANDERS:
        return

    @_expander(VanillaNet)
    def _expand_vanilla(module, ctx, in_slot):
        slot = in_slot
        for conv in (module.conv1, module.conv2, module.conv3):
            slot = _emit_conv(conv, ctx, slot, activation="relu")
        slot = ctx.emit(module.flatten, slot)
        out_slot = ctx.slot((ctx.shape(slot)[0], module.fc.out_features))
        ctx.add(LinearStep(module.fc, slot, out_slot, activation="relu"))
        return out_slot

    @_expander(ResNet)
    def _expand_resnet(module, ctx, in_slot):
        slot = ctx.emit(module.stem, in_slot)
        slot = ctx.emit(module.stages, slot)
        slot = ctx.emit(module.pool, slot)
        out_slot = ctx.slot((ctx.shape(slot)[0], module.fc.out_features))
        ctx.add(LinearStep(module.fc, slot, out_slot, activation="relu"))
        return out_slot

    @_expander(DerivedAgentNet)
    def _expand_derived(module, ctx, in_slot):
        slot = ctx.emit(module.stem, in_slot)
        slot = ctx.emit(module.ops, slot)
        slot = ctx.emit(module.pool, slot)
        out_slot = ctx.slot((ctx.shape(slot)[0], module.fc.out_features))
        ctx.add(LinearStep(module.fc, slot, out_slot, activation="relu"))
        return out_slot

    @_expander(AgentSuperNet)
    def _expand_supernet(module, ctx, in_slot):
        if ctx.gated is not None:
            return _expand_supernet_gated(module, ctx, in_slot)
        if ctx.path is None:
            raise CompileError(
                "AgentSuperNet requires a fixed path (op_indices) or per-cell "
                "active paths (gated_paths) to compile"
            )
        if len(ctx.path) != module.num_cells:
            raise CompileError(
                "expected {} op indices, got {}".format(module.num_cells, len(ctx.path))
            )
        ctx.path_consumed = True
        slot = ctx.emit(module.stem, in_slot)
        for cell, op_index in zip(module.cells, ctx.path):
            slot = ctx.emit(cell.candidates[int(op_index)], slot)
        slot = ctx.emit(module.pool, slot)
        out_slot = ctx.slot((ctx.shape(slot)[0], module.fc.out_features))
        ctx.add(LinearStep(module.fc, slot, out_slot, activation="relu"))
        return out_slot

    def _expand_supernet_gated(module, ctx, in_slot):
        """Multi-path (gate-weighted) expansion for search-time train steps.

        Each active candidate expands into its own branch slots; a
        :class:`GateCombineStep` sums them with per-run gate values, in the
        same left-to-right order as the eager gated forward.

        In stacked-path mode (``num_samples = K > 1``) the stem runs once on
        the real batch, a :class:`TileStep` replicates its output into ``K``
        sample groups folded into the batch axis, and every gated cell
        combines its branches with per-sample gate values — one compile and
        one GEMM sweep serve all ``K`` sampled architectures.
        """
        if len(ctx.gated) != module.num_cells:
            raise CompileError(
                "expected {} active-path tuples, got {}".format(
                    module.num_cells, len(ctx.gated)
                )
            )
        ctx.gated_consumed = True
        ctx.plan.set_gate_layout(ctx.gated)
        k = ctx.plan.num_samples
        if k > 1:
            # Shared trunk: repeat the BN running-stat EMA K times per run so
            # the buffers track K per-path executions of the same batch.
            ctx.stat_repeats = k
        slot = ctx.emit(module.stem, in_slot)
        if k > 1:
            ctx.stat_repeats = 1
            shape = ctx.shape(slot)
            stacked = ctx.slot((shape[0] * k,) + shape[1:])
            ctx.add(TileStep(slot, stacked, k))
            slot = stacked
            ctx.stack_k = k
        for cell_index, (cell, active) in enumerate(zip(module.cells, ctx.gated)):
            if not active:
                raise CompileError("at least one path must be active per cell")
            branches = [ctx.emit(cell.candidates[int(i)], slot) for i in active]
            out_slot = ctx.slot(ctx.shape(branches[0]))
            ctx.add(GateCombineStep(cell_index, branches, out_slot, num_samples=k))
            slot = out_slot
        slot = ctx.emit(module.pool, slot)
        out_slot = ctx.slot((ctx.shape(slot)[0], module.fc.out_features))
        ctx.add(LinearStep(module.fc, slot, out_slot, activation="relu"))
        return out_slot

    @_expander(ActorCriticAgent)
    def _expand_agent(module, ctx, in_slot):
        features = ctx.emit(module.backbone, in_slot)
        n = ctx.shape(features)[0]
        logits = ctx.slot((n, module.num_actions))
        ctx.add(LinearStep(module.policy_head, features, logits))
        probs = ctx.slot((n, module.num_actions))
        ctx.add(SoftmaxStep(logits, probs))
        value_col = ctx.slot((n, 1))
        ctx.add(LinearStep(module.value_head, features, value_col))
        value = ctx.slot((n,), view=True)
        ctx.add(ReshapeStep(value_col, value, ()))
        ctx.agent_outputs = (probs, value)
        ctx.agent_slots = {
            "features": features,
            "logits": logits,
            "probs": probs,
            "value_col": value_col,
            "value": value,
        }
        return features


def compile_plan(module, input_shape, dtype=np.float64, path=None, train=False, gated_paths=None,
                 pool=None, passes=None, num_samples=1, gate_weights=None, gate_topk=None,
                 gate_threshold=None, quantize=None):
    """Compile ``module`` for a concrete ``input_shape`` into a ready :class:`Plan`.

    Parameters
    ----------
    module:
        Any :class:`repro.nn` module with a registered expander (backbones,
        agents, blocks); unknown modules run via the eager fallback.
    input_shape:
        Full input shape including the batch dimension.
    dtype:
        Compute dtype of every buffer; ``np.float64`` matches the autograd
        engine to a few ulps, ``np.float32`` is the fast path.
    path:
        Operator index per cell when compiling a sampled supernet path.
    train:
        Also build the reverse-mode program (gradient buffers + per-step
        VJPs).  Modules the runtime cannot differentiate (opaque fallbacks,
        active dropout) raise :class:`CompileError` so callers fall back to
        the eager tape.
    gated_paths:
        Per-cell tuples of active candidate indices for a gated (multi-path
        backward) supernet expansion; gate *values* are provided per run via
        :meth:`Plan.set_gates`.
    pool:
        Optional :class:`~repro.runtime.plan.BufferPool` the plan draws its
        buffers from (and releases them to); engines that recompile often use
        one so fresh plans touch warm pages.
    passes:
        Optimisation-pass selection forwarded to
        :func:`repro.runtime.passes.enabled_passes` (``None`` reads the
        ``REPRO_RUNTIME_PASSES`` environment variable; default: all passes).
    num_samples:
        Stacked-path mode: compile ``K`` sampled architectures into one plan
        with a leading sample axis folded into the batch (requires
        ``gated_paths``, whose cells then hold the *union* of the samples'
        active candidates).  Gate values/gradients gain a ``(K, ...)`` axis.
    gate_weights / gate_topk / gate_threshold:
        Compile-time gate weights (aligned with ``gated_paths``) and pruning
        limits for the gate-aware dead-branch-elimination pass.  The plan's
        final per-cell layout is ``plan.gate_layout``.
    quantize:
        A :class:`~repro.runtime.quantize.QuantCalibration` (or an iterable
        of them) enabling the ``quantize`` pass for inference plans.  The
        first calibration matching this compile's ``(input_shape, path,
        dtype)`` signature is used; no match (or a training compile) leaves
        the plan float.  The pass itself must also be enabled via
        ``passes`` / ``REPRO_RUNTIME_PASSES`` (it is, by default).

    Returns
    -------
    plan:
        A finalised :class:`Plan`.  For :class:`ActorCriticAgent` modules the
        plan outputs ``(probs, values)`` and ``plan.named_slots`` maps
        ``features / logits / probs / value_col / value`` to their slots.
    """
    _register_network_expanders()
    num_samples = int(num_samples)
    if num_samples > 1 and gated_paths is None:
        raise CompileError("stacked-path compilation (num_samples > 1) requires gated_paths")
    enabled = enabled_passes(passes)
    plan = Plan(dtype=dtype, train=train, pool=pool, num_samples=num_samples)
    plan.trace_name = "plan/{}[{},{},n{}]".format(
        type(module).__name__,
        np.dtype(dtype).name,
        "train" if train else "infer",
        input_shape[0],
    )
    trace.begin("compile/" + type(module).__name__, "compile")
    try:
        return _compile_plan_body(
            module, input_shape, dtype, path, train, gated_paths, plan,
            num_samples, gate_weights, gate_topk, gate_threshold, quantize,
            enabled,
        )
    finally:
        trace.end()


def _compile_plan_body(module, input_shape, dtype, path, train, gated_paths, plan,
                       num_samples, gate_weights, gate_topk, gate_threshold,
                       quantize, enabled):
    ctx = CompileContext(
        plan,
        path=tuple(int(i) for i in path) if path is not None else None,
        gated=tuple(tuple(int(i) for i in cell) for cell in gated_paths)
        if gated_paths is not None
        else None,
    )
    input_slot = plan.new_slot(input_shape)
    out_slot = ctx.emit(module, input_slot)
    if ctx.path is not None and not ctx.path_consumed:
        # Mirror the eager path, where forwarding op_indices to a module that
        # does not take them raises: silently ignoring the path would serve
        # wrong-but-plausible results (and cache one plan per ignored path).
        raise CompileError(
            "{} does not take a path (op_indices)".format(type(module).__name__)
        )
    if ctx.gated is not None and not ctx.gated_consumed:
        raise CompileError(
            "{} does not take gated paths (gates)".format(type(module).__name__)
        )
    outputs = getattr(ctx, "agent_outputs", None) or (out_slot,)
    plan.named_slots = dict(getattr(ctx, "agent_slots", {}))
    plan.input_slot = input_slot  # liveness analysis needs it pre-finalize
    zero_slots = tuple(getattr(ctx, _ZERO_SLOTS, {}).values())
    protected = {input_slot}
    protected.update(outputs)
    protected.update(plan.named_slots.values())
    calibration = None
    if quantize is not None and not train:
        from .quantize import QuantCalibration

        candidates = (
            (quantize,) if isinstance(quantize, QuantCalibration) else tuple(quantize)
        )
        for cand in candidates:
            if cand.matches(input_shape, path, dtype):
                calibration = cand
                break
    run_passes(
        plan,
        PassContext(
            protected_slots=protected,
            zero_slots=zero_slots,
            gate_weights=gate_weights,
            gate_topk=gate_topk,
            gate_threshold=gate_threshold,
            quantize=calibration,
        ),
        enabled=enabled,
    )
    plan.finalize(input_slot, outputs)
    # Zero-filled helper slots (copy-then-activate) must actually be zero.
    # Fusion may have orphaned some of them (their buffer is then None).
    for slot in zero_slots:
        if plan.bufs[slot] is not None:
            plan.bufs[slot][...] = 0.0
    return plan
