"""Inference engines: plan caching, buffer reuse, and the policy fast path.

:class:`InferenceEngine` wraps one module and lazily compiles a :class:`Plan`
per ``(path, input shape)`` signature, so changing the rollout batch size (or
the sampled supernet path) transparently triggers re-compilation and buffer
re-allocation while steady-state execution is allocation-free.

:class:`RuntimePolicy` specialises the engine for
:class:`~repro.drl.agent.ActorCriticAgent`: one plan evaluates backbone,
policy head, softmax and value head, returning ``(probs, values)`` NumPy
arrays — the exact contract of ``ActorCriticAgent.policy_value`` — without
ever touching the autograd tape.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict

import numpy as np

from ..reliability.faults import get_injector
from ..telemetry import trace
from .compiler import CompileError, compile_plan
from .plan import BufferPool

__all__ = ["InferenceEngine", "RuntimePolicy"]

#: Live engines, for :func:`repro.runtime.cache_stats` aggregation.
_ENGINES = weakref.WeakSet()


class InferenceEngine:
    """Tape-free executor for one module.

    Parameters
    ----------
    module:
        The source module; parameters are read live on every run, so the
        module can keep training between calls.
    dtype:
        Compute dtype.  ``np.float64`` (default) reproduces the autograd
        engine's numerics to a few ulps; ``np.float32`` is the production
        fast path.
    max_plans:
        Number of compiled ``(path, shape)`` signatures kept in the LRU
        cache.  Rollout collection alternates over a handful of signatures;
        supernet co-search churns through sampled paths, hence the bound.
    quantize:
        Optional :class:`~repro.runtime.quantize.QuantCalibration` (or an
        iterable of them, e.g. one per batch size) forwarded to every
        compile: signatures with a matching calibration run the quantized
        inference path, everything else stays float.
    """

    def __init__(self, module, dtype=np.float64, max_plans=32, quantize=None):
        self.module = module
        self.dtype = np.dtype(dtype)
        self.max_plans = int(max_plans)
        self.quantize = quantize
        self._plans = OrderedDict()
        #: Evicted plans hand their buffers back here, so the per-sampled-path
        #: recompiles of co-search rollouts reuse warm pages.
        self.pool = BufferPool()
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0
        _ENGINES.add(self)

    def plan_for(self, input_shape, path=None):
        """Fetch (or compile) the plan for ``input_shape`` / ``path``."""
        injector = get_injector()
        if injector is not None and injector.should_fire("compile_error"):
            # Injected before the cache lookup so a fault never replaces (or
            # shadows) a good cached plan — the next call compiles normally.
            raise CompileError("injected compile_error fault")
        key = (tuple(input_shape), tuple(int(i) for i in path) if path is not None else None)
        plan = self._plans.get(key)
        if plan is None:
            self.cache_misses += 1
            plan = compile_plan(self.module, key[0], dtype=self.dtype, path=key[1],
                                pool=self.pool, quantize=self.quantize)
            self._plans[key] = plan
            while len(self._plans) > self.max_plans:
                _, evicted = self._plans.popitem(last=False)
                evicted.release()
                self.cache_evictions += 1
        else:
            self.cache_hits += 1
            self._plans.move_to_end(key)
        return plan

    def cache_stats(self):
        """Plan-cache and buffer-pool counters for observability."""
        return {
            "plans": len(self._plans),
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "evictions": self.cache_evictions,
            "pool": self.pool.stats(),
        }

    def run(self, x, path=None):
        """Execute the module on ``x``.

        Returns the plan's output buffer(s): valid only until the next call
        on this engine — a later ``run`` on the same signature overwrites
        them, and a new-signature compile may evict the plan and recycle its
        backing memory through the buffer pool.  Copy before storing.
        """
        x = np.asarray(x)
        if trace.enabled:
            # One span over lookup + execution, so plan-cache misses show up
            # as compile time attributed to the engine call that paid it.
            with trace.span("engine/run", "engine"):
                return self.plan_for(x.shape, path=path).run(x)
        return self.plan_for(x.shape, path=path).run(x)

    def invalidate(self):
        """Drop every compiled plan (e.g. after structural module surgery)."""
        for plan in self._plans.values():
            plan.release()
        self._plans.clear()
        self.pool.clear()

    @property
    def num_plans(self):
        """Number of currently cached compiled plans."""
        return len(self._plans)

    def __repr__(self):
        return "InferenceEngine({}, dtype={}, plans={})".format(
            type(self.module).__name__, self.dtype.name, len(self._plans)
        )


class RuntimePolicy:
    """Batched ``(probs, values)`` inference for an actor-critic agent.

    This is what rollout collection, evaluation and teacher-target queries
    call instead of the autograd forward.  Sampled supernet paths are passed
    as ``op_indices`` and compiled/cached per path; gated multi-path forwards
    (which need gradients anyway) are rejected with :class:`CompileError` so
    callers can fall back to the eager engine.
    """

    def __init__(self, agent, dtype=np.float64, max_plans=32, quantize=None):
        self.agent = agent
        self.engine = InferenceEngine(
            agent, dtype=dtype, max_plans=max_plans, quantize=quantize
        )

    @property
    def dtype(self):
        return self.engine.dtype

    @property
    def quantize(self):
        return self.engine.quantize

    def policy_value(self, observations, op_indices=None, **unsupported):
        """Mirror ``ActorCriticAgent.policy_value`` on the runtime engine.

        Returns fresh ``(probs, values)`` arrays (safe to store across
        calls).  Raises :class:`CompileError` for forward arguments the
        runtime cannot serve (e.g. ``gates``), signalling eager fallback.
        """
        if unsupported:
            raise CompileError(
                "runtime policy cannot serve forward kwargs {}".format(sorted(unsupported))
            )
        probs, values = self.engine.run(observations, path=op_indices)
        return probs.copy(), values.copy()

    def invalidate(self):
        """Drop compiled plans (e.g. after loading a different state dict)."""
        self.engine.invalidate()

    def __repr__(self):
        return "RuntimePolicy(dtype={}, plans={})".format(
            self.engine.dtype.name, self.engine.num_plans
        )
