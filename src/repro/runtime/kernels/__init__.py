"""Pluggable compute kernels for the runtime's convolution steps.

This package separates *what* a plan step computes from *how* it is
computed.  :mod:`~repro.runtime.kernels.registry` holds named kernel
implementations keyed by op signature (shape / groups / kernel / stride /
dtype / direction) and a dispatcher with a ``REPRO_KERNELS`` environment
override; :mod:`~repro.runtime.kernels.autotune` times the candidates for
each distinct signature once per process and caches the winner.

Registered kernels (import order puts the general fallback last):

* ``depthwise_direct`` — output-stationary direct depthwise convolution
  (forward + input/weight VJPs) that never materialises im2col columns;
* ``im2col_block`` — lane-blocked strided-view im2col keeping the gathered
  columns L2-resident (inference; NCHW any groups, NHWC ungrouped);
* ``pointwise_nhwc`` — 1x1 convolutions on channels-last activations as one
  flat GEMM over the trailing channel axis (forward + VJPs);
* ``im2col`` — the original whole-batch im2col + batched GEMM, supporting
  every NCHW signature in both directions (the total fallback for that
  layout);
* ``depthwise_native_q8/q16``, ``depthwise_direct_q8/q16``,
  ``depthwise_einsum_q8/q16``, ``pointwise_q8/q16`` — the quantized
  inference kernels (:mod:`~repro.runtime.kernels.quantized`): integer
  activations, wide accumulation, fused per-channel requant tail.  They
  serve only signatures whose ``quant`` field is set, so the float paths
  are untouched.

Signatures carry a physical activation layout (``NCHW`` / ``NHWC``); the
layout-assignment pass in :mod:`repro.runtime.passes` uses per-layout
candidate timings (:func:`~repro.runtime.kernels.registry.layout_costs`)
to decide where channels-last propagation pays for its transposes.

The same software structure the paper's accelerator templates use in
hardware — dataflow-specialised conv engines selected per workload shape —
applied to the NumPy runtime.
"""

from . import depthwise as _depthwise  # noqa: F401  (registers depthwise_direct)
from . import conv as _conv  # noqa: F401  (registers im2col_block, pointwise_nhwc, im2col)
from . import quantized as _quantized  # noqa: F401  (registers the q8/q16 kernels)
from .autotune import blas_thread_count
from .autotune import clear_cache as clear_autotune_cache
from .autotune import transpose_seconds
from .quantized import RequantEpilogue
from .registry import (
    ENV_VAR,
    LAYOUTS,
    SCRATCH_GEMM,
    SCRATCH_MAIN,
    SCRATCH_PAD,
    ConvKernel,
    ConvSpec,
    candidates,
    clear_quarantine,
    kernel_for,
    kernel_names,
    layout_costs,
    quarantine_kernel,
    quarantined_kernels,
    register_kernel,
    reset_selections,
    scratch_upper_bound,
    selection_table,
)

__all__ = [
    "ConvSpec",
    "ConvKernel",
    "RequantEpilogue",
    "ENV_VAR",
    "LAYOUTS",
    "register_kernel",
    "kernel_names",
    "candidates",
    "quarantine_kernel",
    "quarantined_kernels",
    "clear_quarantine",
    "kernel_for",
    "layout_costs",
    "transpose_seconds",
    "blas_thread_count",
    "scratch_upper_bound",
    "selection_table",
    "reset_selections",
    "clear_autotune_cache",
    "SCRATCH_MAIN",
    "SCRATCH_GEMM",
    "SCRATCH_PAD",
]
