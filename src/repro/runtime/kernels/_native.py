"""Tiny compiled helpers for the quantized depthwise kernels.

NumPy has no fused integer multiply-accumulate: an ``int8`` einsum runs
through the generic scalar inner loop, slower than the f32 path it is meant
to replace.  The quantized depthwise convolution therefore ships a ~60-line
C kernel compiled on demand with the system C compiler (no new dependency —
the toolchain that built CPython is already on the host) and loaded through
:mod:`ctypes`.  The int8 variant accumulates in ``int32`` with a fused
per-channel requantization tail; the int16 variant accumulates in ``int64``
and requantizes in ``double``.

Exactness contract: the C kernels must be *bitwise identical* to the pure
NumPy fallbacks in :mod:`repro.runtime.kernels.quantized`.  Both sides
compute the same integer accumulation exactly (the fallbacks upcast to
float, where every product and partial sum stays below 2**24 / 2**53, so
the float arithmetic is exact integer arithmetic), and the requant tail
uses the same rounding sequence: one multiply round, one add round per
term, round-half-even to integer.  The build pins ``-ffp-contract=off`` so
the compiler cannot fuse the multiply/add into an FMA, and ``rintf`` /
``rint`` match ``np.rint`` under the default rounding mode.

The shared object is cached inside the package (``_ccache/``, keyed by a
hash of the source and flags, ignored by git).  Builds are atomic
(tempfile + rename) so concurrent processes race benignly.  Any failure —
no compiler, sandboxed filesystem, exotic cc — degrades silently:
``available()`` returns ``False`` and the NumPy fallbacks serve the plan
with identical numerics.  ``REPRO_NATIVE=0`` disables the path outright.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile

__all__ = ["available", "dw_conv_q8", "dw_conv_q16", "requant_q8", "requant_q16"]

ENV_VAR = "REPRO_NATIVE"

_SOURCE = r"""
#include <stdint.h>
#include <math.h>
#include <string.h>

/* Depthwise NHWC convolution with implicit zero padding, int32 accumulate,
 * fused per-channel requantization (scale, bias, optional residual, clip,
 * round-half-even, narrow).  `acc` is caller scratch of ow*c int32.
 * Bounds are clipped per (row, tap) so the channel loop stays branch-free
 * and vectorisable. */
void dw_conv_q8(const int8_t *restrict x, const int8_t *restrict w,
                const float *restrict scale, const float *restrict bias,
                const int8_t *restrict res, float res_scale,
                int8_t *restrict out, int32_t *restrict acc,
                int n, int h, int wd, int c, int k, int s, int p,
                int oh, int ow, float lo, float hi)
{
    const long in_row = (long)wd * c;
    const long out_img = (long)oh * ow * c;
    for (int b = 0; b < n; ++b) {
        const int8_t *xb = x + (long)b * h * in_row;
        int8_t *ob = out + (long)b * out_img;
        const int8_t *rb = res ? res + (long)b * out_img : 0;
        for (int y = 0; y < oh; ++y) {
            memset(acc, 0, (size_t)ow * c * sizeof(int32_t));
            for (int i = 0; i < k; ++i) {
                int yi = y * s + i - p;
                if (yi < 0 || yi >= h) continue;
                const int8_t *xrow = xb + (long)yi * in_row;
                for (int j = 0; j < k; ++j) {
                    int xo_lo = 0, xo_hi = ow;
                    if (j - p < 0) xo_lo = (p - j + s - 1) / s;
                    if (s * (ow - 1) + j - p >= wd) xo_hi = (wd - 1 - j + p) / s + 1;
                    const int8_t *wp = w + ((long)i * k + j) * c;
                    for (int xo = xo_lo; xo < xo_hi; ++xo) {
                        const int8_t *xp = xrow + (long)(xo * s + j - p) * c;
                        int32_t *ap = acc + (long)xo * c;
                        #pragma omp simd
                        for (int ch = 0; ch < c; ++ch)
                            ap[ch] += (int32_t)xp[ch] * (int32_t)wp[ch];
                    }
                }
            }
            int8_t *op = ob + (long)y * ow * c;
            const int8_t *rp = rb ? rb + (long)y * ow * c : 0;
            for (int xo = 0; xo < ow; ++xo) {
                const int32_t *ap = acc + (long)xo * c;
                int8_t *o = op + (long)xo * c;
                if (rp) {
                    const int8_t *r = rp + (long)xo * c;
                    #pragma omp simd
                    for (int ch = 0; ch < c; ++ch) {
                        float v = (float)ap[ch] * scale[ch];
                        v = v + bias[ch];
                        float t = (float)r[ch] * res_scale;
                        v = v + t;
                        v = v < lo ? lo : (v > hi ? hi : v);
                        o[ch] = (int8_t)rintf(v);
                    }
                } else {
                    #pragma omp simd
                    for (int ch = 0; ch < c; ++ch) {
                        float v = (float)ap[ch] * scale[ch];
                        v = v + bias[ch];
                        v = v < lo ? lo : (v > hi ? hi : v);
                        o[ch] = (int8_t)rintf(v);
                    }
                }
            }
        }
    }
}

/* int16 twin: int64 accumulate, double requant. */
void dw_conv_q16(const int16_t *restrict x, const int16_t *restrict w,
                 const double *restrict scale, const double *restrict bias,
                 const int16_t *restrict res, double res_scale,
                 int16_t *restrict out, int64_t *restrict acc,
                 int n, int h, int wd, int c, int k, int s, int p,
                 int oh, int ow, double lo, double hi)
{
    const long in_row = (long)wd * c;
    const long out_img = (long)oh * ow * c;
    for (int b = 0; b < n; ++b) {
        const int16_t *xb = x + (long)b * h * in_row;
        int16_t *ob = out + (long)b * out_img;
        const int16_t *rb = res ? res + (long)b * out_img : 0;
        for (int y = 0; y < oh; ++y) {
            memset(acc, 0, (size_t)ow * c * sizeof(int64_t));
            for (int i = 0; i < k; ++i) {
                int yi = y * s + i - p;
                if (yi < 0 || yi >= h) continue;
                const int16_t *xrow = xb + (long)yi * in_row;
                for (int j = 0; j < k; ++j) {
                    int xo_lo = 0, xo_hi = ow;
                    if (j - p < 0) xo_lo = (p - j + s - 1) / s;
                    if (s * (ow - 1) + j - p >= wd) xo_hi = (wd - 1 - j + p) / s + 1;
                    const int16_t *wp = w + ((long)i * k + j) * c;
                    for (int xo = xo_lo; xo < xo_hi; ++xo) {
                        const int16_t *xp = xrow + (long)(xo * s + j - p) * c;
                        int64_t *ap = acc + (long)xo * c;
                        #pragma omp simd
                        for (int ch = 0; ch < c; ++ch)
                            ap[ch] += (int64_t)xp[ch] * (int64_t)wp[ch];
                    }
                }
            }
            int16_t *op = ob + (long)y * ow * c;
            const int16_t *rp = rb ? rb + (long)y * ow * c : 0;
            for (int xo = 0; xo < ow; ++xo) {
                const int64_t *ap = acc + (long)xo * c;
                int16_t *o = op + (long)xo * c;
                if (rp) {
                    const int16_t *r = rp + (long)xo * c;
                    #pragma omp simd
                    for (int ch = 0; ch < c; ++ch) {
                        double v = (double)ap[ch] * scale[ch];
                        v = v + bias[ch];
                        double t = (double)r[ch] * res_scale;
                        v = v + t;
                        v = v < lo ? lo : (v > hi ? hi : v);
                        o[ch] = (int16_t)rint(v);
                    }
                } else {
                    #pragma omp simd
                    for (int ch = 0; ch < c; ++ch) {
                        double v = (double)ap[ch] * scale[ch];
                        v = v + bias[ch];
                        v = v < lo ? lo : (v > hi ? hi : v);
                        o[ch] = (int16_t)rint(v);
                    }
                }
            }
        }
    }
}

/* Standalone requant tail for the float-accumulate fallback kernels: one
 * fused pass over a flat (rows, channels) accumulator instead of NumPy's
 * five (scale, bias, clip, round, narrow).  `acc` holds exact integer
 * values in float, so the sequence below is bitwise identical to the NumPy
 * epilogue (same per-op rounding, -ffp-contract=off). */
void requant_q8(const float *restrict acc, const float *restrict scale,
                const float *restrict bias, const int8_t *restrict res,
                float res_scale, int8_t *restrict out,
                long rows, int c, float lo, float hi)
{
    for (long m = 0; m < rows; ++m) {
        const float *ap = acc + m * c;
        int8_t *o = out + m * c;
        if (res) {
            const int8_t *r = res + m * c;
            #pragma omp simd
            for (int ch = 0; ch < c; ++ch) {
                float v = ap[ch] * scale[ch];
                v = v + bias[ch];
                float t = (float)r[ch] * res_scale;
                v = v + t;
                v = v < lo ? lo : (v > hi ? hi : v);
                o[ch] = (int8_t)rintf(v);
            }
        } else {
            #pragma omp simd
            for (int ch = 0; ch < c; ++ch) {
                float v = ap[ch] * scale[ch];
                v = v + bias[ch];
                v = v < lo ? lo : (v > hi ? hi : v);
                o[ch] = (int8_t)rintf(v);
            }
        }
    }
}

/* int16 twin: double accumulator/requant. */
void requant_q16(const double *restrict acc, const double *restrict scale,
                 const double *restrict bias, const int16_t *restrict res,
                 double res_scale, int16_t *restrict out,
                 long rows, int c, double lo, double hi)
{
    for (long m = 0; m < rows; ++m) {
        const double *ap = acc + m * c;
        int16_t *o = out + m * c;
        if (res) {
            const int16_t *r = res + m * c;
            #pragma omp simd
            for (int ch = 0; ch < c; ++ch) {
                double v = ap[ch] * scale[ch];
                v = v + bias[ch];
                double t = (double)r[ch] * res_scale;
                v = v + t;
                v = v < lo ? lo : (v > hi ? hi : v);
                o[ch] = (int16_t)rint(v);
            }
        } else {
            #pragma omp simd
            for (int ch = 0; ch < c; ++ch) {
                double v = ap[ch] * scale[ch];
                v = v + bias[ch];
                v = v < lo ? lo : (v > hi ? hi : v);
                o[ch] = (int16_t)rint(v);
            }
        }
    }
}
"""

#: ``-ffp-contract=off`` is load-bearing: a fused multiply-add in the requant
#: tail would round differently from the NumPy fallbacks and break the
#: bitwise C-vs-NumPy contract.
_CFLAGS = (
    "-O3", "-march=native", "-fopenmp-simd", "-fno-math-errno",
    "-ffp-contract=off", "-shared", "-fPIC",
)

_lib = None
_load_attempted = False


def _cache_path():
    tag = hashlib.sha256(
        (_SOURCE + "\x00" + " ".join(_CFLAGS)).encode()
    ).hexdigest()[:16]
    return os.path.join(os.path.dirname(__file__), "_ccache", "dwq_{}.so".format(tag))


def _build(so_path):
    cache_dir = os.path.dirname(so_path)
    os.makedirs(cache_dir, exist_ok=True)
    fd, tmp_c = tempfile.mkstemp(suffix=".c", dir=cache_dir)
    tmp_so = tmp_c[:-2] + ".so"
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(_SOURCE)
        subprocess.run(
            ["cc", *_CFLAGS, tmp_c, "-o", tmp_so],
            check=True, capture_output=True, timeout=120,
        )
        os.replace(tmp_so, so_path)  # atomic: concurrent builders race benignly
    finally:
        for path in (tmp_c, tmp_so):
            try:
                os.unlink(path)
            except OSError:
                pass


def _bind(lib):
    i8p = ctypes.POINTER(ctypes.c_int8)
    i16p = ctypes.POINTER(ctypes.c_int16)
    f32p = ctypes.POINTER(ctypes.c_float)
    f64p = ctypes.POINTER(ctypes.c_double)
    i32p = ctypes.POINTER(ctypes.c_int32)
    i64p = ctypes.POINTER(ctypes.c_int64)
    ints = [ctypes.c_int] * 9
    lib.dw_conv_q8.restype = None
    lib.dw_conv_q8.argtypes = [
        i8p, i8p, f32p, f32p, i8p, ctypes.c_float, i8p, i32p,
        *ints, ctypes.c_float, ctypes.c_float,
    ]
    lib.dw_conv_q16.restype = None
    lib.dw_conv_q16.argtypes = [
        i16p, i16p, f64p, f64p, i16p, ctypes.c_double, i16p, i64p,
        *ints, ctypes.c_double, ctypes.c_double,
    ]
    lib.requant_q8.restype = None
    lib.requant_q8.argtypes = [
        f32p, f32p, f32p, i8p, ctypes.c_float, i8p,
        ctypes.c_long, ctypes.c_int, ctypes.c_float, ctypes.c_float,
    ]
    lib.requant_q16.restype = None
    lib.requant_q16.argtypes = [
        f64p, f64p, f64p, i16p, ctypes.c_double, i16p,
        ctypes.c_long, ctypes.c_int, ctypes.c_double, ctypes.c_double,
    ]


def _load():
    """The loaded library, building it on first use (``None`` on any failure)."""
    global _lib, _load_attempted
    if _load_attempted:
        return _lib
    _load_attempted = True
    if os.environ.get(ENV_VAR, "1").strip() == "0":
        return None
    try:
        so_path = _cache_path()
        if not os.path.exists(so_path):
            _build(so_path)
        lib = ctypes.CDLL(so_path)
        _bind(lib)
        _lib = lib
    except Exception:
        _lib = None
    return _lib


def available():
    """Whether the compiled depthwise quant kernels can be used."""
    return _load() is not None


def _ptr(arr, ctype):
    return arr.ctypes.data_as(ctypes.POINTER(ctype))


def dw_conv_q8(x, w_taps, scale, bias, res, res_scale, out, acc,
               k, stride, padding, lo, hi):
    """int8 NHWC depthwise conv + fused requant (see the C source).

    ``x``/``out``/``res`` are contiguous NHWC int8; ``w_taps`` is the
    tap-major ``(k*k, C)`` int8 weight; ``acc`` is ``ow*C`` int32 scratch.
    """
    n, h, wd, c = x.shape
    oh, ow = out.shape[1], out.shape[2]
    _lib.dw_conv_q8(
        _ptr(x, ctypes.c_int8), _ptr(w_taps, ctypes.c_int8),
        _ptr(scale, ctypes.c_float), _ptr(bias, ctypes.c_float),
        _ptr(res, ctypes.c_int8) if res is not None else None,
        ctypes.c_float(res_scale),
        _ptr(out, ctypes.c_int8), _ptr(acc, ctypes.c_int32),
        n, h, wd, c, k, stride, padding, oh, ow,
        ctypes.c_float(lo), ctypes.c_float(hi),
    )


def dw_conv_q16(x, w_taps, scale, bias, res, res_scale, out, acc,
                k, stride, padding, lo, hi):
    """int16 twin of :func:`dw_conv_q8` (int64 accumulate, double requant)."""
    n, h, wd, c = x.shape
    oh, ow = out.shape[1], out.shape[2]
    _lib.dw_conv_q16(
        _ptr(x, ctypes.c_int16), _ptr(w_taps, ctypes.c_int16),
        _ptr(scale, ctypes.c_double), _ptr(bias, ctypes.c_double),
        _ptr(res, ctypes.c_int16) if res is not None else None,
        ctypes.c_double(res_scale),
        _ptr(out, ctypes.c_int16), _ptr(acc, ctypes.c_int64),
        n, h, wd, c, k, stride, padding, oh, ow,
        ctypes.c_double(lo), ctypes.c_double(hi),
    )


def requant_q8(acc, scale, bias, res, res_scale, out, lo, hi):
    """Fused requant pass over a contiguous float32 accumulator.

    ``acc``/``out``/``res`` are C-contiguous with ``channels`` innermost and
    the same leading extent; any leading shape is treated as flat rows.
    """
    c = acc.shape[-1]
    _lib.requant_q8(
        _ptr(acc, ctypes.c_float), _ptr(scale, ctypes.c_float),
        _ptr(bias, ctypes.c_float),
        _ptr(res, ctypes.c_int8) if res is not None else None,
        ctypes.c_float(res_scale), _ptr(out, ctypes.c_int8),
        acc.size // c, c, ctypes.c_float(lo), ctypes.c_float(hi),
    )


def requant_q16(acc, scale, bias, res, res_scale, out, lo, hi):
    """int16 twin of :func:`requant_q8` (double accumulator)."""
    c = acc.shape[-1]
    _lib.requant_q16(
        _ptr(acc, ctypes.c_double), _ptr(scale, ctypes.c_double),
        _ptr(bias, ctypes.c_double),
        _ptr(res, ctypes.c_int16) if res is not None else None,
        ctypes.c_double(res_scale), _ptr(out, ctypes.c_int16),
        acc.size // c, c, ctypes.c_double(lo), ctypes.c_double(hi),
    )
