"""Lightweight per-signature autotuner for the conv kernel registry.

When dispatch runs in ``auto`` mode (the default), the first plan finalised
against a new signature times every supporting kernel on buffers of the
plan's real geometry — one warmup call, then best-of-``REPS`` — and caches
the winner in-process, so each distinct ``(shape, dtype, direction)``
signature pays the timing cost exactly once per process.  Subsequent
compiles (plan-cache misses on the same signature, other engines, training
plans of the same net) reuse the cached choice.

Candidates are timed on *standalone* zero-filled buffers, not the plan's
slot buffers: a losing candidate must not leave persistent allocations
behind in the plan, and zero inputs keep the timing free of subnormal /
NaN artefacts from uninitialised memory.  Only the forward pass is timed —
for ``train`` signatures the backward rides with the forward winner (the
two directions share their saved state, and forward cost dominates the
shapes this runtime compiles).

A challenger only dethrones the general fallback when it wins by a clear
relative margin (:data:`MARGIN`), so near-ties resolve deterministically:
two processes on the same host pick the same kernel unless one genuinely
wins.  Kernels agree only up to float reassociation (1e-12 f64 / 1e-6
f32), so runs that need *bit*-reproducible trajectories across machines
should pin ``REPRO_KERNELS=im2col`` (or any fixed kernel) instead of
relying on timing.

The cache is keyed by the full :class:`~repro.runtime.kernels.registry.ConvSpec`
(which includes the direction), so ``repro.runtime.cache_stats()`` can report
the chosen kernel and the per-candidate timings for every signature seen.
"""

from __future__ import annotations

import os
import time

import numpy as np

__all__ = [
    "choose",
    "cost_for",
    "transpose_seconds",
    "timings_for",
    "failures_for",
    "blas_thread_count",
    "threads_for",
    "clear_cache",
    "WARMUP",
    "REPS",
]

#: Warmup calls and timed repetitions per candidate (best-of).
WARMUP = 1
REPS = 3

#: A challenger must beat the deterministic fallback (the last-registered
#: kernel, i.e. ``im2col``) by this relative margin to win.  Near-ties stay
#: on the fallback, so timing jitter on noisy hosts cannot flip the choice
#: between processes unless a kernel genuinely wins.
MARGIN = 0.95

#: spec -> {"kernel": name or None, "timings": {name: best seconds},
#: "chosen": bool}.  ``cost_for`` (the layout pass) may populate timings
#: before dispatch ever asks for a winner; only :func:`choose` sets
#: ``chosen``, so the first real dispatch still reports ``"autotuned"``
#: even when it reuses pre-measured timings.
_CACHE = {}

#: (nchw shape, dtype) -> measured seconds for one materialised transpose.
_TRANSPOSE_CACHE = {}


class _BenchArena:
    """Duck-typed stand-in for a :class:`~repro.runtime.plan.Plan` allocator.

    Kernels draw persistent buffers via ``alloc`` and transient workspaces
    via ``workspace``; during benchmarking both are plain temporary numpy
    allocations that die with the arena.
    """

    def __init__(self, spec):
        self.dtype = np.dtype(spec.dtype)
        self.train = spec.train

    def alloc(self, shape, dtype=None, zero=False):
        dtype = self.dtype if dtype is None else np.dtype(dtype)
        if zero:
            return np.zeros(tuple(int(d) for d in shape), dtype=dtype)
        return np.empty(tuple(int(d) for d in shape), dtype=dtype)

    def workspace(self, shape, dtype=None, channel=0):
        return self.alloc(shape, dtype=dtype)


class _NullEpilogue:
    """No-op epilogue used while timing (kernels still call it per tile)."""

    blockwise = True

    def apply(self, out, lanes=None):
        return out


NULL_EPILOGUE = _NullEpilogue()


def _best_of(fn, warmup=WARMUP, reps=REPS):
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def blas_thread_count():
    """Effective upper bound on the host BLAS thread count.

    NumPy's BLAS honours the standard thread-count environment variables;
    when none is set it uses every core the process can see.  The measured
    balance between the threaded GEMM kernels and the single-threaded
    per-tap kernels shifts with this number, so every timing run records it
    (see :func:`threads_for`): a selection table committed on a 1-core
    container is visibly stale on a 16-core serving host.
    """
    for var in ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS", "MKL_NUM_THREADS"):
        value = os.environ.get(var)
        if value:
            try:
                return max(1, int(value))
            except ValueError:
                continue
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _entry(spec):
    entry = _CACHE.get(spec)
    if entry is None:
        entry = {"kernel": None, "timings": {}, "failures": {}, "chosen": False,
                 "blas_threads": None}
        _CACHE[spec] = entry
    return entry


def _time_kernels(spec, cands):
    """Best-of forward seconds per candidate on standalone buffers.

    A candidate that raises (or fills ``out`` with non-finite values) is not
    allowed to take the process down — or worse, to win: its timing is
    recorded as ``inf``, the failure reason lands in the signature's cache
    entry, and the kernel is quarantined for the rest of the session (the
    general fallback excepted; see
    :func:`~repro.runtime.kernels.registry.quarantine_kernel`).  The
    ``kernel_error`` fault makes the named candidate raise here on demand.
    """
    from ...reliability.faults import get_injector
    from .registry import quarantine_kernel

    act_dtype = spec.act_dtype
    x = np.zeros(spec.in_shape, dtype=act_dtype)
    weight = np.zeros(
        (spec.out_channels, spec.in_channels // spec.groups, spec.kernel, spec.kernel),
        dtype=act_dtype,
    )
    out = np.empty(spec.out_shape, dtype=act_dtype)
    if spec.quant:
        # Quantized kernels fuse a real per-channel requant tail (the C
        # kernels read the scale/bias arrays directly), so time them against
        # one rather than the no-op float epilogue.
        from .quantized import RequantEpilogue

        epilogue = RequantEpilogue(spec.out_channels, spec.acc_dtype, spec.qmax)
    else:
        epilogue = NULL_EPILOGUE
    entry = _entry(spec)
    entry["blas_threads"] = blas_thread_count()
    injector = get_injector()
    timings = {}
    for cls in cands:
        try:
            if injector is not None and injector.should_fire("kernel_error", target=cls.name):
                raise RuntimeError("injected kernel_error fault")
            bound = cls(spec, _BenchArena(spec))
            timing = _best_of(lambda: bound.forward(x, weight, out, epilogue))
            if not np.all(np.isfinite(np.asarray(out, dtype=np.float64))):
                raise RuntimeError("kernel produced non-finite output on zero input")
        except Exception as error:  # noqa: BLE001 — any candidate crash degrades
            timings[cls.name] = float("inf")
            entry.setdefault("failures", {})[cls.name] = "{}: {}".format(
                type(error).__name__, error
            )
            quarantine_kernel(cls.name, entry["failures"][cls.name])
        else:
            timings[cls.name] = timing
    return timings


def choose(spec, cands):
    """The winning kernel class for ``spec`` among ``cands``.

    Returns ``(kernel_cls, source)`` where ``source`` is ``"autotuned"`` (a
    fresh decision, possibly reusing timings pre-measured by ``cost_for``),
    ``"cached"`` (a previous *decision* is reused), or ``"only"`` (a single
    candidate needed no timing).
    """
    entry = _CACHE.get(spec)
    if entry is not None and entry.get("chosen"):
        by_name = {cls.name: cls for cls in cands}
        winner = by_name.get(entry["kernel"])
        if winner is not None:
            return winner, "cached"
    entry = _entry(spec)
    if len(cands) == 1:
        entry["kernel"] = cands[0].name
        entry["chosen"] = True
        return cands[0], "only"

    missing = [cls for cls in cands if cls.name not in entry["timings"]]
    if missing:
        entry["timings"].update(_time_kernels(spec, missing))
    timings = entry["timings"]
    # The last-registered candidate (the general fallback) is the incumbent:
    # a challenger must beat it by MARGIN so near-ties resolve
    # deterministically regardless of timing jitter.
    winner = cands[-1]
    for cls in cands[:-1]:
        if timings[cls.name] < timings[winner.name] * MARGIN:
            winner = cls
    entry["kernel"] = winner.name
    entry["chosen"] = True
    return winner, "autotuned"


def cost_for(spec, cands):
    """Best candidate forward seconds for ``spec`` among ``cands``.

    Times candidates missing from the cache and stores the measurements, but
    does *not* decide a winner — dispatch's first :func:`choose` call on the
    signature still reports ``"autotuned"``.
    """
    entry = _entry(spec)
    missing = [cls for cls in cands if cls.name not in entry["timings"]]
    if missing:
        entry["timings"].update(_time_kernels(spec, missing))
    return min(entry["timings"][cls.name] for cls in cands)


def transpose_seconds(shape, dtype):
    """Measured seconds for one materialised NCHW<->NHWC transpose.

    ``shape`` is the logical NCHW slot shape.  Both directions cost the same
    copy, so one measurement (cached per shape/dtype) serves either boundary
    the layout pass weighs.
    """
    key = (tuple(int(d) for d in shape), str(np.dtype(dtype)))
    hit = _TRANSPOSE_CACHE.get(key)
    if hit is not None:
        return hit
    n, c, h, w = key[0]
    src = np.zeros(key[0], dtype=key[1])
    dst = np.empty((n, h, w, c), dtype=key[1])
    cost = _best_of(lambda: np.copyto(dst, np.moveaxis(src, 1, 3)))
    _TRANSPOSE_CACHE[key] = cost
    return cost


def timings_for(spec):
    """Cached per-candidate timings for ``spec`` (``None`` if never tuned)."""
    entry = _CACHE.get(spec)
    if entry is None or not entry["timings"]:
        return None
    return dict(entry["timings"])


def failures_for(spec):
    """``{kernel: reason}`` of candidates that crashed while tuning ``spec``."""
    entry = _CACHE.get(spec)
    if entry is None or not entry.get("failures"):
        return None
    return dict(entry["failures"])


def threads_for(spec):
    """BLAS thread count the timings of ``spec`` were measured under.

    ``None`` when the signature was never timed (single candidate, pinned or
    heuristic selection).
    """
    entry = _CACHE.get(spec)
    if entry is None:
        return None
    return entry.get("blas_threads")


def clear_cache():
    """Forget every tuning decision (tests; re-tuning after CPU migration)."""
    _CACHE.clear()
    _TRANSPOSE_CACHE.clear()
