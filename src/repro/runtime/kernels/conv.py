"""GEMM-backed convolution kernels: the general fallback and a blocked variant.

:class:`GemmIm2colKernel` is the runtime's original convolution path, moved
out of the plan step so it competes in the registry like everything else:
copy the input into a persistent zero-padded buffer, gather patches into an
im2col workspace laid out ``(N, C, kh, kw, oh, ow)``, then one batched GEMM
per groups class writing straight into the NCHW output.  It supports every
signature in both directions and registers **last**, making it the dispatch
fallback.

:class:`BlockedIm2colKernel` runs the same math lane-block by lane-block,
sizing the block so the gathered column matrix stays L2-resident: the GEMM
then reads cache-warm columns instead of streaming them back from DRAM, and
the fused epilogue runs on the block while its output tile is still hot.
On small-batch rollout shapes this is the strided-view gather that wins the
early high-resolution depthwise/grouped cells (the wide late cells go to the
direct kernel in :mod:`repro.runtime.kernels.depthwise`).
"""

from __future__ import annotations

import numpy as np

from ...nn import vjp
from .registry import (
    BLOCK_TARGET_BYTES,
    SCRATCH_GEMM,
    SCRATCH_MAIN,
    SCRATCH_PAD,
    ConvKernel,
    register_kernel,
)

__all__ = ["GemmIm2colKernel", "BlockedIm2colKernel"]


def _patches_view(padded, n, c, k, oh, ow, stride):
    """The ``(n, c, k, k, oh, ow)`` im2col gather view of a padded buffer."""
    st = padded.strides
    return np.lib.stride_tricks.as_strided(
        padded,
        shape=(n, c, k, k, oh, ow),
        strides=(st[0], st[1], st[2], st[3], st[2] * stride, st[3] * stride),
    )


def _grouped_gemm(weight, cols, out, spec, n):
    """Dispatch the forward GEMM for one (sub-)batch of gathered columns."""
    c = spec.in_channels
    cout = spec.out_channels
    k = spec.kernel
    groups = spec.groups
    oh, ow = spec.out_height, spec.out_width
    if groups == 1:
        # (C_out, C*k*k) @ (N, C*k*k, oh*ow) -> (N, C_out, oh*ow).
        np.matmul(
            weight.reshape(cout, -1),
            cols.reshape(n, c * k * k, oh * ow),
            out=out.reshape(n, cout, oh * ow),
        )
    elif groups == c == cout:
        # Depthwise: (C, 1, k*k) @ (N, C, k*k, oh*ow) -> (N, C, 1, oh*ow).
        np.matmul(
            weight.reshape(c, 1, k * k),
            cols.reshape(n, c, k * k, oh * ow),
            out=out.reshape(n, c, 1, oh * ow),
        )
    else:
        cin_g = c // groups
        cout_g = cout // groups
        cols4d = cols.reshape(n, groups, cin_g * k * k, oh * ow)
        out4d = out.reshape(n, groups, cout_g, oh * ow)
        w_mats = weight.reshape(groups, cout_g, cin_g * k * k)
        for g in range(groups):
            np.matmul(w_mats[g], cols4d[:, g], out=out4d[:, g])


@register_kernel
class BlockedIm2colKernel(ConvKernel):
    """Lane-blocked im2col + GEMM with an L2-resident column matrix."""

    name = "im2col_block"
    trains = False  # training plans keep the full column matrix as saved state

    @classmethod
    def _block(cls, spec):
        """Lanes per block so one block's working set fits the cache target."""
        if spec.pointwise:
            # No gather: the working set is the input tile (read by the GEMM)
            # plus the output tile (GEMM write + epilogue).
            lane_bytes = (
                (spec.in_channels + spec.out_channels)
                * spec.out_height * spec.out_width * spec.itemsize
            )
        else:
            lane_bytes = (
                spec.in_channels * spec.kernel * spec.kernel
                * spec.out_height * spec.out_width * spec.itemsize
            )
        return max(1, min(spec.batch, BLOCK_TARGET_BYTES // max(lane_bytes, 1)))

    @classmethod
    def supports(cls, spec):
        if spec.train:
            return False
        # Blocking only differs from the whole-batch path when it actually
        # splits the batch; otherwise skip the duplicate autotune candidate.
        return cls._block(spec) < spec.batch

    @classmethod
    def scratch_requests(cls, spec):
        if spec.pointwise:
            return ()
        block = cls._block(spec)
        item = spec.itemsize
        cols = (
            block * spec.in_channels * spec.kernel * spec.kernel
            * spec.out_height * spec.out_width * item
        )
        requests = [(SCRATCH_MAIN, cols)]
        if spec.padding > 0:
            padded = (
                block * spec.in_channels
                * (spec.height + 2 * spec.padding)
                * (spec.width + 2 * spec.padding) * item
            )
            requests.append((SCRATCH_PAD, padded))
        return tuple(requests)

    def __init__(self, spec, plan):
        super().__init__(spec, plan)
        c = spec.in_channels
        h, w, p = spec.height, spec.width, spec.padding
        k = spec.kernel
        self._b = self._block(spec)
        # Padding happens per lane block in a scratch workspace (the pad
        # writes stay cache-resident and no persistent full-batch padded
        # buffer is carried), mirroring the depthwise kernel.
        self._padded = (
            plan.workspace((self._b, c, h + 2 * p, w + 2 * p), channel=SCRATCH_PAD)
            if p > 0
            else None
        )
        self._cols = (
            None
            if spec.pointwise
            else plan.workspace(
                (self._b, c, k, k, spec.out_height, spec.out_width), channel=SCRATCH_MAIN
            )
        )

    def forward(self, x, weight, out, epilogue):
        spec = self.spec
        n, c = spec.batch, spec.in_channels
        h, w, p, k, s = spec.height, spec.width, spec.padding, spec.kernel, spec.stride
        oh, ow = spec.out_height, spec.out_width
        blockwise = epilogue.blockwise
        for n0 in range(0, n, self._b):
            n1 = min(n0 + self._b, n)
            b = n1 - n0
            if self._cols is None:
                cols = x[n0:n1]
            else:
                src = x[n0:n1]
                if self._padded is not None:
                    pad = self._padded[:b]
                    # The scratch arena is shared with other steps, so the
                    # padding border must be re-zeroed per block.
                    pad[:, :, :p] = 0.0
                    pad[:, :, p + h:] = 0.0
                    pad[:, :, p:p + h, :p] = 0.0
                    pad[:, :, p:p + h, p + w:] = 0.0
                    pad[:, :, p:p + h, p:p + w] = src
                    src = pad
                cols = self._cols[:b]
                np.copyto(cols, _patches_view(src, b, c, k, oh, ow, s))
            _grouped_gemm(weight, cols, out[n0:n1], spec, b)
            if blockwise:
                epilogue.apply(out[n0:n1], lanes=slice(n0, n1))
        if not blockwise:
            epilogue.apply(out)


@register_kernel
class GemmIm2colKernel(ConvKernel):
    """Whole-batch im2col + batched GEMM; the total fallback (fwd + VJPs).

    Pointwise stride-1 convolutions skip the gather entirely (the input
    buffer itself is the column matrix).  In training plans the column
    workspace is plan-persistent — it doubles as the saved input patches the
    weight VJP contracts against; the input VJP is a GEMM into a column-
    gradient workspace followed by the ``col2im`` scatter of
    :func:`repro.nn.vjp.col2im_nchw_accumulate`.
    """

    name = "im2col"
    trains = True

    @classmethod
    def supports(cls, spec):
        return True

    @classmethod
    def scratch_requests(cls, spec):
        if spec.pointwise or spec.train:
            # Pointwise needs no columns; training columns are persistent.
            return ()
        cols = (
            spec.batch * spec.in_channels * spec.kernel * spec.kernel
            * spec.out_height * spec.out_width * spec.itemsize
        )
        return ((SCRATCH_MAIN, cols),)

    @classmethod
    def _backward_ws_shapes(cls, spec, input_grad_needed):
        """``(gx, gw, gcols, gpad)`` workspace shapes (``None`` when unused)."""
        n, c = spec.batch, spec.in_channels
        cout, groups, k = spec.out_channels, spec.groups, spec.kernel
        h, w, p = spec.height, spec.width, spec.padding
        oh, ow = spec.out_height, spec.out_width
        gx = gw = gcols = gpad = None
        if spec.pointwise:
            gx = (n, c, oh * ow) if input_grad_needed else None
            gw = (n, cout, c)
        else:
            gcols = (n, c, k, k, oh, ow) if input_grad_needed else None
            gpad = (n, c, h + 2 * p, w + 2 * p) if (p > 0 and input_grad_needed) else None
            if groups == 1:
                gw = (n, cout, c * k * k)
            elif groups == c == cout:
                gw = (n, c, 1, k * k)
            else:
                gw = (n, groups, cout // groups, (c // groups) * k * k)
        return gx, gw, gcols, gpad

    @classmethod
    def backward_scratch_requests(cls, spec, input_grad_needed):
        requests = []
        gx, gw, gcols, gpad = cls._backward_ws_shapes(spec, input_grad_needed)
        for channel, shape in ((SCRATCH_MAIN, gx), (SCRATCH_GEMM, gw),
                               (SCRATCH_MAIN, gcols), (SCRATCH_PAD, gpad)):
            if shape is not None:
                requests.append((channel, int(np.prod(shape)) * spec.itemsize))
        return requests

    def __init__(self, spec, plan):
        super().__init__(spec, plan)
        n, c = spec.batch, spec.in_channels
        h, w, p, k = spec.height, spec.width, spec.padding, spec.kernel
        self._padded = (
            plan.alloc((n, c, h + 2 * p, w + 2 * p), zero=True) if p > 0 else None
        )
        # The column workspace is transient in inference plans (dead once the
        # GEMM consumed it) and may live in the plan's shared scratch arena;
        # training plans keep it as the saved input patches for backward.
        if spec.pointwise:
            self._cols = None
        elif spec.train:
            self._cols = plan.alloc((n, c, k, k, spec.out_height, spec.out_width))
        else:
            self._cols = plan.workspace(
                (n, c, k, k, spec.out_height, spec.out_width), channel=SCRATCH_MAIN
            )

    def forward(self, x, weight, out, epilogue):
        spec = self.spec
        n, c = spec.batch, spec.in_channels
        h, w, p, k, s = spec.height, spec.width, spec.padding, spec.kernel, spec.stride
        if spec.pointwise:
            cols = x
        else:
            if self._padded is not None:
                self._padded[:, :, p:p + h, p:p + w] = x
                x = self._padded
            np.copyto(
                self._cols, _patches_view(x, n, c, k, spec.out_height, spec.out_width, s)
            )
            cols = self._cols
        _grouped_gemm(weight, cols, out, spec, n)
        epilogue.apply(out)

    def allocate_backward(self, plan, input_grad_needed):
        self._input_grad_needed = bool(input_grad_needed)
        gx, gw, gcols, gpad = self._backward_ws_shapes(self.spec, input_grad_needed)
        self._gx_ws = plan.workspace(gx, channel=SCRATCH_MAIN) if gx is not None else None
        self._gw_ws = plan.workspace(gw, channel=SCRATCH_GEMM)
        self._gcols = plan.workspace(gcols, channel=SCRATCH_MAIN) if gcols is not None else None
        self._gpad = plan.workspace(gpad, channel=SCRATCH_PAD) if gpad is not None else None

    def backward(self, gout, x, weight, gw, gin):
        spec = self.spec
        n, c = spec.batch, spec.in_channels
        cout, groups, k = spec.out_channels, spec.groups, spec.kernel
        h, w, s, p = spec.height, spec.width, spec.stride, spec.padding
        oh, ow = spec.out_height, spec.out_width
        gout3 = gout.reshape(n, cout, oh * ow)
        if spec.pointwise:
            x3 = x.reshape(n, c, oh * ow)
            w_mat = weight.reshape(cout, c)
            np.matmul(gout3, x3.transpose(0, 2, 1), out=self._gw_ws)
            gw.reshape(cout, c)[...] += self._gw_ws.sum(axis=0)
            if gin is not None:
                np.matmul(w_mat.T, gout3, out=self._gx_ws)
                gin += self._gx_ws.reshape(n, c, h, w)
            return
        cols = self._cols  # saved by the forward run
        if groups == 1:
            w_mat = weight.reshape(cout, c * k * k)
            cols3 = cols.reshape(n, c * k * k, oh * ow)
            np.matmul(gout3, cols3.transpose(0, 2, 1), out=self._gw_ws)
            gw.reshape(cout, c * k * k)[...] += self._gw_ws.sum(axis=0)
            if gin is not None:
                np.matmul(w_mat.T, gout3, out=self._gcols.reshape(n, c * k * k, oh * ow))
        elif groups == c == cout:
            w2 = weight.reshape(c, 1, k * k)
            cols4 = cols.reshape(n, c, k * k, oh * ow)
            gout4 = gout.reshape(n, c, 1, oh * ow)
            np.matmul(gout4, cols4.transpose(0, 1, 3, 2), out=self._gw_ws)
            gw.reshape(c, 1, k * k)[...] += self._gw_ws.sum(axis=0)
            if gin is not None:
                np.matmul(
                    w2.transpose(0, 2, 1), gout4, out=self._gcols.reshape(n, c, k * k, oh * ow)
                )
        else:
            cin_g = c // groups
            cout_g = cout // groups
            cols4 = cols.reshape(n, groups, cin_g * k * k, oh * ow)
            gout4 = gout.reshape(n, groups, cout_g, oh * ow)
            gcols4 = (
                self._gcols.reshape(n, groups, cin_g * k * k, oh * ow)
                if gin is not None
                else None
            )
            w_mats = weight.reshape(groups, cout_g, cin_g * k * k)
            for g in range(groups):
                np.matmul(gout4[:, g], cols4[:, g].transpose(0, 2, 1), out=self._gw_ws[:, g])
                if gin is not None:
                    np.matmul(w_mats[g].T, gout4[:, g], out=gcols4[:, g])
            gw.reshape(groups, cout_g, cin_g * k * k)[...] += self._gw_ws.sum(axis=0)
        if gin is not None:
            vjp.col2im_nchw_accumulate(self._gcols, gin, s, p, pad_ws=self._gpad)
