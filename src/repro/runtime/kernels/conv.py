"""GEMM-backed convolution kernels: the general fallback and a blocked variant.

:class:`GemmIm2colKernel` is the runtime's original convolution path, moved
out of the plan step so it competes in the registry like everything else:
copy the input into a persistent zero-padded buffer, gather patches into an
im2col workspace laid out ``(N, C, kh, kw, oh, ow)``, then one batched GEMM
per groups class writing straight into the NCHW output.  It supports every
signature in both directions and registers **last**, making it the dispatch
fallback.

:class:`BlockedIm2colKernel` runs the same math lane-block by lane-block,
sizing the block so the gathered column matrix stays L2-resident: the GEMM
then reads cache-warm columns instead of streaming them back from DRAM, and
the fused epilogue runs on the block while its output tile is still hot.
On small-batch rollout shapes this is the strided-view gather that wins the
early high-resolution depthwise/grouped cells (the wide late cells go to the
direct kernel in :mod:`repro.runtime.kernels.depthwise`).

:class:`PointwiseNHWCKernel` serves 1x1 convolutions on channels-last slots:
with channels trailing, the whole op is a single flat
``(N*H*W, C_in) @ (C_in, C_out)`` GEMM with no gather, no reshape copies and
trivially contiguous VJPs — the payoff the layout-assignment pass chases on
the GEMM-bound high-resolution cells.  :class:`BlockedIm2colKernel` also
accepts ungrouped NHWC inference signatures (the gather view permutes to
``(b, oh, ow, k, k, c)`` so each GEMM row is a contiguous patch).
"""

from __future__ import annotations

import numpy as np

from ...nn import vjp
from .registry import (
    BLOCK_TARGET_BYTES,
    SCRATCH_GEMM,
    SCRATCH_MAIN,
    SCRATCH_PAD,
    ConvKernel,
    register_kernel,
)

__all__ = ["GemmIm2colKernel", "BlockedIm2colKernel", "PointwiseNHWCKernel"]


def _patches_view(padded, n, c, k, oh, ow, stride):
    """The ``(n, c, k, k, oh, ow)`` im2col gather view of a padded buffer."""
    st = padded.strides
    return np.lib.stride_tricks.as_strided(
        padded,
        shape=(n, c, k, k, oh, ow),
        strides=(st[0], st[1], st[2], st[3], st[2] * stride, st[3] * stride),
    )


def _patches_view_nhwc(padded, n, c, k, oh, ow, stride):
    """The ``(n, oh, ow, c, k, k)`` gather view of a padded NHWC buffer.

    The patch axes are ordered channel-major — the same ``(C, kh, kw)``
    reduction order as the NCHW im2col GEMM — so the channels-last GEMM
    accumulates in the identical sequence and matches the reference kernels
    to rounding, not just to summation-reorder noise.
    """
    st = padded.strides
    return np.lib.stride_tricks.as_strided(
        padded,
        shape=(n, oh, ow, c, k, k),
        strides=(st[0], st[1] * stride, st[2] * stride, st[3], st[1], st[2]),
    )


def _grouped_gemm(weight, cols, out, spec, n):
    """Dispatch the forward GEMM for one (sub-)batch of gathered columns."""
    c = spec.in_channels
    cout = spec.out_channels
    k = spec.kernel
    groups = spec.groups
    oh, ow = spec.out_height, spec.out_width
    if groups == 1:
        # (C_out, C*k*k) @ (N, C*k*k, oh*ow) -> (N, C_out, oh*ow).
        np.matmul(
            weight.reshape(cout, -1),
            cols.reshape(n, c * k * k, oh * ow),
            out=out.reshape(n, cout, oh * ow),
        )
    elif groups == c == cout:
        # Depthwise: (C, 1, k*k) @ (N, C, k*k, oh*ow) -> (N, C, 1, oh*ow).
        np.matmul(
            weight.reshape(c, 1, k * k),
            cols.reshape(n, c, k * k, oh * ow),
            out=out.reshape(n, c, 1, oh * ow),
        )
    else:
        cin_g = c // groups
        cout_g = cout // groups
        cols4d = cols.reshape(n, groups, cin_g * k * k, oh * ow)
        out4d = out.reshape(n, groups, cout_g, oh * ow)
        w_mats = weight.reshape(groups, cout_g, cin_g * k * k)
        for g in range(groups):
            np.matmul(w_mats[g], cols4d[:, g], out=out4d[:, g])


@register_kernel
class BlockedIm2colKernel(ConvKernel):
    """Lane-blocked im2col + GEMM with an L2-resident column matrix."""

    name = "im2col_block"
    trains = False  # training plans keep the full column matrix as saved state

    @classmethod
    def _block(cls, spec):
        """Lanes per block so one block's working set fits the cache target."""
        if spec.pointwise:
            # No gather: the working set is the input tile (read by the GEMM)
            # plus the output tile (GEMM write + epilogue).
            lane_bytes = (
                (spec.in_channels + spec.out_channels)
                * spec.out_height * spec.out_width * spec.itemsize
            )
        else:
            lane_bytes = (
                spec.in_channels * spec.kernel * spec.kernel
                * spec.out_height * spec.out_width * spec.itemsize
            )
        return max(1, min(spec.batch, BLOCK_TARGET_BYTES // max(lane_bytes, 1)))

    @classmethod
    def supports(cls, spec):
        if spec.train:
            return False
        if spec.layout == "NHWC":
            # The whole-batch im2col fallback is NCHW-only, so serve every
            # ungrouped non-pointwise NHWC inference signature even when
            # blocking degenerates to the full batch (pointwise NHWC goes to
            # the flat-GEMM kernel below).
            return spec.groups == 1 and not spec.pointwise
        # Blocking only differs from the whole-batch path when it actually
        # splits the batch; otherwise skip the duplicate autotune candidate.
        return cls._block(spec) < spec.batch

    @classmethod
    def scratch_requests(cls, spec):
        if spec.pointwise:
            return ()
        block = cls._block(spec)
        item = spec.itemsize
        cols = (
            block * spec.in_channels * spec.kernel * spec.kernel
            * spec.out_height * spec.out_width * item
        )
        requests = [(SCRATCH_MAIN, cols)]
        if spec.padding > 0:
            padded = (
                block * spec.in_channels
                * (spec.height + 2 * spec.padding)
                * (spec.width + 2 * spec.padding) * item
            )
            requests.append((SCRATCH_PAD, padded))
        return tuple(requests)

    def __init__(self, spec, plan):
        super().__init__(spec, plan)
        c = spec.in_channels
        h, w, p = spec.height, spec.width, spec.padding
        k = spec.kernel
        oh, ow = spec.out_height, spec.out_width
        self._b = self._block(spec)
        # Padding happens per lane block in a scratch workspace (the pad
        # writes stay cache-resident and no persistent full-batch padded
        # buffer is carried), mirroring the depthwise kernel.
        if spec.layout == "NHWC":
            self._padded = (
                plan.workspace((self._b, h + 2 * p, w + 2 * p, c), channel=SCRATCH_PAD)
                if p > 0
                else None
            )
            self._cols = plan.workspace((self._b, oh, ow, c, k, k), channel=SCRATCH_MAIN)
            #: ``(C_out, C*k*k)`` weight matrix in patch order, refreshed from
            #: the live weight array every call (tiny next to the columns).
            self._wmat = plan.alloc((spec.out_channels, c * k * k))
            return
        self._padded = (
            plan.workspace((self._b, c, h + 2 * p, w + 2 * p), channel=SCRATCH_PAD)
            if p > 0
            else None
        )
        self._cols = (
            None
            if spec.pointwise
            else plan.workspace((self._b, c, k, k, oh, ow), channel=SCRATCH_MAIN)
        )

    def _forward_nhwc(self, x, weight, out, epilogue):
        spec = self.spec
        n, c = spec.batch, spec.in_channels
        h, w, p, k, s = spec.height, spec.width, spec.padding, spec.kernel, spec.stride
        oh, ow = spec.out_height, spec.out_width
        cout = spec.out_channels
        self._wmat[...] = weight.reshape(cout, -1)
        blockwise = epilogue.blockwise
        for n0 in range(0, n, self._b):
            n1 = min(n0 + self._b, n)
            b = n1 - n0
            src = x[n0:n1]
            if self._padded is not None:
                pad = self._padded[:b]
                # The scratch arena is shared with other steps, so the
                # padding border must be re-zeroed per block.
                pad[:, :p] = 0.0
                pad[:, p + h:] = 0.0
                pad[:, p:p + h, :p] = 0.0
                pad[:, p:p + h, p + w:] = 0.0
                pad[:, p:p + h, p:p + w, :] = src
                src = pad
            cols = self._cols[:b]
            np.copyto(cols, _patches_view_nhwc(src, b, c, k, oh, ow, s))
            # One flat GEMM per block straight into the NHWC output tile; the
            # channel-major patch order keeps the reduction sequence identical
            # to the NCHW reference GEMM.
            np.matmul(
                cols.reshape(b * oh * ow, c * k * k),
                self._wmat.T,
                out=out[n0:n1].reshape(b * oh * ow, cout),
            )
            if blockwise:
                epilogue.apply(out[n0:n1], lanes=slice(n0, n1))
        if not blockwise:
            epilogue.apply(out)

    def forward(self, x, weight, out, epilogue):
        spec = self.spec
        if spec.layout == "NHWC":
            return self._forward_nhwc(x, weight, out, epilogue)
        n, c = spec.batch, spec.in_channels
        h, w, p, k, s = spec.height, spec.width, spec.padding, spec.kernel, spec.stride
        oh, ow = spec.out_height, spec.out_width
        blockwise = epilogue.blockwise
        for n0 in range(0, n, self._b):
            n1 = min(n0 + self._b, n)
            b = n1 - n0
            if self._cols is None:
                cols = x[n0:n1]
            else:
                src = x[n0:n1]
                if self._padded is not None:
                    pad = self._padded[:b]
                    # The scratch arena is shared with other steps, so the
                    # padding border must be re-zeroed per block.
                    pad[:, :, :p] = 0.0
                    pad[:, :, p + h:] = 0.0
                    pad[:, :, p:p + h, :p] = 0.0
                    pad[:, :, p:p + h, p + w:] = 0.0
                    pad[:, :, p:p + h, p:p + w] = src
                    src = pad
                cols = self._cols[:b]
                np.copyto(cols, _patches_view(src, b, c, k, oh, ow, s))
            _grouped_gemm(weight, cols, out[n0:n1], spec, b)
            if blockwise:
                epilogue.apply(out[n0:n1], lanes=slice(n0, n1))
        if not blockwise:
            epilogue.apply(out)


@register_kernel
class PointwiseNHWCKernel(ConvKernel):
    """1x1 convolution over a channels-last slot as one flat GEMM (+ VJPs).

    With channels trailing, ``(N, H, W, C_in)`` *is* the column matrix: the
    forward is ``x2 @ W.T`` over ``(N*H*W, C_in)`` with no gather and no
    reshape copies, and both VJPs are equally direct GEMMs contracting
    against the plan's own slot buffers — no saved state at all.
    """

    name = "pointwise_nhwc"
    trains = True

    @classmethod
    def supports(cls, spec):
        return spec.layout == "NHWC" and spec.pointwise

    @classmethod
    def backward_scratch_requests(cls, spec, input_grad_needed):
        item = spec.itemsize
        requests = [(SCRATCH_GEMM, spec.out_channels * spec.in_channels * item)]
        if input_grad_needed:
            m = spec.batch * spec.out_height * spec.out_width
            requests.append((SCRATCH_MAIN, m * spec.in_channels * item))
        return tuple(requests)

    def forward(self, x, weight, out, epilogue):
        spec = self.spec
        c, cout = spec.in_channels, spec.out_channels
        np.matmul(x.reshape(-1, c), weight.reshape(cout, c).T, out=out.reshape(-1, cout))
        epilogue.apply(out)

    def allocate_backward(self, plan, input_grad_needed):
        spec = self.spec
        c, cout = spec.in_channels, spec.out_channels
        self._gw_ws = plan.workspace((cout, c), channel=SCRATCH_GEMM)
        self._gx_ws = None
        if input_grad_needed:
            m = spec.batch * spec.out_height * spec.out_width
            self._gx_ws = plan.workspace((m, c), channel=SCRATCH_MAIN)

    def backward(self, gout, x, weight, gw, gin):
        spec = self.spec
        c, cout = spec.in_channels, spec.out_channels
        g2 = gout.reshape(-1, cout)
        np.matmul(g2.T, x.reshape(-1, c), out=self._gw_ws)
        gw.reshape(cout, c)[...] += self._gw_ws
        if gin is not None:
            np.matmul(g2, weight.reshape(cout, c), out=self._gx_ws)
            gin.reshape(-1, c)[...] += self._gx_ws


@register_kernel
class GemmIm2colKernel(ConvKernel):
    """Whole-batch im2col + batched GEMM; the total fallback (fwd + VJPs).

    Pointwise stride-1 convolutions skip the gather entirely (the input
    buffer itself is the column matrix).  In training plans the column
    workspace is plan-persistent — it doubles as the saved input patches the
    weight VJP contracts against; the input VJP is a GEMM into a column-
    gradient workspace followed by the ``col2im`` scatter of
    :func:`repro.nn.vjp.col2im_nchw_accumulate`.
    """

    name = "im2col"
    trains = True
    fallback = True

    @classmethod
    def supports(cls, spec):
        # Total over NCHW; channels-last signatures go to the NHWC-native
        # kernels (the layout pass only re-tags a step when one exists).
        return spec.layout == "NCHW"

    @classmethod
    def scratch_requests(cls, spec):
        if spec.pointwise or spec.train:
            # Pointwise needs no columns; training columns are persistent.
            return ()
        cols = (
            spec.batch * spec.in_channels * spec.kernel * spec.kernel
            * spec.out_height * spec.out_width * spec.itemsize
        )
        return ((SCRATCH_MAIN, cols),)

    @classmethod
    def _backward_ws_shapes(cls, spec, input_grad_needed):
        """``(gx, gw, gcols, gpad)`` workspace shapes (``None`` when unused)."""
        n, c = spec.batch, spec.in_channels
        cout, groups, k = spec.out_channels, spec.groups, spec.kernel
        h, w, p = spec.height, spec.width, spec.padding
        oh, ow = spec.out_height, spec.out_width
        gx = gw = gcols = gpad = None
        if spec.pointwise:
            gx = (n, c, oh * ow) if input_grad_needed else None
            gw = (n, cout, c)
        else:
            gcols = (n, c, k, k, oh, ow) if input_grad_needed else None
            gpad = (n, c, h + 2 * p, w + 2 * p) if (p > 0 and input_grad_needed) else None
            if groups == 1:
                gw = (n, cout, c * k * k)
            elif groups == c == cout:
                gw = (n, c, 1, k * k)
            else:
                gw = (n, groups, cout // groups, (c // groups) * k * k)
        return gx, gw, gcols, gpad

    @classmethod
    def backward_scratch_requests(cls, spec, input_grad_needed):
        requests = []
        gx, gw, gcols, gpad = cls._backward_ws_shapes(spec, input_grad_needed)
        for channel, shape in ((SCRATCH_MAIN, gx), (SCRATCH_GEMM, gw),
                               (SCRATCH_MAIN, gcols), (SCRATCH_PAD, gpad)):
            if shape is not None:
                requests.append((channel, int(np.prod(shape)) * spec.itemsize))
        return requests

    def __init__(self, spec, plan):
        super().__init__(spec, plan)
        n, c = spec.batch, spec.in_channels
        h, w, p, k = spec.height, spec.width, spec.padding, spec.kernel
        self._padded = (
            plan.alloc((n, c, h + 2 * p, w + 2 * p), zero=True) if p > 0 else None
        )
        # The column workspace is transient in inference plans (dead once the
        # GEMM consumed it) and may live in the plan's shared scratch arena;
        # training plans keep it as the saved input patches for backward.
        if spec.pointwise:
            self._cols = None
        elif spec.train:
            self._cols = plan.alloc((n, c, k, k, spec.out_height, spec.out_width))
        else:
            self._cols = plan.workspace(
                (n, c, k, k, spec.out_height, spec.out_width), channel=SCRATCH_MAIN
            )

    def forward(self, x, weight, out, epilogue):
        spec = self.spec
        n, c = spec.batch, spec.in_channels
        h, w, p, k, s = spec.height, spec.width, spec.padding, spec.kernel, spec.stride
        if spec.pointwise:
            cols = x
        else:
            if self._padded is not None:
                self._padded[:, :, p:p + h, p:p + w] = x
                x = self._padded
            np.copyto(
                self._cols, _patches_view(x, n, c, k, spec.out_height, spec.out_width, s)
            )
            cols = self._cols
        _grouped_gemm(weight, cols, out, spec, n)
        epilogue.apply(out)

    def allocate_backward(self, plan, input_grad_needed):
        self._input_grad_needed = bool(input_grad_needed)
        gx, gw, gcols, gpad = self._backward_ws_shapes(self.spec, input_grad_needed)
        self._gx_ws = plan.workspace(gx, channel=SCRATCH_MAIN) if gx is not None else None
        self._gw_ws = plan.workspace(gw, channel=SCRATCH_GEMM)
        self._gcols = plan.workspace(gcols, channel=SCRATCH_MAIN) if gcols is not None else None
        self._gpad = plan.workspace(gpad, channel=SCRATCH_PAD) if gpad is not None else None

    def backward(self, gout, x, weight, gw, gin):
        spec = self.spec
        n, c = spec.batch, spec.in_channels
        cout, groups, k = spec.out_channels, spec.groups, spec.kernel
        h, w, s, p = spec.height, spec.width, spec.stride, spec.padding
        oh, ow = spec.out_height, spec.out_width
        gout3 = gout.reshape(n, cout, oh * ow)
        if spec.pointwise:
            x3 = x.reshape(n, c, oh * ow)
            w_mat = weight.reshape(cout, c)
            np.matmul(gout3, x3.transpose(0, 2, 1), out=self._gw_ws)
            gw.reshape(cout, c)[...] += self._gw_ws.sum(axis=0)
            if gin is not None:
                np.matmul(w_mat.T, gout3, out=self._gx_ws)
                gin += self._gx_ws.reshape(n, c, h, w)
            return
        cols = self._cols  # saved by the forward run
        if groups == 1:
            w_mat = weight.reshape(cout, c * k * k)
            cols3 = cols.reshape(n, c * k * k, oh * ow)
            np.matmul(gout3, cols3.transpose(0, 2, 1), out=self._gw_ws)
            gw.reshape(cout, c * k * k)[...] += self._gw_ws.sum(axis=0)
            if gin is not None:
                np.matmul(w_mat.T, gout3, out=self._gcols.reshape(n, c * k * k, oh * ow))
        elif groups == c == cout:
            w2 = weight.reshape(c, 1, k * k)
            cols4 = cols.reshape(n, c, k * k, oh * ow)
            gout4 = gout.reshape(n, c, 1, oh * ow)
            np.matmul(gout4, cols4.transpose(0, 1, 3, 2), out=self._gw_ws)
            gw.reshape(c, 1, k * k)[...] += self._gw_ws.sum(axis=0)
            if gin is not None:
                np.matmul(
                    w2.transpose(0, 2, 1), gout4, out=self._gcols.reshape(n, c, k * k, oh * ow)
                )
        else:
            cin_g = c // groups
            cout_g = cout // groups
            cols4 = cols.reshape(n, groups, cin_g * k * k, oh * ow)
            gout4 = gout.reshape(n, groups, cout_g, oh * ow)
            gcols4 = (
                self._gcols.reshape(n, groups, cin_g * k * k, oh * ow)
                if gin is not None
                else None
            )
            w_mats = weight.reshape(groups, cout_g, cin_g * k * k)
            for g in range(groups):
                np.matmul(gout4[:, g], cols4[:, g].transpose(0, 2, 1), out=self._gw_ws[:, g])
                if gin is not None:
                    np.matmul(w_mats[g].T, gout4[:, g], out=gcols4[:, g])
            gw.reshape(groups, cout_g, cin_g * k * k)[...] += self._gw_ws.sum(axis=0)
        if gin is not None:
            vjp.col2im_nchw_accumulate(self._gcols, gin, s, p, pad_ws=self._gpad)
