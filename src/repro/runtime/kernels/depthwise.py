"""Output-stationary direct depthwise convolution (forward + VJPs).

Depthwise convolutions dominate the runtime's rollout plans (the searched
agents are inverted-residual-heavy), and the im2col path serves them badly:
the patch gather copies ``k*k`` shifted images through tiny strided runs,
and the "GEMM" that follows is ``N*C`` degenerate ``(1, k^2) @ (k^2, L)``
dot products.  This kernel never materialises columns.  Instead it works on
a channels-last (NHWC) padded copy of the input and accumulates the output
tile tap by tap::

    out[b, y, x, :] += w[i, j, :] * xpad[b, y*s + i, x*s + j, :]

Channels-last makes each tap a contiguous multiply along the channel axis
(the per-channel weight broadcasts over the *trailing* dimension, which
NumPy vectorises well), and the batch is processed in lane blocks sized so
the padded block, the accumulator and the tap workspace all stay
L2-resident — the output tile is touched ``k^2`` times but never leaves the
cache, and the fused epilogue runs on it while it is still hot.

Reverse mode reuses the saved padded NHWC input: the weight VJP is the same
tap loop with a channel reduction, and the input VJP scatters
``gout * w[i, j]`` back through the shifted windows (into a padded workspace
when ``padding > 0``).

When the slot itself is tagged NHWC by the layout-assignment pass the
pack/unpack transposes disappear entirely: the forward needs only a border
pad of the already-channels-last input (a row-contiguous copy, transient
scratch in both directions) and accumulates directly into the NHWC output
buffer, while the VJPs contract clipped strided windows of the plan's own
input slot — the kernel then carries no persistent state at all.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import as_strided

from .registry import (
    BLOCK_TARGET_BYTES,
    SCRATCH_GEMM,
    SCRATCH_MAIN,
    SCRATCH_PAD,
    ConvKernel,
    register_kernel,
)

__all__ = ["DepthwiseDirectKernel", "DepthwiseEinsumKernel"]


@register_kernel
class DepthwiseDirectKernel(ConvKernel):
    """Per-tap shifted-view MAC over an NHWC padded input, lane-blocked."""

    name = "depthwise_direct"
    trains = True

    # ------------------------------------------------------------------ #
    # Geometry helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def _lane_bytes(cls, spec):
        tile = spec.out_height * spec.out_width
        padded = (spec.height + 2 * spec.padding) * (spec.width + 2 * spec.padding)
        per_lane = padded + 2 * tile
        return per_lane * spec.in_channels * spec.itemsize

    @classmethod
    def _block(cls, spec):
        return max(1, min(spec.batch, BLOCK_TARGET_BYTES // max(cls._lane_bytes(spec), 1)))

    @classmethod
    def supports(cls, spec):
        return spec.depthwise

    @classmethod
    def scratch_requests(cls, spec):
        block = cls._block(spec)
        c, item = spec.in_channels, spec.itemsize
        tile = block * spec.out_height * spec.out_width * c * item
        padded = (
            block * (spec.height + 2 * spec.padding)
            * (spec.width + 2 * spec.padding) * c * item
        )
        if spec.layout == "NHWC":
            # The accumulator is the output buffer itself; the padded copy is
            # call-transient in both directions (the VJPs re-read the plan's
            # own input slot instead of saved state).
            requests = [(SCRATCH_MAIN, tile)]
            if spec.padding > 0:
                requests.append((SCRATCH_PAD, padded))
            return tuple(requests)
        requests = [(SCRATCH_GEMM, tile), (SCRATCH_MAIN, tile)]
        if not spec.train:
            requests.append((SCRATCH_PAD, padded))
        return tuple(requests)

    @classmethod
    def backward_scratch_requests(cls, spec, input_grad_needed):
        n, c, item = spec.batch, spec.in_channels, spec.itemsize
        tile = n * spec.out_height * spec.out_width * c * item
        if spec.layout == "NHWC":
            return ((SCRATCH_MAIN, tile),)
        requests = [(SCRATCH_GEMM, tile), (SCRATCH_MAIN, tile)]
        if input_grad_needed and spec.padding > 0:
            padded = (
                n * (spec.height + 2 * spec.padding)
                * (spec.width + 2 * spec.padding) * c * item
            )
            requests.append((SCRATCH_PAD, padded))
        return tuple(requests)

    # ------------------------------------------------------------------ #
    # Binding
    # ------------------------------------------------------------------ #
    def __init__(self, spec, plan):
        super().__init__(spec, plan)
        n, c = spec.batch, spec.in_channels
        oh, ow = spec.out_height, spec.out_width
        self._b = self._block(spec)
        if spec.layout == "NHWC":
            # The slot is already channels-last: no pack/unpack transposes and
            # no persistent saved state.  A call-transient padded copy keeps
            # every tap a full regular-stride window (much faster than
            # clipped subview accumulation); the accumulator is the output
            # buffer itself.
            self._wsh = plan.workspace((self._b, oh, ow, c), channel=SCRATCH_MAIN)
            self._xph = (
                plan.workspace(
                    (
                        self._b,
                        spec.height + 2 * spec.padding,
                        spec.width + 2 * spec.padding,
                        c,
                    ),
                    channel=SCRATCH_PAD,
                )
                if spec.padding > 0
                else None
            )
        else:
            ph = spec.height + 2 * spec.padding
            pw = spec.width + 2 * spec.padding
            if spec.train:
                # The padded NHWC input is the saved state the VJPs contract
                # against, so it must survive the forward pass: allocate the
                # full batch persistently (zeroed once; the border stays zero).
                self._xph = plan.alloc((n, ph, pw, c), zero=True)
            else:
                self._xph = plan.workspace((self._b, ph, pw, c), channel=SCRATCH_PAD)
            self._outh = plan.workspace((self._b, oh, ow, c), channel=SCRATCH_GEMM)
            self._wsh = plan.workspace((self._b, oh, ow, c), channel=SCRATCH_MAIN)
        #: Per-tap weight rows ``(k*k, C)``, refreshed from the live weight
        #: array every call (tiny next to any feature map).
        self._wt = plan.alloc((spec.kernel * spec.kernel, c))

    def _tap_view(self, buf, tap):
        """The shifted ``(b, oh, ow, C)`` window of a padded NHWC buffer."""
        spec = self.spec
        i, j = divmod(tap, spec.kernel)
        s = spec.stride
        return buf[
            :,
            i : i + s * (spec.out_height - 1) + 1 : s,
            j : j + s * (spec.out_width - 1) + 1 : s,
            :,
        ]

    def _tap_bounds(self, tap):
        """Clipped tap geometry for the in-place (no padded copy) NHWC mode.

        Returns ``(y0, y1, x0, x1, r0, c0)``: the tap contributes to output
        rows ``y0:y1`` / cols ``x0:x1``, reading input rows from ``r0`` and
        cols from ``c0`` (both stepped by the stride).  Padding is realised
        by this clipping — out-of-image taps simply shrink their region.
        """
        spec = self.spec
        i, j = divmod(tap, spec.kernel)
        s, p = spec.stride, spec.padding
        y0 = max(0, -(-(p - i) // s))
        y1 = min(spec.out_height, (spec.height - 1 - i + p) // s + 1)
        x0 = max(0, -(-(p - j) // s))
        x1 = min(spec.out_width, (spec.width - 1 - j + p) // s + 1)
        return y0, y1, x0, x1, y0 * s + i - p, x0 * s + j - p

    # ------------------------------------------------------------------ #
    # Forward
    # ------------------------------------------------------------------ #
    def forward(self, x, weight, out, epilogue):
        spec = self.spec
        n, c, p = spec.batch, spec.in_channels, spec.padding
        h, w, k = spec.height, spec.width, spec.kernel
        taps = k * k
        self._wt[...] = weight.reshape(c, taps).T
        if spec.layout == "NHWC":
            return self._forward_nhwc(x, out, epilogue)
        if spec.train:
            # Interior fill of the persistent buffer; the border is zero from
            # allocation and never written.
            self._xph[:, p:p + h, p:p + w, :] = np.moveaxis(x, 1, -1)
        blockwise = epilogue.blockwise
        for n0 in range(0, n, self._b):
            n1 = min(n0 + self._b, n)
            b = n1 - n0
            if spec.train:
                xb = self._xph[n0:n1]
            else:
                xb = self._xph[:b]
                if p > 0:
                    # The scratch arena is shared with other steps, so the
                    # padding border must be re-zeroed per block.
                    xb[:, :p] = 0.0
                    xb[:, p + h:] = 0.0
                    xb[:, p:p + h, :p] = 0.0
                    xb[:, p:p + h, p + w:] = 0.0
                xb[:, p:p + h, p:p + w, :] = np.moveaxis(x[n0:n1], 1, -1)
            ob = self._outh[:b]
            wb = self._wsh[:b]
            np.multiply(self._tap_view(xb, 0), self._wt[0], out=ob)
            for tap in range(1, taps):
                np.multiply(self._tap_view(xb, tap), self._wt[tap], out=wb)
                np.add(ob, wb, out=ob)
            np.copyto(np.moveaxis(out[n0:n1], 1, -1), ob)
            if blockwise:
                epilogue.apply(out[n0:n1], lanes=slice(n0, n1))
        if not blockwise:
            epilogue.apply(out)

    def _forward_nhwc(self, x, out, epilogue):
        """Regular-tap accumulation straight into the NHWC output buffer.

        Same tap sequence as the NCHW path (so the two layouts agree to
        rounding), but with the pack/unpack transposes gone: the input needs
        only a border pad (a row-contiguous copy), and the accumulator is the
        output buffer itself rather than an unpack staging tile.
        """
        spec = self.spec
        n, c, p = spec.batch, spec.in_channels, spec.padding
        h, w = spec.height, spec.width
        taps = spec.kernel * spec.kernel
        blockwise = epilogue.blockwise
        for n0 in range(0, n, self._b):
            n1 = min(n0 + self._b, n)
            b = n1 - n0
            if p > 0:
                xb = self._xph[:b]
                # The scratch arena is shared with other steps, so the
                # padding border must be re-zeroed per block.
                xb[:, :p] = 0.0
                xb[:, p + h:] = 0.0
                xb[:, p:p + h, :p] = 0.0
                xb[:, p:p + h, p + w:] = 0.0
                xb[:, p:p + h, p:p + w, :] = x[n0:n1]
            else:
                xb = x[n0:n1]
            ob = out[n0:n1]
            wb = self._wsh[:b]
            np.multiply(self._tap_view(xb, 0), self._wt[0], out=ob)
            for tap in range(1, taps):
                np.multiply(self._tap_view(xb, tap), self._wt[tap], out=wb)
                np.add(ob, wb, out=ob)
            if blockwise:
                epilogue.apply(ob, lanes=slice(n0, n1))
        if not blockwise:
            epilogue.apply(out)

    # ------------------------------------------------------------------ #
    # Reverse mode
    # ------------------------------------------------------------------ #
    def allocate_backward(self, plan, input_grad_needed):
        spec = self.spec
        n, c = spec.batch, spec.in_channels
        oh, ow = spec.out_height, spec.out_width
        if spec.layout == "NHWC":
            self._gtap = plan.workspace((n, oh, ow, c), channel=SCRATCH_MAIN)
            return
        self._gouth = plan.workspace((n, oh, ow, c), channel=SCRATCH_GEMM)
        self._gtap = plan.workspace((n, oh, ow, c), channel=SCRATCH_MAIN)
        self._gpadh = None
        if input_grad_needed and spec.padding > 0:
            ph = spec.height + 2 * spec.padding
            pw = spec.width + 2 * spec.padding
            self._gpadh = plan.workspace((n, ph, pw, c), channel=SCRATCH_PAD)

    def _backward_nhwc(self, gout, x, gw, gin):
        """Weight / input VJPs contracting the plan's own NHWC slot buffers."""
        spec = self.spec
        k, s = spec.kernel, spec.stride
        for tap in range(k * k):
            y0, y1, x0, x1, r0, c0 = self._tap_bounds(tap)
            gv = gout[:, y0:y1, x0:x1, :]
            xv = x[:, r0:r0 + s * (y1 - y0):s, c0:c0 + s * (x1 - x0):s, :]
            gt = self._gtap[:, :y1 - y0, :x1 - x0]
            np.multiply(gv, xv, out=gt)
            i, j = divmod(tap, k)
            gw[:, 0, i, j] += gt.sum(axis=(0, 1, 2))
            if gin is not None:
                np.multiply(gv, self._wt[tap], out=gt)
                gin[:, r0:r0 + s * (y1 - y0):s, c0:c0 + s * (x1 - x0):s, :] += gt

    def backward(self, gout, x, weight, gw, gin):
        spec = self.spec
        c, p = spec.in_channels, spec.padding
        h, w, k = spec.height, spec.width, spec.kernel
        taps = k * k
        self._wt[...] = weight.reshape(c, taps).T
        if spec.layout == "NHWC":
            return self._backward_nhwc(gout, x, gw, gin)
        np.copyto(self._gouth, np.moveaxis(gout, 1, -1))
        # Weight VJP: per tap, reduce gout * (shifted saved input) over NHW.
        for tap in range(taps):
            np.multiply(self._gouth, self._tap_view(self._xph, tap), out=self._gtap)
            i, j = divmod(tap, k)
            gw[:, 0, i, j] += self._gtap.sum(axis=(0, 1, 2))
        if gin is None:
            return
        # Input VJP: scatter gout * w through the shifted windows.  With no
        # padding the target windows view the caller's accumulator directly;
        # otherwise a zeroed padded workspace collects the taps and its
        # interior is accumulated at the end.
        if self._gpadh is not None:
            target = self._gpadh
            target.fill(0.0)
        else:
            target = np.moveaxis(gin, 1, -1)
        for tap in range(taps):
            np.multiply(self._gouth, self._wt[tap], out=self._gtap)
            self._tap_view(target, tap)[...] += self._gtap
        if self._gpadh is not None:
            gin += np.moveaxis(self._gpadh[:, p:p + h, p:p + w, :], 3, 1)


@register_kernel
class DepthwiseEinsumKernel(DepthwiseDirectKernel):
    """Single-pass einsum contraction over a strided NHWC tap view.

    The per-tap multiply-accumulate of :class:`DepthwiseDirectKernel` streams
    the output tile through memory ``k^2`` times (two passes per tap: the
    broadcast multiply and the accumulate).  With a channels-last input the
    whole contraction collapses into one ``einsum`` over a zero-copy strided
    view ``(b, oh, ow, k, k, C)`` of the padded input::

        out[b, y, x, c] = sum_ij view[b, y, x, i, j, c] * w[i, j, c]

    — a single C-level pass whose innermost axis is the contiguous channel
    run.  Each output element left-folds its ``k*k`` products in the same
    tap order as the direct kernel, so the two NHWC formulations agree to
    the usual float-reassociation tolerance while this one runs 1.5-5x
    faster on wide-channel signatures (the direct kernel keeps winning the
    narrow-channel ones, which is exactly what the autotuner arbitrates).

    Reverse mode is inherited: the NHWC VJPs of the direct kernel already
    contract clipped windows of the plan's own slot buffers.
    """

    name = "depthwise_einsum"
    trains = True

    @classmethod
    def _lane_bytes(cls, spec):
        tile = spec.out_height * spec.out_width
        padded = (spec.height + 2 * spec.padding) * (spec.width + 2 * spec.padding)
        return (padded + tile) * spec.in_channels * spec.itemsize

    @classmethod
    def supports(cls, spec):
        return spec.depthwise and spec.layout == "NHWC"

    @classmethod
    def scratch_requests(cls, spec):
        if spec.padding == 0:
            return ()
        block = cls._block(spec)
        padded = (
            block * (spec.height + 2 * spec.padding)
            * (spec.width + 2 * spec.padding) * spec.in_channels * spec.itemsize
        )
        return ((SCRATCH_PAD, padded),)

    def __init__(self, spec, plan):
        ConvKernel.__init__(self, spec, plan)
        c = spec.in_channels
        self._b = self._block(spec)
        self._xph = (
            plan.workspace(
                (
                    self._b,
                    spec.height + 2 * spec.padding,
                    spec.width + 2 * spec.padding,
                    c,
                ),
                channel=SCRATCH_PAD,
            )
            if spec.padding > 0
            else None
        )
        self._wt = plan.alloc((spec.kernel * spec.kernel, c))

    def forward(self, x, weight, out, epilogue):
        spec = self.spec
        n, c, p = spec.batch, spec.in_channels, spec.padding
        h, w, k, s = spec.height, spec.width, spec.kernel, spec.stride
        oh, ow = spec.out_height, spec.out_width
        self._wt[...] = weight.reshape(c, k * k).T
        wv = self._wt.reshape(k, k, c)
        blockwise = epilogue.blockwise
        for n0 in range(0, n, self._b):
            n1 = min(n0 + self._b, n)
            b = n1 - n0
            if p > 0:
                xb = self._xph[:b]
                # The scratch arena is shared with other steps, so the
                # padding border must be re-zeroed per block.
                xb[:, :p] = 0.0
                xb[:, p + h:] = 0.0
                xb[:, p:p + h, :p] = 0.0
                xb[:, p:p + h, p + w:] = 0.0
                xb[:, p:p + h, p:p + w, :] = x[n0:n1]
            else:
                xb = x[n0:n1]
            st = xb.strides
            xv = as_strided(
                xb,
                (b, oh, ow, k, k, c),
                (st[0], st[1] * s, st[2] * s, st[1], st[2], st[3]),
            )
            np.einsum("nhwijc,ijc->nhwc", xv, wv, out=out[n0:n1])
            if blockwise:
                epilogue.apply(out[n0:n1], lanes=slice(n0, n1))
        if not blockwise:
            epilogue.apply(out)
