"""Quantized (int8 / int16) inference kernels with a fused requant tail.

These kernels serve conv signatures whose ``ConvSpec.quant`` field is
``"q8"`` or ``"q16"``: activations and weights arrive as narrow integers,
the convolution accumulates in a wide type, and a per-channel
*requantization* epilogue (scale, bias, optional residual, clip,
round-half-even, narrow) writes the next layer's integer activations — the
software analogue of the paper's fixed-point accelerator arithmetic.

Numerics contract (shared with :mod:`._native`): every kernel of one quant
mode produces **bitwise identical** output.  The integer accumulation is
exact everywhere — q8 products are at most ``127*127`` and the deepest sum
stays far below ``2**24``, so float32 arithmetic (einsum, BLAS sgemm, the C
kernel's int32 loop) computes the same exact integers in any association;
q16 gets the same guarantee from float64 / int64 below ``2**53``.  The
requant tail then performs one multiply round, one add round per term, and
a round-half-even narrow, in the same order on every path.  This is what
lets the autotuner pick freely between candidates without perturbing
trajectories, and what the parity suite pins against an i64 reference.

Candidates per mode (registration order puts the NumPy einsum fallback as
the autotuner's incumbent for depthwise):

* ``depthwise_native_q8/q16`` — the compiled C kernel
  (:mod:`repro.runtime.kernels._native`): true int32/int64 accumulation,
  no upcast copies, requant fused into the row loop.  Absent when the host
  cannot build it.
* ``depthwise_direct_q8/q16`` — per-tap MAC over an upcast padded NHWC
  copy (the float direct kernel's loop, on exact-integer floats).
* ``depthwise_einsum_q8/q16`` — single strided-view einsum contraction
  over the upcast padded input; the always-available fallback.
* ``pointwise_q8/q16`` — 1x1 conv as a row-blocked flat BLAS GEMM on
  upcast activations (the GEMM's integer partial sums are exact, see
  above).

All quantized kernels are NHWC, inference-only; float kernels never see
these signatures (dispatch filters on the kernel's ``quant`` attribute).
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import as_strided

from . import _native
from .registry import (
    BLOCK_TARGET_BYTES,
    SCRATCH_GEMM,
    SCRATCH_MAIN,
    SCRATCH_PAD,
    ConvKernel,
    register_kernel,
)

__all__ = [
    "RequantEpilogue",
    "DepthwiseNativeQ8Kernel",
    "DepthwiseNativeQ16Kernel",
    "DepthwiseDirectQ8Kernel",
    "DepthwiseDirectQ16Kernel",
    "DepthwiseEinsumQ8Kernel",
    "DepthwiseEinsumQ16Kernel",
    "PointwiseQ8Kernel",
    "PointwiseQ16Kernel",
]


class RequantEpilogue:
    """Per-channel requantization tail of a quantized conv step.

    Plays the role :class:`~repro.runtime.plan._ConvEpilogue` plays for
    float convs, with a narrower contract: ``requant`` maps a block of
    exact-integer float accumulators to the output's integer dtype via

        ``out = cast(rint(clip(acc * scale + bias [+ res * res_scale])))``

    with one rounding per multiply/add (the C kernels replicate exactly
    this sequence; the build pins ``-ffp-contract=off`` so no FMA fuses a
    round away).  ``lo``/``hi`` encode the fused activation: a ReLU conv
    clips to ``[0, qmax]``, which *is* the ReLU in the quantized domain.

    The owning step refreshes ``scale``/``bias`` in place when the live
    weights change and bumps ``version`` so kernels re-derive their private
    weight forms (tap-major int copies, upcast GEMM matrices).
    """

    __slots__ = ("scale", "bias", "lo", "hi", "res", "res_scale", "version")

    blockwise = True

    def __init__(self, channels, acc_dtype, qmax, relu=False):
        acc_dtype = np.dtype(acc_dtype)
        self.scale = np.zeros(int(channels), dtype=acc_dtype)
        self.bias = np.zeros(int(channels), dtype=acc_dtype)
        self.lo = 0.0 if relu else -float(qmax)
        self.hi = float(qmax)
        #: Full-batch integer buffer of the residual slot (set per run by the
        #: step); kernels slice it to their current block.
        self.res = None
        #: ``s_res / s_out`` — rescales residual integers into output units.
        self.res_scale = 0.0
        self.version = 0

    def requant(self, acc, out, res=None):
        """Requantize ``acc`` (in place) and narrow into ``out``.

        When the compiled helpers are available and every operand is
        C-contiguous, the whole tail runs as one fused native pass instead
        of five NumPy passes — bitwise identical by the module contract.
        """
        if (
            _native.available()
            and acc.flags.c_contiguous
            and out.flags.c_contiguous
            and (res is None or res.flags.c_contiguous)
        ):
            fn = _native.requant_q8 if out.dtype == np.int8 else _native.requant_q16
            fn(acc, self.scale, self.bias, res, float(self.res_scale),
               out, float(self.lo), float(self.hi))
            return
        np.multiply(acc, self.scale, out=acc)
        acc += self.bias
        if res is not None:
            acc += res * self.scale.dtype.type(self.res_scale)
        np.clip(acc, self.lo, self.hi, out=acc)
        np.rint(acc, out=acc)
        np.copyto(out, acc, casting="unsafe")


class _QuantKernel(ConvKernel):
    """Shared geometry/eligibility for the quantized NHWC kernels."""

    @classmethod
    def supports(cls, spec):
        return (
            not spec.train
            and spec.layout == "NHWC"
            and cls._shape_ok(spec)
        )

    @classmethod
    def _shape_ok(cls, spec):
        raise NotImplementedError

    def _res_block(self, epilogue, lanes):
        res = epilogue.res
        return res[lanes] if res is not None else None


# --------------------------------------------------------------------------- #
# Depthwise: compiled C kernel
# --------------------------------------------------------------------------- #
class _DepthwiseNativeBase(_QuantKernel):
    """ctypes front-end of the C depthwise kernel (int accumulate, fused requant)."""

    _fn = None  # staticmethod set by subclasses

    @classmethod
    def _shape_ok(cls, spec):
        return spec.depthwise and _native.available()

    @classmethod
    def scratch_requests(cls, spec):
        acc_item = 4 if spec.quant == "q8" else 8
        return ((SCRATCH_GEMM, spec.out_width * spec.in_channels * acc_item),)

    def __init__(self, spec, plan):
        super().__init__(spec, plan)
        c, k = spec.in_channels, spec.kernel
        acc_dtype = np.int32 if spec.quant == "q8" else np.int64
        self._acc = plan.workspace(
            (spec.out_width * c,), dtype=acc_dtype, channel=SCRATCH_GEMM
        )
        #: Tap-major ``(k*k, C)`` integer weight, re-derived when the step
        #: requantizes (signalled by the epilogue version counter).
        self._wt = plan.alloc((k * k, c), dtype=spec.act_dtype)
        self._wt_version = None

    def forward(self, x, weight, out, epilogue):
        spec = self.spec
        assert x.flags["C_CONTIGUOUS"] and out.flags["C_CONTIGUOUS"]
        if self._wt_version != epilogue.version:
            self._wt[...] = weight.reshape(spec.in_channels, -1).T
            self._wt_version = epilogue.version
        type(self)._fn(
            x, self._wt, epilogue.scale, epilogue.bias,
            epilogue.res, float(epilogue.res_scale), out, self._acc,
            spec.kernel, spec.stride, spec.padding,
            float(epilogue.lo), float(epilogue.hi),
        )


@register_kernel
class DepthwiseNativeQ8Kernel(_DepthwiseNativeBase):
    name = "depthwise_native_q8"
    quant = "q8"
    _fn = staticmethod(_native.dw_conv_q8)


@register_kernel
class DepthwiseNativeQ16Kernel(_DepthwiseNativeBase):
    name = "depthwise_native_q16"
    quant = "q16"
    _fn = staticmethod(_native.dw_conv_q16)


# --------------------------------------------------------------------------- #
# Depthwise: NumPy fallbacks over an upcast padded copy
# --------------------------------------------------------------------------- #
class _DepthwisePaddedBase(_QuantKernel):
    """Shared upcast-and-pad machinery of the NumPy depthwise quant kernels.

    The integer input block is widened into a float padded workspace (the
    float arithmetic is exact for these magnitudes — module docstring), the
    subclass contracts it into a float accumulator, and the epilogue
    narrows the result back.
    """

    @classmethod
    def _shape_ok(cls, spec):
        return spec.depthwise

    @classmethod
    def _acc_itemsize(cls, spec):
        return spec.acc_dtype.itemsize

    @classmethod
    def _lane_bytes(cls, spec):
        tile = spec.out_height * spec.out_width
        padded = (spec.height + 2 * spec.padding) * (spec.width + 2 * spec.padding)
        return (padded + tile) * spec.in_channels * cls._acc_itemsize(spec)

    @classmethod
    def _block(cls, spec):
        return max(1, min(spec.batch, BLOCK_TARGET_BYTES // max(cls._lane_bytes(spec), 1)))

    @classmethod
    def scratch_requests(cls, spec):
        block = cls._block(spec)
        c, item = spec.in_channels, cls._acc_itemsize(spec)
        padded = (
            block * (spec.height + 2 * spec.padding)
            * (spec.width + 2 * spec.padding) * c * item
        )
        tile = block * spec.out_height * spec.out_width * c * item
        return ((SCRATCH_PAD, padded), (SCRATCH_MAIN, tile))

    def __init__(self, spec, plan):
        super().__init__(spec, plan)
        c = spec.in_channels
        acc_dtype = spec.acc_dtype
        self._b = self._block(spec)
        self._xph = plan.workspace(
            (
                self._b,
                spec.height + 2 * spec.padding,
                spec.width + 2 * spec.padding,
                c,
            ),
            dtype=acc_dtype,
            channel=SCRATCH_PAD,
        )
        self._acch = plan.workspace(
            (self._b, spec.out_height, spec.out_width, c),
            dtype=acc_dtype,
            channel=SCRATCH_MAIN,
        )
        #: Tap-major ``(k*k, C)`` float weight, upcast from the step's
        #: integer weights when the epilogue version moves.
        self._wt = plan.alloc((spec.kernel * spec.kernel, c), dtype=acc_dtype)
        self._wt_version = None

    def _fill_block(self, x, n0, n1):
        """Upcast (and zero-pad) one batch block into the float workspace."""
        spec = self.spec
        p, h, w = spec.padding, spec.height, spec.width
        xb = self._xph[: n1 - n0]
        if p > 0:
            # The scratch arena is shared with other steps, so the padding
            # border must be re-zeroed per block.
            xb[:, :p] = 0.0
            xb[:, p + h:] = 0.0
            xb[:, p:p + h, :p] = 0.0
            xb[:, p:p + h, p + w:] = 0.0
        np.copyto(xb[:, p:p + h, p:p + w, :], x[n0:n1])
        return xb

    def _refresh_weight(self, weight, epilogue):
        if self._wt_version != epilogue.version:
            spec = self.spec
            np.copyto(self._wt, weight.reshape(spec.in_channels, -1).T)
            self._wt_version = epilogue.version

    def _tap_view(self, buf, tap):
        """The shifted ``(b, oh, ow, C)`` window of the padded workspace."""
        spec = self.spec
        i, j = divmod(tap, spec.kernel)
        s = spec.stride
        return buf[
            :,
            i : i + s * (spec.out_height - 1) + 1 : s,
            j : j + s * (spec.out_width - 1) + 1 : s,
            :,
        ]


class _DepthwiseEinsumQuantBase(_DepthwisePaddedBase):
    def forward(self, x, weight, out, epilogue):
        spec = self.spec
        n, c = spec.batch, spec.in_channels
        k, s = spec.kernel, spec.stride
        oh, ow = spec.out_height, spec.out_width
        self._refresh_weight(weight, epilogue)
        wv = self._wt.reshape(k, k, c)
        for n0 in range(0, n, self._b):
            n1 = min(n0 + self._b, n)
            b = n1 - n0
            xb = self._fill_block(x, n0, n1)
            st = xb.strides
            xv = as_strided(
                xb,
                (b, oh, ow, k, k, c),
                (st[0], st[1] * s, st[2] * s, st[1], st[2], st[3]),
            )
            acc = self._acch[:b]
            np.einsum("nhwijc,ijc->nhwc", xv, wv, out=acc)
            epilogue.requant(
                acc, out[n0:n1], res=self._res_block(epilogue, slice(n0, n1))
            )


class _DepthwiseDirectQuantBase(_DepthwisePaddedBase):
    @classmethod
    def _lane_bytes(cls, spec):
        tile = spec.out_height * spec.out_width
        padded = (spec.height + 2 * spec.padding) * (spec.width + 2 * spec.padding)
        return (padded + 2 * tile) * spec.in_channels * cls._acc_itemsize(spec)

    @classmethod
    def scratch_requests(cls, spec):
        requests = list(_DepthwisePaddedBase.scratch_requests.__func__(cls, spec))
        tile = (
            cls._block(spec) * spec.out_height * spec.out_width
            * spec.in_channels * cls._acc_itemsize(spec)
        )
        requests.append((SCRATCH_GEMM, tile))
        return tuple(requests)

    def __init__(self, spec, plan):
        super().__init__(spec, plan)
        self._wsh = plan.workspace(
            (self._b, spec.out_height, spec.out_width, spec.in_channels),
            dtype=spec.acc_dtype,
            channel=SCRATCH_GEMM,
        )

    def forward(self, x, weight, out, epilogue):
        spec = self.spec
        n = spec.batch
        taps = spec.kernel * spec.kernel
        self._refresh_weight(weight, epilogue)
        for n0 in range(0, n, self._b):
            n1 = min(n0 + self._b, n)
            b = n1 - n0
            xb = self._fill_block(x, n0, n1)
            acc = self._acch[:b]
            wb = self._wsh[:b]
            np.multiply(self._tap_view(xb, 0), self._wt[0], out=acc)
            for tap in range(1, taps):
                np.multiply(self._tap_view(xb, tap), self._wt[tap], out=wb)
                np.add(acc, wb, out=acc)
            epilogue.requant(
                acc, out[n0:n1], res=self._res_block(epilogue, slice(n0, n1))
            )


@register_kernel
class DepthwiseDirectQ8Kernel(_DepthwiseDirectQuantBase):
    name = "depthwise_direct_q8"
    quant = "q8"


@register_kernel
class DepthwiseDirectQ16Kernel(_DepthwiseDirectQuantBase):
    name = "depthwise_direct_q16"
    quant = "q16"


@register_kernel
class DepthwiseEinsumQ8Kernel(_DepthwiseEinsumQuantBase):
    name = "depthwise_einsum_q8"
    quant = "q8"


@register_kernel
class DepthwiseEinsumQ16Kernel(_DepthwiseEinsumQuantBase):
    name = "depthwise_einsum_q16"
    quant = "q16"


# --------------------------------------------------------------------------- #
# Pointwise: row-blocked upcast GEMM
# --------------------------------------------------------------------------- #
class _PointwiseQuantBase(_QuantKernel):
    """1x1 conv as ``upcast(x2) @ W.T`` over ``(N*H*W, C)`` row blocks.

    BLAS partial sums of exact-integer floats are exact at these magnitudes
    (even under FMA and arbitrary blocking), so the GEMM result matches the
    integer reference bitwise while running at sgemm/dgemm speed.
    """

    @classmethod
    def _shape_ok(cls, spec):
        return spec.pointwise

    @classmethod
    def _row_block(cls, spec):
        rows = spec.batch * spec.out_height * spec.out_width
        row_bytes = (
            (spec.in_channels + spec.out_channels) * spec.acc_dtype.itemsize
        )
        return max(1, min(rows, BLOCK_TARGET_BYTES // max(row_bytes, 1)))

    @classmethod
    def scratch_requests(cls, spec):
        block = cls._row_block(spec)
        item = spec.acc_dtype.itemsize
        return (
            (SCRATCH_PAD, block * spec.in_channels * item),
            (SCRATCH_MAIN, block * spec.out_channels * item),
        )

    def __init__(self, spec, plan):
        super().__init__(spec, plan)
        acc_dtype = spec.acc_dtype
        self._rb = self._row_block(spec)
        self._xf = plan.workspace(
            (self._rb, spec.in_channels), dtype=acc_dtype, channel=SCRATCH_PAD
        )
        self._acch = plan.workspace(
            (self._rb, spec.out_channels), dtype=acc_dtype, channel=SCRATCH_MAIN
        )
        #: ``(C_in, C_out)`` float weight matrix upcast from the integer
        #: weights (transposed once so the GEMM reads it contiguously).
        self._wmat = plan.alloc(
            (spec.in_channels, spec.out_channels), dtype=acc_dtype
        )
        self._wt_version = None

    def forward(self, x, weight, out, epilogue):
        spec = self.spec
        c, cout = spec.in_channels, spec.out_channels
        if self._wt_version != epilogue.version:
            np.copyto(self._wmat, weight.reshape(cout, c).T)
            self._wt_version = epilogue.version
        x2 = x.reshape(-1, c)
        out2 = out.reshape(-1, cout)
        res2 = epilogue.res.reshape(-1, cout) if epilogue.res is not None else None
        rows = x2.shape[0]
        for r0 in range(0, rows, self._rb):
            r1 = min(r0 + self._rb, rows)
            xf = self._xf[: r1 - r0]
            np.copyto(xf, x2[r0:r1])
            acc = self._acch[: r1 - r0]
            np.matmul(xf, self._wmat, out=acc)
            epilogue.requant(
                acc, out2[r0:r1],
                res=res2[r0:r1] if res2 is not None else None,
            )


@register_kernel
class PointwiseQ8Kernel(_PointwiseQuantBase):
    name = "pointwise_q8"
    quant = "q8"


@register_kernel
class PointwiseQ16Kernel(_PointwiseQuantBase):
    name = "pointwise_q16"
    quant = "q16"
