"""Kernel registry + dispatcher: *what* a conv step computes vs *how*.

A :class:`ConvSpec` captures the full op signature of one convolution step
(shape, kernel/stride/padding/groups, dtype, direction); registered
:class:`ConvKernel` implementations declare which signatures they
:meth:`~ConvKernel.supports` and how much call-transient scratch they need.
The dispatcher (:func:`kernel_for`) picks one implementation per signature:

* ``REPRO_KERNELS`` unset / ``auto`` — the autotuner times every supporting
  candidate once per process (warmup + best-of-k on real-sized buffers) and
  caches the winner per signature (:mod:`repro.runtime.kernels.autotune`);
* ``REPRO_KERNELS=heuristic`` — static shape rules, no timing;
* ``REPRO_KERNELS=<name>`` — pin one kernel globally (e.g. ``im2col``);
  signatures the pinned kernel rejects fall back to the heuristic choice;
* ``REPRO_KERNELS=<class>=<name>,...`` — pin per op class, where the classes
  are ``pointwise`` / ``depthwise`` / ``grouped`` / ``dense`` (e.g.
  ``depthwise=depthwise_direct,dense=im2col``).

Every selection is recorded in an in-process table (chosen kernel, how it was
chosen, candidate timings) surfaced through ``repro.runtime.cache_stats()``.

Kernels are *bound* per plan step: instantiating a kernel class with
``(spec, plan)`` allocates its persistent buffers through ``plan.alloc`` and
its transient workspaces through ``plan.workspace``, so kernel memory obeys
the same buffer-pool and scratch-arena discipline as every other step
workspace.  The scratch arenas are sized before the kernel is chosen, so
:func:`scratch_upper_bound` reports the per-channel maxima over *all*
supporting candidates.
"""

from __future__ import annotations

import os
from typing import NamedTuple

import numpy as np

from ...nn.functional import conv_output_size
from ...telemetry import trace

__all__ = [
    "ConvSpec",
    "ConvKernel",
    "ENV_VAR",
    "KERNELS",
    "LAYOUTS",
    "register_kernel",
    "kernel_names",
    "candidates",
    "quarantine_kernel",
    "quarantined_kernels",
    "clear_quarantine",
    "kernel_for",
    "layout_costs",
    "scratch_upper_bound",
    "selection_table",
    "reset_selections",
    "SCRATCH_MAIN",
    "SCRATCH_GEMM",
    "SCRATCH_PAD",
]

ENV_VAR = "REPRO_KERNELS"

#: Shared scratch-arena channels (see :class:`repro.runtime.plan.Plan`).  A
#: workspace may live in a channel when its contents are only alive within a
#: single ``forward``/``backward`` call of one step; workspaces that must
#: coexist within one call use distinct channels.
SCRATCH_MAIN = 0   # im2col columns / column gradients / elementwise temps
SCRATCH_GEMM = 1   # weight-gradient workspaces / direct-kernel accumulators
SCRATCH_PAD = 2    # padded buffers / padded scatter targets

#: Op classes a signature can be pinned by (``REPRO_KERNELS=<class>=<name>``).
OP_CLASSES = ("pointwise", "depthwise", "grouped", "dense")

#: Memory layouts a plan slot (and hence a conv signature) may carry.  The
#: layout describes the *physical* axis order of the activation buffers; the
#: logical shape stays NCHW everywhere (weights included).
LAYOUTS = ("NCHW", "NHWC")

#: Per-lane-block working-set target of the blocked kernels — roughly half
#: the L2 of the small cores this runtime targets, leaving room for the
#: output tile.  Shared so every kernel family blocks against the same
#: cache assumption.
BLOCK_TARGET_BYTES = 1 << 20


class ConvSpec(NamedTuple):
    """Signature of one convolution step: everything dispatch may key on."""

    batch: int
    in_channels: int
    out_channels: int
    height: int
    width: int
    kernel: int
    stride: int
    padding: int
    groups: int
    dtype: str      # numpy dtype name, e.g. "float32"
    direction: str  # "infer" (forward only) or "train" (forward + VJPs)
    layout: str = "NCHW"  # physical activation layout ("NCHW" or "NHWC")
    quant: str = ""  # quantization mode: "" (float), "q8" (int8) or "q16" (int16)

    # Derived geometry ---------------------------------------------------- #
    @property
    def out_height(self):
        return conv_output_size(self.height, self.kernel, self.stride, self.padding)

    @property
    def out_width(self):
        return conv_output_size(self.width, self.kernel, self.stride, self.padding)

    @property
    def itemsize(self):
        return np.dtype(self.dtype).itemsize

    @property
    def act_dtype(self):
        """Physical dtype of the activation buffers under this spec."""
        if self.quant == "q8":
            return np.dtype(np.int8)
        if self.quant == "q16":
            return np.dtype(np.int16)
        return np.dtype(self.dtype)

    @property
    def acc_dtype(self):
        """Float dtype whose arithmetic is exact for this quant mode.

        Quantized products and sums stay below 2**24 (q8) / 2**53 (q16), so
        float32 / float64 accumulation computes the exact integer result in
        any summation order — the NumPy fallback kernels lean on this to
        match the C kernels bitwise.
        """
        return np.dtype(np.float32 if self.quant == "q8" else np.float64)

    @property
    def qmax(self):
        """Symmetric integer clip bound of the quant mode (127 / 32767)."""
        return 127 if self.quant == "q8" else 32767

    @property
    def train(self):
        return self.direction == "train"

    @property
    def pointwise(self):
        return (
            self.kernel == 1 and self.stride == 1 and self.padding == 0 and self.groups == 1
        )

    @property
    def depthwise(self):
        return self.groups > 1 and self.groups == self.in_channels == self.out_channels

    @property
    def op_class(self):
        if self.pointwise:
            return "pointwise"
        if self.depthwise:
            return "depthwise"
        if self.groups > 1:
            return "grouped"
        return "dense"

    @property
    def in_shape(self):
        """Physical input-array shape under this spec's layout."""
        if self.layout == "NHWC":
            return (self.batch, self.height, self.width, self.in_channels)
        return (self.batch, self.in_channels, self.height, self.width)

    @property
    def out_shape(self):
        """Physical output-array shape under this spec's layout."""
        if self.layout == "NHWC":
            return (self.batch, self.out_height, self.out_width, self.out_channels)
        return (self.batch, self.out_channels, self.out_height, self.out_width)

    def describe(self):
        """Compact human-readable signature key for stats tables."""
        base = (
            "{op}:n{n}c{c}->{o}@{h}x{w}/k{k}s{s}p{p}g{g}/{dt}/{dir}/{lay}".format(
                op=self.op_class, n=self.batch, c=self.in_channels,
                o=self.out_channels, h=self.height, w=self.width, k=self.kernel,
                s=self.stride, p=self.padding, g=self.groups, dt=self.dtype,
                dir=self.direction, lay=self.layout.lower(),
            )
        )
        if self.quant:
            base += "/" + self.quant
        return base


class ConvKernel:
    """Base class of one convolution implementation.

    Subclasses are registered (in preference order) via
    :func:`register_kernel` and bound per plan step by instantiation:
    ``__init__`` receives the spec plus an allocator object exposing
    ``alloc(shape, dtype=..., zero=...)`` and
    ``workspace(shape, dtype=..., channel=...)`` — a real
    :class:`~repro.runtime.plan.Plan` in production, a temporary arena during
    autotuning.

    The contract mirrors the plan-step aliasing rules: ``forward`` may mutate
    only ``out`` and kernel-owned workspaces, never ``x``; ``backward`` may
    mutate ``gout`` (it owns the output-slot gradient by the time it runs) and
    must *accumulate* into ``gw`` / ``gin``.
    """

    #: Registry name (stable; used by ``REPRO_KERNELS`` and stats tables).
    name = None
    #: Whether the kernel implements the reverse-mode VJPs.
    trains = False
    #: Quantization mode the kernel serves ("" = float).  Dispatch only
    #: considers kernels whose mode matches the spec's ``quant`` field, so
    #: float kernels never see int8 buffers and vice versa.
    quant = ""
    #: Whether this kernel is the total fallback every signature (of its
    #: quant tier) can degrade to.  Fallback kernels are exempt from
    #: quarantine: with them gone there is nothing left to dispatch to.
    fallback = False

    @classmethod
    def supports(cls, spec):
        """Whether this kernel can serve ``spec`` (never raises)."""
        raise NotImplementedError

    @classmethod
    def scratch_requests(cls, spec):
        """``(channel, nbytes)`` call-transient forward workspace needs."""
        return ()

    @classmethod
    def backward_scratch_requests(cls, spec, input_grad_needed):
        """``(channel, nbytes)`` call-transient backward workspace needs."""
        return ()

    def __init__(self, spec, plan):
        self.spec = spec

    def forward(self, x, weight, out, epilogue):
        """Compute the convolution into ``out`` and apply ``epilogue``.

        ``epilogue`` is the step's fused bias/BN/residual/activation
        descriptor: kernels call ``epilogue.apply(block, lanes=...)`` on each
        freshly computed output tile when ``epilogue.blockwise`` is true
        (cache-friendly), or once on the whole output otherwise.
        """
        raise NotImplementedError

    def allocate_backward(self, plan, input_grad_needed):
        """Draw reverse-mode workspaces (training plans only)."""
        raise NotImplementedError(
            "{} has no reverse-mode implementation".format(type(self).__name__)
        )

    def backward(self, gout, x, weight, gw, gin):
        """Accumulate the weight VJP into ``gw`` and the input VJP into ``gin``.

        ``gout`` is the output-slot gradient after the activation VJP and
        bias accumulation already ran (the step owns those); ``gin`` is
        ``None`` when the input gradient is not needed (stem convolutions).
        """
        raise NotImplementedError

    def __repr__(self):
        return "{}({})".format(type(self).__name__, self.spec.describe())


#: Registered kernel classes, in preference order (earlier wins heuristic
#: ties; the general fallback registers itself last).
KERNELS = []

#: signature -> {"kernel": name, "source": how it was chosen}.
_SELECTIONS = {}

#: kernel name -> reason, for candidates excluded for the rest of the
#: session after raising (or producing non-finite output) during an
#: autotuner timing run.  Dispatch simply never sees a quarantined kernel
#: again, so one broken implementation degrades to the fallback instead of
#: crashing every plan that would have picked it.
_QUARANTINED = {}


def quarantine_kernel(name, reason):
    """Exclude kernel ``name`` from dispatch for the rest of the session.

    Fallback kernels (``cls.fallback``) are never quarantined — they are the
    total implementation every signature can degrade to; if one of *them* is
    broken there is nothing to fall back on and the error must surface.
    Re-quarantining an already-quarantined kernel keeps the first reason and
    does not bump the health counter again.
    """
    if any(cls.fallback for cls in KERNELS if cls.name == name):
        return False
    if name not in _QUARANTINED:
        _QUARANTINED[name] = str(reason)
        from ...reliability import health

        health.record("quarantined_kernels")
    return True


def quarantined_kernels():
    """``{kernel name: reason}`` of every currently quarantined kernel."""
    return dict(_QUARANTINED)


def clear_quarantine():
    """Lift every quarantine (tests)."""
    _QUARANTINED.clear()


def register_kernel(cls):
    """Register a :class:`ConvKernel` subclass (decorator-friendly)."""
    if any(existing.name == cls.name for existing in KERNELS):
        raise ValueError("kernel {!r} already registered".format(cls.name))
    KERNELS.append(cls)
    return cls


def kernel_names():
    """Names of every registered kernel, in preference order."""
    return tuple(cls.name for cls in KERNELS)


def candidates(spec):
    """Registered kernels that support ``spec`` (training needs VJPs too).

    Quarantined kernels are excluded — unless exclusion would leave no
    candidate at all (a registry stripped down in a test), in which case the
    unfiltered list is returned so dispatch never goes empty-handed.
    """
    supporting = [
        cls
        for cls in KERNELS
        if cls.quant == spec.quant
        and (not spec.train or cls.trains)
        and cls.supports(spec)
    ]
    if _QUARANTINED:
        healthy = [cls for cls in supporting if cls.name not in _QUARANTINED]
        if healthy:
            return healthy
    return supporting


def _parse_env():
    """Resolve ``REPRO_KERNELS`` into ``(mode, per-class pins)``.

    ``mode`` is ``"auto"`` or ``"heuristic"``; pins map op classes (or the
    wildcard ``"*"`` for a bare kernel name) to kernel names.  Unknown kernel
    or class names raise ``ValueError`` so typos fail loudly.
    """
    raw = os.environ.get(ENV_VAR, "auto").strip()
    if raw == "" or raw.lower() == "auto":
        return "auto", {}
    if raw.lower() == "heuristic":
        return "heuristic", {}
    names = set(kernel_names())
    pins = {}
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" in part:
            op_class, _, name = part.partition("=")
            op_class = op_class.strip().lower()
            name = name.strip()
            if op_class not in OP_CLASSES:
                raise ValueError(
                    "unknown op class {!r} in {}={!r}; valid classes: {}".format(
                        op_class, ENV_VAR, raw, list(OP_CLASSES)
                    )
                )
        else:
            op_class, name = "*", part
        if name not in names:
            raise ValueError(
                "unknown kernel {!r} in {}={!r}; registered kernels: {}".format(
                    name, ENV_VAR, raw, sorted(names)
                )
            )
        pins[op_class] = name
    return "pinned", pins


def _heuristic(spec, cands):
    """Static shape rules, in lieu of timing.

    Encodes what the autotuner reliably finds on small-batch rollout shapes:
    direct NHWC MAC wins for wide late-stage depthwise maps, the lane-blocked
    gather wins for early high-resolution ones, and everything else stays on
    the general GEMM path.
    """
    by_name = {cls.name: cls for cls in cands}
    if spec.quant:
        # Quantized signatures: the compiled depthwise kernel when the host
        # could build it, the einsum upcast otherwise; pointwise has a single
        # candidate per mode.
        for name in ("depthwise_native_" + spec.quant,
                     "depthwise_einsum_" + spec.quant):
            if name in by_name:
                return by_name[name]
        return cands[-1]
    if spec.depthwise:
        if "depthwise_direct" in by_name and (
            spec.in_channels >= 64 and spec.out_height * spec.out_width <= 64
        ):
            return by_name["depthwise_direct"]
        if "im2col_block" in by_name:
            return by_name["im2col_block"]
    elif "im2col_block" in by_name and spec.kernel > 1:
        return by_name["im2col_block"]
    return cands[0] if len(cands) == 1 else by_name.get("im2col", cands[-1])


def kernel_for(spec, plan):
    """Select and bind the kernel serving ``spec`` on ``plan``.

    Selection policy (see module docstring): explicit pin > heuristic mode >
    autotune.  The decision is recorded in the process-wide selection table.
    """
    cands = candidates(spec)
    if not cands:
        raise RuntimeError(
            "no registered kernel supports {} (the im2col fallback should be "
            "total; was the registry mutated?)".format(spec.describe())
        )
    mode, pins = _parse_env()
    source = None
    cls = None
    if mode == "pinned":
        name = pins.get(spec.op_class, pins.get("*"))
        if name is not None:
            by_name = {c.name: c for c in cands}
            if name in by_name:
                cls = by_name[name]
                source = "pinned"
            else:
                cls = _heuristic(spec, cands)
                source = "pin-fallback"
        else:
            mode = "auto"
    if cls is None and mode == "heuristic":
        cls = _heuristic(spec, cands)
        source = "heuristic"
    if cls is None:
        from .autotune import choose

        with trace.span("autotune/" + spec.describe(), "kernel"):
            cls, source = choose(spec, cands)
    _SELECTIONS[spec] = {"kernel": cls.name, "source": source, "layout": spec.layout}
    return cls(spec, plan)


def scratch_upper_bound(spec, input_grad_needed=True, layouts=LAYOUTS):
    """Per-channel scratch maxima over every candidate kernel and layout.

    The aliasing pass sizes the shared scratch arenas *before* the kernel is
    selected, and the layout-assignment pass may re-tag a step after the
    arenas were sized, so the bound covers every ``(candidate, layout)``
    variant of the signature — the per-channel maxima in *bytes*, not one
    NCHW geometry.  Returns ``(channel, nbytes)`` pairs.
    """
    channels = {}
    for layout in layouts:
        variant = spec._replace(layout=layout)
        for cls in candidates(variant):
            requests = list(cls.scratch_requests(variant))
            if variant.train:
                requests += list(
                    cls.backward_scratch_requests(variant, input_grad_needed)
                )
            for channel, nbytes in requests:
                channels[channel] = max(channels.get(channel, 0), int(nbytes))
    return tuple(sorted(channels.items()))


def layout_costs(spec):
    """Estimated forward seconds per layout, for the layout-assignment pass.

    Returns ``{layout: cost}`` where ``cost`` is ``inf`` when no kernel can
    serve the signature in that layout (respecting ``REPRO_KERNELS`` pins:
    a pinned kernel that rejects a layout makes the layout infeasible, so
    pinned runs keep their reproducible kernel choice), ``None`` when no
    timing is available (``heuristic`` mode — the pass falls back to static
    rules), and otherwise the best candidate's measured forward time from
    the autotuner cache.  When only one layout is feasible no timing runs at
    all: there is nothing to compare.
    """
    from .autotune import cost_for

    mode, pins = _parse_env()
    cands_by_layout = {}
    for layout in LAYOUTS:
        variant = spec._replace(layout=layout)
        cands = candidates(variant)
        if mode == "pinned":
            name = pins.get(variant.op_class, pins.get("*"))
            if name is not None:
                cands = [cls for cls in cands if cls.name == name]
        cands_by_layout[layout] = (variant, cands)
    feasible = [lay for lay, (_, cands) in cands_by_layout.items() if cands]
    costs = {}
    for layout, (variant, cands) in cands_by_layout.items():
        if not cands:
            costs[layout] = float("inf")
        elif len(feasible) == 1:
            costs[layout] = 0.0
        elif mode == "heuristic":
            costs[layout] = None
        else:
            costs[layout] = cost_for(variant, cands)
    return costs


def selection_table():
    """Chosen kernel per signature (with autotuner timings where available).

    Candidates that crashed while tuning appear with an ``inf`` timing and a
    ``"failures"`` entry naming the reason, so a quarantined kernel is
    visible in the same table as the selection it lost.  Timed rows carry
    ``timed_blas_threads`` (the BLAS thread count the timings were measured
    under) next to the host's current ``host_blas_threads``: committed
    kernel choices whose two numbers disagree were tuned on a differently
    threaded host — a threaded BLAS favours the GEMM kernels, the per-tap
    kernels are single-threaded — and deserve a re-tune before serving.
    """
    from .autotune import blas_thread_count, failures_for, threads_for, timings_for

    host_threads = blas_thread_count()
    table = {}
    for spec, entry in _SELECTIONS.items():
        row = dict(entry)
        row["host_blas_threads"] = host_threads
        timings = timings_for(spec)
        if timings is not None:
            row["timings_ms"] = {name: t * 1e3 for name, t in timings.items()}
            row["timed_blas_threads"] = threads_for(spec)
        failures = failures_for(spec)
        if failures is not None:
            row["failures"] = failures
        table[spec.describe()] = row
    return table


def reset_selections():
    """Clear the selection table (autotimer cache is cleared separately)."""
    _SELECTIONS.clear()
