"""Graph-level optimisation passes over compiled :class:`~repro.runtime.plan.Plan`s.

The structural compiler emits a faithful one-op-per-node program; this module
rewrites that program *between emission and finalisation* — the classic
deep-learning-compiler pipeline, specialised to the runtime's flat slot IR:

``dead_branch``
    Gate-aware dead-branch elimination for gated supernet plans: candidate
    branches whose compile-time gate weight falls outside the requested
    top-k / threshold are pruned from every :class:`GateCombineStep`, and the
    orphaned branch subgraphs are swept by dead-code elimination.  Pruning to
    top-k reproduces exactly the plan that compiling the pre-pruned
    active-path layout would produce (the Eq. 7 multi-path-backward
    semantics the ``ablation_topk_paths`` benchmark studies).

``fuse_epilogue``
    Epilogue fusion for inference plans: standalone batch-norm, activation
    and residual-add steps are folded into the producing compute step
    (:class:`Conv2dStep` / :class:`LinearStep`), so each intermediate feature
    map is written once instead of being re-traversed per elementwise op.
    Conv steps hand the fused tail to their dispatched
    :mod:`repro.runtime.kernels` implementation as an epilogue descriptor —
    blocked kernels apply it per output tile while the tile is cache-hot
    rather than assuming a whole-batch GEMM follows.

``fold_bn``
    Inference-mode conv-BN weight folding: the (eval-mode) BN scale/shift is
    pre-multiplied into the convolution kernel and bias, removing the two
    per-run channel-wise passes over the output map.  Folded weights carry
    live-parameter invalidation (parameter version counters + running-stat
    content checks), so training between rollouts refreshes them
    automatically; train-mode BN falls back to the unfolded math at run time.

``alias_slots``
    Slot-liveness buffer aliasing: a last-use analysis over the forward
    program (and over the reverse program for training plans) assigns
    non-overlapping slots to shared byte arenas, and sizes one shared scratch
    arena for the transient im2col workspaces, cutting peak plan memory.
    For training plans the gradient buffers are interval-shared with a fill
    schedule that zeroes each buffer exactly when its live interval begins.

Pass selection: every pass runs by default; the ``REPRO_RUNTIME_PASSES``
environment variable (``all`` | ``none`` | comma-list, e.g.
``fold_bn,alias_slots``) or the ``passes=`` argument of
:func:`~repro.runtime.compiler.compile_plan` disables individual passes for
bisection, mirroring the ``use_compiled_train`` fallback style.
"""

from __future__ import annotations

import os

import numpy as np

from .plan import (
    ActivationStep,
    AddStep,
    BatchNormStep,
    Conv2dStep,
    FlattenStep,
    GateCombineStep,
    GlobalAvgPoolStep,
    LinearStep,
    OpaqueStep,
    Pool2dStep,
    ReshapeStep,
    SoftmaxStep,
    StoragePlan,
    TileStep,
)

__all__ = ["PASS_NAMES", "enabled_passes", "run_passes", "PassContext"]

#: Pipeline order matters: branch pruning first (smaller graph for everything
#: after), then structural fusion, then weight folding, then the liveness
#: analysis over the final step list.
PASS_NAMES = ("dead_branch", "fuse_epilogue", "fold_bn", "alias_slots")

ENV_VAR = "REPRO_RUNTIME_PASSES"

#: Step types the analyses understand.  A plan containing anything else
#: (custom :class:`Step` subclasses from third-party expanders) only receives
#: the passes that need no graph analysis.
_KNOWN_STEPS = frozenset(
    {
        ActivationStep,
        AddStep,
        BatchNormStep,
        Conv2dStep,
        FlattenStep,
        GateCombineStep,
        GlobalAvgPoolStep,
        LinearStep,
        OpaqueStep,
        Pool2dStep,
        ReshapeStep,
        SoftmaxStep,
        TileStep,
    }
)

#: Step types whose output slot is a zero-copy view of their input slot.
_VIEW_STEPS = (FlattenStep, ReshapeStep)


def enabled_passes(spec=None):
    """Resolve a pass-selection spec into a frozen set of pass names.

    ``None`` reads ``REPRO_RUNTIME_PASSES`` (default: all passes).  Accepts
    ``"all"``, ``"none"``, a comma-separated name list, or any iterable of
    names; unknown names raise ``ValueError`` so typos fail loudly.
    """
    if spec is None:
        spec = os.environ.get(ENV_VAR, "all")
    if isinstance(spec, (set, frozenset, list, tuple)):
        names = [str(name).strip() for name in spec]
    else:
        text = str(spec).strip().lower()
        if text in ("all", ""):
            return frozenset(PASS_NAMES)
        if text == "none":
            return frozenset()
        names = [part.strip() for part in text.split(",") if part.strip()]
    unknown = sorted(set(names) - set(PASS_NAMES))
    if unknown:
        raise ValueError(
            "unknown runtime passes {}; valid names: {}".format(unknown, list(PASS_NAMES))
        )
    return frozenset(names)


class PassContext:
    """Compile-time facts the passes need beyond the plan itself."""

    def __init__(
        self,
        protected_slots=(),
        zero_slots=(),
        gate_weights=None,
        gate_topk=None,
        gate_threshold=None,
    ):
        #: Slots with externally visible contents (plan input/outputs, named
        #: slots): never re-routed, never storage-shared, never dead.
        self.protected_slots = frozenset(protected_slots)
        #: Shared all-zero helper slots: contents persist across runs, so
        #: they may go dead but never share storage.
        self.zero_slots = frozenset(zero_slots)
        #: Per-cell gate weights aligned with the plan's gate layout (the
        #: soft Gumbel probabilities at compile time); enables ``dead_branch``.
        self.gate_weights = gate_weights
        self.gate_topk = gate_topk
        self.gate_threshold = gate_threshold


# --------------------------------------------------------------------------- #
# Step metadata
# --------------------------------------------------------------------------- #
def step_reads(step):
    """Slots whose contents the step's ``run`` consumes."""
    if isinstance(step, Conv2dStep):
        reads = [step.in_slot]
        if step.res_slot is not None:
            reads.append(step.res_slot)
        return reads
    if isinstance(step, AddStep):
        return [step.a_slot, step.b_slot]
    if isinstance(step, ActivationStep):
        return [step.slot]
    if isinstance(step, GateCombineStep):
        return list(step.in_slots)
    return [step.in_slot]


def step_writes(step):
    """Slots the step's ``run`` (re)defines."""
    if isinstance(step, ActivationStep):
        return [step.slot]
    return [step.out_slot]


def _analyze(plan):
    """Per-slot consumer/producer tables over the current step list."""
    readers = {}
    writers = {}
    for index, step in enumerate(plan.steps):
        for slot in step_reads(step):
            readers.setdefault(slot, []).append(index)
        for slot in step_writes(step):
            writers.setdefault(slot, []).append(index)
    return readers, writers


def _view_roots(plan):
    """Map each view slot to the slot whose storage it observes."""
    root = {}

    def find(slot):
        while slot in root:
            slot = root[slot]
        return slot

    for step in plan.steps:
        if isinstance(step, _VIEW_STEPS):
            root[step.out_slot] = find(step.in_slot)
    return root, find


def _ensure_storage(plan):
    if plan.storage is None:
        plan.storage = StoragePlan()
    return plan.storage


# --------------------------------------------------------------------------- #
# dead_branch: gate-aware branch pruning + DCE sweep
# --------------------------------------------------------------------------- #
def dead_branch(plan, ctx):
    """Prune gated-cell branches outside the top-k / threshold gate weights.

    ``ctx.gate_weights`` holds, per cell, weights aligned with the plan's
    current ``gate_layout``.  The surviving layout (always containing each
    cell's arg-max branch) replaces ``plan.gate_layout``; callers remap their
    per-run gate values through it.
    """
    if plan.gate_layout is None or ctx.gate_weights is None:
        return
    if ctx.gate_topk is None and ctx.gate_threshold is None:
        return
    new_layout = list(plan.gate_layout)
    changed = False
    for step in plan.steps:
        if not isinstance(step, GateCombineStep):
            continue
        cell = step.cell_index
        layout = plan.gate_layout[cell]
        weights = np.asarray(ctx.gate_weights[cell], dtype=np.float64)
        if weights.shape[-1] != len(layout):
            raise ValueError(
                "gate_weights for cell {} must align with its {} active paths".format(
                    cell, len(layout)
                )
            )
        order = np.argsort(-weights)
        keep = set(
            int(i) for i in (order[: int(ctx.gate_topk)] if ctx.gate_topk else order)
        )
        if ctx.gate_threshold is not None:
            keep = {i for i in keep if weights[i] >= ctx.gate_threshold}
        keep.add(int(np.argmax(weights)))
        keep = sorted(keep)
        if len(keep) == len(layout):
            continue
        step.in_slots = tuple(step.in_slots[i] for i in keep)
        new_layout[cell] = tuple(layout[i] for i in keep)
        changed = True
    if changed:
        plan.set_gate_layout(new_layout)
        _dce(plan, ctx)


def _dce(plan, ctx):
    """Drop steps whose outputs nothing (transitively) consumes."""
    needed = set(ctx.protected_slots)
    keep = [False] * len(plan.steps)
    for index in range(len(plan.steps) - 1, -1, -1):
        step = plan.steps[index]
        writes = step_writes(step)
        if isinstance(step, OpaqueStep) or any(slot in needed for slot in writes):
            keep[index] = True
            needed.update(step_reads(step))
            needed.update(writes)
    plan.steps = [step for index, step in enumerate(plan.steps) if keep[index]]


# --------------------------------------------------------------------------- #
# fuse_epilogue: BN / activation / residual-add into the producing GEMM
# --------------------------------------------------------------------------- #
def _single_consumer(slot, readers, ctx):
    return (
        slot not in ctx.protected_slots
        and slot not in ctx.zero_slots
        and len(readers.get(slot, ())) == 1
    )


def fuse_epilogue(plan, ctx):
    """Fold elementwise epilogues into the preceding GEMM step (inference only)."""
    if plan.train:
        return
    changed = True
    while changed:
        changed = False
        readers, writers = _analyze(plan)

        def producer_of(slot, before=None):
            """Latest step (re)defining ``slot``, optionally before ``before``."""
            indices = [
                i for i in writers.get(slot, ()) if before is None or i < before
            ]
            if not indices or (before is None and len(indices) != 1):
                return None, None
            return indices[-1], plan.steps[indices[-1]]

        for index, step in enumerate(plan.steps):
            # Standalone BN into its producing conv (mirrors what composite
            # expanders emit for ConvBNReLU, for hand-rolled Sequentials).
            if isinstance(step, BatchNormStep) and step.num_samples == 1:
                _, prod = producer_of(step.in_slot)
                if (
                    isinstance(prod, Conv2dStep)
                    and prod.bn is None
                    and prod.activation is None
                    and prod.res_slot is None
                    and not prod.fold_bn
                    and _single_consumer(step.in_slot, readers, ctx)
                ):
                    prod.bn = step.bn
                    prod.activation = step.activation
                    prod.out_slot = step.out_slot
                    del plan.steps[index]
                    changed = True
                    break
            if not isinstance(step, AddStep):
                continue
            zero_operand = None
            if step.b_slot in ctx.zero_slots:
                zero_operand, source = step.b_slot, step.a_slot
            elif step.a_slot in ctx.zero_slots:
                zero_operand, source = step.a_slot, step.b_slot
            if zero_operand is not None:
                # Copy-then-activate helper: retarget the producer instead.
                _, prod = producer_of(source)
                if (
                    isinstance(prod, (Conv2dStep, LinearStep, BatchNormStep, AddStep))
                    and prod.activation is None
                    and _single_consumer(source, readers, ctx)
                ):
                    prod.activation = step.activation
                    prod.out_slot = step.out_slot
                    del plan.steps[index]
                    changed = True
                    break
                continue
            # Residual join: fuse into the conv producing one operand when the
            # other operand is already materialised by then.  In-place joins
            # (``out == body``, the compiler's block-owned form) conflate the
            # pre- and post-join values under one slot id, so readers after
            # the join are fine — only reads *between* the conv and the join
            # (other than the join itself) block the fusion.
            fused = False
            for body, shortcut in ((step.a_slot, step.b_slot), (step.b_slot, step.a_slot)):
                prod_index, prod = producer_of(body, before=index)
                if (
                    not isinstance(prod, Conv2dStep)
                    or prod.activation is not None
                    or prod.res_slot is not None
                ):
                    continue
                if any(
                    body in step_reads(plan.steps[i])
                    for i in range(prod_index + 1, index)
                ):
                    continue  # pre-join value consumed elsewhere
                in_place = step.out_slot == body
                if not in_place:
                    # Rewiring the conv's output requires the pre-join value
                    # to be invisible elsewhere: the join is its only reader.
                    if not _single_consumer(body, readers, ctx):
                        continue
                elif body in ctx.zero_slots:
                    continue
                shortcut_def = max(writers.get(shortcut, (-1,)))
                if shortcut_def >= prod_index:
                    continue  # shortcut not materialised before the conv runs
                prod.res_slot = shortcut
                prod.activation = step.activation
                if not in_place:
                    prod.out_slot = step.out_slot
                del plan.steps[index]
                changed = True
                fused = True
                break
            if fused:
                break


# --------------------------------------------------------------------------- #
# fold_bn: eval-mode BN scale/shift folded into conv weights
# --------------------------------------------------------------------------- #
def fold_bn(plan, ctx):
    """Mark every BN-fused conv step for weight folding (inference only)."""
    if plan.train:
        return
    for step in plan.steps:
        if isinstance(step, Conv2dStep) and step.bn is not None:
            step.fold_bn = True


# --------------------------------------------------------------------------- #
# alias_slots: liveness analysis -> shared storage arenas
# --------------------------------------------------------------------------- #
def _assign_arenas(intervals, nbytes_of):
    """Greedy linear-scan assignment of live intervals to shared arenas.

    ``intervals`` is ``{slot: (start, end)}`` in program order; two slots may
    share an arena only when one's interval ends strictly before the other's
    begins (the strictness keeps GEMM outputs from aliasing their inputs).
    Returns ``(slot_arena, arena_nbytes)``.
    """
    slot_arena = {}
    arenas = []  # [capacity, free_at]
    for slot in sorted(intervals, key=lambda s: (intervals[s][0], s)):
        start, end = intervals[slot]
        nbytes = nbytes_of(slot)
        fit = grow = None
        for arena_id, (capacity, free_at) in enumerate(arenas):
            if free_at >= start:
                continue
            if capacity >= nbytes:
                if fit is None or capacity < arenas[fit][0]:
                    fit = arena_id
            elif grow is None or capacity > arenas[grow][0]:
                grow = arena_id
        if fit is not None:
            arena_id = fit
        elif grow is not None:
            arena_id = grow
            arenas[grow][0] = nbytes
        else:
            arena_id = len(arenas)
            arenas.append([nbytes, end])
        arenas[arena_id][1] = end
        slot_arena[slot] = arena_id
    return slot_arena, [capacity for capacity, _ in arenas]


def _scratch_channels(plan):
    """Per-channel maxima over every step's call-transient workspace needs."""
    channels = {}
    for step in plan.steps:
        for channel, nbytes in step.scratch_requests(plan):
            channels[channel] = max(channels.get(channel, 0), int(nbytes))
    return channels


def alias_slots(plan, ctx):
    """Share storage between slots whose live ranges never overlap.

    Inference plans alias the activation slots themselves and provision one
    shared scratch arena for the transient im2col workspaces.  Training plans
    keep every forward activation alive (they are the saved intermediates)
    and instead alias the reverse program's gradient buffers, zeroing each
    one at the start of its live interval via the plan's fill schedule.
    """
    storage = _ensure_storage(plan)
    root_map, find = _view_roots(plan)
    itemsize = plan.dtype.itemsize

    def nbytes_of(slot):
        return int(np.prod(plan.shape(slot))) * itemsize

    protected_roots = {find(slot) for slot in ctx.protected_slots}
    protected_roots |= {find(slot) for slot in ctx.zero_slots}

    if not plan.train:
        # Forward liveness: def index of each storage root and its last read.
        first_def = {}
        last_use = {}

        def touch(slot, index):
            root = find(slot)
            first_def.setdefault(root, index)
            last_use[root] = index

        if plan.input_slot is not None:
            touch(plan.input_slot, -1)
        for index, step in enumerate(plan.steps):
            for slot in step_reads(step):
                touch(slot, index)
            for slot in step_writes(step):
                touch(slot, index)
        intervals = {
            slot: (first_def[slot], last_use[slot])
            for slot in first_def
            if slot not in protected_roots and slot not in plan._view_slots
        }
        storage.slot_arena, storage.arena_nbytes = _assign_arenas(intervals, nbytes_of)
        storage.scratch_channels = _scratch_channels(plan)
        return

    # Training plans: alias the gradient buffers over the reverse program.
    length = len(plan.steps)
    touches = {}  # root -> [forward step indices touching its gradient]
    for index, step in enumerate(plan.steps):
        for slot in set(step_reads(step)) | set(step_writes(step)):
            touches.setdefault(find(slot), []).append(index)
    intervals = {}
    fill_schedule = {}
    for root, indices in touches.items():
        if root in protected_roots or root in plan._view_slots:
            continue
        first, last = min(indices), max(indices)
        if first == last:
            continue  # single-step slot: gradient never crosses a step boundary
        # Reverse positions: the gradient is first written by the backward of
        # the *last* forward toucher and finally consumed by the backward of
        # the *first* (its producer).
        intervals[root] = (length - 1 - last, length - 1 - first)
        fill_schedule.setdefault(last, []).append(root)
    storage.grad_arena, storage.grad_arena_nbytes = _assign_arenas(intervals, nbytes_of)
    storage.scratch_channels = _scratch_channels(plan)
    storage.grad_fill_schedule = {
        index: tuple(slots) for index, slots in fill_schedule.items()
    }
    # Gradients nothing touches (and nothing views) need no buffer at all.
    storage.grad_dead = {
        slot
        for slot in range(len(plan._shapes))
        if slot not in plan._view_slots
        and find(slot) == slot
        and slot not in touches
        and slot not in protected_roots
        and slot not in {find(v) for v in root_map}
    }


def mark_dead_slots(plan, ctx):
    """Record slots no remaining step touches so finalize skips them."""
    used = set(ctx.protected_slots)
    if plan.input_slot is not None:
        used.add(plan.input_slot)
    for step in plan.steps:
        used.update(step_reads(step))
        used.update(step_writes(step))
    storage = _ensure_storage(plan)
    storage.dead_slots = {
        slot
        for slot in range(len(plan._shapes))
        if slot not in used and slot not in plan._view_slots
    }


_PASS_FUNCS = {
    "dead_branch": dead_branch,
    "fuse_epilogue": fuse_epilogue,
    "fold_bn": fold_bn,
    "alias_slots": alias_slots,
}

#: Passes that are pure per-step rewrites and stay safe in the presence of
#: unknown (third-party) step types.
_ANALYSIS_FREE = frozenset({"fold_bn"})


def run_passes(plan, ctx, enabled=None):
    """Run the enabled passes, in pipeline order, on an un-finalised plan."""
    enabled = enabled if isinstance(enabled, frozenset) else enabled_passes(enabled)
    if not enabled:
        return plan
    analyzable = all(type(step) in _KNOWN_STEPS for step in plan.steps)
    for name in PASS_NAMES:
        if name not in enabled:
            continue
        if not analyzable and name not in _ANALYSIS_FREE:
            continue
        _PASS_FUNCS[name](plan, ctx)
    if analyzable:
        mark_dead_slots(plan, ctx)
    return plan
