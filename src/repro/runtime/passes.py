"""Graph-level optimisation passes over compiled :class:`~repro.runtime.plan.Plan`s.

The structural compiler emits a faithful one-op-per-node program; this module
rewrites that program *between emission and finalisation* — the classic
deep-learning-compiler pipeline, specialised to the runtime's flat slot IR:

``dead_branch``
    Gate-aware dead-branch elimination for gated supernet plans: candidate
    branches whose compile-time gate weight falls outside the requested
    top-k / threshold are pruned from every :class:`GateCombineStep`, and the
    orphaned branch subgraphs are swept by dead-code elimination.  Pruning to
    top-k reproduces exactly the plan that compiling the pre-pruned
    active-path layout would produce (the Eq. 7 multi-path-backward
    semantics the ``ablation_topk_paths`` benchmark studies).

``fuse_epilogue``
    Epilogue fusion for inference plans: standalone batch-norm, activation
    and residual-add steps are folded into the producing compute step
    (:class:`Conv2dStep` / :class:`LinearStep`), so each intermediate feature
    map is written once instead of being re-traversed per elementwise op.
    Conv steps hand the fused tail to their dispatched
    :mod:`repro.runtime.kernels` implementation as an epilogue descriptor —
    blocked kernels apply it per output tile while the tile is cache-hot
    rather than assuming a whole-batch GEMM follows.

``fold_bn``
    Inference-mode conv-BN weight folding: the (eval-mode) BN scale/shift is
    pre-multiplied into the convolution kernel and bias, removing the two
    per-run channel-wise passes over the output map.  Folded weights carry
    live-parameter invalidation (parameter version counters + running-stat
    content checks), so training between rollouts refreshes them
    automatically; train-mode BN falls back to the unfolded math at run time.

``layout``
    Cost-driven layout assignment: every 4-D slot carries a physical layout
    tag (NCHW / NHWC) and each convolution is assigned the layout whose
    dispatched kernel candidates time fastest
    (:func:`repro.runtime.kernels.layout_costs`), charged against measured
    transpose costs at the boundaries.  Channels-last propagates through the
    layout-agnostic follow steps (BN / activation / residual-add / gate
    combine / tile), so inverted-residual expand -> depthwise -> project
    chains run end-to-end NHWC: the pointwise convs become single flat GEMMs
    over trailing channels with fused trailing-axis epilogues and the direct
    depthwise kernel drops its per-call padded channels-last copy.  Explicit
    :class:`~repro.runtime.plan.TransposeStep`\\ s are materialised only at
    surviving boundaries (anchor steps, the plan input, protected outputs);
    under ``REPRO_KERNELS=heuristic`` the assignment falls back to static
    rules (deterministic, no timing).

``quantize``
    Opt-in int8/int16 lowering for inference plans (requires a
    :class:`~repro.runtime.quantize.QuantCalibration` in the pass context):
    eligible NHWC depthwise / pointwise convolutions are converted to
    integer arithmetic with per-tensor activation scales from calibration,
    and explicit :class:`~repro.runtime.plan.QuantizeStep` /
    :class:`~repro.runtime.plan.DequantizeStep` boundary steps bracket the
    quantized regions the way transpose steps bracket NHWC regions.  Heads,
    the dense stem and anything without a quantized kernel stay float; when
    the calibration does not match the compiled plan (slot drift across
    processes) the pass declines to fire rather than apply wrong scales.

``alias_slots``
    Slot-liveness buffer aliasing: a last-use analysis over the forward
    program (and over the reverse program for training plans) assigns
    non-overlapping slots to shared byte arenas, and sizes one shared scratch
    arena for the transient im2col workspaces, cutting peak plan memory.
    For training plans the gradient buffers are interval-shared with a fill
    schedule that zeroes each buffer exactly when its live interval begins.
    Arenas are shared by *bytes*, so NHWC intervals coexist with NCHW ones.

After the passes run, a plan-lint debug check (:func:`lint_plan`) validates
the layout and aliasing invariants — no adjacent transpose-transpose pairs,
every step's input layouts matching its slot tags, aliased buffers fitting
their arenas — and raises :class:`PlanLintError` on violation.  It is on by
default under pytest and controllable via ``REPRO_RUNTIME_LINT=1/0``.

Pass selection: every pass runs by default; the ``REPRO_RUNTIME_PASSES``
environment variable (``all`` | ``none`` | comma-list, e.g.
``fold_bn,alias_slots``) or the ``passes=`` argument of
:func:`~repro.runtime.compiler.compile_plan` disables individual passes for
bisection, mirroring the ``use_compiled_train`` fallback style.
"""

from __future__ import annotations

import os

import numpy as np

from ..telemetry import trace
from . import kernels as conv_kernels
from .plan import (
    ActivationStep,
    AddStep,
    BatchNormStep,
    Conv2dStep,
    DequantizeStep,
    FlattenStep,
    GateCombineStep,
    GlobalAvgPoolStep,
    LinearStep,
    OpaqueStep,
    Pool2dStep,
    QuantInfo,
    QuantizeStep,
    ReshapeStep,
    SoftmaxStep,
    StoragePlan,
    TileStep,
    TransposeStep,
)

__all__ = [
    "PASS_NAMES",
    "enabled_passes",
    "run_passes",
    "PassContext",
    "PlanLintError",
    "lint_plan",
    "lint_enabled",
]

#: Pipeline order matters: branch pruning first (smaller graph for everything
#: after), then structural fusion, then weight folding, then layout
#: assignment (which may insert transpose steps), then quantization (whose
#: slot-identity contract with calibration depends on all earlier passes
#: having run identically), then the liveness analysis over the final step
#: list.
PASS_NAMES = (
    "dead_branch", "fuse_epilogue", "fold_bn", "layout", "quantize", "alias_slots"
)

ENV_VAR = "REPRO_RUNTIME_PASSES"

#: Debug-lint control: "1"/"0" force it on/off; unset means "on under pytest".
LINT_ENV_VAR = "REPRO_RUNTIME_LINT"

#: Step types the analyses understand.  A plan containing anything else
#: (custom :class:`Step` subclasses from third-party expanders) only receives
#: the passes that need no graph analysis.
_KNOWN_STEPS = frozenset(
    {
        ActivationStep,
        AddStep,
        BatchNormStep,
        Conv2dStep,
        FlattenStep,
        GateCombineStep,
        GlobalAvgPoolStep,
        LinearStep,
        OpaqueStep,
        Pool2dStep,
        QuantizeStep,
        DequantizeStep,
        ReshapeStep,
        SoftmaxStep,
        TileStep,
        TransposeStep,
    }
)

#: Step types whose output slot is a zero-copy view of their input slot.
_VIEW_STEPS = (FlattenStep, ReshapeStep)


def enabled_passes(spec=None):
    """Resolve a pass-selection spec into a frozen set of pass names.

    ``None`` reads ``REPRO_RUNTIME_PASSES`` (default: all passes).  Accepts
    ``"all"``, ``"none"``, a comma-separated name list, or any iterable of
    names; unknown names raise ``ValueError`` so typos fail loudly.
    """
    if spec is None:
        spec = os.environ.get(ENV_VAR, "all")
    if isinstance(spec, (set, frozenset, list, tuple)):
        names = [str(name).strip() for name in spec]
    else:
        text = str(spec).strip().lower()
        if text in ("all", ""):
            return frozenset(PASS_NAMES)
        if text == "none":
            return frozenset()
        names = [part.strip() for part in text.split(",") if part.strip()]
    unknown = sorted(set(names) - set(PASS_NAMES))
    if unknown:
        raise ValueError(
            "unknown runtime passes {}; valid names: {}".format(unknown, list(PASS_NAMES))
        )
    return frozenset(names)


class PassContext:
    """Compile-time facts the passes need beyond the plan itself."""

    def __init__(
        self,
        protected_slots=(),
        zero_slots=(),
        gate_weights=None,
        gate_topk=None,
        gate_threshold=None,
        quantize=None,
    ):
        #: Slots with externally visible contents (plan input/outputs, named
        #: slots): never re-routed, never storage-shared, never dead.
        self.protected_slots = frozenset(protected_slots)
        #: Shared all-zero helper slots: contents persist across runs, so
        #: they may go dead but never share storage.
        self.zero_slots = frozenset(zero_slots)
        #: Per-cell gate weights aligned with the plan's gate layout (the
        #: soft Gumbel probabilities at compile time); enables ``dead_branch``.
        self.gate_weights = gate_weights
        self.gate_topk = gate_topk
        self.gate_threshold = gate_threshold
        #: :class:`~repro.runtime.quantize.QuantCalibration` matching this
        #: compile, or ``None``; enables the ``quantize`` pass.
        self.quantize = quantize


# --------------------------------------------------------------------------- #
# Step metadata
# --------------------------------------------------------------------------- #
def step_reads(step):
    """Slots whose contents the step's ``run`` consumes."""
    if isinstance(step, Conv2dStep):
        reads = [step.in_slot]
        if step.res_slot is not None:
            reads.append(step.res_slot)
        return reads
    if isinstance(step, AddStep):
        return [step.a_slot, step.b_slot]
    if isinstance(step, ActivationStep):
        return [step.slot]
    if isinstance(step, GateCombineStep):
        return list(step.in_slots)
    return [step.in_slot]


def step_writes(step):
    """Slots the step's ``run`` (re)defines."""
    if isinstance(step, ActivationStep):
        return [step.slot]
    return [step.out_slot]


def _analyze(plan):
    """Per-slot consumer/producer tables over the current step list."""
    readers = {}
    writers = {}
    for index, step in enumerate(plan.steps):
        for slot in step_reads(step):
            readers.setdefault(slot, []).append(index)
        for slot in step_writes(step):
            writers.setdefault(slot, []).append(index)
    return readers, writers


def _view_roots(plan):
    """Map each view slot to the slot whose storage it observes."""
    root = {}

    def find(slot):
        while slot in root:
            slot = root[slot]
        return slot

    for step in plan.steps:
        if isinstance(step, _VIEW_STEPS):
            root[step.out_slot] = find(step.in_slot)
    return root, find


def _ensure_storage(plan):
    if plan.storage is None:
        plan.storage = StoragePlan()
    return plan.storage


# --------------------------------------------------------------------------- #
# dead_branch: gate-aware branch pruning + DCE sweep
# --------------------------------------------------------------------------- #
def dead_branch(plan, ctx):
    """Prune gated-cell branches outside the top-k / threshold gate weights.

    ``ctx.gate_weights`` holds, per cell, weights aligned with the plan's
    current ``gate_layout``.  The surviving layout (always containing each
    cell's arg-max branch) replaces ``plan.gate_layout``; callers remap their
    per-run gate values through it.
    """
    if plan.gate_layout is None or ctx.gate_weights is None:
        return
    if ctx.gate_topk is None and ctx.gate_threshold is None:
        return
    new_layout = list(plan.gate_layout)
    changed = False
    for step in plan.steps:
        if not isinstance(step, GateCombineStep):
            continue
        cell = step.cell_index
        layout = plan.gate_layout[cell]
        weights = np.asarray(ctx.gate_weights[cell], dtype=np.float64)
        if weights.shape[-1] != len(layout):
            raise ValueError(
                "gate_weights for cell {} must align with its {} active paths".format(
                    cell, len(layout)
                )
            )
        order = np.argsort(-weights)
        keep = set(
            int(i) for i in (order[: int(ctx.gate_topk)] if ctx.gate_topk else order)
        )
        if ctx.gate_threshold is not None:
            keep = {i for i in keep if weights[i] >= ctx.gate_threshold}
        keep.add(int(np.argmax(weights)))
        keep = sorted(keep)
        if len(keep) == len(layout):
            continue
        step.in_slots = tuple(step.in_slots[i] for i in keep)
        new_layout[cell] = tuple(layout[i] for i in keep)
        changed = True
    if changed:
        plan.set_gate_layout(new_layout)
        _dce(plan, ctx)


def _dce(plan, ctx):
    """Drop steps whose outputs nothing (transitively) consumes."""
    needed = set(ctx.protected_slots)
    keep = [False] * len(plan.steps)
    for index in range(len(plan.steps) - 1, -1, -1):
        step = plan.steps[index]
        writes = step_writes(step)
        if isinstance(step, OpaqueStep) or any(slot in needed for slot in writes):
            keep[index] = True
            needed.update(step_reads(step))
            needed.update(writes)
    plan.steps = [step for index, step in enumerate(plan.steps) if keep[index]]


# --------------------------------------------------------------------------- #
# fuse_epilogue: BN / activation / residual-add into the producing GEMM
# --------------------------------------------------------------------------- #
def _single_consumer(slot, readers, ctx):
    return (
        slot not in ctx.protected_slots
        and slot not in ctx.zero_slots
        and len(readers.get(slot, ())) == 1
    )


def fuse_epilogue(plan, ctx):
    """Fold elementwise epilogues into the preceding GEMM step (inference only)."""
    if plan.train:
        return
    changed = True
    while changed:
        changed = False
        readers, writers = _analyze(plan)

        def producer_of(slot, before=None):
            """Latest step (re)defining ``slot``, optionally before ``before``."""
            indices = [
                i for i in writers.get(slot, ()) if before is None or i < before
            ]
            if not indices or (before is None and len(indices) != 1):
                return None, None
            return indices[-1], plan.steps[indices[-1]]

        for index, step in enumerate(plan.steps):
            # Standalone BN into its producing conv (mirrors what composite
            # expanders emit for ConvBNReLU, for hand-rolled Sequentials).
            if isinstance(step, BatchNormStep) and step.num_samples == 1:
                _, prod = producer_of(step.in_slot)
                if (
                    isinstance(prod, Conv2dStep)
                    and prod.bn is None
                    and prod.activation is None
                    and prod.res_slot is None
                    and not prod.fold_bn
                    and _single_consumer(step.in_slot, readers, ctx)
                ):
                    prod.bn = step.bn
                    prod.activation = step.activation
                    prod.out_slot = step.out_slot
                    del plan.steps[index]
                    changed = True
                    break
            if not isinstance(step, AddStep):
                continue
            zero_operand = None
            if step.b_slot in ctx.zero_slots:
                zero_operand, source = step.b_slot, step.a_slot
            elif step.a_slot in ctx.zero_slots:
                zero_operand, source = step.a_slot, step.b_slot
            if zero_operand is not None:
                # Copy-then-activate helper: retarget the producer instead.
                _, prod = producer_of(source)
                if (
                    isinstance(prod, (Conv2dStep, LinearStep, BatchNormStep, AddStep))
                    and prod.activation is None
                    and _single_consumer(source, readers, ctx)
                ):
                    prod.activation = step.activation
                    prod.out_slot = step.out_slot
                    del plan.steps[index]
                    changed = True
                    break
                continue
            # Residual join: fuse into the conv producing one operand when the
            # other operand is already materialised by then.  In-place joins
            # (``out == body``, the compiler's block-owned form) conflate the
            # pre- and post-join values under one slot id, so readers after
            # the join are fine — only reads *between* the conv and the join
            # (other than the join itself) block the fusion.
            fused = False
            for body, shortcut in ((step.a_slot, step.b_slot), (step.b_slot, step.a_slot)):
                prod_index, prod = producer_of(body, before=index)
                if (
                    not isinstance(prod, Conv2dStep)
                    or prod.activation is not None
                    or prod.res_slot is not None
                ):
                    continue
                if any(
                    body in step_reads(plan.steps[i])
                    for i in range(prod_index + 1, index)
                ):
                    continue  # pre-join value consumed elsewhere
                in_place = step.out_slot == body
                if not in_place:
                    # Rewiring the conv's output requires the pre-join value
                    # to be invisible elsewhere: the join is its only reader.
                    if not _single_consumer(body, readers, ctx):
                        continue
                elif body in ctx.zero_slots:
                    continue
                shortcut_def = max(writers.get(shortcut, (-1,)))
                if shortcut_def >= prod_index:
                    continue  # shortcut not materialised before the conv runs
                prod.res_slot = shortcut
                prod.activation = step.activation
                if not in_place:
                    prod.out_slot = step.out_slot
                del plan.steps[index]
                changed = True
                fused = True
                break
            if fused:
                break


# --------------------------------------------------------------------------- #
# fold_bn: eval-mode BN scale/shift folded into conv weights
# --------------------------------------------------------------------------- #
def fold_bn(plan, ctx):
    """Mark every BN-fused conv step for weight folding (inference only)."""
    if plan.train:
        return
    for step in plan.steps:
        if isinstance(step, Conv2dStep) and step.bn is not None:
            step.fold_bn = True


# --------------------------------------------------------------------------- #
# layout: cost-driven NCHW/NHWC assignment + transpose materialisation
# --------------------------------------------------------------------------- #
#: Hill-climb acceptance threshold (relative improvement) and round cap.
_LAYOUT_MARGIN = 0.97
_LAYOUT_ROUNDS = 8

#: Synthetic costs for heuristic mode (``REPRO_KERNELS=heuristic``): a
#: deterministic stand-in for measured seconds.  Depthwise / pointwise convs
#: prefer NHWC strongly enough that a chain of two or more flips; a lone conv
#: does not pay for its boundary transposes.
_SYN_NCHW = 1.0
_SYN_NHWC_GOOD = 0.5
_SYN_NHWC_NEUTRAL = 0.99
_SYN_TRANSPOSE = 0.25


def _step_layout_plan(step, lay, conv_layout, zero_slots):
    """Decide the layout a step runs in and what it needs from its inputs.

    ``lay`` maps a slot to its current layout tag (``None`` for non-4-D
    slots).  Returns ``(step_layout, requires, out_layouts)``: ``requires``
    maps read slots to the layout the step must observe them in (zero slots
    are wildcards, satisfied by re-tagging instead of transposing) and
    ``out_layouts`` maps (re)defined slots to their tags after the step.
    """
    if isinstance(step, Conv2dStep):
        layout = conv_layout.get(id(step), "NCHW")
        requires = {step.in_slot: layout}
        if step.res_slot is not None:
            requires[step.res_slot] = layout
        return layout, requires, {step.out_slot: layout}
    if isinstance(step, (BatchNormStep, TileStep)):
        layout = lay(step.in_slot) or "NCHW"
        return layout, {}, {step.out_slot: layout}
    if isinstance(step, ActivationStep):
        # Elementwise in place: runs in whatever layout the slot carries, but
        # redefines the slot (any transposed twin of it goes stale).
        return lay(step.slot), {}, {step.slot: lay(step.slot)}
    if isinstance(step, AddStep):
        if step.out_slot in (step.a_slot, step.b_slot):
            # In-place join: the aliased operand cannot be transposed away.
            layout = lay(step.out_slot) or "NCHW"
        else:
            prefs = [
                lay(slot)
                for slot in (step.a_slot, step.b_slot)
                if slot not in zero_slots and lay(slot) is not None
            ]
            layout = prefs[0] if prefs else "NCHW"
        requires = {
            slot: layout
            for slot in (step.a_slot, step.b_slot)
            if slot != step.out_slot
        }
        return layout, requires, {step.out_slot: layout}
    if isinstance(step, GateCombineStep):
        prefs = [
            lay(slot)
            for slot in step.in_slots
            if slot not in zero_slots and lay(slot) is not None
        ]
        nhwc = sum(1 for pref in prefs if pref == "NHWC")
        if not prefs:
            layout = "NCHW"
        elif nhwc * 2 > len(prefs):
            layout = "NHWC"
        elif nhwc * 2 < len(prefs):
            layout = "NCHW"
        else:
            layout = prefs[0]
        return layout, {slot: layout for slot in step.in_slots}, {step.out_slot: layout}
    if isinstance(step, GlobalAvgPoolStep):
        # Reduces over whatever layout its input carries; output is 2-D.
        return lay(step.in_slot) or "NCHW", {}, {}
    if isinstance(step, TransposeStep):
        return step.to_layout, {step.in_slot: step.from_layout}, {
            step.out_slot: step.to_layout
        }
    # Anchors: pooling / flatten / reshape / opaque (and anything else that
    # indexes spatial axes logically) require physical NCHW on 4-D slots.
    requires = {slot: "NCHW" for slot in step_reads(step) if lay(slot) is not None}
    return "NCHW", requires, {}


def _walk_layouts(plan, ctx, conv_layout, on_boundary, materialize=None):
    """Shared propagation walk for the cost model and the materialiser.

    Walks the program in order tracking per-slot layout tags, slot write
    versions and first-claim re-tagging of all-zero wildcard slots; calls
    ``on_boundary(step, slot, version, current, needed)`` (returning a
    replacement slot, or ``None``) for every read whose tag mismatches.
    """
    if materialize is None:
        layouts = list(plan._layouts)
    else:
        layouts = plan._layouts  # mutated in place
    versions = {}
    claimed_zero = set()
    for step in plan.steps:
        layout, requires, outs = _step_layout_plan(
            step, lambda s: layouts[s], conv_layout, ctx.zero_slots
        )
        remap = {}
        for slot, needed in requires.items():
            current = layouts[slot]
            if current is None or current == needed:
                continue
            if slot in ctx.zero_slots and slot not in claimed_zero:
                # All-zero contents are layout-invariant: re-tag for free.
                claimed_zero.add(slot)
                layouts[slot] = needed
                continue
            twin = on_boundary(step, slot, versions.get(slot, 0), current, needed)
            if twin is not None:
                remap[slot] = twin
        if materialize is not None:
            if remap:
                _rewire_reads(step, remap)
            if isinstance(step, (Conv2dStep, BatchNormStep, GlobalAvgPoolStep)):
                step.layout = layout
            materialize.append(step)
        for slot, new_layout in outs.items():
            if new_layout is not None:
                layouts[slot] = new_layout
            versions[slot] = versions.get(slot, 0) + 1


def _rewire_reads(step, remap):
    """Point a step's reads at transposed twin slots."""
    if isinstance(step, Conv2dStep):
        step.in_slot = remap.get(step.in_slot, step.in_slot)
        if step.res_slot is not None:
            step.res_slot = remap.get(step.res_slot, step.res_slot)
    elif isinstance(step, AddStep):
        step.a_slot = remap.get(step.a_slot, step.a_slot)
        step.b_slot = remap.get(step.b_slot, step.b_slot)
    elif isinstance(step, GateCombineStep):
        step.in_slots = tuple(remap.get(slot, slot) for slot in step.in_slots)
    elif hasattr(step, "in_slot"):
        step.in_slot = remap.get(step.in_slot, step.in_slot)


def _conv_components(plan, convs):
    """Group convs whose 4-D slots connect through layout-agnostic steps.

    Components flip together during the search (an inverted-residual chain is
    only worth NHWC end-to-end); anchor steps break the connectivity.
    """
    parent = {}

    def find(x):
        while parent.setdefault(x, x) != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a, b):
        parent[find(a)] = find(b)

    for step in plan.steps:
        slots = None
        if isinstance(step, Conv2dStep):
            slots = [step.in_slot, step.out_slot] + (
                [step.res_slot] if step.res_slot is not None else []
            )
        elif isinstance(step, (BatchNormStep, TileStep)):
            slots = [step.in_slot, step.out_slot]
        elif isinstance(step, AddStep):
            slots = [step.a_slot, step.b_slot, step.out_slot]
        elif isinstance(step, GateCombineStep):
            slots = list(step.in_slots) + [step.out_slot]
        if slots:
            for slot in slots[1:]:
                union(slots[0], slot)
    groups = {}
    for step in convs:
        groups.setdefault(find(step.in_slot), []).append(id(step))
    return list(groups.values())


def assign_layouts(plan, ctx):
    """Assign NCHW/NHWC per conv by cost, then materialise transpose steps.

    Candidate layouts and their measured kernel costs come from
    :func:`repro.runtime.kernels.layout_costs`; boundary costs from
    :func:`repro.runtime.kernels.transpose_seconds`.  Under heuristic mode
    (no timing) a deterministic synthetic cost model prefers NHWC for
    depthwise / pointwise convolutions.  A hill-climb from the all-NCHW
    assignment tries whole-component flips and single-conv toggles, accepting
    moves that beat the incumbent by more than 3%.
    """
    convs = [step for step in plan.steps if isinstance(step, Conv2dStep)]
    if not convs:
        return

    conv_costs = {}
    heuristic = False
    for step in convs:
        costs = dict(conv_kernels.layout_costs(step._spec(plan)))
        if step.out_slot in ctx.protected_slots:
            costs["NHWC"] = float("inf")  # externally observed contents
        if any(cost is None for cost in costs.values()):
            heuristic = True
        conv_costs[id(step)] = costs
    if heuristic:
        for step in convs:
            spec = step._spec(plan)
            feasible = conv_costs[id(step)].get("NHWC") != float("inf")
            good = spec.depthwise or spec.pointwise
            conv_costs[id(step)] = {
                "NCHW": _SYN_NCHW,
                "NHWC": (_SYN_NHWC_GOOD if good else _SYN_NHWC_NEUTRAL)
                if feasible
                else float("inf"),
            }

        def trans_cost(slot):
            return _SYN_TRANSPOSE

    else:

        def trans_cost(slot):
            return conv_kernels.transpose_seconds(plan.shape(slot), plan.dtype)

    def evaluate(assign):
        boundaries = set()

        def on_boundary(step, slot, version, current, needed):
            boundaries.add((slot, version, needed))
            return None

        _walk_layouts(plan, ctx, assign, on_boundary)
        total = sum(conv_costs[cid][layout] for cid, layout in assign.items())
        # A training-plan transpose also runs (reversed) in the backward pass.
        weight = 2.0 if plan.train else 1.0
        return total + weight * sum(trans_cost(slot) for slot, _, _ in boundaries)

    def feasible_flip(assign, cid, layout):
        if conv_costs[cid][layout] == float("inf"):
            return None
        if assign[cid] == layout:
            return None
        return layout

    assign = {id(step): "NCHW" for step in convs}
    best = evaluate(assign)
    components = _conv_components(plan, convs)
    for _ in range(_LAYOUT_ROUNDS):
        moves = []
        for comp in components:
            for layout in conv_kernels.LAYOUTS:
                moves.append([(cid, layout) for cid in comp])
        for step in convs:
            cid = id(step)
            moves.append([(cid, "NHWC" if assign[cid] == "NCHW" else "NCHW")])
        winner = None
        winner_cost = best
        for move in moves:
            candidate = dict(assign)
            changed = False
            for cid, layout in move:
                if feasible_flip(candidate, cid, layout):
                    candidate[cid] = layout
                    changed = True
            if not changed:
                continue
            cost = evaluate(candidate)
            if cost < winner_cost * _LAYOUT_MARGIN:
                winner, winner_cost = candidate, cost
        if winner is None:
            break
        assign, best = winner, winner_cost

    if all(layout == "NCHW" for layout in assign.values()):
        return

    # Materialise: insert transpose steps at surviving boundaries, re-tag
    # slots and steps, rewire reads through versioned twin slots.
    twins = {}
    new_steps = []

    def on_boundary(step, slot, version, current, needed):
        key = (slot, version, needed)
        twin = twins.get(key)
        if twin is None:
            twin = plan.new_slot(plan.shape(slot), layout=needed)
            new_steps.append(TransposeStep(slot, twin, current, needed))
            twins[key] = twin
            if slot == plan.input_slot or slot in plan._no_grad_slots:
                plan._no_grad_slots.add(twin)
        return twin

    _walk_layouts(plan, ctx, assign, on_boundary, materialize=new_steps)
    plan.steps = new_steps


# --------------------------------------------------------------------------- #
# quantize: calibrated int8/int16 lowering of eligible convolutions
# --------------------------------------------------------------------------- #
def quantize_plan(plan, ctx):
    """Convert eligible convs to integer arithmetic (inference, opt-in).

    Runs only when the pass context carries a
    :class:`~repro.runtime.quantize.QuantCalibration` whose slot identity
    matches this plan (the calibration was taken on a plan compiled with the
    same passes minus ``quantize``, so slot indices line up; any drift makes
    the pass decline entirely — quantization is an optimisation, never a
    correctness requirement).

    A conv is eligible when it is NHWC depthwise or pointwise, inference
    direction, its activation quantizes losslessly into the requant clip
    (``None`` / ``relu``), its BN (if any) is folded into the weights, its
    output slot is unprotected and single-writer, a registered kernel serves
    the quantized signature, and calibration observed all its slots with the
    right channel counts.  The walk then threads integer data through
    eligible chains: a quantized conv reading a float slot gets a
    :class:`~repro.runtime.plan.QuantizeStep` twin, a float step reading a
    quantized slot gets a :class:`~repro.runtime.plan.DequantizeStep` twin
    (memoised per slot, like the layout pass's transpose twins), and
    conv-to-conv edges inside a chain stay integer with matching scales by
    construction.  Value / policy heads stay float automatically: their
    first read of a quantized slot dequantizes it.
    """
    calib = ctx.quantize
    if calib is None or plan.train:
        return
    if calib.num_slots != len(plan._shapes):
        return  # slot identity drifted from calibration: fail safe to float
    mode = calib.mode
    act_dtype = np.dtype(np.int8 if mode == "q8" else np.int16)
    qmax = 127 if mode == "q8" else 32767

    _, writers = _analyze(plan)

    def slot_scale(slot):
        channels = calib.channels(slot)
        if channels is None or channels != plan.shape(slot)[1]:
            return None
        return calib.scale(slot, qmax)

    eligible = {}
    for step in plan.steps:
        if not isinstance(step, Conv2dStep):
            continue
        spec = step._spec(plan)
        if (
            step.layout != "NHWC"
            or step.activation not in (None, "relu")
            or spec.op_class not in ("pointwise", "depthwise")
            or (step.bn is not None and not step.fold_bn)
            or step.out_slot in ctx.protected_slots
            or len(writers.get(step.out_slot, ())) != 1
            or not conv_kernels.candidates(spec._replace(quant=mode))
        ):
            continue
        in_scale = slot_scale(step.in_slot)
        out_scale = slot_scale(step.out_slot)
        res_scale = (
            slot_scale(step.res_slot) if step.res_slot is not None else 0.0
        )
        if in_scale is None or out_scale is None or res_scale is None:
            continue
        eligible[id(step)] = (in_scale, out_scale, res_scale)
    if not eligible:
        return

    new_steps = []
    int_scale = {}  # slot -> activation scale, for slots carrying integers
    qtwins = {}     # (float slot, write version) -> integer twin
    ftwins = {}     # integer slot -> float twin
    versions = {}

    def int_view(slot, scale, layout):
        key = (slot, versions.get(slot, 0))
        twin = qtwins.get(key)
        if twin is None:
            twin = plan.new_slot(plan.shape(slot), layout=layout, dtype=act_dtype)
            new_steps.append(QuantizeStep(slot, twin, scale, qmax, layout=layout))
            int_scale[twin] = scale
            qtwins[key] = twin
        return twin

    def float_view(slot, layout):
        twin = ftwins.get(slot)
        if twin is None:
            twin = plan.new_slot(plan.shape(slot), layout=layout)
            new_steps.append(
                DequantizeStep(slot, twin, int_scale[slot], layout=layout)
            )
            ftwins[slot] = twin
        return twin

    for step in plan.steps:
        scales = eligible.get(id(step))
        if scales is not None:
            in_scale, out_scale, res_scale = scales
            if step.in_slot in int_scale:
                in_scale = int_scale[step.in_slot]
            else:
                step.in_slot = int_view(step.in_slot, in_scale, step.layout)
            if step.res_slot is not None:
                if step.res_slot in int_scale:
                    res_scale = int_scale[step.res_slot]
                else:
                    step.res_slot = int_view(step.res_slot, res_scale, step.layout)
            plan.set_slot_dtype(step.out_slot, act_dtype)
            int_scale[step.out_slot] = out_scale
            step.quant = QuantInfo(mode, in_scale, out_scale, res_scale)
        else:
            remap = {
                slot: float_view(slot, plan.layout(slot))
                for slot in step_reads(step)
                if slot in int_scale
            }
            if remap:
                _rewire_reads(step, remap)
        new_steps.append(step)
        for slot in step_writes(step):
            versions[slot] = versions.get(slot, 0) + 1
    plan.steps = new_steps


# --------------------------------------------------------------------------- #
# alias_slots: liveness analysis -> shared storage arenas
# --------------------------------------------------------------------------- #
def _assign_arenas(intervals, nbytes_of):
    """Greedy linear-scan assignment of live intervals to shared arenas.

    ``intervals`` is ``{slot: (start, end)}`` in program order; two slots may
    share an arena only when one's interval ends strictly before the other's
    begins (the strictness keeps GEMM outputs from aliasing their inputs).
    Returns ``(slot_arena, arena_nbytes)``.
    """
    slot_arena = {}
    arenas = []  # [capacity, free_at]
    for slot in sorted(intervals, key=lambda s: (intervals[s][0], s)):
        start, end = intervals[slot]
        nbytes = nbytes_of(slot)
        fit = grow = None
        for arena_id, (capacity, free_at) in enumerate(arenas):
            if free_at >= start:
                continue
            if capacity >= nbytes:
                if fit is None or capacity < arenas[fit][0]:
                    fit = arena_id
            elif grow is None or capacity > arenas[grow][0]:
                grow = arena_id
        if fit is not None:
            arena_id = fit
        elif grow is not None:
            arena_id = grow
            arenas[grow][0] = nbytes
        else:
            arena_id = len(arenas)
            arenas.append([nbytes, end])
        arenas[arena_id][1] = end
        slot_arena[slot] = arena_id
    return slot_arena, [capacity for capacity, _ in arenas]


def _scratch_channels(plan):
    """Per-channel maxima over every step's call-transient workspace needs."""
    channels = {}
    for step in plan.steps:
        for channel, nbytes in step.scratch_requests(plan):
            channels[channel] = max(channels.get(channel, 0), int(nbytes))
    return channels


def alias_slots(plan, ctx):
    """Share storage between slots whose live ranges never overlap.

    Inference plans alias the activation slots themselves and provision one
    shared scratch arena for the transient im2col workspaces.  Training plans
    keep every forward activation alive (they are the saved intermediates)
    and instead alias the reverse program's gradient buffers, zeroing each
    one at the start of its live interval via the plan's fill schedule.
    """
    storage = _ensure_storage(plan)
    root_map, find = _view_roots(plan)

    def nbytes_of(slot):
        # Per-slot dtype: quantized activation slots are narrower than the
        # plan dtype, and arenas are shared by bytes.
        return int(np.prod(plan.shape(slot))) * plan.slot_dtype(slot).itemsize

    protected_roots = {find(slot) for slot in ctx.protected_slots}
    protected_roots |= {find(slot) for slot in ctx.zero_slots}

    if not plan.train:
        # Forward liveness: def index of each storage root and its last read.
        first_def = {}
        last_use = {}

        def touch(slot, index):
            root = find(slot)
            first_def.setdefault(root, index)
            last_use[root] = index

        if plan.input_slot is not None:
            touch(plan.input_slot, -1)
        for index, step in enumerate(plan.steps):
            for slot in step_reads(step):
                touch(slot, index)
            for slot in step_writes(step):
                touch(slot, index)
        intervals = {
            slot: (first_def[slot], last_use[slot])
            for slot in first_def
            if slot not in protected_roots and slot not in plan._view_slots
        }
        storage.slot_arena, storage.arena_nbytes = _assign_arenas(intervals, nbytes_of)
        storage.scratch_channels = _scratch_channels(plan)
        return

    # Training plans: alias the gradient buffers over the reverse program.
    length = len(plan.steps)
    touches = {}  # root -> [forward step indices touching its gradient]
    for index, step in enumerate(plan.steps):
        for slot in set(step_reads(step)) | set(step_writes(step)):
            touches.setdefault(find(slot), []).append(index)
    intervals = {}
    fill_schedule = {}
    for root, indices in touches.items():
        if root in protected_roots or root in plan._view_slots:
            continue
        first, last = min(indices), max(indices)
        if first == last:
            continue  # single-step slot: gradient never crosses a step boundary
        # Reverse positions: the gradient is first written by the backward of
        # the *last* forward toucher and finally consumed by the backward of
        # the *first* (its producer).
        intervals[root] = (length - 1 - last, length - 1 - first)
        fill_schedule.setdefault(last, []).append(root)
    storage.grad_arena, storage.grad_arena_nbytes = _assign_arenas(intervals, nbytes_of)
    storage.scratch_channels = _scratch_channels(plan)
    storage.grad_fill_schedule = {
        index: tuple(slots) for index, slots in fill_schedule.items()
    }
    # Gradients nothing touches (and nothing views) need no buffer at all.
    storage.grad_dead = {
        slot
        for slot in range(len(plan._shapes))
        if slot not in plan._view_slots
        and find(slot) == slot
        and slot not in touches
        and slot not in protected_roots
        and slot not in {find(v) for v in root_map}
    }


def mark_dead_slots(plan, ctx):
    """Record slots no remaining step touches so finalize skips them."""
    used = set(ctx.protected_slots)
    if plan.input_slot is not None:
        used.add(plan.input_slot)
    for step in plan.steps:
        used.update(step_reads(step))
        used.update(step_writes(step))
    storage = _ensure_storage(plan)
    storage.dead_slots = {
        slot
        for slot in range(len(plan._shapes))
        if slot not in used and slot not in plan._view_slots
    }


# --------------------------------------------------------------------------- #
# Plan lint: layout / aliasing invariant checks (debug, on under pytest)
# --------------------------------------------------------------------------- #
class PlanLintError(RuntimeError):
    """A compiled plan violates the layout / aliasing invariants."""


def lint_enabled():
    """Whether :func:`run_passes` should lint: env override, else pytest."""
    raw = os.environ.get(LINT_ENV_VAR)
    if raw is not None:
        return raw.strip().lower() not in ("", "0", "false", "off")
    return "PYTEST_CURRENT_TEST" in os.environ


def _expected_layouts(step, lay):
    """Per-read/write layout every step type requires, given its own tags."""
    if isinstance(step, Conv2dStep):
        expected = {step.in_slot: step.layout, step.out_slot: step.layout}
        if step.res_slot is not None:
            expected[step.res_slot] = step.layout
        return expected
    if isinstance(step, BatchNormStep):
        return {step.in_slot: step.layout, step.out_slot: step.layout}
    if isinstance(step, GlobalAvgPoolStep):
        return {step.in_slot: step.layout}
    if isinstance(step, AddStep):
        layout = lay(step.out_slot)
        return {} if layout is None else {
            step.a_slot: layout,
            step.b_slot: layout,
        }
    if isinstance(step, GateCombineStep):
        layout = lay(step.out_slot)
        return {} if layout is None else {slot: layout for slot in step.in_slots}
    if isinstance(step, TileStep):
        layout = lay(step.out_slot)
        return {} if layout is None else {step.in_slot: layout}
    if isinstance(step, TransposeStep):
        return {
            step.in_slot: step.from_layout,
            step.out_slot: step.to_layout,
        }
    if isinstance(step, (QuantizeStep, DequantizeStep)):
        # Dtype boundaries preserve the physical layout on both sides.
        layout = step.layout
        return {} if layout is None else {
            step.in_slot: layout,
            step.out_slot: layout,
        }
    if isinstance(step, ActivationStep):
        return {}
    # Anchors (pooling / flatten / reshape / opaque / ...): logical NCHW.
    return {slot: "NCHW" for slot in step_reads(step) if lay(slot) is not None}


def lint_plan(plan, ctx=None):
    """Validate the layout and aliasing invariants; raise on any violation.

    Checks, in one walk over the program plus the storage plan:

    * no transpose step consumes another transpose's still-current output
      (adjacent pairs must have been cancelled through the twin memo);
    * every step observes each 4-D slot in the layout the slot is tagged
      with (conv/BN/pool steps via their own ``layout`` attribute, joins via
      their operands' tags, anchor steps as NCHW);
    * quantized edges are scale-consistent: every integer slot's scale is
      fixed by its writer (quantize step or quantized conv) and every
      consumer — quantized conv input/residual, dequantize step — must
      carry exactly that scale; integer slots may only be read by
      quant-aware steps (no un-dequantized edges) and protected slots stay
      in the plan dtype;
    * every aliased slot fits its arena (forward and gradient), byte-wise,
      under its own dtype.
    """
    problems = []
    lay = plan.layout
    transposed = {}  # slot -> True while its latest definition is a transpose
    for index, step in enumerate(plan.steps):
        if isinstance(step, TransposeStep):
            if step.from_layout == step.to_layout:
                problems.append(
                    "step {}: transpose {}->{} is a no-op".format(
                        index, step.from_layout, step.to_layout
                    )
                )
            if transposed.get(step.in_slot):
                problems.append(
                    "step {}: transpose of slot {} consumes another "
                    "transpose's output (uncancelled adjacent pair)".format(
                        index, step.in_slot
                    )
                )
        for slot, needed in _expected_layouts(step, lay).items():
            tag = lay(slot)
            if tag is not None and tag != needed:
                problems.append(
                    "step {} ({}): slot {} tagged {} but step expects {}".format(
                        index, type(step).__name__, slot, tag, needed
                    )
                )
        for slot in step_writes(step):
            transposed[slot] = isinstance(step, TransposeStep)
    # Quantized-edge invariants: an integer slot's scale is fixed by its
    # writer; every consumer must agree on it exactly, and only quant-aware
    # steps may read integer data.
    scale_of = {}
    for step in plan.steps:
        if isinstance(step, QuantizeStep):
            scale_of[step.out_slot] = step.scale
        elif isinstance(step, Conv2dStep) and step.quant is not None:
            scale_of[step.out_slot] = step.quant.out_scale
    for index, step in enumerate(plan.steps):
        if isinstance(step, Conv2dStep) and step.quant is not None:
            if plan.train:
                problems.append(
                    "step {}: quantized conv in a training plan".format(index)
                )
            if scale_of.get(step.in_slot) != step.quant.in_scale:
                problems.append(
                    "step {}: quantized conv reads slot {} at scale {!r} but "
                    "its producer wrote scale {!r}".format(
                        index, step.in_slot, step.quant.in_scale,
                        scale_of.get(step.in_slot),
                    )
                )
            if (
                step.res_slot is not None
                and scale_of.get(step.res_slot) != step.quant.res_scale
            ):
                problems.append(
                    "step {}: quantized conv residual slot {} at scale {!r} "
                    "but its producer wrote scale {!r}".format(
                        index, step.res_slot, step.quant.res_scale,
                        scale_of.get(step.res_slot),
                    )
                )
        elif isinstance(step, DequantizeStep):
            if scale_of.get(step.in_slot) != step.scale:
                problems.append(
                    "step {}: dequantize of slot {} at scale {!r} but its "
                    "producer wrote scale {!r}".format(
                        index, step.in_slot, step.scale,
                        scale_of.get(step.in_slot),
                    )
                )
        for slot in step_reads(step):
            if plan.slot_dtype(slot).kind not in "iu":
                continue
            quant_aware = isinstance(step, DequantizeStep) or (
                isinstance(step, Conv2dStep) and step.quant is not None
            )
            if not quant_aware:
                problems.append(
                    "step {} ({}): reads quantized slot {} without "
                    "dequantizing".format(index, type(step).__name__, slot)
                )
    if ctx is not None:
        for slot in sorted(ctx.protected_slots):
            if plan.slot_dtype(slot) != plan.dtype:
                problems.append(
                    "protected slot {} carries dtype {} instead of the plan "
                    "dtype {}".format(slot, plan.slot_dtype(slot), plan.dtype)
                )
    storage = plan.storage
    if storage is not None:
        checks = (
            ("forward", storage.slot_arena, storage.arena_nbytes),
            ("grad", storage.grad_arena, storage.grad_arena_nbytes),
        )
        for kind, slot_arena, arena_nbytes in checks:
            for slot, arena in slot_arena.items():
                need = (
                    int(np.prod(plan.shape(slot)))
                    * plan.slot_dtype(slot).itemsize
                )
                if arena_nbytes[arena] < need:
                    problems.append(
                        "{} arena {} holds {} bytes but aliased slot {} "
                        "needs {}".format(
                            kind, arena, arena_nbytes[arena], slot, need
                        )
                    )
    if problems:
        raise PlanLintError(
            "plan lint failed:\n  " + "\n  ".join(problems)
        )
    return plan


_PASS_FUNCS = {
    "dead_branch": dead_branch,
    "fuse_epilogue": fuse_epilogue,
    "fold_bn": fold_bn,
    "layout": assign_layouts,
    "quantize": quantize_plan,
    "alias_slots": alias_slots,
}

#: Passes that are pure per-step rewrites and stay safe in the presence of
#: unknown (third-party) step types.
_ANALYSIS_FREE = frozenset({"fold_bn"})


def run_passes(plan, ctx, enabled=None):
    """Run the enabled passes, in pipeline order, on an un-finalised plan."""
    enabled = enabled if isinstance(enabled, frozenset) else enabled_passes(enabled)
    if not enabled:
        return plan
    analyzable = all(type(step) in _KNOWN_STEPS for step in plan.steps)
    for name in PASS_NAMES:
        if name not in enabled:
            continue
        if not analyzable and name not in _ANALYSIS_FREE:
            continue
        with trace.span("pass/" + name, "compile"):
            _PASS_FUNCS[name](plan, ctx)
    if analyzable:
        mark_dead_slots(plan, ctx)
        if lint_enabled():
            lint_plan(plan, ctx)
    return plan
